#include "src/index/boundary_index.h"

#include <algorithm>
#include <array>

#include "src/graph/algorithms.h"
#include "src/graph/graph.h"
#include "src/util/logging.h"

namespace pereach {

// ---------------------------------------------------------------------------
// BoundaryRows wire format

void BoundaryRows::Serialize(Encoder* enc) const {
  enc->PutVarint(oset_globals.size());
  for (NodeId g : oset_globals) enc->PutVarint(g);
  PEREACH_CHECK_EQ(rep_globals.size(), rows.size());
  enc->PutVarint(rep_globals.size());
  for (size_t g = 0; g < rep_globals.size(); ++g) {
    enc->PutVarint(rep_globals[g]);
    enc->PutVarint(rows[g].size());
    // Ascending oset indices: delta-encode, same trick as the sparse
    // equation encoding of ReachPartialAnswer.
    uint32_t prev = 0;
    for (uint32_t idx : rows[g]) {
      enc->PutVarint(idx - prev);
      prev = idx;
    }
  }
  enc->PutVarint(aliases.size());
  for (const auto& [member, rep] : aliases) {
    enc->PutVarint(member);
    enc->PutVarint(rep);
  }
}

BoundaryRows BoundaryRows::Deserialize(Decoder* dec) {
  BoundaryRows out;
  out.oset_globals.resize(dec->GetCount());
  for (NodeId& g : out.oset_globals) g = static_cast<NodeId>(dec->GetVarint());
  const size_t groups = dec->GetCount();
  out.rep_globals.resize(groups);
  out.rows.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    out.rep_globals[g] = static_cast<NodeId>(dec->GetVarint());
    out.rows[g].resize(dec->GetCount());
    uint32_t prev = 0;
    for (uint32_t& idx : out.rows[g]) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      idx = prev;
      PEREACH_CHECK_LT(idx, out.oset_globals.size());
    }
  }
  out.aliases.resize(dec->GetCount());
  for (auto& [member, rep] : out.aliases) {
    member = static_cast<NodeId>(dec->GetVarint());
    rep = static_cast<NodeId>(dec->GetVarint());
  }
  return out;
}

// ---------------------------------------------------------------------------
// BoundaryReachIndex

BoundaryReachIndex::BoundaryReachIndex(size_t num_fragments)
    : num_fragments_(num_fragments),
      fragment_rows_(num_fragments),
      have_rows_(num_fragments, false),
      dirty_(num_fragments, true) {}

void BoundaryReachIndex::SetFragmentRows(SiteId site, BoundaryRows rows) {
  PEREACH_CHECK_LT(site, num_fragments_);
  fragment_rows_[site] = std::move(rows);
  have_rows_[site] = true;
  dirty_[site] = false;
  stale_ = true;
}

void BoundaryReachIndex::InvalidateFragment(SiteId site) {
  PEREACH_CHECK_LT(site, num_fragments_);
  dirty_[site] = true;
  stale_ = true;
}

void BoundaryReachIndex::InvalidateAll() {
  dirty_.assign(num_fragments_, true);
  stale_ = true;
}

std::vector<SiteId> BoundaryReachIndex::DirtySites() const {
  std::vector<SiteId> out;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    if (dirty_[s]) out.push_back(s);
  }
  return out;
}

const std::vector<NodeId>& BoundaryReachIndex::oset_globals(
    SiteId site) const {
  PEREACH_CHECK_LT(site, num_fragments_);
  PEREACH_CHECK(have_rows_[site] && !dirty_[site]);
  return fragment_rows_[site].oset_globals;
}

void BoundaryReachIndex::Ensure() {
  if (!stale_) return;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    PEREACH_CHECK(have_rows_[s] && !dirty_[s] &&
                  "Ensure with dirty fragments: refresh their rows first");
  }

  // 1. Intern the boundary-node universe (global id -> dense id). Every
  // virtual node is an in-node of the fragment storing its real copy, so
  // interning reps, alias members and row targets covers the whole V_f.
  std::unordered_map<NodeId, uint32_t> dense;
  auto intern = [&dense](NodeId g) {
    return dense.emplace(g, static_cast<uint32_t>(dense.size())).first->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const BoundaryRows& fr = fragment_rows_[s];
    for (size_t g = 0; g < fr.rep_globals.size(); ++g) {
      const uint32_t rep = intern(fr.rep_globals[g]);
      for (uint32_t idx : fr.rows[g]) {
        edges.emplace_back(rep, intern(fr.oset_globals[idx]));
      }
    }
    // An alias member reaches its representative inside the fragment (same
    // local SCC), so a single member -> rep edge stands in for the member's
    // whole row; the rep carries the fan-out once per group.
    for (const auto& [member, rep] : fr.aliases) {
      edges.emplace_back(intern(member), intern(rep));
    }
  }

  // 2. Condense. The boundary graph is built as a real Graph so the SCC /
  // condensation machinery (and its reverse-topological id guarantee) is
  // shared with the fragment-local path.
  GraphBuilder builder;
  builder.AddNodes(dense.size());
  for (const auto& [u, v] : edges) {
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  const Condensation cond = Condense(std::move(builder).Build());
  num_comps_ = cond.scc.num_components;
  adj_offsets_ = cond.offsets;
  adj_targets_ = cond.targets;
  comp_of_.clear();
  comp_of_.reserve(dense.size());
  for (const auto& [global, d] : dense) {
    comp_of_.emplace(global, cond.scc.component_of[d]);
  }

  // 3. Labels over the condensation. Two deterministic DFS labelings
  // (natural and reversed child order); the first one's DFS-tree intervals
  // [tin, tout) double as the certain-positive check.
  labels_.assign(num_comps_, CompLabel{});
  std::vector<uint8_t> visited(num_comps_);
  // Frame: (component, next child position). Child positions count from the
  // labeling's iteration end so both orders share one loop.
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (size_t labeling = 0; labeling < kNumLabelings; ++labeling) {
    visited.assign(num_comps_, 0);
    uint32_t time = 0;  // shared pre/post counter; only relative order counts
    uint32_t post = 0;
    // Root order: descending ids first pass (sources have high reverse-topo
    // ids), ascending second — more disagreement between the labelings.
    for (size_t r = 0; r < num_comps_; ++r) {
      const uint32_t root = static_cast<uint32_t>(
          labeling == 0 ? num_comps_ - 1 - r : r);
      if (visited[root]) continue;
      visited[root] = 1;
      if (labeling == 0) labels_[root].tin = time++;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [c, child] = stack.back();
        const size_t degree = adj_offsets_[c + 1] - adj_offsets_[c];
        if (child == degree) {
          if (labeling == 0) labels_[c].tout = time++;
          labels_[c].post[labeling] = post++;
          stack.pop_back();
          continue;
        }
        const size_t pos = labeling == 0 ? adj_offsets_[c] + child
                                         : adj_offsets_[c + 1] - 1 - child;
        ++child;
        const uint32_t next = adj_targets_[pos];
        if (visited[next]) continue;
        visited[next] = 1;
        if (labeling == 0) labels_[next].tin = time++;
        stack.emplace_back(next, 0);
      }
    }
    // low = min post rank over all descendants: component ids are reverse
    // topological (every edge goes to a smaller id), so an ascending scan
    // sees every successor's final low.
    for (uint32_t c = 0; c < num_comps_; ++c) {
      uint32_t low = labels_[c].post[labeling];
      for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
        low = std::min(low, labels_[adj_targets_[e]].low[labeling]);
      }
      labels_[c].low[labeling] = low;
    }
  }

  visit_mark_.assign(num_comps_, 0);
  visit_version_ = 0;
  stale_ = false;
  ++rebuild_count_;
}

uint32_t BoundaryReachIndex::CompOf(NodeId global) const {
  const auto it = comp_of_.find(global);
  PEREACH_CHECK(it != comp_of_.end() &&
                "query endpoint is not a boundary node of this epoch");
  return it->second;
}

bool BoundaryReachIndex::LabelContains(uint32_t cu, uint32_t cv) const {
  const CompLabel& lu = labels_[cu];
  const uint32_t pv0 = labels_[cv].post[0];
  const uint32_t pv1 = labels_[cv].post[1];
  return lu.low[0] <= pv0 && pv0 <= lu.post[0] &&  //
         lu.low[1] <= pv1 && pv1 <= lu.post[1];
}

int BoundaryReachIndex::LabelVerdict(uint32_t cu, uint32_t cv) const {
  if (cu == cv) return 1;
  // Reverse-topological ids: a descendant always has a smaller id.
  if (cv > cu) return 0;
  // Certain positive: cv sits inside cu's DFS-tree subtree (tree edges are
  // condensation edges, so the tree path is a real path).
  const CompLabel& lu = labels_[cu];
  const uint32_t tv = labels_[cv].tin;
  if (lu.tin <= tv && tv < lu.tout) return 1;
  // Certain negative: interval containment is necessary for reachability.
  if (!LabelContains(cu, cv)) return 0;
  return -1;
}

bool BoundaryReachIndex::Reaches(NodeId u, NodeId v) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  const NodeId a[1] = {u}, b[1] = {v};
  return ReachesAny(a, b);
}

bool BoundaryReachIndex::ReachesAny(std::span<const NodeId> sources,
                                    std::span<const NodeId> targets) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  if (sources.empty() || targets.empty()) return false;

  // Dedupe both sides at the component level; within one side, members of
  // the same component are interchangeable.
  std::vector<uint32_t> src;
  src.reserve(sources.size());
  for (NodeId u : sources) src.push_back(CompOf(u));
  std::sort(src.begin(), src.end());
  src.erase(std::unique(src.begin(), src.end()), src.end());

  std::vector<uint32_t> tgt;
  tgt.reserve(targets.size());
  for (NodeId v : targets) tgt.push_back(CompOf(v));
  std::sort(tgt.begin(), tgt.end());
  tgt.erase(std::unique(tgt.begin(), tgt.end()), tgt.end());

  // Label pass: decide every (source, target) component pair by labels
  // alone; collect the sources with an undecided pair for the fallback.
  std::vector<uint32_t> undecided;
  for (uint32_t cs : src) {
    bool pending = false;
    for (uint32_t ct : tgt) {
      const int verdict = LabelVerdict(cs, ct);
      if (verdict == 1) {
        ++label_hits_;
        return true;
      }
      pending |= verdict < 0;
    }
    if (pending) undecided.push_back(cs);
  }
  if (undecided.empty()) {
    ++label_hits_;
    return false;
  }

  // Fallback: one multi-source DFS over the condensation from the undecided
  // sources, pruned by ids (descendants only have smaller ids) and by the
  // target post-rank window per labeling.
  ++dfs_fallbacks_;
  const uint32_t min_target = tgt.front();
  // Sorted post ranks of the targets, one list per labeling: a node can be
  // pruned when no target rank falls inside its [low, post] interval.
  std::array<std::vector<uint32_t>, kNumLabelings> tgt_post;
  for (size_t l = 0; l < kNumLabelings; ++l) {
    tgt_post[l].reserve(tgt.size());
    for (uint32_t ct : tgt) tgt_post[l].push_back(labels_[ct].post[l]);
    std::sort(tgt_post[l].begin(), tgt_post[l].end());
  }
  const auto may_reach_some_target = [&](uint32_t c) {
    if (c < min_target) return false;
    for (size_t l = 0; l < kNumLabelings; ++l) {
      const auto it = std::lower_bound(tgt_post[l].begin(), tgt_post[l].end(),
                                       labels_[c].low[l]);
      if (it == tgt_post[l].end() || *it > labels_[c].post[l]) return false;
    }
    return true;
  };

  if (++visit_version_ == 0) {  // wrapped: re-zero the marks once
    visit_mark_.assign(num_comps_, 0);
    visit_version_ = 1;
  }
  dfs_stack_.clear();
  for (uint32_t cs : undecided) {
    if (visit_mark_[cs] == visit_version_) continue;
    visit_mark_[cs] = visit_version_;
    dfs_stack_.push_back(cs);
  }
  while (!dfs_stack_.empty()) {
    const uint32_t c = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (std::binary_search(tgt.begin(), tgt.end(), c)) return true;
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      const uint32_t next = adj_targets_[e];
      if (visit_mark_[next] == visit_version_) continue;
      visit_mark_[next] = visit_version_;
      if (may_reach_some_target(next)) dfs_stack_.push_back(next);
    }
  }
  return false;
}

size_t BoundaryReachIndex::ByteSize() const {
  size_t bytes = comp_of_.size() * (sizeof(NodeId) + sizeof(uint32_t)) +
                 adj_offsets_.size() * sizeof(size_t) +
                 adj_targets_.size() * sizeof(uint32_t) +
                 labels_.size() * sizeof(CompLabel);
  for (const BoundaryRows& fr : fragment_rows_) {
    bytes += fr.oset_globals.size() * sizeof(NodeId) +
             fr.rep_globals.size() * sizeof(NodeId) +
             fr.aliases.size() * sizeof(fr.aliases[0]);
    for (const auto& row : fr.rows) bytes += row.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace pereach
