#include "src/index/boundary_index.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/util/logging.h"

namespace pereach {

// ---------------------------------------------------------------------------
// BoundaryRows wire format

void BoundaryRows::Serialize(Encoder* enc) const {
  enc->PutVarint(oset_globals.size());
  for (NodeId g : oset_globals) enc->PutVarint(g);
  PEREACH_CHECK_EQ(rep_globals.size(), rows.size());
  enc->PutVarint(rep_globals.size());
  for (size_t g = 0; g < rep_globals.size(); ++g) {
    enc->PutVarint(rep_globals[g]);
    enc->PutVarint(rows[g].size());
    // Ascending oset indices: delta-encode, same trick as the sparse
    // equation encoding of ReachPartialAnswer.
    uint32_t prev = 0;
    for (uint32_t idx : rows[g]) {
      enc->PutVarint(idx - prev);
      prev = idx;
    }
  }
  enc->PutVarint(aliases.size());
  for (const auto& [member, rep] : aliases) {
    enc->PutVarint(member);
    enc->PutVarint(rep);
  }
}

BoundaryRows BoundaryRows::Deserialize(Decoder* dec) {
  BoundaryRows out;
  out.oset_globals.resize(dec->GetCount());
  for (NodeId& g : out.oset_globals) g = static_cast<NodeId>(dec->GetVarint());
  const size_t groups = dec->GetCount();
  out.rep_globals.resize(groups);
  out.rows.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    out.rep_globals[g] = static_cast<NodeId>(dec->GetVarint());
    out.rows[g].resize(dec->GetCount());
    uint32_t prev = 0;
    for (uint32_t& idx : out.rows[g]) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      idx = prev;
      PEREACH_CHECK_LT(idx, out.oset_globals.size());
    }
  }
  out.aliases.resize(dec->GetCount());
  for (auto& [member, rep] : out.aliases) {
    member = static_cast<NodeId>(dec->GetVarint());
    rep = static_cast<NodeId>(dec->GetVarint());
  }
  return out;
}

// ---------------------------------------------------------------------------
// BoundaryReachIndex

BoundaryReachIndex::BoundaryReachIndex(size_t num_fragments,
                                       size_t shortcut_budget)
    : num_fragments_(num_fragments),
      shortcut_budget_(shortcut_budget),
      fragment_rows_(num_fragments),
      have_rows_(num_fragments, false),
      dirty_(num_fragments, true) {}

void BoundaryReachIndex::SetFragmentRows(SiteId site, BoundaryRows rows) {
  PEREACH_CHECK_LT(site, num_fragments_);
  fragment_rows_[site] = std::move(rows);
  have_rows_[site] = true;
  dirty_[site] = false;
  stale_ = true;
}

void BoundaryReachIndex::InvalidateFragment(SiteId site) {
  PEREACH_CHECK_LT(site, num_fragments_);
  dirty_[site] = true;
  stale_ = true;
}

void BoundaryReachIndex::InvalidateAll() {
  dirty_.assign(num_fragments_, true);
  stale_ = true;
}

std::vector<SiteId> BoundaryReachIndex::DirtySites() const {
  std::vector<SiteId> out;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    if (dirty_[s]) out.push_back(s);
  }
  return out;
}

const std::vector<NodeId>& BoundaryReachIndex::oset_globals(
    SiteId site) const {
  PEREACH_CHECK_LT(site, num_fragments_);
  PEREACH_CHECK(have_rows_[site] && !dirty_[site]);
  return fragment_rows_[site].oset_globals;
}

void BoundaryReachIndex::Ensure() {
  if (!stale_) return;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    PEREACH_CHECK(have_rows_[s] && !dirty_[s] &&
                  "Ensure with dirty fragments: refresh their rows first");
  }

  // Intern the boundary-node universe (global id -> dense id). Every
  // virtual node is an in-node of the fragment storing its real copy, so
  // interning reps, alias members and row targets covers the whole V_f.
  dense_of_.clear();
  auto intern = [this](NodeId g) {
    return dense_of_.emplace(g, static_cast<uint32_t>(dense_of_.size()))
        .first->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const BoundaryRows& fr = fragment_rows_[s];
    for (size_t g = 0; g < fr.rep_globals.size(); ++g) {
      const uint32_t rep = intern(fr.rep_globals[g]);
      for (uint32_t idx : fr.rows[g]) {
        edges.emplace_back(rep, intern(fr.oset_globals[idx]));
      }
    }
    // An alias member reaches its representative inside the fragment (same
    // local SCC), so a single member -> rep edge stands in for the member's
    // whole row; the rep carries the fan-out once per group.
    for (const auto& [member, rep] : fr.aliases) {
      edges.emplace_back(intern(member), intern(rep));
    }
  }

  // Condensation + GRAIL labels: the coordinator core shared with the
  // product boundary graph (see ReachLabels).
  labels_.Build(dense_of_.size(), edges, shortcut_budget_);
  stale_ = false;
  ++rebuild_count_;
}

uint32_t BoundaryReachIndex::DenseOf(NodeId global) const {
  const auto it = dense_of_.find(global);
  PEREACH_CHECK(it != dense_of_.end() &&
                "query endpoint is not a boundary node of this epoch");
  return it->second;
}

bool BoundaryReachIndex::Reaches(NodeId u, NodeId v) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  const NodeId a[1] = {u}, b[1] = {v};
  return ReachesAny(a, b);
}

bool BoundaryReachIndex::ReachesAny(std::span<const NodeId> sources,
                                    std::span<const NodeId> targets) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  if (sources.empty() || targets.empty()) return false;
  std::vector<uint32_t> src;
  src.reserve(sources.size());
  for (NodeId u : sources) src.push_back(DenseOf(u));
  std::vector<uint32_t> tgt;
  tgt.reserve(targets.size());
  for (NodeId v : targets) tgt.push_back(DenseOf(v));
  return labels_.ReachesAny(src, tgt);
}

void BoundaryReachIndex::AnswerBatch(std::span<const ReachQuestion> questions,
                                     std::vector<uint8_t>* answers) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  answers->assign(questions.size(), 0);
  for (size_t base = 0; base < questions.size();
       base += BitsetSweep::kLanes) {
    const size_t lanes =
        std::min(BitsetSweep::kLanes, questions.size() - base);
    // Map every endpoint to its dense id up front — flat storage, spans
    // built only after the fill so growth can't invalidate them.
    size_t total = 0;
    for (size_t li = 0; li < lanes; ++li) {
      total += questions[base + li].sources.size() +
               questions[base + li].targets.size();
    }
    batch_nodes_.clear();
    batch_nodes_.reserve(total);
    batch_word_.clear();
    batch_word_.resize(lanes);
    // Per-lane {s_off, s_len, t_off, t_len} into the flat dense-id array.
    std::vector<std::array<size_t, 4>> extents(lanes);
    for (size_t li = 0; li < lanes; ++li) {
      const ReachQuestion& q = questions[base + li];
      extents[li][0] = batch_nodes_.size();
      for (const NodeId u : q.sources) batch_nodes_.push_back(DenseOf(u));
      extents[li][1] = q.sources.size();
      extents[li][2] = batch_nodes_.size();
      for (const NodeId v : q.targets) batch_nodes_.push_back(DenseOf(v));
      extents[li][3] = q.targets.size();
    }
    for (size_t li = 0; li < lanes; ++li) {
      batch_word_[li].sources =
          std::span<const uint32_t>(batch_nodes_).subspan(extents[li][0],
                                                          extents[li][1]);
      batch_word_[li].targets =
          std::span<const uint32_t>(batch_nodes_).subspan(extents[li][2],
                                                          extents[li][3]);
    }
    const uint64_t word = labels_.ReachesAnyWord(batch_word_);
    for (size_t li = 0; li < lanes; ++li) {
      (*answers)[base + li] = static_cast<uint8_t>((word >> li) & 1);
    }
  }
}

size_t BoundaryReachIndex::ByteSize() const {
  size_t bytes = dense_of_.size() * (sizeof(NodeId) + sizeof(uint32_t)) +
                 labels_.ByteSize();
  for (const BoundaryRows& fr : fragment_rows_) {
    bytes += fr.oset_globals.size() * sizeof(NodeId) +
             fr.rep_globals.size() * sizeof(NodeId) +
             fr.aliases.size() * sizeof(fr.aliases[0]);
    for (const auto& row : fr.rows) bytes += row.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace pereach
