#ifndef PEREACH_INDEX_BOUNDARY_RPQ_INDEX_H_
#define PEREACH_INDEX_BOUNDARY_RPQ_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/index/reach_labels.h"
#include "src/regex/canonical.h"
#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// One node of a product boundary graph: a boundary node of the
/// fragmentation paired with an automaton state of the entry's canonical
/// automaton. States fit in 6 bits (QueryAutomaton::kMaxStates == 64).
struct ProductPair {
  NodeId node = kInvalidNode;
  uint8_t state = 0;

  friend bool operator==(const ProductPair&, const ProductPair&) = default;
};

/// Query-independent PRODUCT boundary rows of ONE fragment for ONE canonical
/// automaton, as shipped to the coordinator by the rpq-index refresh round —
/// the regular-reachability twin of BoundaryRows. A re-encoding of
/// FragmentContext::RpqProduct with local ids resolved to globals:
///  - `oset_globals` is the fragment's virtual-node table (ascending local
///    order, the same table the reach index ships) and `oset_masks[j]` the
///    automaton states compatible with entry j: the interior states matching
///    its label PLUS u_t — any virtual node may be some query's target, and
///    the hop that accepts into it is automaton-static (see DESIGN.md §9).
///    Flattening the (entry, state) pairs in ascending (j, state) order
///    yields the fragment's PAIR TABLE; rows and sweep frames reference
///    pairs by flattened index;
///  - one row per in-pair PRODUCT-SCC GROUP: the group representative pair
///    (global id, state) plus the ascending table indices of the pairs the
///    group reaches in the fragment's product graph;
///  - one alias per non-representative in-pair, binding it to its group
///    (same product SCC, hence boundary-equivalent).
struct ProductBoundaryRows {
  std::vector<NodeId> oset_globals;
  std::vector<uint64_t> oset_masks;         // per entry: interior | u_t bit
  std::vector<ProductPair> rep_pairs;       // one per group
  std::vector<std::vector<uint32_t>> rows;  // group -> ascending table idx
  // (member pair, group index) for every in-pair that is not its group rep.
  std::vector<std::pair<ProductPair, uint32_t>> aliases;

  /// Number of flattened pair-table entries (sum of mask popcounts).
  size_t TableSize() const;

  void Serialize(Encoder* enc) const;
  static ProductBoundaryRows Deserialize(Decoder* dec);
};

/// Coordinator-side reachability index over PRODUCT BOUNDARY GRAPHS — the
/// piece that makes regular-path queries as fast as reach/dist: one standing
/// graph per distinct query automaton (canonical signature), whose nodes are
/// (boundary node, automaton state) pairs and whose edges (v,q) -> (w,q')
/// assert that v's fragment can route a local path from v to its virtual
/// copy of w while driving the automaton from q to q'. The edges are exactly
/// the product closure rows the fragments cache query-independently
/// (FragmentContext::RpqProduct), so a path in this graph composes
/// label-compatible fragment-local path segments — reachability from the
/// query's s-side exit pairs to its t-side accepting entries in this graph
/// is regular reachability in G, with no per-query BES ever assembled.
/// Pairs (w, u_t) at virtual nodes are standing ACCEPT sinks: an edge into
/// one captures "this fragment can complete a match at its copy of w", so a
/// query for target t just adds (t, u_t) to its entry list.
///
/// Entries are kept behind a signature-keyed LRU cache with a configurable
/// cap (serving workloads repeat regexes heavily; cf. Seufert et al. on
/// keeping standing indexes small under size restrictions). Eviction never
/// affects correctness — a re-miss rebuilds the entry from one refresh
/// round — and entries touched by the in-flight batch are pinned.
///
/// Incremental maintenance mirrors the other boundary indexes: the owner
/// marks fragments dirty in EVERY cached entry on the InvalidateFragment
/// path, re-fetches only the dirty fragments' rows per touched entry, and
/// Entry::Ensure() rebuilds the small condensation + labels (ReachLabels).
/// Thread-safety: none; the engine's single-dispatcher discipline provides
/// the exclusion, and a debug-build ScopedExclusiveUse on every LRU entry
/// point (BeginBatch / GetEntry / Invalidate*) aborts deterministically if
/// two threads ever overlap inside the cache (DESIGN.md §12).
class BoundaryRpqIndex {
 public:
  /// One coordinator rpq question of a batch: does ANY source pair reach
  /// ANY target pair in this entry's product boundary graph? Spans must
  /// stay alive through AnswerBatch; empty sides answer false.
  struct RpqQuestion {
    std::span<const ProductPair> sources;
    std::span<const ProductPair> targets;
  };

  /// Standing product boundary graph of one canonical automaton.
  class Entry {
   public:
    /// Installs the product boundary rows of one fragment and clears its
    /// dirty bit.
    void SetFragmentRows(SiteId site, ProductBoundaryRows rows);

    /// Fragments whose rows must be re-fetched before Ensure() can run.
    std::vector<SiteId> DirtySites() const;
    bool dirty() const { return stale_; }

    /// Rebuilds the product boundary graph, condensation and labels from
    /// the cached per-fragment rows. Requires DirtySites() empty.
    /// Idempotent when clean.
    void Ensure();

    /// Pair at `index` of the fragment's flattened pair table — sweep
    /// frames reference exits by these indices.
    ProductPair TablePair(SiteId site, uint32_t index) const;
    size_t TableSize(SiteId site) const;

    /// True iff `p` is a node of the standing graph of this epoch. The
    /// query target's accept pair (t, u_t) exists iff some fragment holds a
    /// virtual copy of t; callers probe before listing it as an entry.
    bool HasPair(ProductPair p) const;

    /// True iff ANY source pair reaches ANY target pair (reflexive). All
    /// pairs must be standing nodes; CHECK-fails otherwise.
    bool ReachesAny(std::span<const ProductPair> sources,
                    std::span<const ProductPair> targets);

    /// Answers a whole batch, `(*answers)[i] = ReachesAny(questions[i])`,
    /// 64 questions per bit-parallel word (ReachLabels::ReachesAnyWord).
    /// Resizes `answers`.
    void AnswerBatch(std::span<const RpqQuestion> questions,
                     std::vector<uint8_t>* answers);

    // --- observability -----------------------------------------------------
    size_t num_product_nodes() const { return dense_of_.size(); }
    size_t num_components() const { return labels_.num_components(); }
    size_t num_edges() const { return labels_.num_edges(); }
    /// Full condensation + label rebuilds performed (dirty-epoch count —
    /// plus one per re-miss after an LRU eviction).
    size_t rebuild_count() const { return rebuild_count_; }
    size_t label_hits() const { return labels_.label_hits(); }
    size_t dfs_fallbacks() const { return labels_.dfs_fallbacks(); }
    /// Batch-path counters (see ReachLabels).
    size_t batch_words() const { return labels_.batch_words(); }
    size_t sweep_count() const { return labels_.sweep_count(); }
    size_t sweep_lanes() const { return labels_.sweep_lanes(); }
    size_t sweep_depth() const { return labels_.sweep_depth(); }
    size_t shortcut_count() const { return labels_.shortcut_count(); }
    size_t ByteSize() const;

   private:
    friend class BoundaryRpqIndex;
    Entry(size_t num_fragments, size_t shortcut_budget);

    static uint64_t PackPair(ProductPair p) {
      return (static_cast<uint64_t>(p.node) << 6) | p.state;
    }

    uint32_t DenseOf(ProductPair p) const;

    size_t num_fragments_;
    size_t shortcut_budget_;
    std::vector<ProductBoundaryRows> fragment_rows_;
    // Flattened pair table per site, built when rows are installed.
    std::vector<std::vector<ProductPair>> site_table_;
    std::vector<bool> have_rows_;
    std::vector<bool> dirty_;
    bool stale_ = true;  // condensation/labels out of date w.r.t. the rows

    // Rebuilt structure (valid while !stale_).
    std::unordered_map<uint64_t, uint32_t> dense_of_;  // packed pair -> dense
    ReachLabels labels_;

    // AnswerBatch scratch (flat dense-id storage + the word under assembly).
    std::vector<uint32_t> batch_nodes_;
    std::vector<WordQuestion> batch_word_;

    size_t rebuild_count_ = 0;
    uint64_t last_used_ = 0;  // LRU tick, maintained by the owner
  };

  /// `max_entries` caps the LRU cache (clamped to >= 1); `shortcut_budget`
  /// caps the transitive shortcut edges each entry's ReachLabels adds to its
  /// product condensation per rebuild (0 disables; answers are identical
  /// either way, only traversal depth changes).
  BoundaryRpqIndex(size_t num_fragments, size_t max_entries,
                   size_t shortcut_budget = 0);

  /// Marks the start of a batch: entries returned by GetEntry from here on
  /// are pinned against eviction until the next BeginBatch (an over-cap
  /// batch may temporarily exceed max_entries rather than invalidate a
  /// pointer the caller still holds; the overshoot is trimmed back here
  /// once nothing is pinned).
  void BeginBatch();

  /// The entry for `sig`, created on a miss — possibly evicting the least
  /// recently used unpinned entry when the cache is at capacity. The
  /// returned reference stays valid until the next BeginBatch.
  Entry& GetEntry(const AutomatonSignature& sig);

  /// Marks one fragment's rows stale in every cached entry.
  void InvalidateFragment(SiteId site);
  void InvalidateAll();

  // --- observability -------------------------------------------------------
  size_t num_entries() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }
  /// Ensure-rebuilds across live AND evicted entries.
  size_t total_rebuilds() const;
  /// Rough resident size across live entries, bytes.
  size_t ByteSize() const;

 private:
  /// Evicts the least recently used entry whose last use predates the
  /// current batch; returns false when every entry is pinned.
  bool EvictLru();

  size_t num_fragments_;
  size_t max_entries_;
  size_t shortcut_budget_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;  // by key
  uint64_t tick_ = 0;
  uint64_t batch_start_tick_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t retired_rebuilds_ = 0;  // rebuild counts of evicted entries
  // Debug guard for the single-dispatcher discipline (src/util/sync.h).
  ExclusiveUseToken exclusive_use_;
};

}  // namespace pereach

#endif  // PEREACH_INDEX_BOUNDARY_RPQ_INDEX_H_
