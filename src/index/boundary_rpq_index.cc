#include "src/index/boundary_rpq_index.h"

#include <algorithm>
#include <array>

#include "src/regex/query_automaton.h"
#include "src/util/logging.h"

namespace pereach {

// ---------------------------------------------------------------------------
// ProductBoundaryRows wire format

size_t ProductBoundaryRows::TableSize() const {
  size_t n = 0;
  for (uint64_t m : oset_masks) {
    n += static_cast<size_t>(__builtin_popcountll(m));
  }
  return n;
}

void ProductBoundaryRows::Serialize(Encoder* enc) const {
  PEREACH_CHECK_EQ(oset_globals.size(), oset_masks.size());
  enc->PutVarint(oset_globals.size());
  for (size_t j = 0; j < oset_globals.size(); ++j) {
    enc->PutVarint(oset_globals[j]);
    enc->PutU64(oset_masks[j]);
  }
  PEREACH_CHECK_EQ(rep_pairs.size(), rows.size());
  enc->PutVarint(rep_pairs.size());
  for (size_t g = 0; g < rep_pairs.size(); ++g) {
    enc->PutVarint(rep_pairs[g].node);
    enc->PutU8(rep_pairs[g].state);
    enc->PutVarint(rows[g].size());
    // Ascending table indices: delta-encode, same trick as BoundaryRows.
    uint32_t prev = 0;
    for (uint32_t idx : rows[g]) {
      enc->PutVarint(idx - prev);
      prev = idx;
    }
  }
  enc->PutVarint(aliases.size());
  for (const auto& [member, group] : aliases) {
    enc->PutVarint(member.node);
    enc->PutU8(member.state);
    enc->PutVarint(group);
  }
}

ProductBoundaryRows ProductBoundaryRows::Deserialize(Decoder* dec) {
  ProductBoundaryRows out;
  const size_t num_oset = dec->GetCount(9);
  out.oset_globals.resize(num_oset);
  out.oset_masks.resize(num_oset);
  for (size_t j = 0; j < num_oset; ++j) {
    out.oset_globals[j] = static_cast<NodeId>(dec->GetVarint());
    out.oset_masks[j] = dec->GetU64();
    // u_s never appears in a compatibility mask (it has no in-transitions
    // and matches no label); a set bit 0 marks a corrupt payload.
    PEREACH_CHECK_EQ(out.oset_masks[j] & 1, uint64_t{0});
  }
  const size_t table_size = out.TableSize();
  const size_t groups = dec->GetCount(2);
  out.rep_pairs.resize(groups);
  out.rows.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    out.rep_pairs[g].node = static_cast<NodeId>(dec->GetVarint());
    out.rep_pairs[g].state = dec->GetU8();
    PEREACH_CHECK_LT(out.rep_pairs[g].state, QueryAutomaton::kMaxStates);
    out.rows[g].resize(dec->GetCount());
    uint32_t prev = 0;
    for (uint32_t& idx : out.rows[g]) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      idx = prev;
      PEREACH_CHECK_LT(idx, table_size);
    }
  }
  out.aliases.resize(dec->GetCount(3));
  for (auto& [member, group] : out.aliases) {
    member.node = static_cast<NodeId>(dec->GetVarint());
    member.state = dec->GetU8();
    PEREACH_CHECK_LT(member.state, QueryAutomaton::kMaxStates);
    group = static_cast<uint32_t>(dec->GetVarint());
    PEREACH_CHECK_LT(group, groups);
  }
  return out;
}

// ---------------------------------------------------------------------------
// BoundaryRpqIndex::Entry

BoundaryRpqIndex::Entry::Entry(size_t num_fragments, size_t shortcut_budget)
    : num_fragments_(num_fragments),
      shortcut_budget_(shortcut_budget),
      fragment_rows_(num_fragments),
      site_table_(num_fragments),
      have_rows_(num_fragments, false),
      dirty_(num_fragments, true) {}

void BoundaryRpqIndex::Entry::SetFragmentRows(SiteId site,
                                              ProductBoundaryRows rows) {
  PEREACH_CHECK_LT(site, num_fragments_);
  // Flatten the (oset entry, state) pairs in ascending (entry, state) order;
  // rows and sweep frames reference pairs by index into this table.
  std::vector<ProductPair>& table = site_table_[site];
  table.clear();
  table.reserve(rows.TableSize());
  for (size_t j = 0; j < rows.oset_globals.size(); ++j) {
    uint64_t mask = rows.oset_masks[j];
    while (mask != 0) {
      const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(mask));
      mask &= mask - 1;
      table.push_back({rows.oset_globals[j], static_cast<uint8_t>(q)});
    }
  }
  fragment_rows_[site] = std::move(rows);
  have_rows_[site] = true;
  dirty_[site] = false;
  stale_ = true;
}

std::vector<SiteId> BoundaryRpqIndex::Entry::DirtySites() const {
  std::vector<SiteId> out;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    if (dirty_[s]) out.push_back(s);
  }
  return out;
}

void BoundaryRpqIndex::Entry::Ensure() {
  if (!stale_) return;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    PEREACH_CHECK(have_rows_[s] && !dirty_[s] &&
                  "Ensure with dirty fragments: refresh their rows first");
  }

  // Intern the product-pair universe. Every interior frontier pair (w, q')
  // is an in-pair of w's owner fragment (same label, hence same compatible
  // states), so reps and alias members cover those; the accept pairs
  // (w, u_t) exist only in the tables, so the whole table is interned too —
  // that also keeps every possible sweep exit resolvable.
  dense_of_.clear();
  auto intern = [this](ProductPair p) {
    return dense_of_
        .emplace(PackPair(p), static_cast<uint32_t>(dense_of_.size()))
        .first->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const ProductBoundaryRows& fr = fragment_rows_[s];
    const std::vector<ProductPair>& table = site_table_[s];
    for (const ProductPair& p : table) intern(p);
    for (size_t g = 0; g < fr.rep_pairs.size(); ++g) {
      const uint32_t rep = intern(fr.rep_pairs[g]);
      for (uint32_t idx : fr.rows[g]) {
        edges.emplace_back(rep, intern(table[idx]));
      }
    }
    // An alias member reaches its group representative inside the
    // fragment's product (same product SCC), so a single member -> rep edge
    // stands in for the member's whole row.
    for (const auto& [member, group] : fr.aliases) {
      edges.emplace_back(intern(member), intern(fr.rep_pairs[group]));
    }
  }

  labels_.Build(dense_of_.size(), edges, shortcut_budget_);
  stale_ = false;
  ++rebuild_count_;
}

ProductPair BoundaryRpqIndex::Entry::TablePair(SiteId site,
                                               uint32_t index) const {
  PEREACH_CHECK_LT(site, num_fragments_);
  PEREACH_CHECK(have_rows_[site] && !dirty_[site]);
  PEREACH_CHECK_LT(index, site_table_[site].size());
  return site_table_[site][index];
}

size_t BoundaryRpqIndex::Entry::TableSize(SiteId site) const {
  PEREACH_CHECK_LT(site, num_fragments_);
  PEREACH_CHECK(have_rows_[site] && !dirty_[site]);
  return site_table_[site].size();
}

bool BoundaryRpqIndex::Entry::HasPair(ProductPair p) const {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  return dense_of_.find(PackPair(p)) != dense_of_.end();
}

uint32_t BoundaryRpqIndex::Entry::DenseOf(ProductPair p) const {
  const auto it = dense_of_.find(PackPair(p));
  PEREACH_CHECK(it != dense_of_.end() &&
                "pair is not a product boundary node of this epoch");
  return it->second;
}

bool BoundaryRpqIndex::Entry::ReachesAny(
    std::span<const ProductPair> sources,
    std::span<const ProductPair> targets) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  if (sources.empty() || targets.empty()) return false;
  std::vector<uint32_t> src;
  src.reserve(sources.size());
  for (ProductPair p : sources) src.push_back(DenseOf(p));
  std::vector<uint32_t> tgt;
  tgt.reserve(targets.size());
  for (ProductPair p : targets) tgt.push_back(DenseOf(p));
  return labels_.ReachesAny(src, tgt);
}

void BoundaryRpqIndex::Entry::AnswerBatch(
    std::span<const RpqQuestion> questions, std::vector<uint8_t>* answers) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  answers->assign(questions.size(), 0);
  for (size_t base = 0; base < questions.size();
       base += BitsetSweep::kLanes) {
    const size_t lanes =
        std::min(BitsetSweep::kLanes, questions.size() - base);
    size_t total = 0;
    for (size_t li = 0; li < lanes; ++li) {
      total += questions[base + li].sources.size() +
               questions[base + li].targets.size();
    }
    // Flat dense-id storage; spans built only after the fill so growth
    // can't invalidate them.
    batch_nodes_.clear();
    batch_nodes_.reserve(total);
    batch_word_.clear();
    batch_word_.resize(lanes);
    // Per-lane {s_off, s_len, t_off, t_len} into the flat dense-id array.
    std::vector<std::array<size_t, 4>> extents(lanes);
    for (size_t li = 0; li < lanes; ++li) {
      const RpqQuestion& q = questions[base + li];
      extents[li][0] = batch_nodes_.size();
      for (const ProductPair p : q.sources) batch_nodes_.push_back(DenseOf(p));
      extents[li][1] = q.sources.size();
      extents[li][2] = batch_nodes_.size();
      for (const ProductPair p : q.targets) batch_nodes_.push_back(DenseOf(p));
      extents[li][3] = q.targets.size();
    }
    for (size_t li = 0; li < lanes; ++li) {
      batch_word_[li].sources =
          std::span<const uint32_t>(batch_nodes_).subspan(extents[li][0],
                                                          extents[li][1]);
      batch_word_[li].targets =
          std::span<const uint32_t>(batch_nodes_).subspan(extents[li][2],
                                                          extents[li][3]);
    }
    const uint64_t word = labels_.ReachesAnyWord(batch_word_);
    for (size_t li = 0; li < lanes; ++li) {
      (*answers)[base + li] = static_cast<uint8_t>((word >> li) & 1);
    }
  }
}

size_t BoundaryRpqIndex::Entry::ByteSize() const {
  size_t bytes = dense_of_.size() * (sizeof(uint64_t) + sizeof(uint32_t)) +
                 labels_.ByteSize();
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const ProductBoundaryRows& fr = fragment_rows_[s];
    bytes += fr.oset_globals.size() * (sizeof(NodeId) + sizeof(uint64_t)) +
             fr.rep_pairs.size() * sizeof(ProductPair) +
             fr.aliases.size() * sizeof(fr.aliases[0]) +
             site_table_[s].size() * sizeof(ProductPair);
    for (const auto& row : fr.rows) bytes += row.size() * sizeof(uint32_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// BoundaryRpqIndex (the signature-keyed LRU of entries)

BoundaryRpqIndex::BoundaryRpqIndex(size_t num_fragments, size_t max_entries,
                                   size_t shortcut_budget)
    : num_fragments_(num_fragments),
      max_entries_(std::max<size_t>(1, max_entries)),
      shortcut_budget_(shortcut_budget) {}

void BoundaryRpqIndex::BeginBatch() {
  ScopedExclusiveUse guard(&exclusive_use_);
  batch_start_tick_ = tick_ + 1;
  // A previous over-cap batch pinned more entries than the cap; nothing is
  // pinned anymore, so trim the overshoot by recency.
  while (entries_.size() > max_entries_ && EvictLru()) {
  }
}

bool BoundaryRpqIndex::EvictLru() {
  auto victim = entries_.end();
  for (auto e = entries_.begin(); e != entries_.end(); ++e) {
    if (e->second->last_used_ >= batch_start_tick_) continue;  // pinned
    if (victim == entries_.end() ||
        e->second->last_used_ < victim->second->last_used_) {
      victim = e;
    }
  }
  if (victim == entries_.end()) return false;
  retired_rebuilds_ += victim->second->rebuild_count_;
  entries_.erase(victim);
  ++evictions_;
  return true;
}

BoundaryRpqIndex::Entry& BoundaryRpqIndex::GetEntry(
    const AutomatonSignature& sig) {
  ScopedExclusiveUse guard(&exclusive_use_);
  const auto it = entries_.find(sig.key);
  if (it != entries_.end()) {
    ++hits_;
    it->second->last_used_ = ++tick_;
    return *it->second;
  }
  ++misses_;
  if (entries_.size() >= max_entries_) {
    // Evict the least recently used entry not pinned by the in-flight batch.
    // A batch with more distinct automata than the cap grows past it for
    // the batch's duration instead of invalidating a live reference.
    EvictLru();
  }
  auto entry =
      std::unique_ptr<Entry>(new Entry(num_fragments_, shortcut_budget_));
  entry->last_used_ = ++tick_;
  return *entries_.emplace(sig.key, std::move(entry)).first->second;
}

void BoundaryRpqIndex::InvalidateFragment(SiteId site) {
  ScopedExclusiveUse guard(&exclusive_use_);
  PEREACH_CHECK_LT(site, num_fragments_);
  for (auto& [key, entry] : entries_) {
    entry->dirty_[site] = true;
    entry->stale_ = true;
  }
}

void BoundaryRpqIndex::InvalidateAll() {
  ScopedExclusiveUse guard(&exclusive_use_);
  for (auto& [key, entry] : entries_) {
    entry->dirty_.assign(num_fragments_, true);
    entry->stale_ = true;
  }
}

size_t BoundaryRpqIndex::total_rebuilds() const {
  size_t total = retired_rebuilds_;
  for (const auto& [key, entry] : entries_) total += entry->rebuild_count_;
  return total;
}

size_t BoundaryRpqIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    bytes += key.size() + entry->ByteSize();
  }
  return bytes;
}

}  // namespace pereach
