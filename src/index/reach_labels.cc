#include "src/index/reach_labels.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/graph/algorithms.h"
#include "src/graph/graph.h"

namespace pereach {

void ReachLabels::Build(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  // 1. Condense. The graph is built as a real Graph so the SCC /
  // condensation machinery (and its reverse-topological id guarantee) is
  // shared with the fragment-local path.
  GraphBuilder builder;
  builder.AddNodes(num_nodes);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  const Condensation cond = Condense(std::move(builder).Build());
  num_comps_ = cond.scc.num_components;
  component_of_ = cond.scc.component_of;
  adj_offsets_ = cond.offsets;
  adj_targets_ = cond.targets;

  // 2. Labels over the condensation. Two deterministic DFS labelings
  // (natural and reversed child order); the first one's DFS-tree intervals
  // [tin, tout) double as the certain-positive check.
  labels_.assign(num_comps_, CompLabel{});
  std::vector<uint8_t> visited(num_comps_);
  // Frame: (component, next child position). Child positions count from the
  // labeling's iteration end so both orders share one loop.
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (size_t labeling = 0; labeling < kNumLabelings; ++labeling) {
    visited.assign(num_comps_, 0);
    uint32_t time = 0;  // shared pre/post counter; only relative order counts
    uint32_t post = 0;
    // Root order: descending ids first pass (sources have high reverse-topo
    // ids), ascending second — more disagreement between the labelings.
    for (size_t r = 0; r < num_comps_; ++r) {
      const uint32_t root = static_cast<uint32_t>(
          labeling == 0 ? num_comps_ - 1 - r : r);
      if (visited[root]) continue;
      visited[root] = 1;
      if (labeling == 0) labels_[root].tin = time++;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [c, child] = stack.back();
        const size_t degree = adj_offsets_[c + 1] - adj_offsets_[c];
        if (child == degree) {
          if (labeling == 0) labels_[c].tout = time++;
          labels_[c].post[labeling] = post++;
          stack.pop_back();
          continue;
        }
        const size_t pos = labeling == 0 ? adj_offsets_[c] + child
                                         : adj_offsets_[c + 1] - 1 - child;
        ++child;
        const uint32_t next = adj_targets_[pos];
        if (visited[next]) continue;
        visited[next] = 1;
        if (labeling == 0) labels_[next].tin = time++;
        stack.emplace_back(next, 0);
      }
    }
    // low = min post rank over all descendants: component ids are reverse
    // topological (every edge goes to a smaller id), so an ascending scan
    // sees every successor's final low.
    for (uint32_t c = 0; c < num_comps_; ++c) {
      uint32_t low = labels_[c].post[labeling];
      for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
        low = std::min(low, labels_[adj_targets_[e]].low[labeling]);
      }
      labels_[c].low[labeling] = low;
    }
  }

  visit_mark_.assign(num_comps_, 0);
  visit_version_ = 0;
}

bool ReachLabels::LabelContains(uint32_t cu, uint32_t cv) const {
  const CompLabel& lu = labels_[cu];
  const uint32_t pv0 = labels_[cv].post[0];
  const uint32_t pv1 = labels_[cv].post[1];
  return lu.low[0] <= pv0 && pv0 <= lu.post[0] &&  //
         lu.low[1] <= pv1 && pv1 <= lu.post[1];
}

int ReachLabels::LabelVerdict(uint32_t cu, uint32_t cv) const {
  if (cu == cv) return 1;
  // Reverse-topological ids: a descendant always has a smaller id.
  if (cv > cu) return 0;
  // Certain positive: cv sits inside cu's DFS-tree subtree (tree edges are
  // condensation edges, so the tree path is a real path).
  const CompLabel& lu = labels_[cu];
  const uint32_t tv = labels_[cv].tin;
  if (lu.tin <= tv && tv < lu.tout) return 1;
  // Certain negative: interval containment is necessary for reachability.
  if (!LabelContains(cu, cv)) return 0;
  return -1;
}

bool ReachLabels::ReachesAny(std::span<const uint32_t> sources,
                             std::span<const uint32_t> targets) {
  if (sources.empty() || targets.empty()) return false;

  // Dedupe both sides at the component level; within one side, members of
  // the same component are interchangeable.
  std::vector<uint32_t> src;
  src.reserve(sources.size());
  for (uint32_t u : sources) src.push_back(comp_of(u));
  std::sort(src.begin(), src.end());
  src.erase(std::unique(src.begin(), src.end()), src.end());

  std::vector<uint32_t> tgt;
  tgt.reserve(targets.size());
  for (uint32_t v : targets) tgt.push_back(comp_of(v));
  std::sort(tgt.begin(), tgt.end());
  tgt.erase(std::unique(tgt.begin(), tgt.end()), tgt.end());

  // Label pass: decide every (source, target) component pair by labels
  // alone; collect the sources with an undecided pair for the fallback.
  std::vector<uint32_t> undecided;
  for (uint32_t cs : src) {
    bool pending = false;
    for (uint32_t ct : tgt) {
      const int verdict = LabelVerdict(cs, ct);
      if (verdict == 1) {
        ++label_hits_;
        return true;
      }
      pending |= verdict < 0;
    }
    if (pending) undecided.push_back(cs);
  }
  if (undecided.empty()) {
    ++label_hits_;
    return false;
  }

  // Fallback: one multi-source DFS over the condensation from the undecided
  // sources, pruned by ids (descendants only have smaller ids) and by the
  // target post-rank window per labeling.
  ++dfs_fallbacks_;
  const uint32_t min_target = tgt.front();
  // Sorted post ranks of the targets, one list per labeling: a node can be
  // pruned when no target rank falls inside its [low, post] interval.
  std::array<std::vector<uint32_t>, kNumLabelings> tgt_post;
  for (size_t l = 0; l < kNumLabelings; ++l) {
    tgt_post[l].reserve(tgt.size());
    for (uint32_t ct : tgt) tgt_post[l].push_back(labels_[ct].post[l]);
    std::sort(tgt_post[l].begin(), tgt_post[l].end());
  }
  const auto may_reach_some_target = [&](uint32_t c) {
    if (c < min_target) return false;
    for (size_t l = 0; l < kNumLabelings; ++l) {
      const auto it = std::lower_bound(tgt_post[l].begin(), tgt_post[l].end(),
                                       labels_[c].low[l]);
      if (it == tgt_post[l].end() || *it > labels_[c].post[l]) return false;
    }
    return true;
  };

  if (++visit_version_ == 0) {  // wrapped: re-zero the marks once
    visit_mark_.assign(num_comps_, 0);
    visit_version_ = 1;
  }
  dfs_stack_.clear();
  for (uint32_t cs : undecided) {
    if (visit_mark_[cs] == visit_version_) continue;
    visit_mark_[cs] = visit_version_;
    dfs_stack_.push_back(cs);
  }
  while (!dfs_stack_.empty()) {
    const uint32_t c = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (std::binary_search(tgt.begin(), tgt.end(), c)) return true;
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      const uint32_t next = adj_targets_[e];
      if (visit_mark_[next] == visit_version_) continue;
      visit_mark_[next] = visit_version_;
      if (may_reach_some_target(next)) dfs_stack_.push_back(next);
    }
  }
  return false;
}

size_t ReachLabels::ByteSize() const {
  return component_of_.size() * sizeof(uint32_t) +
         adj_offsets_.size() * sizeof(size_t) +
         adj_targets_.size() * sizeof(uint32_t) +
         labels_.size() * sizeof(CompLabel);
}

}  // namespace pereach
