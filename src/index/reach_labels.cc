#include "src/index/reach_labels.h"

#include <algorithm>
#include <array>
#include <functional>
#include <unordered_set>
#include <utility>

#include "src/graph/algorithms.h"
#include "src/graph/graph.h"

namespace pereach {

// --- BitsetSweep -----------------------------------------------------------

void BitsetSweep::Resize(size_t num_nodes) {
  mask_.assign(num_nodes, Lanes64{});
  tmask_.assign(num_nodes, Lanes64{});
  pending_.assign(num_nodes, 0);
  dirty_.assign(num_nodes, 0);
  touched_.clear();
  seed_hits_ = 0;
  max_seed_ = 0;
  min_target_ = 0;
  have_seed_ = false;
  have_target_ = false;
  last_depth_ = 0;
}

void BitsetSweep::Touch(uint32_t node) {
  if (!dirty_[node]) {
    dirty_[node] = 1;
    touched_.push_back(node);
  }
}

void BitsetSweep::SeedSources(uint32_t node, uint64_t lanes) {
  PEREACH_CHECK_LT(node, mask_.size());
  Touch(node);
  // Reflexive: the node may already carry these lanes as a target.
  seed_hits_ |= lanes & tmask_[node].word(0);
  mask_[node].set_word(0, mask_[node].word(0) | lanes);
  pending_[node] = 1;
  max_seed_ = have_seed_ ? std::max(max_seed_, node) : node;
  have_seed_ = true;
}

void BitsetSweep::SeedTargets(uint32_t node, uint64_t lanes) {
  PEREACH_CHECK_LT(node, tmask_.size());
  Touch(node);
  seed_hits_ |= lanes & mask_[node].word(0);
  tmask_[node].set_word(0, tmask_[node].word(0) | lanes);
  min_target_ = have_target_ ? std::min(min_target_, node) : node;
  have_target_ = true;
}

uint64_t BitsetSweep::Run(std::span<const size_t> offsets,
                          std::span<const uint32_t> targets,
                          uint64_t undecided) {
  uint64_t result = seed_hits_ & undecided;
  uint64_t remaining = undecided & ~result;
  last_depth_ = 0;
  if (have_seed_ && have_target_ && remaining != 0) {
    // Descending-id scan from the highest seed: every contributor of a node
    // has a higher id, so when `c` comes up its mask is final. Nothing below
    // the lowest target can lie on a path to any target (ids strictly
    // decrease along every edge), hence the min_target_ floor.
    for (uint32_t c = max_seed_ + 1; c-- > min_target_;) {
      if (!pending_[c]) continue;
      const uint64_t m = mask_[c].word(0) & remaining;
      if (m == 0) continue;
      ++last_depth_;
      for (size_t e = offsets[c]; e < offsets[c + 1]; ++e) {
        const uint32_t v = targets[e];
        if (v < min_target_) continue;
        Touch(v);
        // Push-time target check: lanes resolve the moment their frontier
        // lands on a target, so the sweep (and its depth) stops early on
        // all-positive words — this is where shortcut edges pay off.
        const uint64_t hit = m & tmask_[v].word(0);
        if (hit != 0) {
          result |= hit;
          remaining &= ~hit;
          if (remaining == 0) break;
        }
        mask_[v].set_word(0, mask_[v].word(0) | m);
        pending_[v] = 1;
      }
      if (remaining == 0) break;
    }
  }
  // Consume the seeds: O(touched) re-clear readies the next word.
  for (const uint32_t t : touched_) {
    mask_[t].Clear();
    tmask_[t].Clear();
    pending_[t] = 0;
    dirty_[t] = 0;
  }
  touched_.clear();
  seed_hits_ = 0;
  max_seed_ = 0;
  min_target_ = 0;
  have_seed_ = false;
  have_target_ = false;
  return result;
}

// --- ReachLabels -----------------------------------------------------------

void ReachLabels::Build(size_t num_nodes,
                        const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                        size_t shortcut_budget) {
  ScopedExclusiveUse guard(&exclusive_use_);
  // 1. Condense. The graph is built as a real Graph so the SCC /
  // condensation machinery (and its reverse-topological id guarantee) is
  // shared with the fragment-local path.
  GraphBuilder builder;
  builder.AddNodes(num_nodes);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  const Condensation cond = Condense(std::move(builder).Build());
  num_comps_ = cond.scc.num_components;
  component_of_ = cond.scc.component_of;
  adj_offsets_ = cond.offsets;
  adj_targets_ = cond.targets;
  num_base_edges_ = adj_targets_.size();

  // 2. Shortcuts: spend the budget on transitive 2-hop edges before the
  // labels are computed, so labels and lookups see one augmented CSR. Every
  // shortcut is witnessed by an existing path, so the reachability relation
  // (and every answer) is unchanged — only traversal depth shrinks.
  AddShortcuts(shortcut_budget);

  // 3. Labels over the (augmented) condensation. Two deterministic DFS
  // labelings (natural and reversed child order); the first one's DFS-tree
  // intervals [tin, tout) double as the certain-positive check.
  labels_.assign(num_comps_, CompLabel{});
  std::vector<uint8_t> visited(num_comps_);
  // Frame: (component, next child position). Child positions count from the
  // labeling's iteration end so both orders share one loop.
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (size_t labeling = 0; labeling < kNumLabelings; ++labeling) {
    visited.assign(num_comps_, 0);
    uint32_t time = 0;  // shared pre/post counter; only relative order counts
    uint32_t post = 0;
    // Root order: descending ids first pass (sources have high reverse-topo
    // ids), ascending second — more disagreement between the labelings.
    for (size_t r = 0; r < num_comps_; ++r) {
      const uint32_t root = static_cast<uint32_t>(
          labeling == 0 ? num_comps_ - 1 - r : r);
      if (visited[root]) continue;
      visited[root] = 1;
      if (labeling == 0) labels_[root].tin = time++;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [c, child] = stack.back();
        const size_t degree = adj_offsets_[c + 1] - adj_offsets_[c];
        if (child == degree) {
          if (labeling == 0) labels_[c].tout = time++;
          labels_[c].post[labeling] = post++;
          stack.pop_back();
          continue;
        }
        const size_t pos = labeling == 0 ? adj_offsets_[c] + child
                                         : adj_offsets_[c + 1] - 1 - child;
        ++child;
        const uint32_t next = adj_targets_[pos];
        if (visited[next]) continue;
        visited[next] = 1;
        if (labeling == 0) labels_[next].tin = time++;
        stack.emplace_back(next, 0);
      }
    }
    // low = min post rank over all descendants: component ids are reverse
    // topological (every edge — shortcuts included — goes to a smaller id),
    // so an ascending scan sees every successor's final low.
    for (uint32_t c = 0; c < num_comps_; ++c) {
      uint32_t low = labels_[c].post[labeling];
      for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
        low = std::min(low, labels_[adj_targets_[e]].low[labeling]);
      }
      labels_[c].low[labeling] = low;
    }
  }

  visit_mark_.assign(num_comps_, 0);
  visit_version_ = 0;
  sweep_.Resize(num_comps_);
}

void ReachLabels::AddShortcuts(size_t budget) {
  shortcut_count_ = 0;
  if (budget == 0 || num_comps_ < 3 || adj_targets_.empty()) return;

  // Hubs: high (in+1)*(out+1) score first — midpoints that sit on many
  // source->target routes — higher id on ties (more graph below to jump
  // over). Deterministic, so rebuilds of the same condensation add the same
  // shortcut set.
  std::vector<size_t> in_deg(num_comps_, 0);
  std::vector<size_t> out_deg(num_comps_, 0);
  for (uint32_t c = 0; c < num_comps_; ++c) {
    out_deg[c] = adj_offsets_[c + 1] - adj_offsets_[c];
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      ++in_deg[adj_targets_[e]];
    }
  }
  std::vector<uint32_t> hubs(num_comps_);
  for (uint32_t c = 0; c < num_comps_; ++c) hubs[c] = c;
  const auto score = [&](uint32_t c) {
    return (in_deg[c] + 1) * (out_deg[c] + 1);
  };
  std::sort(hubs.begin(), hubs.end(), [&](uint32_t a, uint32_t b) {
    const size_t sa = score(a);
    const size_t sb = score(b);
    return sa != sb ? sa > sb : a > b;
  });
  hubs.resize(std::min<size_t>(num_comps_, std::max<size_t>(4, budget / 8)));

  std::unordered_set<uint64_t> seen;
  seen.reserve(adj_targets_.size() + budget);
  const auto pack = [](uint32_t u, uint32_t v) {
    return (uint64_t{u} << 32) | v;
  };
  for (uint32_t c = 0; c < num_comps_; ++c) {
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      seen.insert(pack(c, adj_targets_[e]));
    }
  }

  // Per round, compose h -> mid -> w into a direct h -> w. Mids include the
  // shortcuts added so far, so a hub's jump distance roughly doubles per
  // round (the hopset-by-squaring idea, budget-truncated). Both caps bound
  // build work on adversarial shapes: `remaining` the edges added, the
  // examine cap the pairs inspected.
  std::vector<std::vector<uint32_t>> extra(num_comps_);
  size_t remaining = budget;
  size_t examined = 0;
  constexpr size_t kMaxRounds = 16;
  constexpr size_t kExamineCap = size_t{1} << 18;
  for (size_t round = 0; round < kMaxRounds && remaining > 0; ++round) {
    bool added_any = false;
    for (const uint32_t h : hubs) {
      // Edges added to h this round are not chased as mids until the next
      // round, or the doubling would degenerate into unbounded chaining.
      const size_t frozen = extra[h].size();
      const auto try_add = [&](uint32_t w) {
        ++examined;
        if (seen.insert(pack(h, w)).second) {
          extra[h].push_back(w);
          ++shortcut_count_;
          --remaining;
          added_any = true;
        }
      };
      const auto for_each_succ = [&](uint32_t m, auto&& fn) {
        for (size_t e = adj_offsets_[m];
             e < adj_offsets_[m + 1] && remaining > 0 && examined < kExamineCap;
             ++e) {
          fn(adj_targets_[e]);
        }
        const std::vector<uint32_t>& ex = extra[m];
        const size_t limit = m == h ? frozen : ex.size();
        for (size_t i = 0;
             i < limit && remaining > 0 && examined < kExamineCap; ++i) {
          fn(ex[i]);
        }
      };
      // w < mid < h along every composed pair, so shortcuts keep the
      // reverse-topological edge invariant the sweep and `low` scan rely on.
      for_each_succ(h, [&](uint32_t mid) { for_each_succ(mid, try_add); });
      if (remaining == 0 || examined >= kExamineCap) break;
    }
    if (!added_any || examined >= kExamineCap) break;
  }
  if (shortcut_count_ == 0) return;

  // Merge the extra lists into a fresh CSR, per-node descending (toward the
  // far end first, where targets resolve).
  std::vector<size_t> offsets(num_comps_ + 1, 0);
  for (uint32_t c = 0; c < num_comps_; ++c) {
    offsets[c + 1] = offsets[c] + (adj_offsets_[c + 1] - adj_offsets_[c]) +
                     extra[c].size();
  }
  std::vector<uint32_t> targets(offsets.back());
  for (uint32_t c = 0; c < num_comps_; ++c) {
    size_t w = offsets[c];
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      targets[w++] = adj_targets_[e];
    }
    for (const uint32_t v : extra[c]) targets[w++] = v;
    std::sort(targets.begin() + static_cast<ptrdiff_t>(offsets[c]),
              targets.begin() + static_cast<ptrdiff_t>(offsets[c + 1]),
              std::greater<uint32_t>());
  }
  adj_offsets_ = std::move(offsets);
  adj_targets_ = std::move(targets);
}

bool ReachLabels::LabelContains(uint32_t cu, uint32_t cv) const {
  const CompLabel& lu = labels_[cu];
  const uint32_t pv0 = labels_[cv].post[0];
  const uint32_t pv1 = labels_[cv].post[1];
  return lu.low[0] <= pv0 && pv0 <= lu.post[0] &&  //
         lu.low[1] <= pv1 && pv1 <= lu.post[1];
}

int ReachLabels::LabelVerdict(uint32_t cu, uint32_t cv) const {
  if (cu == cv) return 1;
  // Reverse-topological ids: a descendant always has a smaller id.
  if (cv > cu) return 0;
  // Certain positive: cv sits inside cu's DFS-tree subtree (tree edges are
  // condensation edges or shortcuts, so the tree path is a real path).
  const CompLabel& lu = labels_[cu];
  const uint32_t tv = labels_[cv].tin;
  if (lu.tin <= tv && tv < lu.tout) return 1;
  // Certain negative: interval containment is necessary for reachability.
  if (!LabelContains(cu, cv)) return 0;
  return -1;
}

void ReachLabels::CollectComponents(std::span<const uint32_t> nodes,
                                    std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(nodes.size());
  for (const uint32_t u : nodes) out->push_back(comp_of(u));
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool ReachLabels::ReachesAny(std::span<const uint32_t> sources,
                             std::span<const uint32_t> targets) {
  if (sources.empty() || targets.empty()) return false;
  ScopedExclusiveUse guard(&exclusive_use_);

  // Dedupe both sides at the component level; within one side, members of
  // the same component are interchangeable.
  std::vector<uint32_t> src;
  CollectComponents(sources, &src);
  std::vector<uint32_t> tgt;
  CollectComponents(targets, &tgt);

  // Label pass: decide every (source, target) component pair by labels
  // alone; collect the sources with an undecided pair for the fallback.
  std::vector<uint32_t> undecided;
  for (uint32_t cs : src) {
    bool pending = false;
    for (uint32_t ct : tgt) {
      const int verdict = LabelVerdict(cs, ct);
      if (verdict == 1) {
        ++label_hits_;
        return true;
      }
      pending |= verdict < 0;
    }
    if (pending) undecided.push_back(cs);
  }
  if (undecided.empty()) {
    ++label_hits_;
    return false;
  }

  // Fallback: one multi-source DFS over the condensation from the undecided
  // sources, pruned by ids (descendants only have smaller ids) and by the
  // target post-rank window per labeling.
  ++dfs_fallbacks_;
  const uint32_t min_target = tgt.front();
  // Sorted post ranks of the targets, one list per labeling: a node can be
  // pruned when no target rank falls inside its [low, post] interval.
  std::array<std::vector<uint32_t>, kNumLabelings> tgt_post;
  for (size_t l = 0; l < kNumLabelings; ++l) {
    tgt_post[l].reserve(tgt.size());
    for (uint32_t ct : tgt) tgt_post[l].push_back(labels_[ct].post[l]);
    std::sort(tgt_post[l].begin(), tgt_post[l].end());
  }
  const auto may_reach_some_target = [&](uint32_t c) {
    if (c < min_target) return false;
    for (size_t l = 0; l < kNumLabelings; ++l) {
      const auto it = std::lower_bound(tgt_post[l].begin(), tgt_post[l].end(),
                                       labels_[c].low[l]);
      if (it == tgt_post[l].end() || *it > labels_[c].post[l]) return false;
    }
    return true;
  };

  if (++visit_version_ == 0) {  // wrapped: re-zero the marks once
    visit_mark_.assign(num_comps_, 0);
    visit_version_ = 1;
  }
  dfs_stack_.clear();
  for (uint32_t cs : undecided) {
    if (visit_mark_[cs] == visit_version_) continue;
    visit_mark_[cs] = visit_version_;
    dfs_stack_.push_back(cs);
  }
  while (!dfs_stack_.empty()) {
    const uint32_t c = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (std::binary_search(tgt.begin(), tgt.end(), c)) return true;
    for (size_t e = adj_offsets_[c]; e < adj_offsets_[c + 1]; ++e) {
      const uint32_t next = adj_targets_[e];
      if (visit_mark_[next] == visit_version_) continue;
      visit_mark_[next] = visit_version_;
      if (may_reach_some_target(next)) dfs_stack_.push_back(next);
    }
  }
  return false;
}

uint64_t ReachLabels::ReachesAnyWord(std::span<const WordQuestion> questions) {
  PEREACH_CHECK_LE(questions.size(), BitsetSweep::kLanes);
  ScopedExclusiveUse guard(&exclusive_use_);
  ++batch_words_;
  uint64_t result = 0;
  uint64_t sweeping = 0;
  for (size_t li = 0; li < questions.size(); ++li) {
    const WordQuestion& q = questions[li];
    // Empty side: false, no counter — exact parity with the scalar path.
    if (q.sources.empty() || q.targets.empty()) continue;
    const uint64_t lane = uint64_t{1} << li;
    CollectComponents(q.sources, &word_src_);
    CollectComponents(q.targets, &word_tgt_);

    // Same label pass as the scalar path: a certain-positive pair or an
    // all-certain-negative table settles the lane without touching the
    // sweep; only sources with an undecided pair get seeded.
    bool positive = false;
    word_pending_.clear();
    for (const uint32_t cs : word_src_) {
      bool pending = false;
      for (const uint32_t ct : word_tgt_) {
        const int verdict = LabelVerdict(cs, ct);
        if (verdict == 1) {
          positive = true;
          break;
        }
        pending |= verdict < 0;
      }
      if (positive) break;
      if (pending) word_pending_.push_back(cs);
    }
    if (positive) {
      ++label_hits_;
      result |= lane;
      continue;
    }
    if (word_pending_.empty()) {
      ++label_hits_;
      continue;
    }
    for (const uint32_t cs : word_pending_) sweep_.SeedSources(cs, lane);
    for (const uint32_t ct : word_tgt_) sweep_.SeedTargets(ct, lane);
    sweeping |= lane;
  }

  if (sweeping != 0) {
    ++sweep_count_;
    sweep_lanes_ += static_cast<size_t>(__builtin_popcountll(sweeping));
    result |= sweep_.Run(adj_offsets_, adj_targets_, sweeping);
    sweep_depth_ += sweep_.last_depth();
  }
  return result;
}

size_t ReachLabels::ByteSize() const {
  return component_of_.size() * sizeof(uint32_t) +
         adj_offsets_.size() * sizeof(size_t) +
         adj_targets_.size() * sizeof(uint32_t) +
         labels_.size() * sizeof(CompLabel);
}

}  // namespace pereach
