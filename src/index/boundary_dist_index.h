#ifndef PEREACH_INDEX_BOUNDARY_DIST_INDEX_H_
#define PEREACH_INDEX_BOUNDARY_DIST_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bes/distance_system.h"
#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// Query-independent WEIGHTED boundary rows of ONE fragment, as shipped to
/// the coordinator by the dist-index refresh round — the min-plus twin of
/// BoundaryRows. A re-encoding of FragmentContext::DistRows with local ids
/// resolved to globals:
///  - `oset_globals` is the fragment's virtual-node table (ascending local
///    order, the same table the reach index ships);
///  - one row per DISTINCT-ROW GROUP of in-nodes: the group representative's
///    global id plus the ascending (oset index, local shortest-path hops)
///    pairs the group reaches locally;
///  - one alias per non-representative member, binding it to the group rep.
///    Unlike the reach index's SCC aliases, a dist alias asserts the member's
///    whole weighted row is IDENTICAL to the rep's (distances differ across
///    an SCC's members, so same-SCC is not sufficient here); the coordinator
///    realizes each shared-row group as a one-way aux "row carrier" node
///    (member -> carrier at weight 0, carrier -> targets), which is exact
///    precisely because the rows coincide — see Ensure() for why a direct
///    member -> rep edge would not be.
struct WeightedBoundaryRows {
  std::vector<NodeId> oset_globals;
  std::vector<NodeId> rep_globals;  // one per group
  // group -> ascending (oset index, local min hops).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> rows;
  // (member global, rep global) for every in-node that is not its group rep.
  std::vector<std::pair<NodeId, NodeId>> aliases;

  void Serialize(Encoder* enc) const;
  static WeightedBoundaryRows Deserialize(Decoder* dec);
};

/// Coordinator-side shortest-path index over the WEIGHTED boundary
/// dependency graph: one node per boundary node of the fragmentation and an
/// edge u -> w of weight d whenever u's fragment can route a local path of d
/// hops from u to its virtual copy of w. The edges are exactly the terms the
/// per-query min-plus BES (DistanceEquationSystem) would assemble from every
/// site's localEvald reply — materialized ONCE from the cached
/// FragmentContext::DistRows instead of re-shipped per query — so a
/// bidirectional Dijkstra over this standing graph, seeded with the s-side
/// exit distances and t-side entry distances of one targeted round, computes
/// the same least fixpoint as the paper's evalDGd.
///
/// Bound semantics: localEvald only emits local segments of <= l hops, so
/// the assembled BES never contains a heavier edge. ShortestPath takes the
/// query bound as `max_edge_weight` and skips heavier standing edges during
/// the search, keeping indexed answers bit-identical to the BES path even
/// for answers that end up above the bound (the distance value is reported
/// either way; `reachable` applies the bound on top).
///
/// Incremental maintenance and thread-safety mirror BoundaryReachIndex: the
/// owner marks fragments dirty on the InvalidateFragment path, re-fetches
/// only the dirty fragments' rows, and Ensure() rebuilds the small CSR pair
/// (forward + reverse) from the per-fragment row cache. No internal locking;
/// the engine's single-dispatcher discipline provides the exclusion.
class BoundaryDistIndex {
 public:
  explicit BoundaryDistIndex(size_t num_fragments);

  /// Installs the weighted boundary rows of one fragment and clears its
  /// dirty bit.
  void SetFragmentRows(SiteId site, WeightedBoundaryRows rows);

  /// Marks one fragment's rows stale (an update structurally touched it).
  void InvalidateFragment(SiteId site);
  void InvalidateAll();

  /// Fragments whose rows must be re-fetched before Ensure() can run.
  std::vector<SiteId> DirtySites() const;
  bool dirty() const { return stale_; }

  /// Rebuilds the forward/reverse CSR from the cached per-fragment rows.
  /// Requires DirtySites() empty. Idempotent when clean.
  void Ensure();

  /// The fragment's virtual-node table, as installed by SetFragmentRows —
  /// dist sweep frames reference it by index.
  const std::vector<NodeId>& oset_globals(SiteId site) const;

  /// One endpoint-side seed of a search: a boundary node plus the
  /// query-dependent distance from s to it (forward side) or from it to t
  /// (backward side), both already <= the query bound by construction.
  struct Seed {
    NodeId node = kInvalidNode;
    uint64_t dist = 0;
  };

  /// min over (u, v) of sources[u].dist + d_B(u -> v) + targets[v].dist,
  /// where d_B is the boundary-graph distance using only edges of weight
  /// <= max_edge_weight; kInfWeight when no such route exists. Bidirectional
  /// Dijkstra: both frontiers expand toward each other and the search stops
  /// once the frontier tops prove the incumbent optimal. Seeds naming nodes
  /// of the current epoch only; CHECK-fails otherwise.
  uint64_t ShortestPath(std::span<const Seed> sources,
                        std::span<const Seed> targets,
                        uint32_t max_edge_weight);

  // --- observability -------------------------------------------------------
  /// Real boundary nodes (aux row carriers excluded).
  size_t num_boundary_nodes() const { return node_of_.size(); }
  size_t num_edges() const { return fwd_targets_.size(); }
  /// Full CSR rebuilds performed (dirty-epoch count).
  size_t rebuild_count() const { return rebuild_count_; }
  /// ShortestPath calls, and total nodes settled across them — the indexed
  /// coordinator work a BES solve would have re-derived per query.
  size_t search_count() const { return search_count_; }
  size_t settled_nodes() const { return settled_nodes_; }

  /// Rough resident size of the rebuilt structure, bytes.
  size_t ByteSize() const;

 private:
  uint32_t DenseOf(NodeId global) const;

  size_t num_fragments_;
  std::vector<WeightedBoundaryRows> fragment_rows_;
  std::vector<bool> have_rows_;
  std::vector<bool> dirty_;
  bool stale_ = true;  // CSR out of date w.r.t. the rows

  // Rebuilt structure (valid while !stale_). Forward CSR answers the s-side
  // frontier, reverse CSR the t-side frontier.
  std::unordered_map<NodeId, uint32_t> node_of_;  // boundary global -> dense
  std::vector<size_t> fwd_offsets_;
  std::vector<uint32_t> fwd_targets_;
  std::vector<uint32_t> fwd_weights_;
  std::vector<size_t> rev_offsets_;
  std::vector<uint32_t> rev_targets_;
  std::vector<uint32_t> rev_weights_;

  // Versioned per-search scratch: a search touches only the nodes it
  // reaches, so the arrays are stamped instead of re-cleared.
  std::vector<uint64_t> dist_[2];      // [0] forward, [1] backward
  std::vector<uint32_t> visit_mark_[2];
  uint32_t visit_version_ = 0;

  size_t rebuild_count_ = 0;
  size_t search_count_ = 0;
  size_t settled_nodes_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_INDEX_BOUNDARY_DIST_INDEX_H_
