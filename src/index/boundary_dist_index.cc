#include "src/index/boundary_dist_index.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"

namespace pereach {

// ---------------------------------------------------------------------------
// WeightedBoundaryRows wire format

void WeightedBoundaryRows::Serialize(Encoder* enc) const {
  enc->PutVarint(oset_globals.size());
  for (NodeId g : oset_globals) enc->PutVarint(g);
  PEREACH_CHECK_EQ(rep_globals.size(), rows.size());
  enc->PutVarint(rep_globals.size());
  for (size_t g = 0; g < rep_globals.size(); ++g) {
    enc->PutVarint(rep_globals[g]);
    enc->PutVarint(rows[g].size());
    // Ascending oset indices: delta-encode the index, varint the hop count
    // (small on real partitions — most boundary hops are short).
    uint32_t prev = 0;
    for (const auto& [idx, hops] : rows[g]) {
      enc->PutVarint(idx - prev);
      enc->PutVarint(hops);
      prev = idx;
    }
  }
  enc->PutVarint(aliases.size());
  for (const auto& [member, rep] : aliases) {
    enc->PutVarint(member);
    enc->PutVarint(rep);
  }
}

WeightedBoundaryRows WeightedBoundaryRows::Deserialize(Decoder* dec) {
  WeightedBoundaryRows out;
  out.oset_globals.resize(dec->GetCount());
  for (NodeId& g : out.oset_globals) g = static_cast<NodeId>(dec->GetVarint());
  const size_t groups = dec->GetCount();
  out.rep_globals.resize(groups);
  out.rows.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    out.rep_globals[g] = static_cast<NodeId>(dec->GetVarint());
    out.rows[g].resize(dec->GetCount(2));
    uint32_t prev = 0;
    for (auto& [idx, hops] : out.rows[g]) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      idx = prev;
      hops = static_cast<uint32_t>(dec->GetVarint());
      PEREACH_CHECK_LT(idx, out.oset_globals.size());
    }
  }
  out.aliases.resize(dec->GetCount(2));
  for (auto& [member, rep] : out.aliases) {
    member = static_cast<NodeId>(dec->GetVarint());
    rep = static_cast<NodeId>(dec->GetVarint());
  }
  return out;
}

// ---------------------------------------------------------------------------
// BoundaryDistIndex

BoundaryDistIndex::BoundaryDistIndex(size_t num_fragments)
    : num_fragments_(num_fragments),
      fragment_rows_(num_fragments),
      have_rows_(num_fragments, false),
      dirty_(num_fragments, true) {}

void BoundaryDistIndex::SetFragmentRows(SiteId site,
                                        WeightedBoundaryRows rows) {
  PEREACH_CHECK_LT(site, num_fragments_);
  fragment_rows_[site] = std::move(rows);
  have_rows_[site] = true;
  dirty_[site] = false;
  stale_ = true;
}

void BoundaryDistIndex::InvalidateFragment(SiteId site) {
  PEREACH_CHECK_LT(site, num_fragments_);
  dirty_[site] = true;
  stale_ = true;
}

void BoundaryDistIndex::InvalidateAll() {
  dirty_.assign(num_fragments_, true);
  stale_ = true;
}

std::vector<SiteId> BoundaryDistIndex::DirtySites() const {
  std::vector<SiteId> out;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    if (dirty_[s]) out.push_back(s);
  }
  return out;
}

const std::vector<NodeId>& BoundaryDistIndex::oset_globals(SiteId site) const {
  PEREACH_CHECK_LT(site, num_fragments_);
  PEREACH_CHECK(have_rows_[site] && !dirty_[site]);
  return fragment_rows_[site].oset_globals;
}

void BoundaryDistIndex::Ensure() {
  if (!stale_) return;
  for (SiteId s = 0; s < num_fragments_; ++s) {
    PEREACH_CHECK(have_rows_[s] && !dirty_[s] &&
                  "Ensure with dirty fragments: refresh their rows first");
  }

  // 1. Intern the boundary-node universe (global id -> dense id). Every
  // virtual node is an in-node of the fragment storing its real copy, so
  // interning reps, alias members and row targets covers the whole V_f.
  node_of_.clear();
  auto intern = [this](NodeId g) {
    return node_of_.emplace(g, static_cast<uint32_t>(node_of_.size()))
        .first->second;
  };
  struct Edge {
    uint32_t from;
    uint32_t to;
    uint32_t weight;
  };
  std::vector<Edge> edges;
  // Shared-row groups get one AUX "row carrier" node: every member (the rep
  // included) takes a 0-weight edge INTO the carrier and the carrier holds
  // the fan-out once. A plain 0-weight member -> rep edge would be unsound:
  // its REVERSE traversal lets a t-side entry seed at the rep leak onto the
  // members, claiming dist(member, t) <= dist(rep, t) — but identical
  // boundary rows say nothing about local distances to an arbitrary t. The
  // carrier is one-way (members -> carrier -> targets), so search states at
  // a member always mean the actual G-node, while "departs via the shared
  // row" lives on the carrier — the aux-variable trick of the DAG equation
  // form, applied to the standing graph. Singleton groups skip the carrier
  // and keep the fan-out on the rep itself.
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const WeightedBoundaryRows& fr = fragment_rows_[s];
    for (const NodeId g : fr.rep_globals) intern(g);
    for (const auto& [member, rep] : fr.aliases) {
      intern(member);
      intern(rep);
    }
    for (const NodeId g : fr.oset_globals) intern(g);
  }
  // Carriers take dense ids after the whole boundary universe.
  uint32_t next_aux = static_cast<uint32_t>(node_of_.size());
  for (SiteId s = 0; s < num_fragments_; ++s) {
    const WeightedBoundaryRows& fr = fragment_rows_[s];
    // Members per group: the rep plus every alias bound to it.
    std::unordered_map<NodeId, uint32_t> group_of_rep;
    std::vector<std::vector<uint32_t>> members(fr.rep_globals.size());
    for (size_t g = 0; g < fr.rep_globals.size(); ++g) {
      group_of_rep.emplace(fr.rep_globals[g], static_cast<uint32_t>(g));
      members[g].push_back(intern(fr.rep_globals[g]));
    }
    for (const auto& [member, rep] : fr.aliases) {
      const auto it = group_of_rep.find(rep);
      PEREACH_CHECK(it != group_of_rep.end() && "alias to an unknown rep");
      members[it->second].push_back(intern(member));
    }
    for (size_t g = 0; g < fr.rep_globals.size(); ++g) {
      const uint32_t carrier =
          members[g].size() == 1 ? members[g][0] : next_aux++;
      if (members[g].size() > 1) {
        for (const uint32_t m : members[g]) {
          edges.push_back({m, carrier, 0});
        }
      }
      for (const auto& [idx, hops] : fr.rows[g]) {
        edges.push_back({carrier, intern(fr.oset_globals[idx]), hops});
      }
    }
  }

  // 2. Forward and reverse CSR by counting sort — the graph is small (the
  // paper's boundary measure |V_f| plus the carriers), the search just
  // needs both directions.
  const size_t n = next_aux;
  fwd_offsets_.assign(n + 1, 0);
  rev_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++fwd_offsets_[e.from + 1];
    ++rev_offsets_[e.to + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    fwd_offsets_[v + 1] += fwd_offsets_[v];
    rev_offsets_[v + 1] += rev_offsets_[v];
  }
  fwd_targets_.resize(edges.size());
  fwd_weights_.resize(edges.size());
  rev_targets_.resize(edges.size());
  rev_weights_.resize(edges.size());
  std::vector<size_t> fcur(fwd_offsets_.begin(), fwd_offsets_.end() - 1);
  std::vector<size_t> rcur(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (const Edge& e : edges) {
    fwd_targets_[fcur[e.from]] = e.to;
    fwd_weights_[fcur[e.from]++] = e.weight;
    rev_targets_[rcur[e.to]] = e.from;
    rev_weights_[rcur[e.to]++] = e.weight;
  }

  for (auto& d : dist_) d.assign(n, kInfWeight);
  for (auto& m : visit_mark_) m.assign(n, 0);
  visit_version_ = 0;
  stale_ = false;
  ++rebuild_count_;
}

uint32_t BoundaryDistIndex::DenseOf(NodeId global) const {
  const auto it = node_of_.find(global);
  PEREACH_CHECK(it != node_of_.end() &&
                "search seed is not a boundary node of this epoch");
  return it->second;
}

uint64_t BoundaryDistIndex::ShortestPath(std::span<const Seed> sources,
                                         std::span<const Seed> targets,
                                         uint32_t max_edge_weight) {
  PEREACH_CHECK(!stale_ && "Ensure() before querying");
  ++search_count_;
  if (sources.empty() || targets.empty()) return kInfWeight;

  if (++visit_version_ == 0) {  // wrapped: re-zero the marks once
    for (auto& m : visit_mark_) m.assign(m.size(), 0);
    visit_version_ = 1;
  }

  using HeapItem = std::pair<uint64_t, uint32_t>;  // (dist, dense node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap[2];
  uint64_t best = kInfWeight;

  const auto relax = [&](int side, uint32_t v, uint64_t d) {
    if (visit_mark_[side][v] != visit_version_) {
      visit_mark_[side][v] = visit_version_;
      dist_[side][v] = kInfWeight;
    }
    if (d >= dist_[side][v]) return;
    dist_[side][v] = d;
    heap[side].emplace(d, v);
    const int other = 1 - side;
    if (visit_mark_[other][v] == visit_version_ &&
        dist_[other][v] != kInfWeight) {
      best = std::min(best, d + dist_[other][v]);
    }
  };
  for (const Seed& s : sources) relax(0, DenseOf(s.node), s.dist);
  for (const Seed& t : targets) relax(1, DenseOf(t.node), t.dist);

  // Both frontiers expand toward each other; an incumbent is optimal once
  // the two frontier tops can no longer combine below it. `best` is updated
  // on every relaxation (not just on settle), which makes that stop rule
  // sound with 0-weight alias edges in the graph.
  while (!heap[0].empty() || !heap[1].empty()) {
    const uint64_t top0 = heap[0].empty() ? kInfWeight : heap[0].top().first;
    const uint64_t top1 = heap[1].empty() ? kInfWeight : heap[1].top().first;
    if (top0 == kInfWeight || top1 == kInfWeight) {
      // One side is exhausted: every remaining candidate costs at least the
      // live side's top, so the incumbent is final once that top passes it.
      if (std::min(top0, top1) >= best) break;
    } else if (top0 + top1 >= best) {
      break;
    }
    const int side = top0 <= top1 ? 0 : 1;
    const auto [d, v] = heap[side].top();
    heap[side].pop();
    if (d > dist_[side][v]) continue;  // stale entry
    ++settled_nodes_;
    const auto& offsets = side == 0 ? fwd_offsets_ : rev_offsets_;
    const auto& tgts = side == 0 ? fwd_targets_ : rev_targets_;
    const auto& weights = side == 0 ? fwd_weights_ : rev_weights_;
    for (size_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      // The per-query bound filter: localEvald never ships a local segment
      // above the bound, so the BES-equivalent graph excludes such edges.
      if (weights[e] > max_edge_weight) continue;
      relax(side, tgts[e], d + weights[e]);
    }
  }
  return best;
}

size_t BoundaryDistIndex::ByteSize() const {
  size_t bytes =
      node_of_.size() * (sizeof(NodeId) + sizeof(uint32_t)) +
      (fwd_offsets_.size() + rev_offsets_.size()) * sizeof(size_t) +
      (fwd_targets_.size() + rev_targets_.size()) * 2 * sizeof(uint32_t);
  for (const WeightedBoundaryRows& fr : fragment_rows_) {
    bytes += fr.oset_globals.size() * sizeof(NodeId) +
             fr.rep_globals.size() * sizeof(NodeId) +
             fr.aliases.size() * sizeof(fr.aliases[0]);
    for (const auto& row : fr.rows) bytes += row.size() * sizeof(row[0]);
  }
  return bytes;
}

}  // namespace pereach
