#ifndef PEREACH_INDEX_REACH_INDEX_H_
#define PEREACH_INDEX_REACH_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/graph/graph.h"
#include "src/util/bitset.h"
#include "src/util/random.h"

namespace pereach {

/// Centralized reachability indexes — the §3 remark: "any indexing
/// techniques (e.g., reachability matrix [31], 2-hop index [5]) ...
/// developed for centralized graph query evaluation can be applied here,
/// which will lead to lower computational cost." These accelerate the
/// `des(v, F_i)` membership tests of localEval (and the centralized
/// baselines); the ablation bench compares them against plain BFS.
class ReachabilityIndex {
 public:
  virtual ~ReachabilityIndex() = default;

  /// True iff s reaches t (reflexive).
  virtual bool Reaches(NodeId s, NodeId t) const = 0;

  /// Index name for bench output.
  virtual std::string name() const = 0;

  /// Approximate index memory in bytes.
  virtual size_t ByteSize() const = 0;
};

/// No precomputation: answers by BFS. The yardstick the others must beat.
std::unique_ptr<ReachabilityIndex> BuildBfsIndex(const Graph& g);

/// Full reachability bit matrix over SCC components ("reachability matrix"
/// of [31]): O(1) queries, O(scc²/8) memory — small graphs only
/// (CHECK-fails above 2^17 components).
std::unique_ptr<ReachabilityIndex> BuildReachMatrix(const Graph& g);

/// GRAIL-style random interval labeling [Yildirim et al., also surveyed in
/// 31]: `num_labelings` random DFS post-order intervals over the
/// condensation give a sound negative filter; positives fall back to a
/// label-pruned DFS. O(k·|V|) memory, exact answers.
std::unique_ptr<ReachabilityIndex> BuildIntervalIndex(const Graph& g,
                                                      size_t num_labelings,
                                                      Rng* rng);

/// Pruned 2-hop labeling (Cohen et al. [5] via the pruned-landmark
/// construction): every component stores sorted in/out hub label sets;
/// a query is one sorted intersection. Exact; label size adapts to the
/// graph's structure.
std::unique_ptr<ReachabilityIndex> BuildTwoHopIndex(const Graph& g);

}  // namespace pereach

#endif  // PEREACH_INDEX_REACH_INDEX_H_
