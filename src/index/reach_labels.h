#ifndef PEREACH_INDEX_REACH_LABELS_H_
#define PEREACH_INDEX_REACH_LABELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/common.h"
#include "src/util/logging.h"

namespace pereach {

/// GRAIL-style reachability labels over the SCC condensation of a small
/// dense-id graph — the shared coordinator core behind the standing boundary
/// indexes (BoundaryReachIndex over boundary NODES, BoundaryRpqIndex over
/// boundary (node, automaton state) PAIRS). Owners intern their domain keys
/// to dense ids and delegate condensation, labeling and lookups here.
///
/// Per component the label keeps the DFS-tree interval [tin, tout) for
/// certain POSITIVES (v inside u's DFS subtree) and kNumLabelings post-order
/// interval labels for certain NEGATIVES (interval containment is necessary
/// for reachability; Seufert et al.: compact labels over a REDUCED graph
/// answer reachability in near-constant time). Lookups neither label decides
/// fall back to a label-pruned DFS over the condensation, so every answer is
/// exact. `label_hits` / `dfs_fallbacks` stay observable.
///
/// Thread-safety: none (ReachesAny mutates versioned scratch). One instance
/// belongs to one index entry; the engine's single-dispatcher discipline
/// provides the exclusion.
class ReachLabels {
 public:
  /// Condenses the edge list over `num_nodes` dense ids and rebuilds the
  /// labels from scratch. May be called repeatedly; each call is a full
  /// rebuild. Edge endpoints must be < num_nodes.
  void Build(size_t num_nodes,
             const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Component of a dense node id (valid after Build).
  uint32_t comp_of(uint32_t node) const {
    PEREACH_CHECK_LT(node, component_of_.size());
    return component_of_[node];
  }

  /// True iff ANY source reaches ANY target (reflexive; duplicate entries
  /// are fine), nodes given by dense id. One label pass over the source x
  /// target component pairs, then at most one multi-source label-pruned DFS.
  bool ReachesAny(std::span<const uint32_t> sources,
                  std::span<const uint32_t> targets);

  // --- observability -------------------------------------------------------
  size_t num_nodes() const { return component_of_.size(); }
  size_t num_components() const { return num_comps_; }
  /// Deduplicated condensation edges.
  size_t num_edges() const { return adj_targets_.size(); }
  /// Lookups decided by labels alone vs lookups that needed the pruned-DFS
  /// fallback for at least one pair.
  size_t label_hits() const { return label_hits_; }
  size_t dfs_fallbacks() const { return dfs_fallbacks_; }

  /// Rough resident size of the rebuilt structure, bytes.
  size_t ByteSize() const;

 private:
  // Two deterministic labelings: natural and reversed child order. Distinct
  // DFS orders disagree on non-tree descendants, so their intersection
  // rejects most unreachable pairs (GRAIL's k-interval argument).
  static constexpr size_t kNumLabelings = 2;

  struct CompLabel {
    // DFS-tree interval: v certainly reachable when tin_[v] in [tin, tout).
    uint32_t tin = 0;
    uint32_t tout = 0;
    // Post-order interval per labeling: [low, post]. Containment of v's
    // interval in u's is necessary for u to reach v.
    uint32_t low[kNumLabelings] = {0, 0};
    uint32_t post[kNumLabelings] = {0, 0};
  };

  /// Label-only verdict for components cu -> cv: 1 = certainly reaches,
  /// 0 = certainly not, -1 = undecided (DFS needed).
  int LabelVerdict(uint32_t cu, uint32_t cv) const;
  bool LabelContains(uint32_t cu, uint32_t cv) const;

  std::vector<uint32_t> component_of_;  // dense node -> component
  size_t num_comps_ = 0;
  // Condensation adjacency, CSR. Component ids are Tarjan reverse
  // topological: every edge goes from a higher id to a lower one.
  std::vector<size_t> adj_offsets_;
  std::vector<uint32_t> adj_targets_;
  std::vector<CompLabel> labels_;

  // Scratch for the DFS fallback, sized num_comps_ and versioned so calls
  // don't re-clear it.
  std::vector<uint32_t> visit_mark_;
  std::vector<uint32_t> dfs_stack_;
  uint32_t visit_version_ = 0;

  size_t label_hits_ = 0;
  size_t dfs_fallbacks_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_INDEX_REACH_LABELS_H_
