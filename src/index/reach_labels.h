#ifndef PEREACH_INDEX_REACH_LABELS_H_
#define PEREACH_INDEX_REACH_LABELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/common.h"
#include "src/util/fixed_bitset.h"
#include "src/util/logging.h"
#include "src/util/sync.h"

namespace pereach {

/// One of up to 64 questions of a batched coordinator word, by dense node
/// id: "does ANY source reach ANY target?" (reflexive; duplicates fine).
/// Empty sources or targets answer false.
struct WordQuestion {
  std::span<const uint32_t> sources;
  std::span<const uint32_t> targets;
};

/// 64-lane multi-source forward mask propagation over a CSR DAG whose node
/// ids are reverse-topological (every edge u -> v has v < u, the invariant
/// our SCC condensations guarantee). Each lane is one independent
/// reachability question; one descending-id sweep answers the whole word:
/// when a node is expanded every contributor (a higher id) has already been
/// expanded, so its lane mask is final and each node is processed at most
/// once — O(nodes-in-range + edges) for 64 questions instead of 64
/// traversals. Target hits are detected at push time, so the sweep exits as
/// soon as every live lane has found a target; shortcut edges (see
/// ReachLabels::Build) land masks on far descendants early and cut the
/// expansion depth of positive lanes.
///
/// Scratch is owned by the engine and cleared via a touched list, so
/// back-to-back runs cost O(touched), not O(num_nodes).
class BitsetSweep {
 public:
  static constexpr size_t kLanes = Lanes64::kNumBits;

  /// Sizes the scratch for graphs of `num_nodes` nodes (all masks clear).
  void Resize(size_t num_nodes);

  /// Seeds the `lanes` whose questions have a source / target at `node`.
  /// Reflexive hits (a node seeded as both source and target of one lane)
  /// are recorded immediately.
  void SeedSources(uint32_t node, uint64_t lanes);
  void SeedTargets(uint32_t node, uint64_t lanes);

  /// Propagates the seeded source masks over the CSR graph and returns the
  /// word of `undecided` lanes with some source reaching some target. Lanes
  /// outside `undecided` are neither propagated nor reported. Consumes the
  /// seeds: the engine is ready for the next word when this returns.
  uint64_t Run(std::span<const size_t> offsets,
               std::span<const uint32_t> targets, uint64_t undecided);

  /// Nodes expanded by the most recent Run — the depth measure shortcut
  /// edges and the early positive exit cut.
  size_t last_depth() const { return last_depth_; }

 private:
  /// Registers `node` in the touched list on first contact of a run.
  void Touch(uint32_t node);

  std::vector<Lanes64> mask_;    // lanes whose sources reach the node
  std::vector<Lanes64> tmask_;   // lanes for which the node is a target
  std::vector<uint8_t> pending_;  // node carries unexpanded source mass
  std::vector<uint8_t> dirty_;     // node is on the touched list
  std::vector<uint32_t> touched_;  // nodes to re-clear after the run
  uint64_t seed_hits_ = 0;  // lanes decided reflexively while seeding
  uint32_t max_seed_ = 0;
  uint32_t min_target_ = 0;
  bool have_seed_ = false;
  bool have_target_ = false;
  size_t last_depth_ = 0;
};

/// GRAIL-style reachability labels over the SCC condensation of a small
/// dense-id graph — the shared coordinator core behind the standing boundary
/// indexes (BoundaryReachIndex over boundary NODES, BoundaryRpqIndex over
/// boundary (node, automaton state) PAIRS). Owners intern their domain keys
/// to dense ids and delegate condensation, labeling and lookups here.
///
/// Per component the label keeps the DFS-tree interval [tin, tout) for
/// certain POSITIVES (v inside u's DFS subtree) and kNumLabelings post-order
/// interval labels for certain NEGATIVES (interval containment is necessary
/// for reachability; Seufert et al.: compact labels over a REDUCED graph
/// answer reachability in near-constant time). Lookups neither label decides
/// fall back to a label-pruned DFS over the condensation (scalar ReachesAny)
/// or enter one shared 64-lane BitsetSweep (batched ReachesAnyWord), so
/// every answer is exact. Build can additionally spend `shortcut_budget`
/// edges on transitive SHORTCUTS through sampled high-degree midpoints
/// (Jambulapati–Liu–Sidford: shortcut edges cut reachability depth): each
/// added edge u -> w is witnessed by an existing 2-edge path, so the
/// reachability relation — and hence every answer — is unchanged while
/// fallback DFS and sweep expansions reach targets in far fewer hops.
/// `label_hits` / `dfs_fallbacks` / `batch_words` / `sweep_count` /
/// `sweep_depth` / `shortcut_count` stay observable.
///
/// Thread-safety: none — lookups mutate versioned scratch, so a single
/// instance must never be shared across concurrent dispatchers. Each owning
/// index embeds its own instance (its own scratch); the engine-per-
/// dispatcher discipline provides the exclusion, and a debug-build guard
/// aborts on concurrent Build/lookup entry so a future batch path cannot
/// silently race.
class ReachLabels {
 public:
  ReachLabels() = default;

  /// Condenses the edge list over `num_nodes` dense ids and rebuilds the
  /// labels from scratch; spends up to `shortcut_budget` extra transitive
  /// edges on depth-cutting shortcuts. May be called repeatedly; each call
  /// is a full rebuild. Edge endpoints must be < num_nodes.
  void Build(size_t num_nodes,
             const std::vector<std::pair<uint32_t, uint32_t>>& edges,
             size_t shortcut_budget = 0);

  /// Component of a dense node id (valid after Build).
  uint32_t comp_of(uint32_t node) const {
    PEREACH_CHECK_LT(node, component_of_.size());
    return component_of_[node];
  }

  /// True iff ANY source reaches ANY target (reflexive; duplicate entries
  /// are fine), nodes given by dense id. One label pass over the source x
  /// target component pairs, then at most one multi-source label-pruned DFS.
  bool ReachesAny(std::span<const uint32_t> sources,
                  std::span<const uint32_t> targets);

  /// Answers up to 64 questions in one word: bit i of the result is exactly
  /// ReachesAny(questions[i]). Per lane, the same label pass as the scalar
  /// path decides certain positives/negatives; every lane the labels leave
  /// undecided is seeded into ONE shared BitsetSweep, so a word costs one
  /// propagation pass instead of up to 64 pruned DFSes.
  uint64_t ReachesAnyWord(std::span<const WordQuestion> questions);

  // --- observability -------------------------------------------------------
  size_t num_nodes() const { return component_of_.size(); }
  size_t num_components() const { return num_comps_; }
  /// Deduplicated condensation edges (shortcuts not included).
  size_t num_edges() const { return num_base_edges_; }
  /// Transitive shortcut edges added by the last Build.
  size_t shortcut_count() const { return shortcut_count_; }
  /// Lookups (scalar calls, or word lanes) decided by labels alone vs
  /// scalar lookups that needed the pruned-DFS fallback.
  size_t label_hits() const { return label_hits_; }
  size_t dfs_fallbacks() const { return dfs_fallbacks_; }
  /// ReachesAnyWord calls, words that needed a sweep, lanes answered by
  /// sweeps, and cumulative sweep expansions (the depth measure).
  size_t batch_words() const { return batch_words_; }
  size_t sweep_count() const { return sweep_count_; }
  size_t sweep_lanes() const { return sweep_lanes_; }
  size_t sweep_depth() const { return sweep_depth_; }

  /// Rough resident size of the rebuilt structure, bytes.
  size_t ByteSize() const;

 private:
  // Two deterministic labelings: natural and reversed child order. Distinct
  // DFS orders disagree on non-tree descendants, so their intersection
  // rejects most unreachable pairs (GRAIL's k-interval argument).
  static constexpr size_t kNumLabelings = 2;

  struct CompLabel {
    // DFS-tree interval: v certainly reachable when tin_[v] in [tin, tout).
    uint32_t tin = 0;
    uint32_t tout = 0;
    // Post-order interval per labeling: [low, post]. Containment of v's
    // interval in u's is necessary for u to reach v.
    uint32_t low[kNumLabelings] = {0, 0};
    uint32_t post[kNumLabelings] = {0, 0};
  };

  /// Label-only verdict for components cu -> cv: 1 = certainly reaches,
  /// 0 = certainly not, -1 = undecided (DFS needed).
  int LabelVerdict(uint32_t cu, uint32_t cv) const;
  bool LabelContains(uint32_t cu, uint32_t cv) const;

  /// Spends up to `budget` transitive 2-hop edges through sampled
  /// high-degree midpoints, rebuilding the CSR in place. Repeated rounds
  /// compose previously added shortcuts, so hub jump distances double.
  void AddShortcuts(size_t budget);

  /// Dedupes `nodes` to sorted component ids in `out`.
  void CollectComponents(std::span<const uint32_t> nodes,
                         std::vector<uint32_t>* out) const;

  std::vector<uint32_t> component_of_;  // dense node -> component
  size_t num_comps_ = 0;
  // Condensation adjacency, CSR, shortcut edges included. Component ids are
  // Tarjan reverse topological: every edge goes from a higher id to a lower
  // one (shortcuts preserve this — they point at descendants).
  std::vector<size_t> adj_offsets_;
  std::vector<uint32_t> adj_targets_;
  size_t num_base_edges_ = 0;
  size_t shortcut_count_ = 0;
  std::vector<CompLabel> labels_;

  // Scratch for the DFS fallback, sized num_comps_ and versioned so calls
  // don't re-clear it.
  std::vector<uint32_t> visit_mark_;
  std::vector<uint32_t> dfs_stack_;
  uint32_t visit_version_ = 0;

  // Scratch for the batched word path: per-lane component dedup plus the
  // shared 64-lane sweep engine. Per instance, like every other scratch —
  // that is what makes one-index-per-dispatcher race-free.
  std::vector<uint32_t> word_src_;
  std::vector<uint32_t> word_tgt_;
  std::vector<uint32_t> word_pending_;
  BitsetSweep sweep_;

  size_t label_hits_ = 0;
  size_t dfs_fallbacks_ = 0;
  size_t batch_words_ = 0;
  size_t sweep_count_ = 0;
  size_t sweep_lanes_ = 0;
  size_t sweep_depth_ = 0;

  // Debug reentrancy guard (src/util/sync.h): Build and every lookup hold
  // a ScopedExclusiveUse for their whole duration, so two dispatchers
  // sharing one instance abort loudly instead of corrupting the versioned
  // scratch. Compiles away under NDEBUG.
  ExclusiveUseToken exclusive_use_;

  PEREACH_DISALLOW_COPY_AND_ASSIGN(ReachLabels);
};

}  // namespace pereach

#endif  // PEREACH_INDEX_REACH_LABELS_H_
