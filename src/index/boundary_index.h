#ifndef PEREACH_INDEX_BOUNDARY_INDEX_H_
#define PEREACH_INDEX_BOUNDARY_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// Query-independent boundary rows of ONE fragment, as shipped to the
/// coordinator by the boundary-index refresh round. This is a re-encoding of
/// FragmentContext::ReachRows with local ids resolved to globals:
///  - `oset_globals` is the fragment's virtual-node table (ascending local
///    order — the same shared table batched reach replies use);
///  - one row per in-node SCC GROUP: the group representative's global id
///    plus the ascending oset indices the group reaches locally;
///  - one alias per non-representative in-node, binding it to its group's
///    representative (same local SCC, hence boundary-equivalent).
struct BoundaryRows {
  std::vector<NodeId> oset_globals;
  std::vector<NodeId> rep_globals;          // one per group
  std::vector<std::vector<uint32_t>> rows;  // group -> ascending oset indices
  // (member global, rep global) for every in-node that is not its group rep.
  std::vector<std::pair<NodeId, NodeId>> aliases;

  void Serialize(Encoder* enc) const;
  static BoundaryRows Deserialize(Decoder* dec);
};

/// Coordinator-side reachability index over the BOUNDARY DEPENDENCY GRAPH:
/// one node per boundary node of the fragmentation (global ids of in-nodes,
/// equivalently of virtual nodes — every virtual node is an in-node of the
/// fragment that stores its real copy), and an edge u -> w whenever u's
/// fragment can route a path from u to its virtual copy of w locally. The
/// edges are exactly the cached query-independent closure rows every
/// fragment already holds (FragmentContext::ReachRows), so the graph is
/// typically orders of magnitude smaller than G (|V_f| nodes, the paper's
/// boundary measure), and a path in it composes fragment-local path
/// segments of G — reachability between boundary nodes in this graph is
/// reachability in G.
///
/// On top of the graph the index keeps its SCC condensation plus a
/// GRAIL-style label (Seufert et al.: compact labels over a REDUCED graph
/// answer reachability in near-constant time): per component, the DFS-tree
/// interval [tin, tout) for certain POSITIVES (v inside u's DFS subtree) and
/// `kNumLabelings` post-order interval labels for certain NEGATIVES (label
/// containment is necessary for reachability). Lookups that neither label
/// decides fall back to a label-pruned DFS over the condensation, so every
/// answer is exact.
///
/// Incremental maintenance mirrors the FragmentContext cache: the owner
/// marks fragments dirty on the IncrementalReachIndex::SetUpdateListener /
/// EpochGate invalidation path, re-fetches ONLY the dirty fragments' rows
/// (the per-fragment sweeps are the expensive part), and Ensure() rebuilds
/// the small condensation + labels from the per-fragment row cache.
///
/// Thread-safety: none. One index belongs to one engine; the engine's
/// single-dispatcher discipline (and the server's exclusive writer gate
/// around invalidation) provides the exclusion.
class BoundaryReachIndex {
 public:
  explicit BoundaryReachIndex(size_t num_fragments);

  /// Installs the boundary rows of one fragment and clears its dirty bit.
  void SetFragmentRows(SiteId site, BoundaryRows rows);

  /// Marks one fragment's rows stale (an update structurally touched it).
  void InvalidateFragment(SiteId site);
  void InvalidateAll();

  /// Fragments whose rows must be re-fetched before Ensure() can run.
  std::vector<SiteId> DirtySites() const;
  bool dirty() const { return stale_; }

  /// Rebuilds the boundary graph, condensation and labels from the cached
  /// per-fragment rows. Requires DirtySites() empty. Idempotent when clean.
  void Ensure();

  /// The fragment's virtual-node table, as installed by SetFragmentRows —
  /// reach frames reference it by index, exactly like batched BES replies.
  const std::vector<NodeId>& oset_globals(SiteId site) const;

  /// True iff boundary node u reaches boundary node v (reflexive). Both must
  /// be boundary nodes of the current epoch; CHECK-fails otherwise.
  bool Reaches(NodeId u, NodeId v);

  /// True iff ANY source reaches ANY target (reflexive; duplicate entries
  /// are fine). One label pass over the source x target component pairs,
  /// then at most one multi-source label-pruned DFS.
  bool ReachesAny(std::span<const NodeId> sources,
                  std::span<const NodeId> targets);

  // --- observability -------------------------------------------------------
  size_t num_boundary_nodes() const { return comp_of_.size(); }
  size_t num_components() const { return num_comps_; }
  size_t num_edges() const { return adj_targets_.size(); }
  /// Full condensation + label rebuilds performed (dirty-epoch count).
  size_t rebuild_count() const { return rebuild_count_; }
  /// Lookups (Reaches / ReachesAny calls) decided by labels alone vs
  /// lookups that needed the pruned-DFS fallback for at least one pair.
  size_t label_hits() const { return label_hits_; }
  size_t dfs_fallbacks() const { return dfs_fallbacks_; }

  /// Rough resident size of the rebuilt structure, bytes.
  size_t ByteSize() const;

 private:
  // Two deterministic labelings: natural and reversed child order. Distinct
  // DFS orders disagree on non-tree descendants, so their intersection
  // rejects most unreachable pairs (GRAIL's k-interval argument).
  static constexpr size_t kNumLabelings = 2;

  struct CompLabel {
    // DFS-tree interval: v certainly reachable when tin_[v] in [tin, tout).
    uint32_t tin = 0;
    uint32_t tout = 0;
    // Post-order interval per labeling: [low, post]. Containment of v's
    // interval in u's is necessary for u to reach v.
    uint32_t low[kNumLabelings] = {0, 0};
    uint32_t post[kNumLabelings] = {0, 0};
  };

  uint32_t CompOf(NodeId global) const;
  /// Label-only verdict for components cu -> cv: 1 = certainly reaches,
  /// 0 = certainly not, -1 = undecided (DFS needed).
  int LabelVerdict(uint32_t cu, uint32_t cv) const;
  bool LabelContains(uint32_t cu, uint32_t cv) const;

  size_t num_fragments_;
  std::vector<BoundaryRows> fragment_rows_;
  std::vector<bool> have_rows_;
  std::vector<bool> dirty_;
  bool stale_ = true;  // condensation/labels out of date w.r.t. the rows

  // Rebuilt structure (valid while !stale_).
  std::unordered_map<NodeId, uint32_t> comp_of_;  // boundary global -> comp
  size_t num_comps_ = 0;
  // Condensation adjacency, CSR. Component ids are Tarjan reverse
  // topological: every edge goes from a higher id to a lower one.
  std::vector<size_t> adj_offsets_;
  std::vector<uint32_t> adj_targets_;
  std::vector<CompLabel> labels_;

  // Scratch for the DFS fallback, sized num_comps_ and versioned so calls
  // don't re-clear it.
  std::vector<uint32_t> visit_mark_;
  std::vector<uint32_t> dfs_stack_;
  uint32_t visit_version_ = 0;

  size_t rebuild_count_ = 0;
  size_t label_hits_ = 0;
  size_t dfs_fallbacks_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_INDEX_BOUNDARY_INDEX_H_
