#ifndef PEREACH_INDEX_BOUNDARY_INDEX_H_
#define PEREACH_INDEX_BOUNDARY_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/index/reach_labels.h"
#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// Query-independent boundary rows of ONE fragment, as shipped to the
/// coordinator by the boundary-index refresh round. This is a re-encoding of
/// FragmentContext::ReachRows with local ids resolved to globals:
///  - `oset_globals` is the fragment's virtual-node table (ascending local
///    order — the same shared table batched reach replies use);
///  - one row per in-node SCC GROUP: the group representative's global id
///    plus the ascending oset indices the group reaches locally;
///  - one alias per non-representative in-node, binding it to its group's
///    representative (same local SCC, hence boundary-equivalent).
struct BoundaryRows {
  std::vector<NodeId> oset_globals;
  std::vector<NodeId> rep_globals;          // one per group
  std::vector<std::vector<uint32_t>> rows;  // group -> ascending oset indices
  // (member global, rep global) for every in-node that is not its group rep.
  std::vector<std::pair<NodeId, NodeId>> aliases;

  void Serialize(Encoder* enc) const;
  static BoundaryRows Deserialize(Decoder* dec);
};

/// Coordinator-side reachability index over the BOUNDARY DEPENDENCY GRAPH:
/// one node per boundary node of the fragmentation (global ids of in-nodes,
/// equivalently of virtual nodes — every virtual node is an in-node of the
/// fragment that stores its real copy), and an edge u -> w whenever u's
/// fragment can route a path from u to its virtual copy of w locally. The
/// edges are exactly the cached query-independent closure rows every
/// fragment already holds (FragmentContext::ReachRows), so the graph is
/// typically orders of magnitude smaller than G (|V_f| nodes, the paper's
/// boundary measure), and a path in it composes fragment-local path
/// segments of G — reachability between boundary nodes in this graph is
/// reachability in G.
///
/// On top of the graph the index keeps its SCC condensation plus GRAIL-style
/// labels (ReachLabels, the coordinator core shared with the product
/// boundary graph of BoundaryRpqIndex): certain positives from DFS-tree
/// intervals, certain negatives from post-order interval containment, and a
/// label-pruned DFS fallback for the rest — every answer is exact.
///
/// Incremental maintenance mirrors the FragmentContext cache: the owner
/// marks fragments dirty on the IncrementalReachIndex::SetUpdateListener /
/// EpochGate invalidation path, re-fetches ONLY the dirty fragments' rows
/// (the per-fragment sweeps are the expensive part), and Ensure() rebuilds
/// the small condensation + labels from the per-fragment row cache.
///
/// Thread-safety: none. One index belongs to one engine; the engine's
/// single-dispatcher discipline (and the server's exclusive writer gate
/// around invalidation) provides the exclusion.
class BoundaryReachIndex {
 public:
  /// One coordinator reach question of a batch: does ANY source boundary
  /// node reach ANY target boundary node? Spans must stay alive through
  /// AnswerBatch; empty sides answer false.
  struct ReachQuestion {
    std::span<const NodeId> sources;
    std::span<const NodeId> targets;
  };

  /// `shortcut_budget` caps the transitive shortcut edges ReachLabels adds
  /// to the boundary condensation at each rebuild (0 disables; answers are
  /// identical either way, only traversal depth changes).
  explicit BoundaryReachIndex(size_t num_fragments,
                              size_t shortcut_budget = 0);

  /// Installs the boundary rows of one fragment and clears its dirty bit.
  void SetFragmentRows(SiteId site, BoundaryRows rows);

  /// Marks one fragment's rows stale (an update structurally touched it).
  void InvalidateFragment(SiteId site);
  void InvalidateAll();

  /// Fragments whose rows must be re-fetched before Ensure() can run.
  std::vector<SiteId> DirtySites() const;
  bool dirty() const { return stale_; }

  /// Rebuilds the boundary graph, condensation and labels from the cached
  /// per-fragment rows. Requires DirtySites() empty. Idempotent when clean.
  void Ensure();

  /// The fragment's virtual-node table, as installed by SetFragmentRows —
  /// reach frames reference it by index, exactly like batched BES replies.
  const std::vector<NodeId>& oset_globals(SiteId site) const;

  /// True iff boundary node u reaches boundary node v (reflexive). Both must
  /// be boundary nodes of the current epoch; CHECK-fails otherwise.
  bool Reaches(NodeId u, NodeId v);

  /// True iff ANY source reaches ANY target (reflexive; duplicate entries
  /// are fine). One label pass over the source x target component pairs,
  /// then at most one multi-source label-pruned DFS.
  bool ReachesAny(std::span<const NodeId> sources,
                  std::span<const NodeId> targets);

  /// Answers a whole batch, `(*answers)[i] = ReachesAny(questions[i])`,
  /// 64 questions per bit-parallel word (ReachLabels::ReachesAnyWord): label
  /// pre-filtering per lane, then ONE shared sweep per word instead of a
  /// DFS fallback per question. Resizes `answers`.
  void AnswerBatch(std::span<const ReachQuestion> questions,
                   std::vector<uint8_t>* answers);

  // --- observability -------------------------------------------------------
  size_t num_boundary_nodes() const { return dense_of_.size(); }
  size_t num_components() const { return labels_.num_components(); }
  size_t num_edges() const { return labels_.num_edges(); }
  /// Full condensation + label rebuilds performed (dirty-epoch count).
  size_t rebuild_count() const { return rebuild_count_; }
  /// Lookups (Reaches / ReachesAny calls) decided by labels alone vs
  /// lookups that needed the pruned-DFS fallback for at least one pair.
  size_t label_hits() const { return labels_.label_hits(); }
  size_t dfs_fallbacks() const { return labels_.dfs_fallbacks(); }
  /// Batch-path counters (see ReachLabels): words answered, words that
  /// needed a sweep, lanes answered by sweeps, cumulative sweep expansions,
  /// and shortcut edges added by the last rebuild.
  size_t batch_words() const { return labels_.batch_words(); }
  size_t sweep_count() const { return labels_.sweep_count(); }
  size_t sweep_lanes() const { return labels_.sweep_lanes(); }
  size_t sweep_depth() const { return labels_.sweep_depth(); }
  size_t shortcut_count() const { return labels_.shortcut_count(); }

  /// Rough resident size of the rebuilt structure, bytes.
  size_t ByteSize() const;

 private:
  /// Dense id of a boundary-node global id; CHECK-fails for non-boundary
  /// nodes (a query endpoint outside the current epoch's universe).
  uint32_t DenseOf(NodeId global) const;

  size_t num_fragments_;
  size_t shortcut_budget_;
  std::vector<BoundaryRows> fragment_rows_;
  std::vector<bool> have_rows_;
  std::vector<bool> dirty_;
  bool stale_ = true;  // condensation/labels out of date w.r.t. the rows

  // Rebuilt structure (valid while !stale_): the boundary-node universe and
  // the shared condensation + GRAIL labels over it.
  std::unordered_map<NodeId, uint32_t> dense_of_;  // boundary global -> dense
  ReachLabels labels_;

  // AnswerBatch scratch (flat dense-id storage + the word under assembly),
  // reused across calls so the batch path allocates nothing steady-state.
  std::vector<uint32_t> batch_nodes_;
  std::vector<WordQuestion> batch_word_;

  size_t rebuild_count_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_INDEX_BOUNDARY_INDEX_H_
