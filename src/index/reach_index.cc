#include "src/index/reach_index.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace pereach {

namespace {

/// Shared base: every index works on the SCC condensation (reachability is
/// invariant within a component), keeping per-node state small.
class CondensedIndex : public ReachabilityIndex {
 public:
  explicit CondensedIndex(const Graph& g) : cond_(Condense(g)) {}

  bool Reaches(NodeId s, NodeId t) const final {
    const uint32_t cs = cond_.scc.component_of[s];
    const uint32_t ct = cond_.scc.component_of[t];
    if (cs == ct) return true;
    // Condensation edges go from larger to smaller component ids, so a
    // larger target id is unreachable outright.
    if (ct > cs) return false;
    return CompReaches(cs, ct);
  }

 protected:
  /// Component-level reachability; cs != ct and ct < cs.
  virtual bool CompReaches(uint32_t cs, uint32_t ct) const = 0;

  size_t num_components() const { return cond_.scc.num_components; }

  std::span<const uint32_t> CompSuccessors(uint32_t c) const {
    return {cond_.targets.data() + cond_.offsets[c],
            cond_.offsets[c + 1] - cond_.offsets[c]};
  }

  const Condensation cond_;
};

// ---------------------------------------------------------------------------
// Plain BFS (no precomputation)
// ---------------------------------------------------------------------------

class BfsIndex final : public CondensedIndex {
 public:
  explicit BfsIndex(const Graph& g) : CondensedIndex(g) {}

  std::string name() const override { return "bfs"; }
  size_t ByteSize() const override {
    return cond_.targets.size() * sizeof(uint32_t);
  }

 protected:
  bool CompReaches(uint32_t cs, uint32_t ct) const override {
    std::vector<bool> seen(num_components(), false);
    std::deque<uint32_t> queue{cs};
    seen[cs] = true;
    while (!queue.empty()) {
      const uint32_t c = queue.front();
      queue.pop_front();
      for (uint32_t succ : CompSuccessors(c)) {
        if (succ == ct) return true;
        if (succ > ct && !seen[succ]) {  // ids below ct cannot come back up
          seen[succ] = true;
          queue.push_back(succ);
        }
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Reachability matrix
// ---------------------------------------------------------------------------

class MatrixIndex final : public CondensedIndex {
 public:
  explicit MatrixIndex(const Graph& g) : CondensedIndex(g) {
    const size_t k = num_components();
    PEREACH_CHECK_LE(k, size_t{1} << 17);  // 2 GiB of bits at the limit
    rows_.assign(k, Bitset(k));
    // Ascending component order is reverse topological: successors first.
    for (uint32_t c = 0; c < k; ++c) {
      rows_[c].Set(c);
      for (uint32_t succ : CompSuccessors(c)) rows_[c].UnionWith(rows_[succ]);
    }
  }

  std::string name() const override { return "matrix"; }
  size_t ByteSize() const override {
    const size_t k = num_components();
    return k * ((k + 7) / 8);
  }

 protected:
  bool CompReaches(uint32_t cs, uint32_t ct) const override {
    return rows_[cs].Test(ct);
  }

 private:
  std::vector<Bitset> rows_;
};

// ---------------------------------------------------------------------------
// GRAIL-style interval labeling
// ---------------------------------------------------------------------------

class IntervalIndex final : public CondensedIndex {
 public:
  IntervalIndex(const Graph& g, size_t num_labelings, Rng* rng)
      : CondensedIndex(g) {
    const size_t k = num_components();
    labels_.resize(num_labelings);
    std::vector<uint32_t> order(k);
    // Roots in the condensation are the components without incoming edges;
    // iterate all components descending (sources have large ids) and start
    // a DFS wherever still unvisited, with shuffled child order per round.
    for (Labeling& lab : labels_) {
      lab.low.assign(k, 0);
      lab.post.assign(k, 0);
      std::iota(order.begin(), order.end(), 0);
      rng->Shuffle(&order);
      uint32_t clock = 0;
      std::vector<bool> visited(k, false);
      for (uint32_t c = static_cast<uint32_t>(k); c-- > 0;) {
        if (!visited[c]) Dfs(c, &lab, &visited, &clock, rng);
      }
    }
  }

  std::string name() const override { return "interval"; }
  size_t ByteSize() const override {
    return labels_.size() * num_components() * 2 * sizeof(uint32_t);
  }

 protected:
  bool CompReaches(uint32_t cs, uint32_t ct) const override {
    if (!Contains(cs, ct)) return false;
    // Labels are a necessary condition only; confirm with pruned DFS.
    std::vector<bool> seen(num_components(), false);
    return PrunedDfs(cs, ct, &seen);
  }

 private:
  struct Labeling {
    std::vector<uint32_t> low;   // min post-order in the DFS subtree
    std::vector<uint32_t> post;  // post-order rank
  };

  // Iterative randomized DFS assigning [low, post] intervals.
  void Dfs(uint32_t root, Labeling* lab, std::vector<bool>* visited,
           uint32_t* clock, Rng* rng) const {
    struct Frame {
      uint32_t comp;
      std::vector<uint32_t> children;
      size_t next = 0;
      uint32_t low;
    };
    std::vector<Frame> stack;
    const auto push = [&](uint32_t c) {
      (*visited)[c] = true;
      Frame f;
      f.comp = c;
      auto succ = CompSuccessors(c);
      f.children.assign(succ.begin(), succ.end());
      rng->Shuffle(&f.children);
      f.low = std::numeric_limits<uint32_t>::max();
      stack.push_back(std::move(f));
    };
    push(root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.children.size()) {
        const uint32_t child = f.children[f.next++];
        if (!(*visited)[child]) {
          push(child);
        } else {
          f.low = std::min(f.low, lab->low[child]);
        }
      } else {
        const uint32_t rank = (*clock)++;
        lab->post[f.comp] = rank;
        lab->low[f.comp] = std::min(f.low, rank);
        const uint32_t low = lab->low[f.comp];
        stack.pop_back();
        if (!stack.empty()) {
          stack.back().low = std::min(stack.back().low, low);
        }
      }
    }
  }

  /// Necessary condition: in every labeling, t's interval nests in s's.
  bool Contains(uint32_t cs, uint32_t ct) const {
    for (const Labeling& lab : labels_) {
      if (lab.post[ct] > lab.post[cs] || lab.low[ct] < lab.low[cs]) {
        return false;
      }
    }
    return true;
  }

  bool PrunedDfs(uint32_t c, uint32_t ct, std::vector<bool>* seen) const {
    (*seen)[c] = true;
    for (uint32_t succ : CompSuccessors(c)) {
      if (succ == ct) return true;
      if ((*seen)[succ] || !Contains(succ, ct)) continue;
      if (PrunedDfs(succ, ct, seen)) return true;
    }
    return false;
  }

  std::vector<Labeling> labels_;
};

// ---------------------------------------------------------------------------
// Pruned 2-hop labeling
// ---------------------------------------------------------------------------

class TwoHopIndex final : public CondensedIndex {
 public:
  explicit TwoHopIndex(const Graph& g) : CondensedIndex(g) {
    const size_t k = num_components();
    out_labels_.resize(k);
    in_labels_.resize(k);

    // Hub order: descending condensation degree (in + out), the classic
    // betweenness proxy of pruned landmark labeling. Ties break *randomly*
    // (deterministic seed): on regular graphs like long paths, an id-ordered
    // tie-break degenerates to O(n) labels per node, while a random order
    // gives the expected O(log n) of treap-style covers.
    std::vector<uint32_t> degree(k, 0);
    for (uint32_t c = 0; c < k; ++c) {
      for (uint32_t succ : CompSuccessors(c)) {
        ++degree[c];
        ++degree[succ];
      }
    }
    std::vector<uint32_t> hubs(k);
    std::iota(hubs.begin(), hubs.end(), 0);
    Rng tie_break(0x2b2b2b2b);
    tie_break.Shuffle(&hubs);
    std::stable_sort(hubs.begin(), hubs.end(),
                     [&degree](uint32_t a, uint32_t b) {
                       return degree[a] > degree[b];
                     });
    rank_.assign(k, 0);
    for (uint32_t r = 0; r < k; ++r) rank_[hubs[r]] = r;

    // Reverse condensation adjacency for the backward sweeps.
    std::vector<std::vector<uint32_t>> preds(k);
    for (uint32_t c = 0; c < k; ++c) {
      for (uint32_t succ : CompSuccessors(c)) preds[succ].push_back(c);
    }

    std::vector<bool> seen(k, false);
    std::deque<uint32_t> queue;
    for (uint32_t r = 0; r < k; ++r) {
      const uint32_t hub = hubs[r];
      // Forward pruned BFS: hub reaches u  =>  r joins Lin(u).
      Sweep(hub, r, /*forward=*/true, preds, &seen, &queue);
      // Backward pruned BFS: u reaches hub  =>  r joins Lout(u).
      Sweep(hub, r, /*forward=*/false, preds, &seen, &queue);
    }
  }

  std::string name() const override { return "2hop"; }
  size_t ByteSize() const override {
    size_t entries = 0;
    for (const auto& l : out_labels_) entries += l.size();
    for (const auto& l : in_labels_) entries += l.size();
    return entries * sizeof(uint32_t);
  }

 protected:
  bool CompReaches(uint32_t cs, uint32_t ct) const override {
    return Covered(cs, ct);
  }

 private:
  /// True if some hub h has cs -> h -> ct per the labels (including the
  /// cases h == cs or h == ct).
  bool Covered(uint32_t cs, uint32_t ct) const {
    const std::vector<uint32_t>& out = out_labels_[cs];
    const std::vector<uint32_t>& in = in_labels_[ct];
    size_t i = 0, j = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] == in[j]) return true;
      (out[i] < in[j]) ? ++i : ++j;
    }
    return false;
  }

  void Sweep(uint32_t hub, uint32_t hub_rank, bool forward,
             const std::vector<std::vector<uint32_t>>& preds,
             std::vector<bool>* seen, std::deque<uint32_t>* queue) {
    queue->clear();
    queue->push_back(hub);
    std::vector<uint32_t> touched{hub};
    (*seen)[hub] = true;
    while (!queue->empty()) {
      const uint32_t c = queue->front();
      queue->pop_front();
      // Pruning: skip if (hub, c) is already covered by earlier hubs. The
      // hub itself must still receive its own label.
      const bool already =
          c != hub && (forward ? Covered(hub, c) : Covered(c, hub));
      if (already) continue;
      if (forward) {
        in_labels_[c].push_back(hub_rank);
      } else {
        out_labels_[c].push_back(hub_rank);
      }
      if (forward) {
        for (uint32_t succ : CompSuccessors(c)) {
          if (!(*seen)[succ]) {
            (*seen)[succ] = true;
            touched.push_back(succ);
            queue->push_back(succ);
          }
        }
      } else {
        for (uint32_t pred : preds[c]) {
          if (!(*seen)[pred]) {
            (*seen)[pred] = true;
            touched.push_back(pred);
            queue->push_back(pred);
          }
        }
      }
    }
    for (uint32_t c : touched) (*seen)[c] = false;
  }

  std::vector<uint32_t> rank_;
  std::vector<std::vector<uint32_t>> out_labels_;  // sorted hub ranks
  std::vector<std::vector<uint32_t>> in_labels_;
};

}  // namespace

std::unique_ptr<ReachabilityIndex> BuildBfsIndex(const Graph& g) {
  return std::make_unique<BfsIndex>(g);
}

std::unique_ptr<ReachabilityIndex> BuildReachMatrix(const Graph& g) {
  return std::make_unique<MatrixIndex>(g);
}

std::unique_ptr<ReachabilityIndex> BuildIntervalIndex(const Graph& g,
                                                      size_t num_labelings,
                                                      Rng* rng) {
  PEREACH_CHECK_GE(num_labelings, 1u);
  return std::make_unique<IntervalIndex>(g, num_labelings, rng);
}

std::unique_ptr<ReachabilityIndex> BuildTwoHopIndex(const Graph& g) {
  return std::make_unique<TwoHopIndex>(g);
}

}  // namespace pereach
