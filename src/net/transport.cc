#include "src/net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <thread>

#include "src/engine/fragment_context.h"
#include "src/engine/site_runtime.h"
#include "src/util/serialization.h"
#include "src/util/sync.h"
#include "src/util/timer.h"

namespace pereach {

uint32_t WireCrc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

/// Waits until `fd` is ready for `events`. `timeout_ms` <= 0 blocks
/// indefinitely. Readiness with POLLERR/POLLHUP set is reported as ready —
/// the following read/write surfaces the precise error.
Status PollFd(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (r > 0) return Status::OK();
    if (r == 0) return Status::Internal("transport: peer deadline expired");
    if (errno != EINTR) {
      return Status::Internal(std::string("transport: poll: ") +
                              std::strerror(errno));
    }
  }
}

Status WriteFull(int fd, const uint8_t* data, size_t size, int timeout_ms) {
  size_t off = 0;
  while (off < size) {
    Status s = PollFd(fd, POLLOUT, timeout_ms);
    if (!s.ok()) return s;
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal(std::string("transport: send: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(int fd, uint8_t* data, size_t size, int timeout_ms) {
  size_t off = 0;
  while (off < size) {
    Status s = PollFd(fd, POLLIN, timeout_ms);
    if (!s.ok()) return s;
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n == 0) return Status::Internal("transport: connection closed by peer");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal(std::string("transport: recv: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteWireMessage(int fd, const std::vector<uint8_t>& body,
                        int timeout_ms) {
  Encoder framed;
  framed.PutVarint(body.size());
  framed.PutRaw(body);
  framed.PutU32(WireCrc32(body.data(), body.size()));
  return WriteFull(fd, framed.buffer().data(), framed.buffer().size(),
                   timeout_ms);
}

Status ReadWireMessage(int fd, int timeout_ms, size_t max_frame_bytes,
                       std::vector<uint8_t>* body) {
  // The length varint arrives byte by byte; everything after it is read in
  // one bounded gulp. The declared length is capped BEFORE the payload
  // buffer is sized, so a corrupt or hostile peer cannot drive a huge
  // allocation.
  uint64_t len = 0;
  int shift = 0;
  for (;;) {
    uint8_t byte = 0;
    Status s = ReadFull(fd, &byte, 1, timeout_ms);
    if (!s.ok()) return s;
    len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) {
      return Status::Corruption("transport: overlong frame length");
    }
  }
  if (len > max_frame_bytes) {
    return Status::Corruption("transport: frame exceeds max_frame_bytes");
  }
  body->assign(static_cast<size_t>(len), 0);
  if (len > 0) {
    Status s = ReadFull(fd, body->data(), body->size(), timeout_ms);
    if (!s.ok()) return s;
  }
  uint8_t crc_bytes[4];
  Status s = ReadFull(fd, crc_bytes, sizeof(crc_bytes), timeout_ms);
  if (!s.ok()) return s;
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
  if (crc != WireCrc32(body->data(), body->size())) {
    return Status::Corruption("transport: frame checksum mismatch");
  }
  return Status::OK();
}

namespace {

/// Parses a worker reply envelope: u8 ok; ok=1 -> double compute_ms, varint
/// payload length (must equal the remaining bytes), payload; ok=0 -> error
/// string, surfaced as Internal (the worker stayed alive and framed — only
/// this round failed).
Status ParseReply(const std::vector<uint8_t>& body,
                  std::vector<uint8_t>* payload, double* compute_ms) {
  Decoder dec(body, Decoder::OnError::kStatus);
  const uint8_t ok = dec.GetU8();
  if (!dec.ok()) return dec.status();
  if (ok == 0) {
    std::string message = dec.GetString();
    if (!dec.ok()) return dec.status();
    return Status::Internal("transport: worker reported: " + message);
  }
  if (ok != 1) return Status::Corruption("transport: bad reply status byte");
  *compute_ms = dec.GetDouble();
  const uint64_t n = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  if (n != dec.remaining()) {
    return Status::Corruption("transport: reply payload length mismatch");
  }
  payload->assign(body.begin() + static_cast<ptrdiff_t>(dec.position()),
                  body.end());
  return Status::OK();
}

std::vector<uint8_t> SerializeFragment(const Fragment& f) {
  Encoder enc;
  f.Serialize(&enc);
  return enc.TakeBuffer();
}

// --- kSim -------------------------------------------------------------------

/// The seed behavior, verbatim: every listed site runs the engine's closure
/// over the coordinator-resident fragment on the pool, with a per-site
/// stopwatch feeding the modeled clock.
class SimTransport : public Transport {
 public:
  SimTransport(const Fragmentation* fragmentation, ThreadPool* pool)
      : fragmentation_(fragmentation), pool_(pool) {}

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& /*spec*/,
                 const SiteFn& sim_fn,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    pool_->ParallelFor(k, [&](size_t i) {
      const Fragment& frag = fragmentation_->fragment(sites[i]);
      StopWatch watch;
      (*replies)[i] = sim_fn(frag);
      compute_ms[i] = watch.ElapsedMs();
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    return Status::OK();
  }

 private:
  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
};

// --- kShm -------------------------------------------------------------------

/// Single-box sharding: each site owns a deserialized COPY of its fragment
/// plus its own FragmentContext, and every round goes through the same
/// RoundSpec encode/decode the socket backend ships — full wire coverage,
/// no processes.
class ShmTransport : public Transport {
 public:
  ShmTransport(const Fragmentation* fragmentation, ThreadPool* pool)
      : fragmentation_(fragmentation), pool_(pool) {
    RebuildRuntimes();
  }

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& spec,
                 const SiteFn& /*sim_fn*/,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    std::vector<Status> statuses(k, Status::OK());
    pool_->ParallelFor(k, [&](size_t i) {
      WorkerRuntime& rt = *runtimes_[sites[i]];
      MutexLock lock(&rt.io_mu);
      StopWatch watch;
      Result<std::vector<uint8_t>> r = RunSiteRound(
          rt.fragment, &rt.ctx, spec.kind, spec.aux, spec.broadcast);
      compute_ms[i] = watch.ElapsedMs();
      if (r.ok()) {
        (*replies)[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status SyncFragments() override {
    RebuildRuntimes();
    return Status::OK();
  }

 private:
  struct WorkerRuntime {
    explicit WorkerRuntime(Fragment f) : fragment(std::move(f)) {}
    Fragment fragment;
    FragmentContext ctx;
    /// Serializes rounds on one site: overlapping per-class dispatcher
    /// batches must not race on the site's standing context.
    Mutex io_mu{LockRank::kTransportConn};
  };

  /// Round-trips every fragment through its wire format — the copies are
  /// exactly what a remote worker would hold.
  void RebuildRuntimes() {
    runtimes_.clear();
    for (SiteId s = 0; s < fragmentation_->num_fragments(); ++s) {
      const std::vector<uint8_t> bytes =
          SerializeFragment(fragmentation_->fragment(s));
      Decoder dec(bytes);
      runtimes_.push_back(
          std::make_unique<WorkerRuntime>(Fragment::Deserialize(&dec)));
    }
  }

  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
  std::vector<std::unique_ptr<WorkerRuntime>> runtimes_;
};

// --- kSocket ----------------------------------------------------------------

std::string DefaultWorkerBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "pereach_worker";
  buf[n] = '\0';
  const std::string self(buf);
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "pereach_worker";
  return self.substr(0, slash + 1) + "pereach_worker";
}

Status ConnectEndpoint(const std::string& endpoint, int timeout_ms,
                       int* out_fd) {
  int fd = -1;
  union {
    sockaddr sa;
    sockaddr_un un;
    sockaddr_storage storage;
  } addr;
  std::memset(&addr, 0, sizeof(addr));
  socklen_t addr_len = 0;
  if (endpoint.rfind("unix:", 0) == 0) {
    const std::string path = endpoint.substr(5);
    if (path.empty() || path.size() >= sizeof(addr.un.sun_path)) {
      return Status::InvalidArgument("transport: bad unix endpoint: " +
                                     endpoint);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::Internal(std::string("transport: socket: ") +
                              std::strerror(errno));
    }
    addr.un.sun_family = AF_UNIX;
    std::memcpy(addr.un.sun_path, path.c_str(), path.size() + 1);
    addr_len = static_cast<socklen_t>(sizeof(sa_family_t) + path.size() + 1);
  } else {
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
      return Status::InvalidArgument("transport: bad endpoint: " + endpoint);
    }
    const std::string host = endpoint.substr(0, colon);
    const std::string port = endpoint.substr(colon + 1);
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
      return Status::InvalidArgument("transport: cannot resolve " + endpoint +
                                     ": " + gai_strerror(rc));
    }
    fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                  res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      return Status::Internal(std::string("transport: socket: ") +
                              std::strerror(errno));
    }
    addr_len = static_cast<socklen_t>(res->ai_addrlen);
    std::memcpy(&addr, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
  }

  // Non-blocking connect bounded by the establishment deadline, then back to
  // blocking mode (every later read/write polls before it touches the fd).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, &addr.sa, addr_len) != 0) {
    if (errno != EINPROGRESS) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("transport: connect " + endpoint + ": " + err);
    }
    Status s = PollFd(fd, POLLOUT, timeout_ms);
    if (s.ok()) {
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        s = Status::Internal("transport: connect " + endpoint + ": " +
                             std::strerror(so_error));
      }
    }
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  *out_fd = fd;
  return Status::OK();
}

/// One pereach_worker process (or remote endpoint) per fragment; the
/// coordinator scatters a round to the involved sites and gathers their
/// replies, all framing CRC-gated. Failure semantics (DESIGN.md §13):
/// bounded retry with backoff applies ONLY to connection establishment; a
/// mid-round failure fails the round immediately (the caller rejects the
/// batch), marks the connection dead, and the NEXT round re-establishes —
/// respawning the worker in spawn mode, re-shipping the fragment either way.
class SocketTransport : public Transport {
 public:
  SocketTransport(const TransportOptions& options,
                  const Fragmentation* fragmentation, ThreadPool* pool)
      : options_(options), fragmentation_(fragmentation), pool_(pool) {
    if (options_.worker_binary.empty()) {
      options_.worker_binary = DefaultWorkerBinary();
    }
    for (SiteId s = 0; s < fragmentation_->num_fragments(); ++s) {
      conns_.push_back(std::make_unique<Connection>());
    }
  }

  ~SocketTransport() override { Shutdown(); }

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& spec,
                 const SiteFn& /*sim_fn*/,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    std::vector<Status> statuses(k, Status::OK());
    pool_->ParallelFor(k, [&](size_t i) {
      statuses[i] =
          RoundOnSite(sites[i], spec, &(*replies)[i], &compute_ms[i]);
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status SyncFragments() override {
    // A site that fails to sync is marked dead, which is already safe: its
    // next round re-establishes with a Hello carrying the CURRENT fragment,
    // so a worker can never serve stale state. Sites already dead are
    // skipped for the same reason.
    for (SiteId s = 0; s < conns_.size(); ++s) {
      Connection& c = *conns_[s];
      MutexLock lock(&c.io_mu);
      if (c.dead) continue;
      Encoder body;
      body.PutU8(static_cast<uint8_t>(WireMessage::kSync));
      body.PutRaw(SerializeFragment(fragmentation_->fragment(s)));
      Status st = ExchangeLocked(&c, body.buffer(), nullptr, nullptr);
      if (!st.ok()) CloseLocked(&c);
    }
    return Status::OK();
  }

  void Shutdown() override {
    std::vector<pid_t> pids;
    for (std::unique_ptr<Connection>& cp : conns_) {
      Connection& c = *cp;
      MutexLock lock(&c.io_mu);
      if (c.fd >= 0) {
        Encoder body;
        body.PutU8(static_cast<uint8_t>(WireMessage::kShutdown));
        (void)WriteWireMessage(c.fd, body.buffer(), /*timeout_ms=*/100);
        ::close(c.fd);
        c.fd = -1;
      }
      c.dead = true;
      if (c.pid > 0) {
        pids.push_back(c.pid);
        c.pid = -1;
      }
    }
    // Give workers ~500ms to exit on their own (they see EOF or the
    // shutdown message), then force the stragglers.
    for (int wait_ms = 0; !pids.empty() && wait_ms < 500; wait_ms += 10) {
      for (size_t i = 0; i < pids.size();) {
        if (::waitpid(pids[i], nullptr, WNOHANG) == pids[i]) {
          pids[i] = pids.back();
          pids.pop_back();
        } else {
          ++i;
        }
      }
      if (!pids.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    for (pid_t pid : pids) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  std::vector<int> WorkerPidsForTest() override {
    std::vector<int> pids;
    for (std::unique_ptr<Connection>& cp : conns_) {
      MutexLock lock(&cp->io_mu);
      if (!cp->dead && cp->pid > 0) pids.push_back(cp->pid);
    }
    return pids;
  }

 private:
  struct Connection {
    int fd = -1;
    pid_t pid = -1;
    bool dead = true;
    /// Serializes one round's send+receive exchange on this worker socket
    /// (overlapping per-class dispatcher rounds share the connection).
    Mutex io_mu{LockRank::kTransportConn};
  };

  /// One request/reply exchange on an established connection. Any failure —
  /// EOF, expired read deadline, framing corruption — is final for the
  /// round; the caller decides whether the connection survives (a cleanly
  /// framed worker-reported error keeps it, everything else closes it).
  Status ExchangeLocked(Connection* c, const std::vector<uint8_t>& request,
                        std::vector<uint8_t>* payload, double* compute_ms) {
    Status s = WriteWireMessage(c->fd, request, options_.read_timeout_ms);
    if (!s.ok()) {
      CloseLocked(c);
      return s;
    }
    std::vector<uint8_t> reply;
    s = ReadWireMessage(c->fd, options_.read_timeout_ms,
                        options_.max_frame_bytes, &reply);
    if (!s.ok()) {
      CloseLocked(c);
      return s;
    }
    std::vector<uint8_t> scratch;
    double scratch_ms = 0.0;
    s = ParseReply(reply, payload != nullptr ? payload : &scratch,
                   compute_ms != nullptr ? compute_ms : &scratch_ms);
    if (s.code() == StatusCode::kCorruption) CloseLocked(c);
    return s;
  }

  Status RoundOnSite(SiteId site, const RoundSpec& spec,
                     std::vector<uint8_t>* payload, double* compute_ms) {
    Connection& c = *conns_[site];
    MutexLock lock(&c.io_mu);
    if (c.dead) {
      Status s = EstablishLocked(site, &c);
      if (!s.ok()) return s;
    }
    Encoder body;
    body.PutU8(static_cast<uint8_t>(WireMessage::kRound));
    body.PutU8(static_cast<uint8_t>(spec.kind));
    body.PutU8(spec.aux);
    body.PutRaw(spec.broadcast);
    return ExchangeLocked(&c, body.buffer(), payload, compute_ms);
  }

  /// Establishment with bounded retry + backoff: spawn-or-connect plus the
  /// Hello that ships the site id and the CURRENT fragment. This is the
  /// only retried path — transient spawn/connect races heal here, while a
  /// worker that dies mid-round stays failed for exactly one round.
  Status EstablishLocked(SiteId site, Connection* c) {
    Status last = Status::Internal("transport: connection never attempted");
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0 && options_.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(attempt * options_.retry_backoff_ms));
      }
      CloseLocked(c);
      ReapLocked(c);
      Status s = options_.connect.empty()
                     ? SpawnLocked(site, c)
                     : ConnectEndpoint(options_.connect[site],
                                       options_.connect_timeout_ms, &c->fd);
      if (s.ok()) s = HelloLocked(site, c);
      if (s.ok()) {
        c->dead = false;
        return s;
      }
      CloseLocked(c);
      last = s;
    }
    ReapLocked(c);
    return last;
  }

  Status SpawnLocked(SiteId site, Connection* c) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      return Status::Internal(std::string("transport: socketpair: ") +
                              std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return Status::Internal(std::string("transport: fork: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Child: only its own end survives the exec (everything else in the
      // parent is CLOEXEC, so sibling workers' sockets don't leak in).
      ::fcntl(sv[1], F_SETFD, 0);
      const std::string fd_arg = "--fd=" + std::to_string(sv[1]);
      ::execl(options_.worker_binary.c_str(), "pereach_worker", fd_arg.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(sv[1]);
    c->fd = sv[0];
    c->pid = pid;
    return Status::OK();
  }

  Status HelloLocked(SiteId site, Connection* c) {
    Encoder body;
    body.PutU8(static_cast<uint8_t>(WireMessage::kHello));
    body.PutU8(kWireVersion);
    body.PutVarint(site);
    body.PutRaw(SerializeFragment(fragmentation_->fragment(site)));
    Status s = WriteWireMessage(c->fd, body.buffer(),
                                options_.connect_timeout_ms);
    if (!s.ok()) return s;
    std::vector<uint8_t> reply;
    s = ReadWireMessage(c->fd, options_.read_timeout_ms,
                        options_.max_frame_bytes, &reply);
    if (!s.ok()) return s;
    std::vector<uint8_t> payload;
    double compute_ms = 0.0;
    return ParseReply(reply, &payload, &compute_ms);
  }

  void CloseLocked(Connection* c) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
    c->dead = true;
  }

  /// Collects a spawned worker that is gone or being replaced; SIGKILL is
  /// safe here — the connection is already closed, so no round is talking
  /// to it.
  void ReapLocked(Connection* c) {
    if (c->pid > 0) {
      ::kill(c->pid, SIGKILL);
      ::waitpid(c->pid, nullptr, 0);
      c->pid = -1;
    }
  }

  TransportOptions options_;
  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const Fragmentation* fragmentation,
                                         ThreadPool* pool) {
  switch (options.backend) {
    case TransportBackend::kSim:
      return std::make_unique<SimTransport>(fragmentation, pool);
    case TransportBackend::kShm:
      return std::make_unique<ShmTransport>(fragmentation, pool);
    case TransportBackend::kSocket:
      if (!options.connect.empty()) {
        PEREACH_CHECK_EQ(options.connect.size(),
                         fragmentation->num_fragments());
      }
      return std::make_unique<SocketTransport>(options, fragmentation, pool);
  }
  PEREACH_CHECK(false && "unknown transport backend");
  return nullptr;
}

std::unique_ptr<Transport> MakeSimTransport(const Fragmentation* fragmentation,
                                            ThreadPool* pool) {
  return std::make_unique<SimTransport>(fragmentation, pool);
}

}  // namespace pereach
