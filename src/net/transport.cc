#include "src/net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>

#include "src/engine/fragment_context.h"
#include "src/engine/site_runtime.h"
#include "src/net/supervisor.h"
#include "src/util/serialization.h"
#include "src/util/sync.h"
#include "src/util/timer.h"

namespace pereach {

uint32_t WireCrc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

using WireClock = std::chrono::steady_clock;
using WireTime = WireClock::time_point;

/// Deadline of a whole wire message. `timeout_ms` <= 0 means no deadline
/// (the zero time_point), matching the blocking workers.
WireTime WireDeadline(int timeout_ms) {
  if (timeout_ms <= 0) return WireTime{};
  return WireClock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Milliseconds left until `deadline` for poll(2): -1 for "no deadline",
/// 0 once it passed (poll then reports an immediate timeout).
int RemainingMs(WireTime deadline) {
  if (deadline == WireTime{}) return -1;
  const int64_t left = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - WireClock::now())
                           .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left, INT_MAX));
}

/// Waits until `fd` is ready for `events`. `timeout_ms` < 0 blocks
/// indefinitely; 0 reports an expired deadline at once. Readiness with
/// POLLERR/POLLHUP set is reported as ready — the following read/write
/// surfaces the precise error.
Status PollFd(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (r > 0) return Status::OK();
    if (r == 0) return Status::Internal("transport: peer deadline expired");
    if (errno != EINTR) {
      return Status::Internal(std::string("transport: poll: ") +
                              std::strerror(errno));
    }
  }
}

/// The deadline is for the WHOLE write: every blocked poll gets only what
/// is left of it, so a peer draining one byte per poll cannot stretch the
/// call past the caller's budget.
Status WriteFull(int fd, const uint8_t* data, size_t size, WireTime deadline) {
  size_t off = 0;
  while (off < size) {
    Status s = PollFd(fd, POLLOUT, RemainingMs(deadline));
    if (!s.ok()) return s;
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal(std::string("transport: send: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Same whole-operation deadline discipline as WriteFull (the drip-feed
/// fix: a worker sending one byte per read_timeout_ms used to extend a
/// round indefinitely, because each blocked read got the full budget).
Status ReadFull(int fd, uint8_t* data, size_t size, WireTime deadline) {
  size_t off = 0;
  while (off < size) {
    Status s = PollFd(fd, POLLIN, RemainingMs(deadline));
    if (!s.ok()) return s;
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n == 0) return Status::Internal("transport: connection closed by peer");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal(std::string("transport: recv: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteWireMessage(int fd, const std::vector<uint8_t>& body,
                        int timeout_ms) {
  Encoder framed;
  framed.PutVarint(body.size());
  framed.PutRaw(body);
  framed.PutU32(WireCrc32(body.data(), body.size()));
  return WriteFull(fd, framed.buffer().data(), framed.buffer().size(),
                   WireDeadline(timeout_ms));
}

Status ReadWireMessage(int fd, int timeout_ms, size_t max_frame_bytes,
                       std::vector<uint8_t>* body) {
  // The length varint arrives byte by byte; everything after it is read in
  // one bounded gulp. The declared length is capped BEFORE the payload
  // buffer is sized, so a corrupt or hostile peer cannot drive a huge
  // allocation. One deadline covers the whole message.
  const WireTime deadline = WireDeadline(timeout_ms);
  uint64_t len = 0;
  int shift = 0;
  for (;;) {
    uint8_t byte = 0;
    Status s = ReadFull(fd, &byte, 1, deadline);
    if (!s.ok()) return s;
    len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) {
      return Status::Corruption("transport: overlong frame length");
    }
  }
  if (len > max_frame_bytes) {
    return Status::Corruption("transport: frame exceeds max_frame_bytes");
  }
  body->assign(static_cast<size_t>(len), 0);
  if (len > 0) {
    Status s = ReadFull(fd, body->data(), body->size(), deadline);
    if (!s.ok()) return s;
  }
  uint8_t crc_bytes[4];
  Status s = ReadFull(fd, crc_bytes, sizeof(crc_bytes), deadline);
  if (!s.ok()) return s;
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
  if (crc != WireCrc32(body->data(), body->size())) {
    return Status::Corruption("transport: frame checksum mismatch");
  }
  return Status::OK();
}

namespace {

/// Parses a worker reply envelope: u8 ok; ok=1 -> double compute_ms, varint
/// payload length (must equal the remaining bytes), payload; ok=0 -> error
/// string, surfaced as Internal (the worker stayed alive and framed — only
/// this round failed).
Status ParseReply(const std::vector<uint8_t>& body,
                  std::vector<uint8_t>* payload, double* compute_ms) {
  Decoder dec(body, Decoder::OnError::kStatus);
  const uint8_t ok = dec.GetU8();
  if (!dec.ok()) return dec.status();
  if (ok == 0) {
    std::string message = dec.GetString();
    if (!dec.ok()) return dec.status();
    return Status::Internal("transport: worker reported: " + message);
  }
  if (ok != 1) return Status::Corruption("transport: bad reply status byte");
  *compute_ms = dec.GetDouble();
  const uint64_t n = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  if (n != dec.remaining()) {
    return Status::Corruption("transport: reply payload length mismatch");
  }
  payload->assign(body.begin() + static_cast<ptrdiff_t>(dec.position()),
                  body.end());
  return Status::OK();
}

std::vector<uint8_t> SerializeFragment(const Fragment& f) {
  Encoder enc;
  f.Serialize(&enc);
  return enc.TakeBuffer();
}

// --- kSim -------------------------------------------------------------------

/// The seed behavior, verbatim: every listed site runs the engine's closure
/// over the coordinator-resident fragment on the pool, with a per-site
/// stopwatch feeding the modeled clock.
class SimTransport : public Transport {
 public:
  SimTransport(const Fragmentation* fragmentation, ThreadPool* pool)
      : fragmentation_(fragmentation), pool_(pool) {}

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& /*spec*/,
                 const SiteFn& sim_fn,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    pool_->ParallelFor(k, [&](size_t i) {
      const Fragment& frag = fragmentation_->fragment(sites[i]);
      StopWatch watch;
      (*replies)[i] = sim_fn(frag);
      compute_ms[i] = watch.ElapsedMs();
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    return Status::OK();
  }

 private:
  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
};

// --- kShm -------------------------------------------------------------------

/// Single-box sharding: each site owns a deserialized COPY of its fragment
/// plus its own FragmentContext, and every round goes through the same
/// RoundSpec encode/decode the socket backend ships — full wire coverage,
/// no processes.
class ShmTransport : public Transport {
 public:
  ShmTransport(const Fragmentation* fragmentation, ThreadPool* pool)
      : fragmentation_(fragmentation), pool_(pool) {
    RebuildRuntimes();
  }

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& spec,
                 const SiteFn& /*sim_fn*/,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    std::vector<Status> statuses(k, Status::OK());
    pool_->ParallelFor(k, [&](size_t i) {
      WorkerRuntime& rt = *runtimes_[sites[i]];
      MutexLock lock(&rt.io_mu);
      StopWatch watch;
      Result<std::vector<uint8_t>> r = RunSiteRound(
          rt.fragment, &rt.ctx, spec.kind, spec.aux, spec.broadcast);
      compute_ms[i] = watch.ElapsedMs();
      if (r.ok()) {
        (*replies)[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status SyncFragments() override {
    RebuildRuntimes();
    return Status::OK();
  }

 private:
  struct WorkerRuntime {
    explicit WorkerRuntime(Fragment f) : fragment(std::move(f)) {}
    Fragment fragment;
    FragmentContext ctx;
    /// Serializes rounds on one site: overlapping per-class dispatcher
    /// batches must not race on the site's standing context.
    Mutex io_mu{LockRank::kTransportConn};
  };

  /// Round-trips every fragment through its wire format — the copies are
  /// exactly what a remote worker would hold.
  void RebuildRuntimes() {
    runtimes_.clear();
    for (SiteId s = 0; s < fragmentation_->num_fragments(); ++s) {
      const std::vector<uint8_t> bytes =
          SerializeFragment(fragmentation_->fragment(s));
      Decoder dec(bytes);
      runtimes_.push_back(
          std::make_unique<WorkerRuntime>(Fragment::Deserialize(&dec)));
    }
  }

  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
  std::vector<std::unique_ptr<WorkerRuntime>> runtimes_;
};

// --- kSocket ----------------------------------------------------------------

std::string DefaultWorkerBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "pereach_worker";
  buf[n] = '\0';
  const std::string self(buf);
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "pereach_worker";
  return self.substr(0, slash + 1) + "pereach_worker";
}

Status ConnectEndpoint(const std::string& endpoint, int timeout_ms,
                       int* out_fd) {
  int fd = -1;
  union {
    sockaddr sa;
    sockaddr_un un;
    sockaddr_storage storage;
  } addr;
  std::memset(&addr, 0, sizeof(addr));
  socklen_t addr_len = 0;
  if (endpoint.rfind("unix:", 0) == 0) {
    const std::string path = endpoint.substr(5);
    if (path.empty() || path.size() >= sizeof(addr.un.sun_path)) {
      return Status::InvalidArgument("transport: bad unix endpoint: " +
                                     endpoint);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::Internal(std::string("transport: socket: ") +
                              std::strerror(errno));
    }
    addr.un.sun_family = AF_UNIX;
    std::memcpy(addr.un.sun_path, path.c_str(), path.size() + 1);
    addr_len = static_cast<socklen_t>(sizeof(sa_family_t) + path.size() + 1);
  } else {
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
      return Status::InvalidArgument("transport: bad endpoint: " + endpoint);
    }
    const std::string host = endpoint.substr(0, colon);
    const std::string port = endpoint.substr(colon + 1);
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
      return Status::InvalidArgument("transport: cannot resolve " + endpoint +
                                     ": " + gai_strerror(rc));
    }
    fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                  res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      return Status::Internal(std::string("transport: socket: ") +
                              std::strerror(errno));
    }
    addr_len = static_cast<socklen_t>(res->ai_addrlen);
    std::memcpy(&addr, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
  }

  // Non-blocking connect bounded by the establishment deadline, then back to
  // blocking mode (every later read/write polls before it touches the fd).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, &addr.sa, addr_len) != 0) {
    if (errno != EINPROGRESS) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("transport: connect " + endpoint + ": " + err);
    }
    Status s = PollFd(fd, POLLOUT, timeout_ms);
    if (s.ok()) {
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        s = Status::Internal("transport: connect " + endpoint + ": " +
                             std::strerror(so_error));
      }
    }
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  *out_fd = fd;
  return Status::OK();
}

/// xorshift-free stateless mixer: the fault plan and the backoff jitter
/// both need reproducible draws with no global RNG state.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a mixed 64-bit draw.
double UnitDouble(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// What the fault plan injects on one (round, site) attempt.
enum class FaultKind : uint8_t {
  kNone = 0,
  kKill,        // SIGKILL the worker (spawn) / sever the socket (connect)
  kHang,        // worker goes silent: the exchange is abandoned and closed
  kDropFrame,   // request delivered, reply frame lost
  kCorruptCrc,  // request frame shipped with a flipped CRC
  kDelay,       // a few ms of extra latency, then a normal exchange
};

/// One pereach_worker process (or remote endpoint) per fragment; the
/// coordinator scatters a round to the involved sites and gathers their
/// replies, all framing CRC-gated. Failure semantics (DESIGN.md §13):
/// rounds are idempotent given fragment state, so a site whose exchange
/// fails is re-established and its share re-dispatched up to round_retries
/// times, all under one whole-round deadline; when retries exhaust or the
/// site's circuit breaker is open, degrade_local evaluates the RoundSpec on
/// the coordinator's own fragment copy — the batch completes either way. A
/// WorkerSupervisor repairs dead connections in the background so
/// re-establishment (respawn/reconnect + Hello + fragment re-ship) leaves
/// the serving hot path.
class SocketTransport : public Transport {
 public:
  SocketTransport(const TransportOptions& options,
                  const Fragmentation* fragmentation, ThreadPool* pool)
      : options_(options), fragmentation_(fragmentation), pool_(pool) {
    if (options_.worker_binary.empty()) {
      options_.worker_binary = DefaultWorkerBinary();
    }
    const size_t k = fragmentation_->num_fragments();
    fault_killed_ = std::make_unique<std::atomic<bool>[]>(k);
    {
      MutexLock lock(&frag_mu_);
      for (SiteId s = 0; s < k; ++s) {
        conns_.push_back(std::make_unique<Connection>());
        conns_.back()->jitter_state =
            SplitMix64(options_.backoff_jitter_seed + s);
        local_.push_back(std::make_unique<LocalRuntime>());
        frag_bytes_.push_back(SerializeFragment(fragmentation_->fragment(s)));
        fault_killed_[s].store(false, std::memory_order_relaxed);
      }
    }
    supervisor_ = std::make_unique<WorkerSupervisor>(
        k, options_.breaker_threshold, options_.breaker_open_ms);
    supervisor_->Start([this](SiteId site) { return RepairSite(site); });
  }

  ~SocketTransport() override { Shutdown(); }

  Status Execute(const std::vector<SiteId>& sites, const RoundSpec& spec,
                 const SiteFn& /*sim_fn*/,
                 std::vector<std::vector<uint8_t>>* replies,
                 double* max_compute_ms) override {
    const size_t k = sites.size();
    replies->assign(k, {});
    std::vector<double> compute_ms(k, 0.0);
    std::vector<Status> statuses(k, Status::OK());
    const uint64_t round = round_counter_.fetch_add(1);
    // The whole-round deadline spans every retry, backoff and
    // re-establishment below — a dripping or flapping worker cannot stretch
    // a round (or the Stop() drain behind it) past this.
    const WireTime deadline = WireDeadline(options_.round_deadline_ms);
    pool_->ParallelFor(k, [&](size_t i) {
      statuses[i] = RoundOnSite(sites[i], spec, round, deadline,
                                &(*replies)[i], &compute_ms[i]);
    });
    *max_compute_ms = 0.0;
    for (double ms : compute_ms) *max_compute_ms = std::max(*max_compute_ms, ms);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status SyncFragments() override {
    // Refresh the serialized snapshots FIRST. The server calls this under
    // the writer-held epoch gate (no rounds in flight), and every later
    // Hello — including the repair thread's — ships these cached bytes, so
    // nothing off the gate ever serializes a live fragment.
    {
      MutexLock lock(&frag_mu_);
      for (SiteId s = 0; s < conns_.size(); ++s) {
        frag_bytes_[s] = SerializeFragment(fragmentation_->fragment(s));
      }
    }
    // The degrade-local contexts cache per-fragment structure; the
    // fragments just changed under us.
    for (std::unique_ptr<LocalRuntime>& rt : local_) {
      MutexLock lock(&rt->eval_mu);
      rt->ctx = std::make_unique<FragmentContext>();
    }
    // A site that fails to sync is marked dead, which is already safe: its
    // next round re-establishes with a Hello carrying the CURRENT fragment,
    // so a worker can never serve stale state. Sites already dead are
    // skipped for the same reason.
    for (SiteId s = 0; s < conns_.size(); ++s) {
      Connection& c = *conns_[s];
      MutexLock lock(&c.io_mu);
      if (c.dead) continue;
      Encoder body;
      body.PutU8(static_cast<uint8_t>(WireMessage::kSync));
      {
        MutexLock flock(&frag_mu_);
        body.PutRaw(frag_bytes_[s]);
      }
      Status st = ExchangeLocked(&c, body.buffer(), nullptr, nullptr,
                                 WireDeadline(options_.read_timeout_ms));
      if (!st.ok()) CloseLocked(&c);
    }
    return Status::OK();
  }

  void Shutdown() override {
    // Stop the repair thread before touching any connection it might be
    // re-establishing.
    if (supervisor_ != nullptr) supervisor_->Stop();
    std::vector<pid_t> pids;
    for (std::unique_ptr<Connection>& cp : conns_) {
      Connection& c = *cp;
      MutexLock lock(&c.io_mu);
      if (c.fd >= 0) {
        Encoder body;
        body.PutU8(static_cast<uint8_t>(WireMessage::kShutdown));
        (void)WriteWireMessage(c.fd, body.buffer(), /*timeout_ms=*/100);
        ::close(c.fd);
        c.fd = -1;
      }
      c.dead = true;
      if (c.pid > 0) {
        pids.push_back(c.pid);
        c.pid = -1;
      }
    }
    // Give workers ~500ms to exit on their own (they see EOF or the
    // shutdown message), then force the stragglers.
    for (int wait_ms = 0; !pids.empty() && wait_ms < 500; wait_ms += 10) {
      for (size_t i = 0; i < pids.size();) {
        if (::waitpid(pids[i], nullptr, WNOHANG) == pids[i]) {
          pids[i] = pids.back();
          pids.pop_back();
        } else {
          ++i;
        }
      }
      if (!pids.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    for (pid_t pid : pids) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  std::vector<int> WorkerPidsForTest() override {
    std::vector<int> pids;
    for (std::unique_ptr<Connection>& cp : conns_) {
      MutexLock lock(&cp->io_mu);
      if (!cp->dead && cp->pid > 0) pids.push_back(cp->pid);
    }
    return pids;
  }

  TransportHealth Health() const override {
    TransportHealth h;
    h.round_retries = retries_.load(std::memory_order_relaxed);
    h.worker_respawns = respawns_.load(std::memory_order_relaxed);
    h.degraded_site_rounds = degraded_.load(std::memory_order_relaxed);
    h.breakers_open = supervisor_->OpenBreakers();
    return h;
  }

 private:
  struct Connection {
    int fd = -1;
    pid_t pid = -1;
    bool dead = true;
    /// True after the first successful Hello: later re-establishments are
    /// respawns for the books.
    bool ever_established = false;
    /// Backoff-jitter state (seeded per site; pure SplitMix64 chain).
    uint64_t jitter_state = 1;
    /// Serializes one round's send+receive exchange on this worker socket
    /// (overlapping per-class dispatcher rounds share the connection).
    Mutex io_mu{LockRank::kTransportConn};
  };

  /// Per-site runtime of the degrade_local path: a standing context over
  /// the coordinator's own fragment, reset whenever the fragments change.
  struct LocalRuntime {
    std::unique_ptr<FragmentContext> ctx = std::make_unique<FragmentContext>();
    /// Serializes degraded rounds on one site (FragmentContext is
    /// single-threaded); never nested with io_mu — degradation starts only
    /// after the exchange released it.
    Mutex eval_mu{LockRank::kTransportConn};
  };

  /// One request/reply exchange on an established connection, the whole
  /// thing bounded by `deadline` (also capped by read_timeout_ms per
  /// message). Any failure — EOF, expired deadline, framing corruption —
  /// is final for this attempt; the caller decides whether the connection
  /// survives (a cleanly framed worker-reported error keeps it, everything
  /// else closes it).
  Status ExchangeLocked(Connection* c, const std::vector<uint8_t>& request,
                        std::vector<uint8_t>* payload, double* compute_ms,
                        WireTime deadline) {
    Status s = WriteWireMessage(c->fd, request,
                                BudgetMs(deadline, options_.read_timeout_ms));
    if (!s.ok()) {
      CloseLocked(c);
      return s;
    }
    std::vector<uint8_t> reply;
    s = ReadWireMessage(c->fd, BudgetMs(deadline, options_.read_timeout_ms),
                        options_.max_frame_bytes, &reply);
    if (!s.ok()) {
      CloseLocked(c);
      return s;
    }
    std::vector<uint8_t> scratch;
    double scratch_ms = 0.0;
    s = ParseReply(reply, payload != nullptr ? payload : &scratch,
                   compute_ms != nullptr ? compute_ms : &scratch_ms);
    if (s.code() == StatusCode::kCorruption) CloseLocked(c);
    return s;
  }

  /// Milliseconds of per-message budget under the round deadline: the
  /// smaller of `base_ms` and what is left of `deadline` (0 once the
  /// deadline passed — polls then expire immediately).
  int BudgetMs(WireTime deadline, int base_ms) const {
    const int remaining = RemainingMs(deadline);
    if (remaining < 0) return base_ms;
    if (base_ms <= 0) return remaining;
    return std::min(base_ms, remaining);
  }

  static bool DeadlineExpired(WireTime deadline) {
    return deadline != WireTime{} && WireClock::now() >= deadline;
  }

  /// One site's share of a round, with in-round failover: rounds are pure
  /// functions of (fragment state, broadcast), and re-establishment ships
  /// the current fragment before anything else, so re-dispatching a failed
  /// share is always sound — the worker either never saw the request or
  /// recomputes the identical reply. Worker-REPORTED errors (a cleanly
  /// framed failure from a live worker) are deterministic and final: no
  /// retry, no degradation.
  Status RoundOnSite(SiteId site, const RoundSpec& spec, uint64_t round,
                     WireTime deadline, std::vector<uint8_t>* payload,
                     double* compute_ms) {
    Status last = Status::Internal("transport: round never attempted");
    for (int attempt = 0; attempt <= options_.round_retries; ++attempt) {
      if (DeadlineExpired(deadline)) {
        last = Status::Internal("transport: round deadline expired");
        break;
      }
      if (!supervisor_->AllowRequest(site)) {
        last = Status::Internal("transport: circuit breaker open for site " +
                                std::to_string(site));
        break;
      }
      if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
      bool worker_alive = false;
      Status s = AttemptRoundOnSite(site, spec, round, attempt, deadline,
                                    payload, compute_ms, &worker_alive);
      if (s.ok()) {
        supervisor_->RecordSuccess(site);
        return s;
      }
      if (worker_alive) {
        // The connection survived and framed an error: the failure is the
        // round's, not the transport's. Retrying would recompute it.
        supervisor_->RecordSuccess(site);
        return s;
      }
      supervisor_->RecordFailure(site);
      last = s;
    }
    if (options_.degrade_local) {
      return DegradeLocal(site, spec, payload, compute_ms);
    }
    return last;
  }

  /// One attempt: establish if dead, inject any scheduled fault, exchange.
  /// `*worker_alive` is true only when the exchange failed but the
  /// connection is still good (worker-reported error).
  Status AttemptRoundOnSite(SiteId site, const RoundSpec& spec, uint64_t round,
                            int attempt, WireTime deadline,
                            std::vector<uint8_t>* payload, double* compute_ms,
                            bool* worker_alive) {
    Connection& c = *conns_[site];
    MutexLock lock(&c.io_mu);
    if (c.dead) {
      Status s = EstablishLocked(site, &c, deadline);
      if (!s.ok()) return s;
    }
    const FaultKind fault = DrawFault(site, round, attempt);
    if (fault == FaultKind::kKill) {
      // Kill the real worker (or sever a connected endpoint) and proceed:
      // the exchange below fails exactly the way a production crash does.
      if (c.pid > 0) {
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, nullptr, 0);
        c.pid = -1;
      } else if (c.fd >= 0) {
        ::shutdown(c.fd, SHUT_RDWR);
      }
    } else if (fault == FaultKind::kHang) {
      // Stand-in for a silent worker: the deadline machinery is exercised
      // separately (SilentWorkerTripsReadDeadline); chaos runs shouldn't
      // spend read_timeout_ms per injection.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      CloseLocked(&c);
      return Status::Internal("transport: fault injection: worker hung");
    } else if (fault == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          1 + static_cast<int>(SplitMix64(round * 977 + site) % 4)));
    }
    Encoder body;
    body.PutU8(static_cast<uint8_t>(WireMessage::kRound));
    body.PutU8(static_cast<uint8_t>(spec.kind));
    body.PutU8(spec.aux);
    body.PutRaw(spec.broadcast);
    if (fault == FaultKind::kDropFrame) {
      // Deliver the request, lose the reply: the worker computes, we close.
      // Re-dispatch after this is the idempotence argument made flesh.
      (void)WriteWireMessage(c.fd, body.buffer(),
                             BudgetMs(deadline, options_.read_timeout_ms));
      CloseLocked(&c);
      return Status::Internal("transport: fault injection: reply dropped");
    }
    if (fault == FaultKind::kCorruptCrc) {
      // Ship the frame with a flipped CRC: the worker's integrity gate
      // rejects it and exits, and our read sees the close — the end-to-end
      // corruption path, coordinator side.
      Encoder framed;
      framed.PutVarint(body.buffer().size());
      framed.PutRaw(body.buffer());
      framed.PutU32(
          WireCrc32(body.buffer().data(), body.buffer().size()) ^ 0xFFu);
      Status s = WriteFull(c.fd, framed.buffer().data(),
                           framed.buffer().size(),
                           WireDeadline(options_.read_timeout_ms));
      if (s.ok()) {
        std::vector<uint8_t> reply;
        s = ReadWireMessage(c.fd, BudgetMs(deadline, options_.read_timeout_ms),
                            options_.max_frame_bytes, &reply);
      }
      CloseLocked(&c);
      return s.ok() ? Status::Internal("transport: fault injection: corrupt")
                    : s;
    }
    Status s = ExchangeLocked(&c, body.buffer(), payload, compute_ms, deadline);
    if (!s.ok()) *worker_alive = !c.dead;
    return s;
  }

  /// The degradation path: evaluate this site's share of the round locally,
  /// over the coordinator's own fragment copy. site_runtime::RunSiteRound
  /// is the same decoder the workers run, and serialization round-trips are
  /// exact, so the reply bytes are identical to a healthy worker's — the
  /// batch completes, answers and modeled books unchanged.
  Status DegradeLocal(SiteId site, const RoundSpec& spec,
                      std::vector<uint8_t>* payload, double* compute_ms) {
    LocalRuntime& rt = *local_[site];
    MutexLock lock(&rt.eval_mu);
    StopWatch watch;
    Result<std::vector<uint8_t>> r =
        RunSiteRound(fragmentation_->fragment(site), rt.ctx.get(), spec.kind,
                     spec.aux, spec.broadcast);
    if (compute_ms != nullptr) *compute_ms = watch.ElapsedMs();
    if (!r.ok()) return r.status();
    if (payload != nullptr) *payload = std::move(r).value();
    degraded_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// The deterministic fault schedule: pure draws keyed by (seed, round,
  /// site), injected only on a share's FIRST attempt so retries exercise
  /// recovery rather than re-drawing the same doom.
  FaultKind DrawFault(SiteId site, uint64_t round, int attempt) {
    const FaultPlan& fp = options_.fault_plan;
    if (!fp.enabled || attempt != 0 || round < fp.first_round) {
      return FaultKind::kNone;
    }
    if (fp.kill_each_site && round >= fp.first_round + site) {
      bool expected = false;
      if (fault_killed_[site].compare_exchange_strong(expected, true)) {
        return FaultKind::kKill;
      }
    }
    if (fp.rate <= 0.0) return FaultKind::kNone;
    const uint64_t h =
        SplitMix64(fp.seed ^ SplitMix64(round * 0x100000001B3ull + site));
    if (UnitDouble(h) >= fp.rate) return FaultKind::kNone;
    switch (SplitMix64(h) % 5) {
      case 0:
        return FaultKind::kKill;
      case 1:
        return FaultKind::kHang;
      case 2:
        return FaultKind::kDropFrame;
      case 3:
        return FaultKind::kCorruptCrc;
      default:
        return FaultKind::kDelay;
    }
  }

  /// Background repair (WorkerSupervisor thread): re-establish a dead
  /// connection off the serving hot path. Returns false while the site
  /// stays down so the supervisor re-queues it.
  bool RepairSite(SiteId site) {
    Connection& c = *conns_[site];
    MutexLock lock(&c.io_mu);
    if (!c.dead) return true;
    return EstablishLocked(site, &c, WireTime{}).ok();
  }

  /// Establishment with bounded retry + jittered backoff: spawn-or-connect
  /// plus the Hello that ships the site id and the current fragment
  /// snapshot, all bounded by `deadline` when one is set. Attempt i backs
  /// off about i * retry_backoff_ms, scaled by a seeded factor in
  /// [0.5, 1.5) so a multi-worker restart spreads out instead of retrying
  /// in lockstep.
  Status EstablishLocked(SiteId site, Connection* c, WireTime deadline) {
    Status last = Status::Internal("transport: connection never attempted");
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0 && options_.retry_backoff_ms > 0) {
        c->jitter_state = SplitMix64(c->jitter_state);
        const double factor = 0.5 + UnitDouble(c->jitter_state);
        int sleep_ms = static_cast<int>(
            static_cast<double>(attempt * options_.retry_backoff_ms) * factor);
        const int remaining = RemainingMs(deadline);
        if (remaining >= 0) sleep_ms = std::min(sleep_ms, remaining);
        if (sleep_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
      }
      if (DeadlineExpired(deadline)) {
        last = Status::Internal("transport: round deadline expired");
        break;
      }
      CloseLocked(c);
      ReapLocked(c);
      Status s =
          options_.connect.empty()
              ? SpawnLocked(site, c)
              : ConnectEndpoint(options_.connect[site],
                                BudgetMs(deadline, options_.connect_timeout_ms),
                                &c->fd);
      if (s.ok()) s = HelloLocked(site, c, deadline);
      if (s.ok()) {
        c->dead = false;
        if (c->ever_established) {
          respawns_.fetch_add(1, std::memory_order_relaxed);
        }
        c->ever_established = true;
        return s;
      }
      CloseLocked(c);
      last = s;
    }
    ReapLocked(c);
    return last;
  }

  Status SpawnLocked(SiteId site, Connection* c) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      return Status::Internal(std::string("transport: socketpair: ") +
                              std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return Status::Internal(std::string("transport: fork: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Child: only its own end survives the exec (everything else in the
      // parent is CLOEXEC, so sibling workers' sockets don't leak in).
      ::fcntl(sv[1], F_SETFD, 0);
      const std::string fd_arg = "--fd=" + std::to_string(sv[1]);
      ::execl(options_.worker_binary.c_str(), "pereach_worker", fd_arg.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(sv[1]);
    c->fd = sv[0];
    c->pid = pid;
    return Status::OK();
  }

  /// Hello ships the CACHED fragment snapshot, never the live fragment:
  /// the repair thread establishes off the epoch gate, and frag_bytes_ is
  /// only rewritten under the writer-held gate (SyncFragments), so the
  /// bytes a worker boots from are always a committed epoch's.
  Status HelloLocked(SiteId site, Connection* c, WireTime deadline) {
    Encoder body;
    body.PutU8(static_cast<uint8_t>(WireMessage::kHello));
    body.PutU8(kWireVersion);
    body.PutVarint(site);
    {
      MutexLock flock(&frag_mu_);
      body.PutRaw(frag_bytes_[site]);
    }
    Status s = WriteWireMessage(c->fd, body.buffer(),
                                BudgetMs(deadline, options_.connect_timeout_ms));
    if (!s.ok()) return s;
    std::vector<uint8_t> reply;
    s = ReadWireMessage(c->fd, BudgetMs(deadline, options_.read_timeout_ms),
                        options_.max_frame_bytes, &reply);
    if (!s.ok()) return s;
    std::vector<uint8_t> payload;
    double compute_ms = 0.0;
    return ParseReply(reply, &payload, &compute_ms);
  }

  void CloseLocked(Connection* c) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
    c->dead = true;
  }

  /// Collects a spawned worker that is gone or being replaced; SIGKILL is
  /// safe here — the connection is already closed, so no round is talking
  /// to it.
  void ReapLocked(Connection* c) {
    if (c->pid > 0) {
      ::kill(c->pid, SIGKILL);
      ::waitpid(c->pid, nullptr, 0);
      c->pid = -1;
    }
  }

  TransportOptions options_;
  const Fragmentation* fragmentation_;
  ThreadPool* pool_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<std::unique_ptr<LocalRuntime>> local_;
  /// Serialized fragment snapshots shipped by Hello and Sync; written only
  /// under the writer-held epoch gate, read during establishment.
  Mutex frag_mu_{LockRank::kTransportFrag};
  std::vector<std::vector<uint8_t>> frag_bytes_ PEREACH_GUARDED_BY(frag_mu_);
  std::unique_ptr<WorkerSupervisor> supervisor_;
  /// kill_each_site bookkeeping: each site is force-killed exactly once.
  std::unique_ptr<std::atomic<bool>[]> fault_killed_;
  std::atomic<uint64_t> round_counter_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> respawns_{0};
  std::atomic<uint64_t> degraded_{0};
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const Fragmentation* fragmentation,
                                         ThreadPool* pool) {
  switch (options.backend) {
    case TransportBackend::kSim:
      return std::make_unique<SimTransport>(fragmentation, pool);
    case TransportBackend::kShm:
      return std::make_unique<ShmTransport>(fragmentation, pool);
    case TransportBackend::kSocket:
      if (!options.connect.empty()) {
        PEREACH_CHECK_EQ(options.connect.size(),
                         fragmentation->num_fragments());
      }
      return std::make_unique<SocketTransport>(options, fragmentation, pool);
  }
  PEREACH_CHECK(false && "unknown transport backend");
  return nullptr;
}

std::unique_ptr<Transport> MakeSimTransport(const Fragmentation* fragmentation,
                                            ThreadPool* pool) {
  return std::make_unique<SimTransport>(fragmentation, pool);
}

}  // namespace pereach
