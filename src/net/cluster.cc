#include "src/net/cluster.h"

#include <algorithm>
#include <thread>

namespace pereach {

Cluster::Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
                 size_t num_threads)
    : fragmentation_(fragmentation), net_(net) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(num_threads);
  metrics_.site_visits.assign(fragmentation_->num_fragments(), 0);
}

void Cluster::BeginQuery() {
  metrics_ = RunMetrics();
  metrics_.site_visits.assign(fragmentation_->num_fragments(), 0);
  query_watch_.Restart();
}

void Cluster::EndQuery() {
  metrics_.wall_ms = query_watch_.ElapsedMs();
  if (metrics_.queries == 0) metrics_.queries = 1;
}

std::vector<std::vector<uint8_t>> Cluster::Round(
    const std::vector<SiteId>& sites, size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  const size_t k = sites.size();
  std::vector<std::vector<uint8_t>> replies(k);
  std::vector<double> compute_ms(k, 0.0);

  pool_->ParallelFor(k, [&](size_t i) {
    const Fragment& frag = fragmentation_->fragment(sites[i]);
    StopWatch watch;
    replies[i] = fn(frag);
    compute_ms[i] = watch.ElapsedMs();
  });

  size_t round_bytes = broadcast_bytes * k;
  size_t num_messages = k;  // coordinator -> site broadcasts
  double max_compute = 0.0;
  for (size_t i = 0; i < k; ++i) {
    metrics_.site_visits[sites[i]] += 1;
    max_compute = std::max(max_compute, compute_ms[i]);
    if (!replies[i].empty()) {
      round_bytes += replies[i].size();
      ++num_messages;
    }
  }
  metrics_.traffic_bytes += round_bytes;
  metrics_.messages += num_messages;
  metrics_.rounds += 1;
  metrics_.modeled_ms +=
      2 * net_.latency_ms + max_compute + net_.TransferMs(round_bytes);
  return replies;
}

std::vector<std::vector<uint8_t>> Cluster::RoundAll(
    size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  std::vector<SiteId> all(fragmentation_->num_fragments());
  for (SiteId s = 0; s < all.size(); ++s) all[s] = s;
  return Round(all, broadcast_bytes, fn);
}

void Cluster::AddCoordinatorWorkMs(double ms) { metrics_.modeled_ms += ms; }

void Cluster::RecordVisits(SiteId site, size_t n) {
  PEREACH_CHECK_LT(site, metrics_.site_visits.size());
  metrics_.site_visits[site] += n;
}

void Cluster::RecordTraffic(size_t bytes, size_t num_messages) {
  metrics_.traffic_bytes += bytes;
  metrics_.messages += num_messages;
}

void Cluster::RecordModeledRound(double max_site_compute_ms,
                                 size_t round_bytes) {
  metrics_.rounds += 1;
  metrics_.modeled_ms += 2 * net_.latency_ms + max_site_compute_ms +
                         net_.TransferMs(round_bytes);
}

}  // namespace pereach
