#include "src/net/cluster.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace pereach {

Cluster::Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
                 size_t num_threads, TransportOptions transport)
    : fragmentation_(fragmentation), net_(net) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(num_threads);
  sim_transport_ = MakeSimTransport(fragmentation_, pool_.get());
  transport_ = transport.backend == TransportBackend::kSim
                   ? MakeSimTransport(fragmentation_, pool_.get())
                   : MakeTransport(transport, fragmentation_, pool_.get());
}

Cluster::~Cluster() { transport_->Shutdown(); }

Cluster::Window& Cluster::ActiveWindowLocked() {
  auto it = windows_.find(std::this_thread::get_id());
  PEREACH_CHECK(it != windows_.end() &&
                "cluster used outside a BeginQuery..EndQuery window");
  return it->second;
}

void Cluster::BeginQuery() {
  MutexLock lock(&mu_);
  auto [it, inserted] = windows_.try_emplace(std::this_thread::get_id());
  PEREACH_CHECK(inserted && "thread already has an open metrics window");
  it->second.metrics.site_visits.assign(fragmentation_->num_fragments(), 0);
  it->second.watch.Restart();
}

void Cluster::SetQueriesServed(size_t n) {
  MutexLock lock(&mu_);
  ActiveWindowLocked().metrics.queries = n;
}

RunMetrics Cluster::EndQuery() {
  MutexLock lock(&mu_);
  Window& w = ActiveWindowLocked();
  w.metrics.wall_ms = w.watch.ElapsedMs();
  if (w.metrics.queries == 0) w.metrics.queries = 1;
  RunMetrics out = std::move(w.metrics);
  windows_.erase(std::this_thread::get_id());
  return out;
}

Result<std::vector<std::vector<uint8_t>>> Cluster::RoundInternal(
    Transport* t, const std::vector<SiteId>& sites, const RoundSpec& spec,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  const size_t k = sites.size();
  std::vector<std::vector<uint8_t>> replies;
  double max_compute = 0.0;
  Status s = t->Execute(sites, spec, fn, &replies, &max_compute);
  if (!s.ok()) return s;
  PEREACH_CHECK_EQ(replies.size(), k);

  // The books charge the round's PAYLOADS — broadcast and non-empty replies
  // — never the transport envelope, so modeled numbers are identical across
  // backends (and to the seed).
  size_t round_bytes = spec.accounted_broadcast_bytes * k;
  size_t num_messages = k;  // coordinator -> site broadcasts
  for (const std::vector<uint8_t>& reply : replies) {
    if (!reply.empty()) {
      round_bytes += reply.size();
      ++num_messages;
    }
  }

  {
    MutexLock lock(&mu_);
    RunMetrics& m = ActiveWindowLocked().metrics;
    for (size_t i = 0; i < k; ++i) m.site_visits[sites[i]] += 1;
    m.traffic_bytes += round_bytes;
    m.messages += num_messages;
    m.rounds += 1;
    m.modeled_ms +=
        2 * net_.latency_ms + max_compute + net_.TransferMs(round_bytes);
  }
  return replies;
}

std::vector<std::vector<uint8_t>> Cluster::Round(
    const std::vector<SiteId>& sites, size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  RoundSpec spec;
  spec.accounted_broadcast_bytes = broadcast_bytes;
  // The simulated backend never fails.
  return RoundInternal(sim_transport_.get(), sites, spec, fn).value();
}

std::vector<std::vector<uint8_t>> Cluster::RoundAll(
    size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  return Round(AllSites(), broadcast_bytes, fn);
}

Result<std::vector<std::vector<uint8_t>>> Cluster::TryRound(
    const std::vector<SiteId>& sites, const RoundSpec& spec,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  return RoundInternal(transport_.get(), sites, spec, fn);
}

Result<std::vector<std::vector<uint8_t>>> Cluster::TryRoundAll(
    const RoundSpec& spec,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  return RoundInternal(transport_.get(), AllSites(), spec, fn);
}

Status Cluster::SyncFragments() { return transport_->SyncFragments(); }

std::vector<SiteId> Cluster::AllSites() const {
  std::vector<SiteId> all(fragmentation_->num_fragments());
  for (SiteId s = 0; s < all.size(); ++s) all[s] = s;
  return all;
}

void Cluster::AddCoordinatorWorkMs(double ms) {
  MutexLock lock(&mu_);
  ActiveWindowLocked().metrics.modeled_ms += ms;
}

void Cluster::RecordVisits(SiteId site, size_t n) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  PEREACH_CHECK_LT(site, m.site_visits.size());
  m.site_visits[site] += n;
}

void Cluster::RecordTraffic(size_t bytes, size_t num_messages) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  m.traffic_bytes += bytes;
  m.messages += num_messages;
}

void Cluster::RecordModeledRound(double max_site_compute_ms,
                                 size_t round_bytes) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  m.rounds += 1;
  m.modeled_ms += 2 * net_.latency_ms + max_site_compute_ms +
                  net_.TransferMs(round_bytes);
}

}  // namespace pereach
