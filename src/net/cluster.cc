#include "src/net/cluster.h"

#include <algorithm>
#include <thread>

namespace pereach {

Cluster::Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
                 size_t num_threads)
    : fragmentation_(fragmentation), net_(net) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(num_threads);
  // No concurrent access yet, but locking keeps the guarded-by proof
  // unconditional (thread-safety analysis checks constructors too).
  MutexLock lock(&mu_);
  last_metrics_.site_visits.assign(fragmentation_->num_fragments(), 0);
}

Cluster::Window& Cluster::ActiveWindowLocked() {
  auto it = windows_.find(std::this_thread::get_id());
  PEREACH_CHECK(it != windows_.end() &&
                "cluster used outside a BeginQuery..EndQuery window");
  return it->second;
}

void Cluster::BeginQuery() {
  MutexLock lock(&mu_);
  auto [it, inserted] = windows_.try_emplace(std::this_thread::get_id());
  PEREACH_CHECK(inserted && "thread already has an open metrics window");
  it->second.metrics.site_visits.assign(fragmentation_->num_fragments(), 0);
  it->second.watch.Restart();
}

void Cluster::SetQueriesServed(size_t n) {
  MutexLock lock(&mu_);
  ActiveWindowLocked().metrics.queries = n;
}

RunMetrics Cluster::EndQuery() {
  MutexLock lock(&mu_);
  Window& w = ActiveWindowLocked();
  w.metrics.wall_ms = w.watch.ElapsedMs();
  if (w.metrics.queries == 0) w.metrics.queries = 1;
  RunMetrics out = std::move(w.metrics);
  windows_.erase(std::this_thread::get_id());
  last_metrics_ = out;
  return out;
}

RunMetrics Cluster::metrics() const {
  MutexLock lock(&mu_);
  return last_metrics_;
}

std::vector<std::vector<uint8_t>> Cluster::Round(
    const std::vector<SiteId>& sites, size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  const size_t k = sites.size();
  std::vector<std::vector<uint8_t>> replies(k);
  std::vector<double> compute_ms(k, 0.0);

  pool_->ParallelFor(k, [&](size_t i) {
    const Fragment& frag = fragmentation_->fragment(sites[i]);
    StopWatch watch;
    replies[i] = fn(frag);
    compute_ms[i] = watch.ElapsedMs();
  });

  size_t round_bytes = broadcast_bytes * k;
  size_t num_messages = k;  // coordinator -> site broadcasts
  double max_compute = 0.0;
  for (size_t i = 0; i < k; ++i) {
    max_compute = std::max(max_compute, compute_ms[i]);
    if (!replies[i].empty()) {
      round_bytes += replies[i].size();
      ++num_messages;
    }
  }

  {
    MutexLock lock(&mu_);
    RunMetrics& m = ActiveWindowLocked().metrics;
    for (size_t i = 0; i < k; ++i) m.site_visits[sites[i]] += 1;
    m.traffic_bytes += round_bytes;
    m.messages += num_messages;
    m.rounds += 1;
    m.modeled_ms +=
        2 * net_.latency_ms + max_compute + net_.TransferMs(round_bytes);
  }
  return replies;
}

std::vector<std::vector<uint8_t>> Cluster::RoundAll(
    size_t broadcast_bytes,
    const std::function<std::vector<uint8_t>(const Fragment&)>& fn) {
  std::vector<SiteId> all(fragmentation_->num_fragments());
  for (SiteId s = 0; s < all.size(); ++s) all[s] = s;
  return Round(all, broadcast_bytes, fn);
}

void Cluster::AddCoordinatorWorkMs(double ms) {
  MutexLock lock(&mu_);
  ActiveWindowLocked().metrics.modeled_ms += ms;
}

void Cluster::RecordVisits(SiteId site, size_t n) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  PEREACH_CHECK_LT(site, m.site_visits.size());
  m.site_visits[site] += n;
}

void Cluster::RecordTraffic(size_t bytes, size_t num_messages) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  m.traffic_bytes += bytes;
  m.messages += num_messages;
}

void Cluster::RecordModeledRound(double max_site_compute_ms,
                                 size_t round_bytes) {
  MutexLock lock(&mu_);
  RunMetrics& m = ActiveWindowLocked().metrics;
  m.rounds += 1;
  m.modeled_ms += 2 * net_.latency_ms + max_site_compute_ms +
                  net_.TransferMs(round_bytes);
}

}  // namespace pereach
