#include "src/net/supervisor.h"

#include <algorithm>
#include <utility>

namespace pereach {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

WorkerSupervisor::WorkerSupervisor(size_t num_sites, int threshold,
                                   int open_ms)
    : threshold_(threshold), open_ms_(std::max(open_ms, 1)) {
  MutexLock lock(&mu_);
  sites_.resize(num_sites);
}

WorkerSupervisor::~WorkerSupervisor() { Stop(); }

void WorkerSupervisor::Start(RepairFn repair) {
  {
    MutexLock lock(&mu_);
    repair_ = std::move(repair);
  }
  repair_thread_ = std::thread([this] { RepairLoop(); });
}

void WorkerSupervisor::Stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  repair_cv_.NotifyAll();
  if (repair_thread_.joinable()) repair_thread_.join();
}

bool WorkerSupervisor::AllowRequest(SiteId site) {
  if (threshold_ <= 0) return true;
  MutexLock lock(&mu_);
  SiteHealth& h = sites_[site];
  switch (h.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (steady_clock::now() < h.open_until) return false;
      // The open window elapsed: this caller becomes the half-open probe.
      h.state = BreakerState::kHalfOpen;
      h.probe_in_flight = true;
      return true;
    case BreakerState::kHalfOpen:
      if (h.probe_in_flight) return false;
      h.probe_in_flight = true;
      return true;
  }
  return true;
}

void WorkerSupervisor::RecordSuccess(SiteId site) {
  MutexLock lock(&mu_);
  SiteHealth& h = sites_[site];
  h.consecutive_failures = 0;
  h.state = BreakerState::kClosed;
  h.probe_in_flight = false;
  h.needs_repair = false;
}

void WorkerSupervisor::RecordFailure(SiteId site) {
  {
    MutexLock lock(&mu_);
    SiteHealth& h = sites_[site];
    ++h.consecutive_failures;
    h.probe_in_flight = false;
    if (threshold_ > 0 && h.consecutive_failures >= threshold_) {
      // A failed half-open probe lands here too: the streak is still at or
      // past the threshold, so the breaker re-opens for a fresh window.
      h.state = BreakerState::kOpen;
      h.open_until = steady_clock::now() + milliseconds(open_ms_);
    }
    h.needs_repair = true;
  }
  repair_cv_.NotifyAll();
}

uint64_t WorkerSupervisor::OpenBreakers() const {
  MutexLock lock(&mu_);
  uint64_t open = 0;
  for (const SiteHealth& h : sites_) {
    if (h.state != BreakerState::kClosed) ++open;
  }
  return open;
}

WorkerSupervisor::BreakerState WorkerSupervisor::StateForTest(
    SiteId site) const {
  MutexLock lock(&mu_);
  return sites_[site].state;
}

void WorkerSupervisor::RepairLoop() {
  while (true) {
    std::vector<SiteId> work;
    RepairFn repair;
    {
      MutexLock lock(&mu_);
      while (!stopping_) {
        for (size_t i = 0; i < sites_.size(); ++i) {
          if (sites_[i].needs_repair) work.push_back(static_cast<SiteId>(i));
        }
        if (!work.empty()) break;
        repair_cv_.Wait(&mu_);
      }
      if (stopping_) return;
      for (SiteId site : work) sites_[site].needs_repair = false;
      repair = repair_;
    }
    // Re-establish with NO supervisor lock held: RepairFn takes the
    // transport's per-connection io_mu, which ranks below mu_.
    std::vector<SiteId> still_down;
    for (SiteId site : work) {
      if (repair && !repair(site)) still_down.push_back(site);
    }
    if (!still_down.empty()) {
      MutexLock lock(&mu_);
      if (stopping_) return;
      for (SiteId site : still_down) sites_[site].needs_repair = true;
      // Back off before retrying so a dead endpoint doesn't spin the
      // thread; a RecordFailure notification wakes the loop sooner.
      repair_cv_.WaitUntil(&mu_, steady_clock::now() + milliseconds(open_ms_));
      if (stopping_) return;
    }
  }
}

}  // namespace pereach
