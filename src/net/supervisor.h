#ifndef PEREACH_NET_SUPERVISOR_H_
#define PEREACH_NET_SUPERVISOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/common.h"
#include "src/util/sync.h"

namespace pereach {

/// Per-connection health tracking for the socket transport (DESIGN.md §13):
/// a consecutive-failure counter and a circuit breaker per site, plus a
/// background repair thread that re-establishes dead connections (respawn /
/// reconnect + Hello + fragment re-ship) off the serving hot path.
///
/// Breaker state machine, per site:
///
///   kClosed ──(threshold consecutive failures)──▶ kOpen
///   kOpen ──(breaker_open_ms elapsed, next AllowRequest)──▶ kHalfOpen
///   kHalfOpen: exactly one caller (the probe) is admitted; its
///     RecordSuccess closes the breaker, its RecordFailure re-opens it.
///
/// While a breaker is open, AllowRequest refuses so the round path skips
/// the doomed exchange and degrades immediately; the repair thread keeps
/// trying in the background, so a recovered worker is usually re-Hello'd
/// before its breaker even half-opens.
///
/// Locking: mu_ ranks ABOVE the transport's per-connection io_mu, so the
/// repair thread can never re-establish while holding it — it snapshots
/// the repair worklist, releases, then calls `repair` lock-free.
class WorkerSupervisor {
 public:
  /// Re-establishes one site's connection if it is down; called by the
  /// repair thread with no supervisor lock held. Returns false when the
  /// site is still down (the supervisor re-queues it after a backoff).
  /// Must be cheap to call on an already-healthy site.
  using RepairFn = std::function<bool(SiteId)>;

  enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// `threshold` <= 0 disables the breaker (AllowRequest always true);
  /// failures still queue background repairs.
  WorkerSupervisor(size_t num_sites, int threshold, int open_ms);
  ~WorkerSupervisor();

  /// Starts the background repair thread. Call at most once, before any
  /// Record* traffic that should trigger repairs.
  void Start(RepairFn repair);

  /// Stops and joins the repair thread. Idempotent; also run by the
  /// destructor. Call BEFORE tearing down whatever `repair` touches.
  void Stop();

  /// Breaker gate, checked before each attempt at a site's round share.
  /// Closed: admit. Open: refuse until open_ms elapsed, then admit exactly
  /// one probe (half-open). Half-open: refuse everyone but the probe.
  bool AllowRequest(SiteId site);

  /// A successful exchange: resets the failure streak, closes the breaker.
  void RecordSuccess(SiteId site);

  /// A failed exchange (connection-level, not worker-reported): bumps the
  /// streak, may open the breaker, and queues a background repair.
  void RecordFailure(SiteId site);

  /// Connections whose breaker is currently open or half-open (gauge).
  uint64_t OpenBreakers() const;

  BreakerState StateForTest(SiteId site) const;

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(WorkerSupervisor);

  struct SiteHealth {
    int consecutive_failures = 0;
    BreakerState state = BreakerState::kClosed;
    std::chrono::steady_clock::time_point open_until{};
    bool probe_in_flight = false;
    bool needs_repair = false;
  };

  void RepairLoop();

  const int threshold_;
  const int open_ms_;

  mutable Mutex mu_{LockRank::kTransportHealth};
  CondVar repair_cv_;
  std::vector<SiteHealth> sites_ PEREACH_GUARDED_BY(mu_);
  RepairFn repair_ PEREACH_GUARDED_BY(mu_);
  bool stopping_ PEREACH_GUARDED_BY(mu_) = false;
  std::thread repair_thread_;
};

}  // namespace pereach

#endif  // PEREACH_NET_SUPERVISOR_H_
