#ifndef PEREACH_NET_METRICS_H_
#define PEREACH_NET_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pereach {

/// Cost model for the simulated network between sites. Defaults model the
/// paper's motivating deployment — geo-distributed data centers: a few ms of
/// one-way latency per communication round and a shared ingress link at the
/// coordinator. Threads simulate the sites; this model translates measured
/// per-site compute plus actual payload byte counts into a response-time
/// estimate that exhibits WAN effects a single machine cannot.
struct NetworkModel {
  /// One-way message latency per communication round, milliseconds.
  double latency_ms = 5.0;
  /// Coordinator link bandwidth in MB/s (shared across concurrent senders).
  double bandwidth_mb_per_s = 100.0;

  /// Transfer time of `bytes` over the shared coordinator link.
  double TransferMs(size_t bytes) const {
    return static_cast<double>(bytes) / (bandwidth_mb_per_s * 1e6) * 1e3;
  }
};

/// Everything the paper's evaluation section reports about one query run:
/// response time (wall + modeled), total network traffic, number of visits
/// to each site, communication rounds and message count. A metrics window
/// may cover a multi-query batch (`queries` > 1), in which case the additive
/// fields are batch totals; PerQueryModeledMs() is the amortized cost.
/// `queries` defaults to 0 so a default-constructed instance works as an
/// Accumulate() target; Cluster::EndQuery stamps completed windows.
struct RunMetrics {
  double wall_ms = 0.0;
  double modeled_ms = 0.0;
  size_t traffic_bytes = 0;
  size_t messages = 0;
  size_t rounds = 0;
  size_t queries = 0;
  std::vector<size_t> site_visits;

  /// Modeled response time amortized over the queries of the window.
  double PerQueryModeledMs() const {
    return queries == 0 ? modeled_ms
                        : modeled_ms / static_cast<double>(queries);
  }

  size_t TotalVisits() const {
    size_t total = 0;
    for (size_t v : site_visits) total += v;
    return total;
  }

  size_t MaxVisits() const {
    size_t max = 0;
    for (size_t v : site_visits) max = v > max ? v : max;
    return max;
  }

  double traffic_mb() const { return static_cast<double>(traffic_bytes) / 1e6; }

  /// One-line rendering for logs and examples.
  std::string Summary() const;

  /// Accumulates another run (used to average over query workloads).
  void Accumulate(const RunMetrics& other);

  /// Divides the additive fields by `n` (average of n accumulated runs).
  void ScaleDown(size_t n);
};

}  // namespace pereach

#endif  // PEREACH_NET_METRICS_H_
