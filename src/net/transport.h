#ifndef PEREACH_NET_TRANSPORT_H_
#define PEREACH_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace pereach {

/// How a Cluster executes its communication rounds (DESIGN.md §13).
///
///  - kSim: the seed behavior — sites are closures on an in-process thread
///    pool reading the coordinator's own data structures. Zero-copy, fully
///    deterministic, modeled cost only.
///  - kShm: single-box sharding — each site owns a deserialized COPY of its
///    fragment plus its own FragmentContext, and rounds go through the same
///    encoded RoundSpec the socket backend ships, still on the in-process
///    pool. Exercises every wire encode/decode path without processes.
///  - kSocket: one pereach_worker process (or remote TCP endpoint) per
///    fragment; the coordinator scatters length-prefixed frames and gathers
///    replies per round. Real wall-clock serving.
enum class TransportBackend : uint8_t { kSim = 0, kShm = 1, kSocket = 2 };

/// Construction-time knobs of the transport seam. Defaults preserve the
/// seed's simulated behavior exactly.
struct TransportOptions {
  /// Which backend executes rounds (kSim, kShm, kSocket).
  TransportBackend backend = TransportBackend::kSim;
  /// kSocket spawn mode: path of the pereach_worker binary. Empty resolves
  /// to "pereach_worker" next to the running executable.
  std::string worker_binary;
  /// kSocket connect mode: one endpoint per site ("unix:PATH" or
  /// "host:port"), in site order. Empty means spawn workers locally over
  /// socketpairs instead.
  std::vector<std::string> connect;
  /// Deadline for establishing a worker connection (connect + handshake).
  int connect_timeout_ms = 2000;
  /// Deadline for each blocking read of a reply frame; a worker that stays
  /// silent longer is treated as dead and the round fails over to rejection.
  int read_timeout_ms = 10000;
  /// Bounded retry count for ESTABLISHING a connection (spawn or connect +
  /// handshake). Mid-round failures are never retried — the round rejects
  /// and the next round re-establishes.
  int max_retries = 2;
  /// Base backoff between establishment retries; attempt i sleeps i times
  /// this long.
  int retry_backoff_ms = 50;
  /// Upper bound on one wire message's declared length. A peer announcing
  /// more is corrupt (or hostile) and is disconnected before any allocation.
  size_t max_frame_bytes = size_t{256} << 20;
};

/// What a round asks every listed site to do. The simulated backend ignores
/// the encoding and runs the engine's closure directly; the shm and socket
/// backends ship `broadcast` and the worker-side decoder
/// (site_runtime::RunSiteRound) reproduces the closure from it.
enum class RoundKind : uint8_t {
  kBatchEval = 0,   // multiplexed localEval/localEvald/localEvalr batch
  kReachRows = 1,   // refresh: closure boundary rows (BoundaryReachIndex)
  kDistRows = 2,    // refresh: weighted boundary rows (BoundaryDistIndex)
  kRpqRows = 3,     // refresh: product boundary rows (BoundaryRpqIndex)
  kReachSweep = 4,  // per-query endpoint sweeps, reach indexed path
  kDistSweep = 5,   // per-query endpoint sweeps, dist indexed path
  kRpqSweep = 6,    // per-query endpoint sweeps, rpq indexed path
};

struct RoundSpec {
  RoundKind kind = RoundKind::kBatchEval;
  /// Kind-specific scalar: the EquationForm for kBatchEval, unused
  /// otherwise. Everything else a worker needs is derived from `broadcast`.
  uint8_t aux = 0;
  /// The round's broadcast payload (shipped verbatim to every listed site).
  std::vector<uint8_t> broadcast;
  /// Bytes charged to the modeled traffic books per site. Usually
  /// broadcast.size(); the rows-refresh rounds keep the seed's 1-byte
  /// "please send rows" convention while shipping an empty payload, so the
  /// modeled numbers stay bit-identical across backends. Envelope bytes
  /// (kind, aux, framing, CRC) are never accounted — the model charges
  /// payloads, not transport overhead.
  size_t accounted_broadcast_bytes = 0;
};

// --- Wire framing (kSocket) -------------------------------------------------
//
// A connection carries a sequence of messages, each:
//
//   varint body_length | body bytes | u32 CRC32(body)
//
// body_length is capped by TransportOptions::max_frame_bytes before any
// allocation, and the CRC gate means decoders past this layer only ever see
// byte-exact copies of what the peer encoded — residual corruption is a
// software bug, not a transport hazard. Message bodies start with a
// WireMessage tag; replies start with a status byte. See DESIGN.md §13.

inline constexpr uint8_t kWireVersion = 1;

enum class WireMessage : uint8_t {
  kHello = 0,     // u8 version, varint site, fragment bytes -> ok reply
  kRound = 1,     // u8 kind, u8 aux, broadcast bytes -> ok reply + payload
  kSync = 2,      // fragment bytes (post-update state) -> ok reply
  kShutdown = 3,  // empty                              -> ok reply, then exit
};

/// CRC32 (IEEE, reflected) over `size` bytes — the per-message integrity
/// gate of the socket framing. Table-driven, no hardware or library deps.
uint32_t WireCrc32(const uint8_t* data, size_t size);

/// Writes one framed message. `timeout_ms` bounds each blocked send
/// (<= 0: block indefinitely). Fails with Internal on a closed or stuck
/// peer; never raises SIGPIPE.
Status WriteWireMessage(int fd, const std::vector<uint8_t>& body,
                        int timeout_ms);

/// Reads one framed message into `*body`. `timeout_ms` bounds each blocked
/// read (<= 0: block indefinitely). Fails with Internal on EOF/timeout and
/// Corruption on an oversized length or CRC mismatch.
Status ReadWireMessage(int fd, int timeout_ms, size_t max_frame_bytes,
                       std::vector<uint8_t>* body);

// --- The transport seam -----------------------------------------------------

/// One site's work in a simulated round: the engine's closure over the
/// coordinator-resident fragment.
using SiteFn = std::function<std::vector<uint8_t>(const Fragment&)>;

/// Executes communication rounds for a Cluster. Implementations are
/// thread-safe: the server's per-class dispatchers run overlapping rounds
/// against one transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Runs one round on `sites`: reply payload per listed site (in order)
  /// plus the maximum per-site compute time, for the modeled clock. On any
  /// site failure (dead/hung worker, corrupt frame) returns a non-OK status
  /// and the round's replies must not be used; in-process backends never
  /// fail. `sim_fn` is what the simulated backend runs; the others decode
  /// `spec` instead.
  virtual Status Execute(const std::vector<SiteId>& sites,
                         const RoundSpec& spec, const SiteFn& sim_fn,
                         std::vector<std::vector<uint8_t>>* replies,
                         double* max_compute_ms) = 0;

  /// Re-ships every fragment's post-update state to its site (worker-held
  /// fragment copies go stale when IncrementalReachIndex applies edges).
  /// No-op for kSim, which reads the coordinator's fragments directly. A
  /// site that cannot be synced is marked dead so its next round
  /// re-establishes with a fresh Hello — stale answers are impossible
  /// either way. Must not overlap with in-flight rounds (the server calls
  /// it under the writer-held epoch gate).
  virtual Status SyncFragments() { return Status::OK(); }

  /// Tears down connections and worker processes. Idempotent; also run by
  /// the destructor.
  virtual void Shutdown() {}

  /// kSocket spawn mode: pids of the live worker processes (test hook for
  /// failure injection). Empty for other backends/modes.
  virtual std::vector<int> WorkerPidsForTest() { return {}; }
};

/// Builds the backend `options.backend` selects. `fragmentation` and `pool`
/// must outlive the transport.
std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const Fragmentation* fragmentation,
                                         ThreadPool* pool);

/// The simulated backend, unconditionally — Cluster::Round keeps the
/// baselines' bespoke closures on it regardless of the serving backend.
std::unique_ptr<Transport> MakeSimTransport(const Fragmentation* fragmentation,
                                            ThreadPool* pool);

}  // namespace pereach

#endif  // PEREACH_NET_TRANSPORT_H_
