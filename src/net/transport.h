#ifndef PEREACH_NET_TRANSPORT_H_
#define PEREACH_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace pereach {

/// How a Cluster executes its communication rounds (DESIGN.md §13).
///
///  - kSim: the seed behavior — sites are closures on an in-process thread
///    pool reading the coordinator's own data structures. Zero-copy, fully
///    deterministic, modeled cost only.
///  - kShm: single-box sharding — each site owns a deserialized COPY of its
///    fragment plus its own FragmentContext, and rounds go through the same
///    encoded RoundSpec the socket backend ships, still on the in-process
///    pool. Exercises every wire encode/decode path without processes.
///  - kSocket: one pereach_worker process (or remote TCP endpoint) per
///    fragment; the coordinator scatters length-prefixed frames and gathers
///    replies per round. Real wall-clock serving.
enum class TransportBackend : uint8_t { kSim = 0, kShm = 1, kSocket = 2 };

/// Deterministic fault injection for the socket transport (tests, chaos
/// benches). When enabled, each (round, site) pair draws from a pure hash
/// of `seed`, so a given plan replays the exact same fault schedule on
/// every run — the chaos differential depends on it. Faults fire on the
/// coordinator side of the wire, before/around the real exchange, so every
/// recovery path they trigger is the production one.
struct FaultPlan {
  /// Master switch; a default FaultPlan injects nothing.
  bool enabled = false;
  /// Seed of the per-(round, site) hash draw. Same seed, same schedule.
  uint64_t seed = 1;
  /// Probability in [0,1] that a given (round, site) attempt draws a fault;
  /// which fault is a second draw over {kill, hang, drop-frame,
  /// corrupt-crc, delay}.
  double rate = 0.0;
  /// Rounds before `first_round` are never faulted (lets caches warm).
  uint64_t first_round = 0;
  /// Guarantee mode for the acceptance bar: site s is force-killed exactly
  /// once, on the first attempt at round >= first_round + s, independent of
  /// `rate` — every worker dies at least once mid-serving.
  bool kill_each_site = false;
};

/// Construction-time knobs of the transport seam. Defaults preserve the
/// seed's simulated behavior exactly.
struct TransportOptions {
  /// Which backend executes rounds (kSim, kShm, kSocket).
  TransportBackend backend = TransportBackend::kSim;
  /// kSocket spawn mode: path of the pereach_worker binary. Empty resolves
  /// to "pereach_worker" next to the running executable.
  std::string worker_binary;
  /// kSocket connect mode: one endpoint per site ("unix:PATH" or
  /// "host:port"), in site order. Empty means spawn workers locally over
  /// socketpairs instead.
  std::vector<std::string> connect;
  /// Deadline for establishing a worker connection (connect + handshake).
  int connect_timeout_ms = 2000;
  /// Deadline for reading one complete reply frame. The budget covers the
  /// whole message, not each blocked read, so a worker dripping one byte
  /// per poll cannot stretch a round past it.
  int read_timeout_ms = 10000;
  /// Bounded retry count for ESTABLISHING a connection (spawn or connect +
  /// handshake) within one attempt at a site's round share.
  int max_retries = 2;
  /// Base backoff between establishment retries; attempt i sleeps about i
  /// times this long, jittered by `backoff_jitter_seed` so a multi-worker
  /// restart doesn't retry in lockstep.
  int retry_backoff_ms = 50;
  /// Seed of the per-connection backoff jitter (multiplier in [0.5, 1.5)).
  uint64_t backoff_jitter_seed = 1;
  /// Upper bound on one wire message's declared length. A peer announcing
  /// more is corrupt (or hostile) and is disconnected before any allocation.
  size_t max_frame_bytes = size_t{256} << 20;
  /// In-round failover: after a site's exchange fails, re-establish and
  /// re-dispatch that site's share up to this many extra times before
  /// degrading or failing. Rounds are idempotent given fragment state
  /// (DESIGN.md §13), so re-dispatch is always sound.
  int round_retries = 1;
  /// Whole-round wall deadline in SocketTransport::Execute, spanning every
  /// retry, backoff and re-establishment; also bounds the Stop() drain.
  /// <= 0 disables the cap.
  int round_deadline_ms = 20000;
  /// When a site's retries exhaust (or its breaker is open), evaluate that
  /// fragment's RoundSpec locally on the coordinator's own fragment copy
  /// via site_runtime::RunSiteRound instead of failing the round. Answers
  /// are bit-identical by construction; the batch completes.
  bool degrade_local = true;
  /// Consecutive failures on one connection that trip its circuit breaker
  /// open (<= 0 disables the breaker).
  int breaker_threshold = 3;
  /// How long an open breaker rejects attempts before letting one probe
  /// through (half-open).
  int breaker_open_ms = 200;
  /// Deterministic fault injection (off by default).
  FaultPlan fault_plan;
};

/// What a round asks every listed site to do. The simulated backend ignores
/// the encoding and runs the engine's closure directly; the shm and socket
/// backends ship `broadcast` and the worker-side decoder
/// (site_runtime::RunSiteRound) reproduces the closure from it.
enum class RoundKind : uint8_t {
  kBatchEval = 0,   // multiplexed localEval/localEvald/localEvalr batch
  kReachRows = 1,   // refresh: closure boundary rows (BoundaryReachIndex)
  kDistRows = 2,    // refresh: weighted boundary rows (BoundaryDistIndex)
  kRpqRows = 3,     // refresh: product boundary rows (BoundaryRpqIndex)
  kReachSweep = 4,  // per-query endpoint sweeps, reach indexed path
  kDistSweep = 5,   // per-query endpoint sweeps, dist indexed path
  kRpqSweep = 6,    // per-query endpoint sweeps, rpq indexed path
};

struct RoundSpec {
  RoundKind kind = RoundKind::kBatchEval;
  /// Kind-specific scalar: the EquationForm for kBatchEval, unused
  /// otherwise. Everything else a worker needs is derived from `broadcast`.
  uint8_t aux = 0;
  /// The round's broadcast payload (shipped verbatim to every listed site).
  std::vector<uint8_t> broadcast;
  /// Bytes charged to the modeled traffic books per site. Usually
  /// broadcast.size(); the rows-refresh rounds keep the seed's 1-byte
  /// "please send rows" convention while shipping an empty payload, so the
  /// modeled numbers stay bit-identical across backends. Envelope bytes
  /// (kind, aux, framing, CRC) are never accounted — the model charges
  /// payloads, not transport overhead.
  size_t accounted_broadcast_bytes = 0;
};

// --- Wire framing (kSocket) -------------------------------------------------
//
// A connection carries a sequence of messages, each:
//
//   varint body_length | body bytes | u32 CRC32(body)
//
// body_length is capped by TransportOptions::max_frame_bytes before any
// allocation, and the CRC gate means decoders past this layer only ever see
// byte-exact copies of what the peer encoded — residual corruption is a
// software bug, not a transport hazard. Message bodies start with a
// WireMessage tag; replies start with a status byte. See DESIGN.md §13.

inline constexpr uint8_t kWireVersion = 1;

enum class WireMessage : uint8_t {
  kHello = 0,     // u8 version, varint site, fragment bytes -> ok reply
  kRound = 1,     // u8 kind, u8 aux, broadcast bytes -> ok reply + payload
  kSync = 2,      // fragment bytes (post-update state) -> ok reply
  kShutdown = 3,  // empty                              -> ok reply, then exit
};

/// CRC32 (IEEE, reflected) over `size` bytes — the per-message integrity
/// gate of the socket framing. Table-driven, no hardware or library deps.
uint32_t WireCrc32(const uint8_t* data, size_t size);

/// Writes one framed message. `timeout_ms` bounds the WHOLE write — every
/// blocked send shares one deadline (<= 0: block indefinitely). Fails with
/// Internal on a closed or stuck peer; never raises SIGPIPE.
Status WriteWireMessage(int fd, const std::vector<uint8_t>& body,
                        int timeout_ms);

/// Reads one framed message into `*body`. `timeout_ms` bounds the WHOLE
/// message — a peer dripping one byte per poll cannot stretch it (<= 0:
/// block indefinitely). Fails with Internal on EOF/timeout and Corruption
/// on an oversized length or CRC mismatch.
Status ReadWireMessage(int fd, int timeout_ms, size_t max_frame_bytes,
                       std::vector<uint8_t>* body);

// --- The transport seam -----------------------------------------------------

/// One site's work in a simulated round: the engine's closure over the
/// coordinator-resident fragment.
using SiteFn = std::function<std::vector<uint8_t>(const Fragment&)>;

/// Monotonic recovery counters plus the breaker gauge, sampled lock-free.
/// In-process backends report all zeros; QueryServer::Metrics() imports
/// these into the server_transport_* metric families.
struct TransportHealth {
  uint64_t round_retries = 0;        // in-round re-dispatch attempts
  uint64_t worker_respawns = 0;      // re-establishments after first Hello
  uint64_t degraded_site_rounds = 0; // site-rounds evaluated degrade_local
  uint64_t breakers_open = 0;        // connections currently open/half-open
};

/// Executes communication rounds for a Cluster. Implementations are
/// thread-safe: the server's per-class dispatchers run overlapping rounds
/// against one transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Runs one round on `sites`: reply payload per listed site (in order)
  /// plus the maximum per-site compute time, for the modeled clock. On any
  /// site failure (dead/hung worker, corrupt frame) returns a non-OK status
  /// and the round's replies must not be used; in-process backends never
  /// fail. `sim_fn` is what the simulated backend runs; the others decode
  /// `spec` instead.
  virtual Status Execute(const std::vector<SiteId>& sites,
                         const RoundSpec& spec, const SiteFn& sim_fn,
                         std::vector<std::vector<uint8_t>>* replies,
                         double* max_compute_ms) = 0;

  /// Re-ships every fragment's post-update state to its site (worker-held
  /// fragment copies go stale when IncrementalReachIndex applies edges).
  /// No-op for kSim, which reads the coordinator's fragments directly. A
  /// site that cannot be synced is marked dead so its next round
  /// re-establishes with a fresh Hello — stale answers are impossible
  /// either way. Must not overlap with in-flight rounds (the server calls
  /// it under the writer-held epoch gate).
  virtual Status SyncFragments() { return Status::OK(); }

  /// Tears down connections and worker processes. Idempotent; also run by
  /// the destructor.
  virtual void Shutdown() {}

  /// kSocket spawn mode: pids of the live worker processes (test hook for
  /// failure injection). Empty for other backends/modes.
  virtual std::vector<int> WorkerPidsForTest() { return {}; }

  /// Recovery counters and breaker state (zeros for in-process backends).
  virtual TransportHealth Health() const { return {}; }
};

/// Builds the backend `options.backend` selects. `fragmentation` and `pool`
/// must outlive the transport.
std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const Fragmentation* fragmentation,
                                         ThreadPool* pool);

/// The simulated backend, unconditionally — Cluster::Round keeps the
/// baselines' bespoke closures on it regardless of the serving backend.
std::unique_ptr<Transport> MakeSimTransport(const Fragmentation* fragmentation,
                                            ThreadPool* pool);

}  // namespace pereach

#endif  // PEREACH_NET_TRANSPORT_H_
