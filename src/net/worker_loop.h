#ifndef PEREACH_NET_WORKER_LOOP_H_
#define PEREACH_NET_WORKER_LOOP_H_

namespace pereach {

/// The pereach_worker protocol loop: serves one coordinator connection on
/// `fd` until the peer disconnects or sends kShutdown, then returns (the fd
/// is closed either way). Hosts one fragment (installed by kHello, replaced
/// by kSync — each install resets the standing FragmentContext) and answers
/// kRound requests via RunSiteRound. Crash-safe by construction: every
/// ingress byte goes through CRC-gated framing plus tolerant decoding, so a
/// malformed message produces an error reply (or a dropped connection), never
/// a worker abort. Workers are deliberately stateless beyond the installed
/// fragment: the coordinator's supervisor can SIGKILL and respawn one at any
/// point and the fresh Hello (re-shipping the current fragment snapshot)
/// fully reconstructs it — the property the self-healing transport
/// (DESIGN.md §13.2) leans on. Shared by the pereach_worker binary (tools/)
/// and by in-process fake-worker threads in the failure-injection tests.
void ServeConnection(int fd);

}  // namespace pereach

#endif  // PEREACH_NET_WORKER_LOOP_H_
