#include "src/net/metrics.h"

#include <cstdio>

namespace pereach {

std::string RunMetrics::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "wall=%.2fms modeled=%.2fms traffic=%.3fMB messages=%zu "
                "rounds=%zu visits(total=%zu,max/site=%zu)",
                wall_ms, modeled_ms, traffic_mb(), messages, rounds,
                TotalVisits(), MaxVisits());
  return buf;
}

void RunMetrics::Accumulate(const RunMetrics& other) {
  wall_ms += other.wall_ms;
  modeled_ms += other.modeled_ms;
  traffic_bytes += other.traffic_bytes;
  messages += other.messages;
  rounds += other.rounds;
  queries += other.queries;
  if (site_visits.size() < other.site_visits.size()) {
    site_visits.resize(other.site_visits.size(), 0);
  }
  for (size_t i = 0; i < other.site_visits.size(); ++i) {
    site_visits[i] += other.site_visits[i];
  }
}

void RunMetrics::ScaleDown(size_t n) {
  if (n == 0) return;
  wall_ms /= static_cast<double>(n);
  modeled_ms /= static_cast<double>(n);
  traffic_bytes /= n;
  messages /= n;
  rounds /= n;
  queries = (queries + n - 1) / n;
  for (size_t& v : site_visits) v /= n;
}

}  // namespace pereach
