#ifndef PEREACH_NET_CLUSTER_H_
#define PEREACH_NET_CLUSTER_H_

#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/net/metrics.h"
#include "src/net/transport.h"
#include "src/util/status.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace pereach {

/// Cluster: one site per fragment plus a coordinator. HOW a round executes
/// is delegated to a Transport (DESIGN.md §13) chosen at construction:
/// simulated in-process closures (the default — "threads simulate
/// partitions"), in-process shared-memory workers, or real pereach_worker
/// processes over sockets. The cluster keeps the books either way: per-site
/// visit counts, traffic, message counts, and a modeled response time
/// combining per-site compute with the NetworkModel — modeled accounting is
/// byte-identical across backends because it charges the round's payloads,
/// never the transport envelope.
///
/// The three-phase pattern of the paper (§2.2) maps onto:
///   cluster.BeginQuery();
///   auto replies = cluster.RoundAll(query_bytes, local_eval);   // phases 1+2
///   ... assemble at the coordinator ...                         // phase 3
///   RunMetrics m = cluster.EndQuery();
///
/// A metrics window may also cover a whole query batch: the engine layer
/// (src/engine) multiplexes k queries into one broadcast payload and one
/// length-prefixed reply frame per query (Encoder::PutFrame /
/// Decoder::GetFrame), so a batch costs one Round — the accounting below
/// charges 2 latencies once per round, not per query.
///
/// Concurrency: metrics windows are per-thread. Each BeginQuery opens a
/// window owned by the calling thread; Round / Record* / SetQueriesServed
/// charge the caller's open window, and EndQuery closes it and returns its
/// metrics — the ONLY way to read a window's books (a last-completed-window
/// accessor would be a last-writer race under concurrent windows, so there
/// deliberately isn't one). Any number of threads may therefore run
/// interleaved windows over one cluster (the QueryServer's overlapping
/// per-class batches) without corrupting each other's books. A window's
/// calls must all come from the thread that opened it — site work still
/// runs on pool threads or workers, but the accounting itself happens on
/// the window's thread after the round joins.
class Cluster {
 public:
  /// `fragmentation` must outlive the cluster. `num_threads` == 0 picks
  /// hardware concurrency. `transport` selects the serving backend;
  /// defaults preserve the simulated seed behavior exactly.
  Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
          size_t num_threads = 0, TransportOptions transport = {});

  ~Cluster();

  const Fragmentation& fragmentation() const { return *fragmentation_; }
  const NetworkModel& network() const { return net_; }

  /// Opens a fresh metrics window for the calling thread and starts its wall
  /// clock. The calling thread must not already have a window open.
  void BeginQuery();

  /// Marks the number of queries the calling thread's open window serves.
  /// Batch engines call this before EndQuery so metrics amortization
  /// (PerQueryModeledMs) is correct.
  void SetQueriesServed(size_t n);

  /// Stops the wall clock, closes the calling thread's window and returns
  /// its metrics. Windows that never declared a batch size count as one
  /// query.
  RunMetrics EndQuery();

  /// One SIMULATED communication round touching `sites`: the coordinator
  /// sends `broadcast_bytes` to each listed site (one message each), every
  /// site runs `fn` on its fragment in parallel on the pool and returns a
  /// reply payload (one message each; empty replies send no message).
  /// Records one visit per listed site and advances the modeled clock by
  ///   2·latency + max(site compute) + transfer(all bytes of the round).
  /// Always executes on the simulated backend regardless of the serving
  /// transport — the baselines' bespoke closures have no wire encoding, and
  /// their modeled numbers must not depend on the backend under test.
  std::vector<std::vector<uint8_t>> Round(
      const std::vector<SiteId>& sites, size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Round() over all sites.
  std::vector<std::vector<uint8_t>> RoundAll(
      size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// One round on the SERVING transport: the simulated backend runs `fn`
  /// (bit-identical to Round); the shm/socket backends ship `spec` and the
  /// worker-side decoder reproduces it. Fails — instead of aborting — when
  /// a worker is dead, hung past its read deadline, or framed garbage; the
  /// books are only charged on success, and the failed connection
  /// re-establishes on its next round.
  Result<std::vector<std::vector<uint8_t>>> TryRound(
      const std::vector<SiteId>& sites, const RoundSpec& spec,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// TryRound() over all sites.
  Result<std::vector<std::vector<uint8_t>>> TryRoundAll(
      const RoundSpec& spec,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Re-ships post-update fragment state to transports that hold copies
  /// (no-op on the simulated backend). Call after mutating the graph, under
  /// the same exclusion that gates evaluations (the server's writer-held
  /// epoch gate) so no round is in flight.
  Status SyncFragments();

  /// Adds coordinator-side compute (assembling) to the modeled clock.
  void AddCoordinatorWorkMs(double ms);

  // --- low-level recorders for engines with bespoke communication shapes
  //     (the message-passing baseline and MapReduce) ---

  /// Records `n` message deliveries to `site` (visit semantics: a visit is
  /// one communication addressed to a site, matching the paper's counting
  /// for the message-passing baseline).
  void RecordVisits(SiteId site, size_t n);

  /// Records messages and their payload bytes on the wire.
  void RecordTraffic(size_t bytes, size_t num_messages);

  /// Advances the modeled clock by one bespoke round.
  void RecordModeledRound(double max_site_compute_ms, size_t round_bytes);

  ThreadPool* pool() { return pool_.get(); }

  /// The serving transport (test hook: WorkerPidsForTest, fault injection).
  Transport* transport() { return transport_.get(); }

  /// Const view for metric sampling (Transport::Health is const).
  const Transport* transport() const { return transport_.get(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(Cluster);

  struct Window {
    RunMetrics metrics;
    StopWatch watch;
  };

  /// Executes one round on `t` and, on success, charges the caller's open
  /// window with the seed's exact accounting.
  Result<std::vector<std::vector<uint8_t>>> RoundInternal(
      Transport* t, const std::vector<SiteId>& sites, const RoundSpec& spec,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  std::vector<SiteId> AllSites() const;

  /// The calling thread's open window. CHECK-fails when the thread has no
  /// window (a Round/Record outside BeginQuery..EndQuery).
  Window& ActiveWindowLocked() PEREACH_REQUIRES(mu_);

  const Fragmentation* fragmentation_;
  NetworkModel net_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Transport> sim_transport_;
  std::unique_ptr<Transport> transport_;

  mutable Mutex mu_{LockRank::kClusterMetrics};
  std::unordered_map<std::thread::id, Window> windows_ PEREACH_GUARDED_BY(mu_);
};

}  // namespace pereach

#endif  // PEREACH_NET_CLUSTER_H_
