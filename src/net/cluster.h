#ifndef PEREACH_NET_CLUSTER_H_
#define PEREACH_NET_CLUSTER_H_

#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/net/metrics.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace pereach {

/// Simulated cluster: one site per fragment plus a coordinator. Sites are
/// executed by a thread pool ("threads simulate partitions"); every payload
/// crossing a site boundary is a real byte buffer, and the cluster keeps the
/// books: per-site visit counts, traffic, message counts, and a modeled
/// response time combining measured per-site compute with the NetworkModel.
///
/// The three-phase pattern of the paper (§2.2) maps onto:
///   cluster.BeginQuery();
///   auto replies = cluster.RoundAll(query_bytes, local_eval);   // phases 1+2
///   ... assemble at the coordinator ...                         // phase 3
///   RunMetrics m = cluster.EndQuery();
///
/// A metrics window may also cover a whole query batch: the engine layer
/// (src/engine) multiplexes k queries into one broadcast payload and one
/// length-prefixed reply frame per query (Encoder::PutFrame /
/// Decoder::GetFrame), so a batch costs one Round — the accounting below
/// charges 2 latencies once per round, not per query.
///
/// Concurrency: metrics windows are per-thread. Each BeginQuery opens a
/// window owned by the calling thread; Round / Record* / SetQueriesServed
/// charge the caller's open window, and EndQuery closes it and returns its
/// metrics. Any number of threads may therefore run interleaved windows over
/// one cluster (the QueryServer's overlapping per-class batches) without
/// corrupting each other's books. A window's calls must all come from the
/// thread that opened it — site closures still run on pool threads, but the
/// accounting itself happens on the window's thread after the round joins.
class Cluster {
 public:
  /// `fragmentation` must outlive the cluster. `num_threads` == 0 picks
  /// hardware concurrency.
  Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
          size_t num_threads = 0);

  const Fragmentation& fragmentation() const { return *fragmentation_; }
  const NetworkModel& network() const { return net_; }

  /// Opens a fresh metrics window for the calling thread and starts its wall
  /// clock. The calling thread must not already have a window open.
  void BeginQuery();

  /// Marks the number of queries the calling thread's open window serves.
  /// Batch engines call this before EndQuery so metrics amortization
  /// (PerQueryModeledMs) is correct.
  void SetQueriesServed(size_t n);

  /// Stops the wall clock, closes the calling thread's window and returns
  /// its metrics. Windows that never declared a batch size count as one
  /// query. The result is also stored for metrics().
  RunMetrics EndQuery();

  /// One communication round touching `sites`: the coordinator sends
  /// `broadcast_bytes` to each listed site (one message each), every site
  /// runs `fn` on its fragment in parallel on the pool and returns a reply
  /// payload (one message each; empty replies send no message).
  /// Records one visit per listed site and advances the modeled clock by
  ///   2·latency + max(site compute) + transfer(all bytes of the round).
  std::vector<std::vector<uint8_t>> Round(
      const std::vector<SiteId>& sites, size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Round() over all sites.
  std::vector<std::vector<uint8_t>> RoundAll(
      size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Adds coordinator-side compute (assembling) to the modeled clock.
  void AddCoordinatorWorkMs(double ms);

  // --- low-level recorders for engines with bespoke communication shapes
  //     (the message-passing baseline and MapReduce) ---

  /// Records `n` message deliveries to `site` (visit semantics: a visit is
  /// one communication addressed to a site, matching the paper's counting
  /// for the message-passing baseline).
  void RecordVisits(SiteId site, size_t n);

  /// Records messages and their payload bytes on the wire.
  void RecordTraffic(size_t bytes, size_t num_messages);

  /// Advances the modeled clock by one bespoke round.
  void RecordModeledRound(double max_site_compute_ms, size_t round_bytes);

  /// Metrics of the most recently completed window. Single-threaded
  /// convenience only: under concurrent windows, use the value EndQuery
  /// returns — another thread's EndQuery may overwrite this between your
  /// EndQuery and the read.
  RunMetrics metrics() const;

  ThreadPool* pool() { return pool_.get(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(Cluster);

  struct Window {
    RunMetrics metrics;
    StopWatch watch;
  };

  /// The calling thread's open window. CHECK-fails when the thread has no
  /// window (a Round/Record outside BeginQuery..EndQuery).
  Window& ActiveWindowLocked() PEREACH_REQUIRES(mu_);

  const Fragmentation* fragmentation_;
  NetworkModel net_;
  std::unique_ptr<ThreadPool> pool_;

  mutable Mutex mu_{LockRank::kClusterMetrics};
  std::unordered_map<std::thread::id, Window> windows_ PEREACH_GUARDED_BY(mu_);
  RunMetrics last_metrics_ PEREACH_GUARDED_BY(mu_);
};

}  // namespace pereach

#endif  // PEREACH_NET_CLUSTER_H_
