#ifndef PEREACH_NET_CLUSTER_H_
#define PEREACH_NET_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/net/metrics.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace pereach {

/// Simulated cluster: one site per fragment plus a coordinator. Sites are
/// executed by a thread pool ("threads simulate partitions"); every payload
/// crossing a site boundary is a real byte buffer, and the cluster keeps the
/// books: per-site visit counts, traffic, message counts, and a modeled
/// response time combining measured per-site compute with the NetworkModel.
///
/// The three-phase pattern of the paper (§2.2) maps onto:
///   cluster.BeginQuery();
///   auto replies = cluster.RoundAll(query_bytes, local_eval);   // phases 1+2
///   ... assemble at the coordinator ...                         // phase 3
///   cluster.EndQuery();
///
/// A metrics window may also cover a whole query batch: the engine layer
/// (src/engine) multiplexes k queries into one broadcast payload and one
/// length-prefixed reply frame per query (Encoder::PutFrame /
/// Decoder::GetFrame), so a batch costs one Round — the accounting below
/// charges 2 latencies once per round, not per query.
class Cluster {
 public:
  /// `fragmentation` must outlive the cluster. `num_threads` == 0 picks
  /// hardware concurrency.
  Cluster(const Fragmentation* fragmentation, const NetworkModel& net,
          size_t num_threads = 0);

  const Fragmentation& fragmentation() const { return *fragmentation_; }
  const NetworkModel& network() const { return net_; }

  /// Resets metrics and starts the wall clock for one query.
  void BeginQuery();

  /// Marks the number of queries the open window serves. Batch engines call
  /// this before EndQuery so metrics() amortization (PerQueryModeledMs) is
  /// correct on the cluster itself, not only on copies the engine hands out.
  void SetQueriesServed(size_t n) { metrics_.queries = n; }

  /// Stops the wall clock; metrics() is complete afterwards. Windows that
  /// never declared a batch size count as one query.
  void EndQuery();

  /// One communication round touching `sites`: the coordinator sends
  /// `broadcast_bytes` to each listed site (one message each), every site
  /// runs `fn` on its fragment in parallel on the pool and returns a reply
  /// payload (one message each; empty replies send no message).
  /// Records one visit per listed site and advances the modeled clock by
  ///   2·latency + max(site compute) + transfer(all bytes of the round).
  std::vector<std::vector<uint8_t>> Round(
      const std::vector<SiteId>& sites, size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Round() over all sites.
  std::vector<std::vector<uint8_t>> RoundAll(
      size_t broadcast_bytes,
      const std::function<std::vector<uint8_t>(const Fragment&)>& fn);

  /// Adds coordinator-side compute (assembling) to the modeled clock.
  void AddCoordinatorWorkMs(double ms);

  // --- low-level recorders for engines with bespoke communication shapes
  //     (the message-passing baseline and MapReduce) ---

  /// Records `n` message deliveries to `site` (visit semantics: a visit is
  /// one communication addressed to a site, matching the paper's counting
  /// for the message-passing baseline).
  void RecordVisits(SiteId site, size_t n);

  /// Records messages and their payload bytes on the wire.
  void RecordTraffic(size_t bytes, size_t num_messages);

  /// Advances the modeled clock by one bespoke round.
  void RecordModeledRound(double max_site_compute_ms, size_t round_bytes);

  const RunMetrics& metrics() const { return metrics_; }

  ThreadPool* pool() { return pool_.get(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(Cluster);

  const Fragmentation* fragmentation_;
  NetworkModel net_;
  std::unique_ptr<ThreadPool> pool_;
  RunMetrics metrics_;
  StopWatch query_watch_;
};

}  // namespace pereach

#endif  // PEREACH_NET_CLUSTER_H_
