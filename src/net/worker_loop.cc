#include "src/net/worker_loop.h"

#include <unistd.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/fragment_context.h"
#include "src/engine/site_runtime.h"
#include "src/net/transport.h"
#include "src/util/serialization.h"
#include "src/util/status.h"
#include "src/util/timer.h"

namespace pereach {

namespace {

Status SendOkReply(int fd, double compute_ms,
                   const std::vector<uint8_t>& payload) {
  Encoder body;
  body.PutU8(1);
  body.PutDouble(compute_ms);
  body.PutVarint(payload.size());
  body.PutRaw(payload);
  return WriteWireMessage(fd, body.buffer(), /*timeout_ms=*/-1);
}

Status SendErrorReply(int fd, const Status& error) {
  Encoder body;
  body.PutU8(0);
  body.PutString(error.ToString());
  return WriteWireMessage(fd, body.buffer(), /*timeout_ms=*/-1);
}

/// Decodes the fragment bytes that follow the fixed head of a kHello/kSync
/// body. The CRC already vouched for transport integrity, so a decode
/// failure here means a software (encoding) mismatch — still reported as a
/// reply, not an abort.
Result<Fragment> DecodeFragmentTail(const std::vector<uint8_t>& body,
                                    size_t offset) {
  Decoder dec(body.data() + offset, body.size() - offset,
              Decoder::OnError::kStatus);
  Fragment f = Fragment::Deserialize(&dec);
  if (!dec.ok()) return dec.status();
  if (!dec.Done()) {
    return Status::Corruption("worker: trailing bytes after fragment");
  }
  return f;
}

}  // namespace

void ServeConnection(int fd) {
  const size_t max_frame_bytes = TransportOptions{}.max_frame_bytes;
  std::optional<Fragment> fragment;
  std::unique_ptr<FragmentContext> ctx;

  for (;;) {
    std::vector<uint8_t> body;
    // Workers block indefinitely between requests; deadlines are the
    // coordinator's job. EOF (coordinator gone) or framing corruption ends
    // the connection.
    if (!ReadWireMessage(fd, /*timeout_ms=*/-1, max_frame_bytes, &body).ok()) {
      break;
    }

    // Each request resolves to exactly one reply: either an ok envelope
    // (compute time + payload) or an error envelope carrying the status.
    // A malformed request is an ERROR REPLY, never a worker abort — the
    // connection stays up and the next request is served normally.
    std::optional<std::pair<double, std::vector<uint8_t>>> ok_reply;
    Status reply_status = Status::OK();
    bool shutdown = false;

    Decoder dec(body, Decoder::OnError::kStatus);
    const uint8_t type = dec.GetU8();
    if (!dec.ok()) {
      reply_status = Status::Corruption("worker: empty message");
    } else {
      switch (type) {
        case static_cast<uint8_t>(WireMessage::kHello):
        case static_cast<uint8_t>(WireMessage::kSync): {
          if (type == static_cast<uint8_t>(WireMessage::kHello)) {
            const uint8_t version = dec.GetU8();
            (void)dec.GetVarint();  // site id: diagnostic only
            if (!dec.ok()) {
              reply_status = dec.status();
              break;
            }
            if (version != kWireVersion) {
              reply_status = Status::InvalidArgument(
                  "worker: wire version mismatch: got " +
                  std::to_string(version) + ", want " +
                  std::to_string(kWireVersion));
              break;
            }
          } else if (!fragment.has_value()) {
            reply_status = Status::InvalidArgument("worker: sync before hello");
            break;
          }
          StopWatch watch;
          Result<Fragment> f = DecodeFragmentTail(body, dec.position());
          if (!f.ok()) {
            reply_status = f.status();
            break;
          }
          fragment.emplace(std::move(f).value());
          ctx = std::make_unique<FragmentContext>();
          ok_reply.emplace(watch.ElapsedMs(), std::vector<uint8_t>{});
          break;
        }
        case static_cast<uint8_t>(WireMessage::kRound): {
          const uint8_t kind = dec.GetU8();
          const uint8_t aux = dec.GetU8();
          if (!dec.ok()) {
            reply_status = dec.status();
            break;
          }
          if (!fragment.has_value()) {
            reply_status =
                Status::InvalidArgument("worker: round before hello");
            break;
          }
          if (kind > static_cast<uint8_t>(RoundKind::kRpqSweep)) {
            reply_status = Status::Corruption("worker: unknown round kind");
            break;
          }
          const std::vector<uint8_t> broadcast(
              body.begin() + static_cast<ptrdiff_t>(dec.position()),
              body.end());
          StopWatch watch;
          Result<std::vector<uint8_t>> r =
              RunSiteRound(*fragment, ctx.get(), static_cast<RoundKind>(kind),
                           aux, broadcast);
          const double compute_ms = watch.ElapsedMs();
          if (!r.ok()) {
            reply_status = r.status();
            break;
          }
          ok_reply.emplace(compute_ms, std::move(r).value());
          break;
        }
        case static_cast<uint8_t>(WireMessage::kShutdown):
          shutdown = true;
          break;
        default:
          reply_status = Status::Corruption("worker: unknown message type");
          break;
      }
    }

    if (shutdown) {
      (void)SendOkReply(fd, 0.0, {});
      break;
    }
    const Status sent = ok_reply.has_value()
                            ? SendOkReply(fd, ok_reply->first, ok_reply->second)
                            : SendErrorReply(fd, reply_status);
    if (!sent.ok()) break;
  }
  ::close(fd);
}

}  // namespace pereach
