#ifndef PEREACH_BASELINES_DIS_RPQ_SUCIU_H_
#define PEREACH_BASELINES_DIS_RPQ_SUCIU_H_

#include "src/core/answer.h"
#include "src/net/cluster.h"
#include "src/regex/query_automaton.h"

namespace pereach {

/// disRPQd (§7): a variant of Suciu's distributed regular path query
/// algorithm [30]. Differences from disRPQ that the paper calls out:
///  - every site ships its *full* boundary accessibility relation as dense
///    bit matrices over (in-node, state) x (virtual node, state) — traffic
///    is Θ(n²) in the boundary size instead of only the reachable part;
///  - after assembling, the coordinator distributes the verdict back to the
///    sites and collects acknowledgements, so each site is visited *twice*.
QueryAnswer DisRpqSuciu(Cluster* cluster, NodeId s, NodeId t,
                        const QueryAutomaton& automaton);

/// Engine entry point: runs the evaluation inside an already-open metrics
/// window (Cluster::BeginQuery), leaving the answer's own metrics empty.
/// Used by SuciuRpqEngine to run several queries in one window.
QueryAnswer RunDisRpqSuciu(Cluster* cluster, NodeId s, NodeId t,
                           const QueryAutomaton& automaton);

}  // namespace pereach

#endif  // PEREACH_BASELINES_DIS_RPQ_SUCIU_H_
