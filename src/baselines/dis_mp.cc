#include "src/baselines/dis_mp.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "src/util/timer.h"

namespace pereach {

namespace {

// Wire cost of one activation message: a varint node id plus envelope.
constexpr size_t kMessageBytes = 8;
// Wire cost of one "idle" control message.
constexpr size_t kIdleBytes = 4;
// Master-side handling cost per routed message. The master receives every
// virtual-node report and redirects it to the owner site one message at a
// time — the serialization of parallelizable work that the paper names as
// disReachm's fundamental cost (§1, §7 Exp-1). 20 us models a lightweight
// RPC dispatch.
constexpr double kMasterPerMessageMs = 0.02;

/// Per-worker BFS state for one query.
struct WorkerState {
  std::vector<bool> active;          // per local real node
  std::vector<bool> virtual_reported;  // per local virtual node
};

}  // namespace

QueryAnswer DisReachMp(Cluster* cluster, const ReachQuery& query) {
  cluster->BeginQuery();
  QueryAnswer answer = RunDisReachMp(cluster, query.source, query.target);
  answer.metrics = cluster->EndQuery();
  return answer;
}

QueryAnswer RunDisReachMp(Cluster* cluster, NodeId s, NodeId t) {
  const Fragmentation& frag = cluster->fragmentation();
  const size_t k = frag.num_fragments();

  QueryAnswer answer;
  if (s == t) {
    answer.reachable = true;
    answer.distance = 0;
    return answer;
  }

  std::vector<WorkerState> workers(k);
  for (SiteId i = 0; i < k; ++i) {
    workers[i].active.assign(frag.fragment(i).num_local(), false);
    workers[i].virtual_reported.assign(frag.fragment(i).num_virtual(), false);
  }

  // Initial broadcast of q_r(s, t): one visit and one small message per site.
  for (SiteId i = 0; i < k; ++i) cluster->RecordVisits(i, 1);
  cluster->RecordTraffic(k * kMessageBytes, k);
  cluster->RecordModeledRound(0.0, k * kMessageBytes);

  // inbox[i]: global node ids the master delivers to site i this superstep.
  std::vector<std::vector<NodeId>> inbox(k);
  inbox[frag.site_of(s)].push_back(s);

  std::atomic<bool> found{false};
  bool any_message = true;

  while (any_message && !found.load(std::memory_order_relaxed)) {
    // --- worker phase: local BFS from newly activated nodes, in parallel.
    std::vector<std::vector<NodeId>> outbox(k);  // reached virtual nodes
    std::vector<double> compute_ms(k, 0.0);
    cluster->pool()->ParallelFor(k, [&](size_t i) {
      if (inbox[i].empty()) return;
      StopWatch watch;
      const Fragment& f = frag.fragment(i);
      WorkerState& w = workers[i];
      std::deque<NodeId> queue;
      for (NodeId global : inbox[i]) {
        const NodeId local = f.ToLocal(global);
        PEREACH_CHECK_NE(local, kInvalidNode);
        PEREACH_CHECK(!f.IsVirtual(local));
        if (!w.active[local]) {
          w.active[local] = true;
          queue.push_back(local);
        }
      }
      while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        if (f.ToGlobal(u) == t) {
          found.store(true, std::memory_order_relaxed);
          // Keep draining: the superstep completes, as in Pregel.
        }
        for (NodeId v : f.local_graph().OutNeighbors(u)) {
          if (f.IsVirtual(v)) {
            const size_t vi = v - f.num_local();
            if (!w.virtual_reported[vi]) {
              w.virtual_reported[vi] = true;
              outbox[i].push_back(f.ToGlobal(v));
            }
          } else if (!w.active[v]) {
            w.active[v] = true;
            queue.push_back(v);
          }
        }
      }
      compute_ms[i] = watch.ElapsedMs();
    });

    // --- master phase: route reports to owner sites; count messages/visits.
    size_t round_bytes = 0;
    size_t worker_messages = 0;
    double max_compute = 0.0;
    std::vector<std::vector<NodeId>> next_inbox(k);
    for (SiteId i = 0; i < k; ++i) {
      max_compute = std::max(max_compute, compute_ms[i]);
      if (!inbox[i].empty()) {
        // Idle/progress control message back to the master.
        round_bytes += kIdleBytes;
        ++worker_messages;
      }
      for (NodeId global : outbox[i]) {
        // Worker -> master report.
        round_bytes += kMessageBytes;
        ++worker_messages;
        const SiteId owner = frag.site_of(global);
        next_inbox[owner].push_back(global);
      }
    }
    // Master -> worker redirects; each delivered id is one visit (this is
    // the count the paper reports as "visits" for disReachm).
    size_t delivered = 0;
    for (SiteId i = 0; i < k; ++i) {
      if (!next_inbox[i].empty()) {
        cluster->RecordVisits(i, next_inbox[i].size());
        round_bytes += next_inbox[i].size() * kMessageBytes;
        delivered += next_inbox[i].size();
      }
    }
    cluster->RecordTraffic(round_bytes, worker_messages + delivered);
    cluster->RecordModeledRound(
        max_compute + (worker_messages + delivered) * kMasterPerMessageMs,
        round_bytes);

    any_message = delivered > 0;
    inbox = std::move(next_inbox);
  }

  answer.reachable = found.load(std::memory_order_relaxed);
  return answer;
}

}  // namespace pereach
