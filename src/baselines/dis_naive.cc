#include "src/baselines/dis_naive.h"

#include "src/baselines/centralized.h"
#include "src/fragment/fragment.h"
#include "src/util/timer.h"

namespace pereach {

/// Ships every fragment to the coordinator and reassembles G, charging the
/// cluster for the traffic; returns the rebuilt graph.
Graph ShipAndReassemble(Cluster* cluster, size_t query_bytes) {
  const std::vector<std::vector<uint8_t>> payloads =
      cluster->RoundAll(query_bytes, [](const Fragment& f) {
        Encoder enc;
        f.Serialize(&enc);
        return enc.TakeBuffer();
      });
  StopWatch watch;
  Graph g = ReassembleGraph(payloads, cluster->fragmentation().num_nodes());
  cluster->AddCoordinatorWorkMs(watch.ElapsedMs());
  return g;
}

Graph ReassembleGraph(const std::vector<std::vector<uint8_t>>& payloads,
                      size_t num_nodes) {
  GraphBuilder b;
  b.AddNodes(num_nodes);
  for (const std::vector<uint8_t>& payload : payloads) {
    Decoder dec(payload);
    const Fragment f = Fragment::Deserialize(&dec);
    const Graph& local = f.local_graph();
    for (NodeId v = 0; v < f.num_local(); ++v) {
      b.SetLabel(f.ToGlobal(v), local.label(v));
    }
    // Every edge of G appears in exactly one fragment (its source's), either
    // as a local edge or as a cross edge to a virtual node.
    for (NodeId u = 0; u < f.num_local(); ++u) {
      const NodeId gu = f.ToGlobal(u);
      for (NodeId v : local.OutNeighbors(u)) {
        b.AddEdge(gu, f.ToGlobal(v));
      }
    }
  }
  return std::move(b).Build();
}

QueryAnswer DisReachNaive(Cluster* cluster, const ReachQuery& query) {
  QueryAnswer answer;
  cluster->BeginQuery();
  Encoder query_enc;
  query_enc.PutVarint(query.source);
  query_enc.PutVarint(query.target);
  const Graph g = ShipAndReassemble(cluster, query_enc.size());
  StopWatch watch;
  answer.reachable = CentralizedReach(g, query.source, query.target);
  cluster->AddCoordinatorWorkMs(watch.ElapsedMs());
  answer.metrics = cluster->EndQuery();
  return answer;
}

QueryAnswer DisDistNaive(Cluster* cluster, const BoundedReachQuery& query) {
  QueryAnswer answer;
  cluster->BeginQuery();
  Encoder query_enc;
  query_enc.PutVarint(query.source);
  query_enc.PutVarint(query.target);
  query_enc.PutVarint(query.bound);
  const Graph g = ShipAndReassemble(cluster, query_enc.size());
  StopWatch watch;
  const uint32_t dist = CentralizedDistance(g, query.source, query.target);
  answer.distance = dist == kInfDistance ? kInfWeight : dist;
  answer.reachable = dist != kInfDistance && dist <= query.bound;
  cluster->AddCoordinatorWorkMs(watch.ElapsedMs());
  answer.metrics = cluster->EndQuery();
  return answer;
}

QueryAnswer DisRpqNaive(Cluster* cluster, NodeId s, NodeId t,
                        const QueryAutomaton& automaton) {
  QueryAnswer answer;
  cluster->BeginQuery();
  Encoder query_enc;
  query_enc.PutVarint(s);
  query_enc.PutVarint(t);
  automaton.Serialize(&query_enc);
  const Graph g = ShipAndReassemble(cluster, query_enc.size());
  StopWatch watch;
  answer.reachable = CentralizedRegularReach(g, s, t, automaton);
  cluster->AddCoordinatorWorkMs(watch.ElapsedMs());
  answer.metrics = cluster->EndQuery();
  return answer;
}

}  // namespace pereach
