#ifndef PEREACH_BASELINES_DIS_MP_H_
#define PEREACH_BASELINES_DIS_MP_H_

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"

namespace pereach {

/// disReachm (§7): distributed BFS by message passing, following Pregel
/// [21]. One worker per fragment plus a master holding the fragment graph.
/// Nodes are active/inactive; in each superstep every worker propagates "T"
/// from its newly activated nodes through its fragment, reports reached
/// virtual nodes to the master, and the master redirects each report to the
/// owner of the node. Terminates with true as soon as t is activated, or
/// with false when every worker is idle.
///
/// Visit accounting matches the paper's: every activation message delivered
/// to a site counts as one visit (hence the hundreds of visits per site the
/// paper reports), plus one visit per site for the initial query broadcast.
/// Supersteps serialize: each costs a master round trip regardless of how
/// little work it carries — this is precisely the cost disReach avoids.
QueryAnswer DisReachMp(Cluster* cluster, const ReachQuery& query);

/// Engine entry point: runs the message-passing evaluation inside an
/// already-open metrics window (Cluster::BeginQuery), leaving the answer's
/// own metrics empty. Used by MessagePassingEngine to run several queries in
/// one window; DisReachMp wraps it for the single-query case.
QueryAnswer RunDisReachMp(Cluster* cluster, NodeId s, NodeId t);

}  // namespace pereach

#endif  // PEREACH_BASELINES_DIS_MP_H_
