#ifndef PEREACH_BASELINES_CENTRALIZED_H_
#define PEREACH_BASELINES_CENTRALIZED_H_

#include "src/graph/graph.h"
#include "src/regex/query_automaton.h"
#include "src/util/common.h"

namespace pereach {

/// Centralized (single-site) query evaluation [31] — used by the ship-all
/// baselines after reassembling the graph, and as the oracle in tests.

/// BFS reachability; s == t is true.
bool CentralizedReach(const Graph& g, NodeId s, NodeId t);

/// BFS distance; kInfDistance when unreachable.
uint32_t CentralizedDistance(const Graph& g, NodeId s, NodeId t);

/// Regular reachability by BFS over the implicit product of g with the
/// query automaton: O(|E| |E_q|) with 64-state masks. Semantics follow
/// §5.1: interior nodes matched by label, s/t matched by identity, paths of
/// length >= 1.
bool CentralizedRegularReach(const Graph& g, NodeId s, NodeId t,
                             const QueryAutomaton& automaton);

}  // namespace pereach

#endif  // PEREACH_BASELINES_CENTRALIZED_H_
