#include "src/baselines/dis_rpq_suciu.h"

#include <unordered_map>

#include "src/bes/bes.h"
#include "src/core/local_eval.h"
#include "src/util/bitset.h"
#include "src/util/timer.h"

namespace pereach {

namespace {

/// Always-dense wire format: one |var_table|-bit row per (in-node, state)
/// pair — aliases are *expanded* back into full rows, because [30] ships the
/// complete boundary relation without equation merging. This is the
/// n²-style traffic the paper contrasts disRPQ against.
void SerializeDense(const RegularPartialAnswer& pa, Encoder* enc) {
  enc->PutVarint(pa.var_table.size());
  for (const auto& [node, state] : pa.var_table) {
    enc->PutVarint(node);
    enc->PutU8(state);
  }
  // Rows by representative, for alias expansion.
  std::unordered_map<uint64_t, const RegularPartialAnswer::Equation*> by_rep;
  for (const RegularPartialAnswer::Equation& eq : pa.equations) {
    PEREACH_CHECK(!eq.is_aux);  // closure form only
    by_rep[PackNodeState(eq.var_global, eq.state)] = &eq;
  }

  const auto put_row = [&](NodeId var, uint8_t state,
                           const RegularPartialAnswer::Equation& eq) {
    enc->PutVarint(var);
    enc->PutU8(state);
    enc->PutU8(eq.has_true ? 1 : 0);
    Bitset row(pa.var_table.size());
    for (uint32_t i : eq.deps) row.Set(i);
    enc->PutBitset(row);
  };

  enc->PutVarint(pa.equations.size() + pa.aliases.size());
  for (const RegularPartialAnswer::Equation& eq : pa.equations) {
    put_row(eq.var_global, eq.state, eq);
  }
  for (const RegularPartialAnswer::Alias& a : pa.aliases) {
    auto it = by_rep.find(PackNodeState(a.rep_global, a.rep_state));
    PEREACH_CHECK(it != by_rep.end());
    put_row(a.var_global, a.state, *it->second);
  }
}

RegularPartialAnswer DeserializeDense(Decoder* dec) {
  RegularPartialAnswer pa;
  const size_t num_vars = dec->GetCount(2);
  pa.var_table.resize(num_vars);
  for (auto& [node, state] : pa.var_table) {
    node = static_cast<NodeId>(dec->GetVarint());
    state = dec->GetU8();
  }
  const size_t num_eq = dec->GetCount(4);
  pa.equations.resize(num_eq);
  for (RegularPartialAnswer::Equation& eq : pa.equations) {
    eq.var_global = static_cast<NodeId>(dec->GetVarint());
    eq.state = dec->GetU8();
    eq.has_true = dec->GetU8() != 0;
    const Bitset row = dec->GetBitset();
    row.ForEachSetBit(
        [&eq](size_t i) { eq.deps.push_back(static_cast<uint32_t>(i)); });
  }
  return pa;
}

}  // namespace

QueryAnswer DisRpqSuciu(Cluster* cluster, NodeId s, NodeId t,
                        const QueryAutomaton& automaton) {
  cluster->BeginQuery();
  QueryAnswer answer = RunDisRpqSuciu(cluster, s, t, automaton);
  answer.metrics = cluster->EndQuery();
  return answer;
}

QueryAnswer RunDisRpqSuciu(Cluster* cluster, NodeId s, NodeId t,
                           const QueryAutomaton& automaton) {
  QueryAnswer answer;

  // Visit 1: broadcast the automaton; sites compute and ship their full
  // boundary relations.
  Encoder query_enc;
  query_enc.PutVarint(s);
  query_enc.PutVarint(t);
  automaton.Serialize(&query_enc);
  const std::vector<std::vector<uint8_t>> replies = cluster->RoundAll(
      query_enc.size(), [s, t, &automaton](const Fragment& f) {
        Encoder enc;
        SerializeDense(
            LocalEvalRegular(f, automaton, s, t, EquationForm::kClosure),
            &enc);
        return enc.TakeBuffer();
      });

  StopWatch assemble_watch;
  BooleanEquationSystem bes;
  for (const std::vector<uint8_t>& reply : replies) {
    Decoder dec(reply);
    DeserializeDense(&dec).AddToBes(&bes);
  }
  answer.reachable = bes.Evaluate(PackNodeState(s, QueryAutomaton::kStart));
  cluster->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());

  // Visit 2: distribute the verdict and collect acknowledgements.
  const uint8_t verdict = answer.reachable ? 1 : 0;
  cluster->RoundAll(/*broadcast_bytes=*/2, [verdict](const Fragment&) {
    return std::vector<uint8_t>{verdict};
  });

  return answer;
}

}  // namespace pereach
