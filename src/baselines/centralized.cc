#include "src/baselines/centralized.h"

#include <deque>
#include <utility>
#include <vector>

#include "src/graph/algorithms.h"

namespace pereach {

bool CentralizedReach(const Graph& g, NodeId s, NodeId t) {
  return Reaches(g, s, t);
}

uint32_t CentralizedDistance(const Graph& g, NodeId s, NodeId t) {
  return BfsDistance(g, s, t);
}

bool CentralizedRegularReach(const Graph& g, NodeId s, NodeId t,
                             const QueryAutomaton& automaton) {
  // visited[v] is the mask of automaton states already explored at v.
  std::vector<uint64_t> visited(g.NumNodes(), 0);
  std::deque<std::pair<NodeId, uint32_t>> queue;

  const auto compat = [&](NodeId v) {
    uint64_t mask = automaton.StatesWithLabel(g.label(v));
    if (v == t) mask |= uint64_t{1} << QueryAutomaton::kFinal;
    return mask;
  };

  visited[s] |= uint64_t{1} << QueryAutomaton::kStart;
  queue.emplace_back(s, QueryAutomaton::kStart);
  while (!queue.empty()) {
    const auto [v, q] = queue.front();
    queue.pop_front();
    if (v == t && q == QueryAutomaton::kFinal) return true;
    for (NodeId w : g.OutNeighbors(v)) {
      uint64_t next = automaton.out_mask(q) & compat(w) & ~visited[w];
      if (next == 0) continue;
      visited[w] |= next;
      while (next != 0) {
        const uint32_t q2 = static_cast<uint32_t>(__builtin_ctzll(next));
        next &= next - 1;
        queue.emplace_back(w, q2);
      }
    }
  }
  return false;
}

}  // namespace pereach
