#ifndef PEREACH_BASELINES_DIS_NAIVE_H_
#define PEREACH_BASELINES_DIS_NAIVE_H_

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"
#include "src/regex/query_automaton.h"

namespace pereach {

/// The ship-all baselines of §7 (disReachn / disDistn / disRPQn): every site
/// serializes its whole fragment to the coordinator in parallel; the
/// coordinator reassembles G and runs the centralized algorithm. One visit
/// per site, but traffic equals the size of the entire graph.

QueryAnswer DisReachNaive(Cluster* cluster, const ReachQuery& query);
QueryAnswer DisDistNaive(Cluster* cluster, const BoundedReachQuery& query);
QueryAnswer DisRpqNaive(Cluster* cluster, NodeId s, NodeId t,
                        const QueryAutomaton& automaton);

/// Reassembles the global graph from shipped fragment payloads. Exposed for
/// tests; `num_nodes` is the coordinator's knowledge of |V| (from its
/// fragment -> site mapping h).
Graph ReassembleGraph(const std::vector<std::vector<uint8_t>>& payloads,
                      size_t num_nodes);

/// One ship-all round inside an open metrics window: every site serializes
/// its fragment, the coordinator reassembles G. NaiveShipAllEngine amortizes
/// this over a batch (ship once, answer k queries centrally).
Graph ShipAndReassemble(Cluster* cluster, size_t query_bytes);

}  // namespace pereach

#endif  // PEREACH_BASELINES_DIS_NAIVE_H_
