#ifndef PEREACH_ENGINE_SITE_RUNTIME_H_
#define PEREACH_ENGINE_SITE_RUNTIME_H_

#include <string>
#include <vector>

#include "src/engine/fragment_context.h"
#include "src/index/boundary_dist_index.h"
#include "src/index/boundary_index.h"
#include "src/index/boundary_rpq_index.h"
#include "src/net/transport.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace pereach {

/// The SITE half of every PartialEvalEngine round: the query-dependent
/// sweeps and row re-encodings that run against one fragment plus its
/// FragmentContext — everything a site contributes to a round, with no
/// reference to coordinator state. The simulated backend's closures call
/// these directly (zero-copy over the coordinator's fragments); the shm and
/// socket backends reach them through RunSiteRound, which decodes a
/// RoundSpec broadcast and reproduces the exact same reply bytes. One
/// definition on both paths is what makes the backend differential suite
/// (answers bit-identical across transports) hold by construction for the
/// reach and dist classes, and answer-identical for rpq (workers evaluate
/// the broadcast's canonical automata, which are language-equal to the
/// originals the sim closures read in place).

// Flag bits of a boundary sweep frame.
inline constexpr uint8_t kFrameHasS = 1;       // s-side list present
inline constexpr uint8_t kFrameHasT = 2;       // t-side list present
inline constexpr uint8_t kFrameLocalTrue = 4;  // decided inside this fragment
// Extra flag bit of a dist sweep frame: a local s -> t distance (within the
// query bound) is present. Unlike kFrameLocalTrue it does NOT end the frame
// — a cross-fragment route can still be shorter, so the lists follow.
inline constexpr uint8_t kFrameHasLocalDist = 4;

/// Rebases a partial answer produced against its own query-local oset table
/// onto the fragment's shared (batch-wide) table; the answer's own table is
/// dropped (batch bodies serialize against the shared one).
ReachPartialAnswer RebaseOntoSharedOset(ReachPartialAnswer pa,
                                        const FragmentContext& ctx);

/// Components that locally reach `t_comp` (ascending scan; component ids
/// are reverse topological).
std::vector<bool> ComponentsReaching(const Condensation& cond, uint32_t t_comp);

/// Components locally reachable from `s_comp` (descending scan).
std::vector<bool> ComponentsReachableFrom(const Condensation& cond,
                                          uint32_t s_comp);

/// Closure-form reach partial answer straight from the cached rows.
ReachPartialAnswer ReachFromCachedRows(const Fragment& f, FragmentContext* ctx,
                                       NodeId s, NodeId t);

/// Re-encodes a fragment's cached ReachRows into the global-id form the
/// coordinator's boundary index consumes.
BoundaryRows BuildBoundaryRows(const Fragment& f, FragmentContext* ctx);

/// Re-encodes a fragment's cached DistRows into the global-id form the
/// coordinator's weighted boundary index consumes.
WeightedBoundaryRows BuildWeightedBoundaryRows(const Fragment& f,
                                               FragmentContext* ctx);

/// Re-encodes a fragment's cached per-automaton product structures into the
/// global-id form the coordinator's product boundary index consumes.
ProductBoundaryRows BuildProductBoundaryRows(
    const Fragment& f, FragmentContext* ctx, const std::string& signature_key,
    const QueryAutomaton& canonical);

/// The query-dependent halves of one dist query at one fragment, encoded
/// for the weighted boundary answer path.
void EncodeDistSweepFrame(const Fragment& f, FragmentContext* ctx, NodeId s,
                          NodeId t, uint32_t bound, Encoder* body);

/// The query-dependent halves of one reach query at one fragment, encoded
/// for the boundary answer path.
void EncodeBoundarySweepFrame(const Fragment& f, FragmentContext* ctx,
                              NodeId s, NodeId t, Encoder* body);

/// The query-dependent halves of one regular query at one fragment, encoded
/// for the product-boundary answer path. `p` must be the fragment's product
/// for the query's canonical automaton.
void EncodeRpqSweepFrame(const Fragment& f, FragmentContext* ctx,
                         const FragmentContext::RpqProduct& p, NodeId s,
                         NodeId t, Encoder* body);

/// The worker entry point: decodes a round broadcast (tolerant decoding —
/// a corrupt or truncated payload returns Corruption, never aborts, so one
/// bad frame cannot kill a worker process) and produces the same reply
/// bytes the simulated closure for (kind, aux) would have produced against
/// this fragment. `ctx` is the site's standing cache; it must be reset
/// (fresh FragmentContext) whenever the fragment changes. The socket
/// transport's degrade-local path (DESIGN.md §13.2) calls this same entry
/// point over the coordinator's fragment copy when a site stays down, which
/// is why a degraded round's reply bytes are identical to a healthy one's.
Result<std::vector<uint8_t>> RunSiteRound(const Fragment& f,
                                          FragmentContext* ctx, RoundKind kind,
                                          uint8_t aux,
                                          const std::vector<uint8_t>& broadcast);

}  // namespace pereach

#endif  // PEREACH_ENGINE_SITE_RUNTIME_H_
