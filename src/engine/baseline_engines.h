#ifndef PEREACH_ENGINE_BASELINE_ENGINES_H_
#define PEREACH_ENGINE_BASELINE_ENGINES_H_

#include "src/engine/query_engine.h"

namespace pereach {

/// The §7 baselines behind the QueryEngine interface, so benches and tests
/// compare engines on equal footing (same batch, same metrics window).

/// Ship-all (disReachn / disDistn / disRPQn): one round ships every fragment
/// to the coordinator, which reassembles G and answers centrally. Its batch
/// adaptation ships the graph ONCE per batch — traffic stays Θ(|G|) per
/// batch instead of per query, but every query still pays the centralized
/// evaluation and the coordinator holds the whole graph.
class NaiveShipAllEngine : public QueryEngine {
 public:
  explicit NaiveShipAllEngine(Cluster* cluster) : QueryEngine(cluster) {}
  std::string_view name() const override { return "naive-ship-all"; }

 protected:
  Status RunBatch(std::span<const Query> queries,
                std::vector<QueryAnswer>* answers) override;
};

/// Pregel-style message passing (disReachm). Reachability only; every query
/// pays its own sequence of supersteps, so a batch of k costs k times the
/// rounds of a single query — the round-count contrast to PartialEvalEngine.
class MessagePassingEngine : public QueryEngine {
 public:
  explicit MessagePassingEngine(Cluster* cluster) : QueryEngine(cluster) {}
  std::string_view name() const override { return "message-passing"; }

 protected:
  Status RunBatch(std::span<const Query> queries,
                std::vector<QueryAnswer>* answers) override;
};

/// Suciu-style distributed RPQ (disRPQd). Regular queries only; two visits
/// per site per query, no multiplexing.
class SuciuRpqEngine : public QueryEngine {
 public:
  explicit SuciuRpqEngine(Cluster* cluster) : QueryEngine(cluster) {}
  std::string_view name() const override { return "suciu-rpq"; }

 protected:
  Status RunBatch(std::span<const Query> queries,
                std::vector<QueryAnswer>* answers) override;
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_BASELINE_ENGINES_H_
