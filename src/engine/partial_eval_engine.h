#ifndef PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_
#define PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_

#include <memory>

#include "src/core/local_eval.h"
#include "src/engine/fragment_context.h"
#include "src/engine/query_engine.h"
#include "src/index/boundary_dist_index.h"
#include "src/index/boundary_index.h"
#include "src/index/boundary_rpq_index.h"

namespace pereach {

/// How the coordinator resolves reachability queries.
///
/// kBes is the paper's assembling phase: every site ships its boundary
/// equations per query and the coordinator solves a fresh Boolean equation
/// system (evalDG).
///
/// kBoundaryIndex short-circuits the solve with a standing coordinator-side
/// label over the boundary dependency graph (BoundaryReachIndex): a reach
/// query visits only the two endpoint fragments for the query-dependent
/// sweeps (s-side forward, t-side backward) and the coordinator answers with
/// label lookups — no per-query equation shipping, deserialization, or BES
/// construction. Falls back to nothing: the label path is exact. Bounded and
/// regular queries always use the equation path.
enum class ReachAnswerPath : uint8_t { kBes = 0, kBoundaryIndex = 1 };

/// How the coordinator resolves distance (bounded-reach) queries.
///
/// kBes is the paper's assembling phase: every site ships its min-plus
/// boundary equations per query and the coordinator solves a fresh
/// DistanceEquationSystem with Dijkstra (evalDGd).
///
/// kBoundaryIndex short-circuits the assembling with a standing
/// coordinator-side WEIGHTED boundary graph (BoundaryDistIndex): a dist
/// query visits only the two endpoint fragments for the query-dependent
/// sweeps (s-side exit distances, t-side entry distances, local
/// short-circuit) and the coordinator answers with a bidirectional Dijkstra
/// over the standing graph, filtering edges by the query bound so answers
/// stay bit-identical to the BES path. Falls back to nothing: the indexed
/// path is exact.
enum class DistAnswerPath : uint8_t { kBes = 0, kBoundaryIndex = 1 };

/// How the coordinator resolves regular reachability queries.
///
/// kBes is the paper's assembling phase (§5): every site builds the
/// label-compatible product of its fragment with the query automaton, ships
/// its boundary equations, and the coordinator solves a fresh Boolean
/// equation system per query (evalDGr).
///
/// kBoundaryIndex short-circuits the solve with a standing coordinator-side
/// PRODUCT boundary graph per distinct automaton (BoundaryRpqIndex, keyed by
/// canonical signature behind an LRU cache): an rpq query visits only its
/// two endpoint fragments for the query-dependent sweeps (s-side exit pairs
/// seeded from u_s, t-side accepting entry pairs into u_t, local
/// short-circuit byte) and the coordinator answers with label lookups over
/// the standing graph — no per-query product construction at non-endpoint
/// sites, no equation shipping, no BES. Falls back to nothing: the indexed
/// path is exact for every automaton.
enum class RpqAnswerPath : uint8_t { kBes = 0, kBoundaryIndex = 1 };

struct PartialEvalOptions {
  /// Equation encoding used by localEval (see EquationForm).
  EquationForm form = EquationForm::kAuto;
  /// Coordinator strategy for reach queries (see ReachAnswerPath).
  ReachAnswerPath reach_path = ReachAnswerPath::kBes;
  /// Coordinator strategy for dist queries (see DistAnswerPath).
  DistAnswerPath dist_path = DistAnswerPath::kBes;
  /// Coordinator strategy for regular queries (see RpqAnswerPath).
  RpqAnswerPath rpq_path = RpqAnswerPath::kBes;
  /// LRU entry cap for the signature-keyed rpq caches — the coordinator's
  /// standing product boundary graphs AND each fragment's product rows.
  size_t rpq_cache_entries = 8;
  /// Answer indexed coordinator questions in 64-lane bit-parallel words
  /// (BoundaryReachIndex::AnswerBatch / BoundaryRpqIndex::Entry::AnswerBatch)
  /// instead of one scalar lookup per query. Exact either way; off is the
  /// scalar reference path for differential tests.
  bool batch_sweep = true;
  /// Transitive shortcut-edge budget per boundary condensation rebuild
  /// (ReachLabels): cuts sweep/DFS depth, never changes answers. 0 disables.
  size_t shortcut_budget = 64;
};

/// The paper's disReach / disDist / disRPQ unified behind the QueryEngine
/// interface, with two amortization levers on top of the per-query
/// guarantees of Theorems 1-3:
///
///  1. Batched rounds. EvaluateBatch ships all k queries in ONE broadcast;
///     every site runs localEval for all of them in a single visit and
///     multiplexes the partial answers into one reply payload (one
///     length-prefixed frame per query, with the query-independent oset
///     table shared across the batch's reachability frames). A batch
///     therefore costs one communication round — 2 latencies + one transfer
///     — instead of k, and strictly less traffic than k single runs.
///
///  2. Per-fragment precompute (FragmentContext). The SCC condensation,
///     boundary tables, closure rows, and label index of each fragment are
///     query-independent; they are built on first use and reused by every
///     subsequent query of every class until InvalidateFragment is called
///     (wire it to IncrementalReachIndex::SetUpdateListener for edge
///     updates).
///
/// Single-query Evaluate is a batch of one; the DisReach / DisDist / DisRpq
/// free functions are thin wrappers over a transient engine.
class PartialEvalEngine : public QueryEngine {
 public:
  explicit PartialEvalEngine(Cluster* cluster, PartialEvalOptions options = {});

  std::string_view name() const override { return "partial-eval"; }

  /// Drops the cached context of one fragment (after an edge update touched
  /// it) or of all fragments (after repartitioning). Both boundary indexes
  /// ride the same invalidation path: the touched fragment's rows are
  /// marked dirty and re-fetched lazily by the next indexed batch.
  void InvalidateFragment(SiteId site) {
    contexts_.Invalidate(site);
    if (boundary_) boundary_->InvalidateFragment(site);
    if (boundary_dist_) boundary_dist_->InvalidateFragment(site);
    if (boundary_rpq_) boundary_rpq_->InvalidateFragment(site);
  }
  void InvalidateAllFragments() {
    contexts_.InvalidateAll();
    if (boundary_) boundary_->InvalidateAll();
    if (boundary_dist_) boundary_dist_->InvalidateAll();
    if (boundary_rpq_) boundary_rpq_->InvalidateAll();
  }

  const FragmentContextCache& context_cache() const { return contexts_; }

  /// The standing boundary index, or nullptr before the first reach batch
  /// ran with reach_path == kBoundaryIndex (observability for tests/benches).
  const BoundaryReachIndex* boundary_index() const { return boundary_.get(); }

  /// Mutable access for benches that drive the index's scalar vs batched
  /// lookup paths directly (micro-comparisons outside a query batch).
  BoundaryReachIndex* mutable_boundary_index() { return boundary_.get(); }

  /// The standing weighted boundary index, or nullptr before the first dist
  /// batch ran with dist_path == kBoundaryIndex.
  const BoundaryDistIndex* boundary_dist_index() const {
    return boundary_dist_.get();
  }

  /// The signature-keyed product boundary index, or nullptr before the
  /// first rpq batch ran with rpq_path == kBoundaryIndex.
  const BoundaryRpqIndex* boundary_rpq_index() const {
    return boundary_rpq_.get();
  }

 protected:
  Status RunBatch(std::span<const Query> queries,
                  std::vector<QueryAnswer>* answers) override;

 private:
  /// Answers the reach queries `wire` (indices into `queries`) through the
  /// boundary index: one refresh round for dirty fragments if needed, one
  /// sweep round over the endpoint fragments, label lookups to assemble.
  /// Like RunBatch, a non-OK return is a serving-transport failure.
  Status RunBoundaryReach(std::span<const Query> queries,
                          const std::vector<size_t>& wire,
                          std::vector<QueryAnswer>* answers);

  /// Answers the dist queries `wire` (indices into `queries`) through the
  /// weighted boundary index: one refresh round for dirty fragments if
  /// needed, one sweep round over the endpoint fragments, one bidirectional
  /// Dijkstra per query over the standing graph.
  Status RunBoundaryDist(std::span<const Query> queries,
                         const std::vector<size_t>& wire,
                         std::vector<QueryAnswer>* answers);

  /// Answers the rpq queries `wire` (indices into `queries`) through the
  /// signature-keyed product boundary index: one combined refresh round for
  /// every (dirty fragment, automaton) combination of the batch, one sweep
  /// round over the endpoint fragments (the batch's distinct automata cross
  /// the wire once each), label lookups over the standing product graphs to
  /// assemble.
  Status RunBoundaryRpq(std::span<const Query> queries,
                        const std::vector<size_t>& wire,
                        std::vector<QueryAnswer>* answers);

  PartialEvalOptions options_;
  FragmentContextCache contexts_;
  std::unique_ptr<BoundaryReachIndex> boundary_;
  std::unique_ptr<BoundaryDistIndex> boundary_dist_;
  std::unique_ptr<BoundaryRpqIndex> boundary_rpq_;
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_
