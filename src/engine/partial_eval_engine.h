#ifndef PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_
#define PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_

#include "src/core/local_eval.h"
#include "src/engine/fragment_context.h"
#include "src/engine/query_engine.h"

namespace pereach {

struct PartialEvalOptions {
  /// Equation encoding used by localEval (see EquationForm).
  EquationForm form = EquationForm::kAuto;
};

/// The paper's disReach / disDist / disRPQ unified behind the QueryEngine
/// interface, with two amortization levers on top of the per-query
/// guarantees of Theorems 1-3:
///
///  1. Batched rounds. EvaluateBatch ships all k queries in ONE broadcast;
///     every site runs localEval for all of them in a single visit and
///     multiplexes the partial answers into one reply payload (one
///     length-prefixed frame per query, with the query-independent oset
///     table shared across the batch's reachability frames). A batch
///     therefore costs one communication round — 2 latencies + one transfer
///     — instead of k, and strictly less traffic than k single runs.
///
///  2. Per-fragment precompute (FragmentContext). The SCC condensation,
///     boundary tables, closure rows, and label index of each fragment are
///     query-independent; they are built on first use and reused by every
///     subsequent query of every class until InvalidateFragment is called
///     (wire it to IncrementalReachIndex::SetUpdateListener for edge
///     updates).
///
/// Single-query Evaluate is a batch of one; the DisReach / DisDist / DisRpq
/// free functions are thin wrappers over a transient engine.
class PartialEvalEngine : public QueryEngine {
 public:
  explicit PartialEvalEngine(Cluster* cluster, PartialEvalOptions options = {});

  std::string_view name() const override { return "partial-eval"; }

  /// Drops the cached context of one fragment (after an edge update touched
  /// it) or of all fragments (after repartitioning).
  void InvalidateFragment(SiteId site) { contexts_.Invalidate(site); }
  void InvalidateAllFragments() { contexts_.InvalidateAll(); }

  const FragmentContextCache& context_cache() const { return contexts_; }

 protected:
  void RunBatch(std::span<const Query> queries,
                std::vector<QueryAnswer>* answers) override;

 private:
  PartialEvalOptions options_;
  FragmentContextCache contexts_;
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_PARTIAL_EVAL_ENGINE_H_
