#include "src/engine/query_key.h"

#include <utility>

#include "src/regex/canonical.h"
#include "src/util/logging.h"
#include "src/util/serialization.h"

namespace pereach {

QueryKey CanonicalQueryKey(const Query& query) {
  PEREACH_CHECK(query.well_formed() && "keying a malformed query");
  Encoder enc;
  // The header bytes are the engine wire format's (kind, source, target
  // [, bound]) prefix — one definition for shipping and for keying, so the
  // key provably covers every answer-relevant scalar field.
  query.SerializeHeader(&enc);
  QueryKey key;
  key.bytes.assign(enc.buffer().begin(), enc.buffer().end());
  if (query.kind == QueryKind::kRpq) {
    // Canonical signature, not the client's automaton bytes: `a|a` and `a`
    // share a key. The signature bytes fully determine the canonical
    // automaton, so key equality implies language equality.
    key.bytes += Canonicalize(*query.automaton).signature.key;
  }
  key.hash = SignatureHash(key.bytes);
  return key;
}

}  // namespace pereach
