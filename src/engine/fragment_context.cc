#include "src/engine/fragment_context.h"

#include <algorithm>
#include <map>

namespace pereach {

namespace {
constexpr size_t kRowBlockBits = 4096;
}  // namespace

const Condensation& FragmentContext::cond(const Fragment& f) {
  if (!cond_.has_value()) {
    cond_ = Condense(f.local_graph());
    ++section_builds_;
  }
  return *cond_;
}

void FragmentContext::EnsureOset(const Fragment& f) {
  if (oset_built_) return;
  oset_locals_.reserve(f.num_virtual());
  oset_globals_.reserve(f.num_virtual());
  oset_index_.reserve(f.num_virtual());
  for (NodeId v = static_cast<NodeId>(f.num_local());
       v < f.local_graph().NumNodes(); ++v) {
    const NodeId global = f.ToGlobal(v);
    oset_index_.emplace(global, static_cast<uint32_t>(oset_locals_.size()));
    oset_locals_.push_back(v);
    oset_globals_.push_back(global);
  }
  oset_built_ = true;
  ++section_builds_;
}

const std::vector<NodeId>& FragmentContext::oset_locals(const Fragment& f) {
  EnsureOset(f);
  return oset_locals_;
}

const std::vector<NodeId>& FragmentContext::oset_globals(const Fragment& f) {
  EnsureOset(f);
  return oset_globals_;
}

const std::vector<uint32_t>& FragmentContext::oset_comp(const Fragment& f) {
  if (oset_comp_.empty() && f.num_virtual() > 0) {
    EnsureOset(f);
    const Condensation& c = cond(f);
    oset_comp_.reserve(oset_locals_.size());
    for (NodeId v : oset_locals_) {
      oset_comp_.push_back(c.scc.component_of[v]);
    }
  }
  return oset_comp_;
}

uint32_t FragmentContext::OsetIndexOf(NodeId global) const {
  const auto it = oset_index_.find(global);
  return it == oset_index_.end() ? kNoIndex : it->second;
}

const FragmentContext::ReachRows& FragmentContext::reach_rows(
    const Fragment& f) {
  if (!rows_.has_value()) {
    EnsureOset(f);
    const Condensation& c = cond(f);
    ReachRows rows;
    // Dense group ids in first-appearance order over in_nodes() — the same
    // rule ForEachReachableTargetGrouped applies, so its emitted group ids
    // line up with these.
    std::unordered_map<uint32_t, uint32_t> group_of_comp;
    rows.in_group.reserve(f.in_nodes().size());
    for (NodeId in : f.in_nodes()) {
      const uint32_t comp = c.scc.component_of[in];
      const auto [it, inserted] = group_of_comp.emplace(
          comp, static_cast<uint32_t>(rows.group_rep.size()));
      if (inserted) {
        rows.group_rep.push_back(in);
        rows.group_comp.push_back(comp);
      }
      rows.in_group.push_back(it->second);
    }
    rows.rows.resize(rows.group_rep.size());
    if (!oset_locals_.empty()) {
      const std::vector<uint32_t> sweep_groups = ForEachReachableTargetGrouped(
          c, f.in_nodes(), oset_locals_, kRowBlockBits,
          [&rows](uint32_t group, uint32_t oset_idx) {
            rows.rows[group].push_back(oset_idx);
          });
      PEREACH_CHECK(sweep_groups == rows.in_group);
    }
    rows_ = std::move(rows);
    ++section_builds_;
  }
  return *rows_;
}

const FragmentContext::DistRows& FragmentContext::dist_rows(
    const Fragment& f) {
  if (!dist_rows_.has_value()) {
    EnsureOset(f);
    const std::vector<NodeId>& in_nodes = f.in_nodes();

    // Unbounded multi-source level propagation: ForEachBoundedDistance is
    // frontier-driven, so a bound beyond the local diameter terminates as
    // soon as the frontier empties — one sweep serves every query bound.
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_in(
        in_nodes.size());
    if (!oset_locals_.empty() && !in_nodes.empty()) {
      ForEachBoundedDistance(
          f.local_graph(), in_nodes, oset_locals_, kInfDistance - 1,
          kRowBlockBits,
          [&per_in](uint32_t in_idx, uint32_t oset_idx, uint32_t hops) {
            per_in[in_idx].emplace_back(oset_idx, hops);
          });
      // Emission is per BFS level, not per index; restore the ascending
      // index order the delta encoding relies on.
      for (auto& row : per_in) std::sort(row.begin(), row.end());
    }

    // Content grouping: in-nodes with bit-identical weighted rows share one
    // group (an SCC does NOT imply equal distances, so this is the exact
    // analogue of the reach rows' component grouping).
    DistRows rows;
    rows.in_group.reserve(in_nodes.size());
    std::map<std::vector<std::pair<uint32_t, uint32_t>>, uint32_t>
        group_of_row;
    for (size_t i = 0; i < in_nodes.size(); ++i) {
      const auto [it, inserted] = group_of_row.emplace(
          std::move(per_in[i]), static_cast<uint32_t>(rows.group_rep.size()));
      if (inserted) {
        rows.group_rep.push_back(in_nodes[i]);
        rows.rows.push_back(it->first);
      }
      rows.in_group.push_back(it->second);
    }
    dist_rows_ = std::move(rows);
    ++section_builds_;
  }
  return *dist_rows_;
}

const LabelIndex& FragmentContext::label_index(const Fragment& f) {
  if (!label_index_.has_value()) {
    label_index_ = LabelIndex::Build(f.local_graph());
    ++section_builds_;
  }
  return *label_index_;
}

}  // namespace pereach
