#include "src/engine/fragment_context.h"

#include <algorithm>
#include <map>

namespace pereach {

namespace {
constexpr size_t kRowBlockBits = 4096;
}  // namespace

const Condensation& FragmentContext::cond(const Fragment& f) {
  if (!cond_.has_value()) {
    cond_ = Condense(f.local_graph());
    ++section_builds_;
  }
  return *cond_;
}

void FragmentContext::EnsureOset(const Fragment& f) {
  if (oset_built_) return;
  oset_locals_.reserve(f.num_virtual());
  oset_globals_.reserve(f.num_virtual());
  oset_index_.reserve(f.num_virtual());
  for (NodeId v = static_cast<NodeId>(f.num_local());
       v < f.local_graph().NumNodes(); ++v) {
    const NodeId global = f.ToGlobal(v);
    oset_index_.emplace(global, static_cast<uint32_t>(oset_locals_.size()));
    oset_locals_.push_back(v);
    oset_globals_.push_back(global);
  }
  oset_built_ = true;
  ++section_builds_;
}

const std::vector<NodeId>& FragmentContext::oset_locals(const Fragment& f) {
  EnsureOset(f);
  return oset_locals_;
}

const std::vector<NodeId>& FragmentContext::oset_globals(const Fragment& f) {
  EnsureOset(f);
  return oset_globals_;
}

const std::vector<uint32_t>& FragmentContext::oset_comp(const Fragment& f) {
  if (oset_comp_.empty() && f.num_virtual() > 0) {
    EnsureOset(f);
    const Condensation& c = cond(f);
    oset_comp_.reserve(oset_locals_.size());
    for (NodeId v : oset_locals_) {
      oset_comp_.push_back(c.scc.component_of[v]);
    }
  }
  return oset_comp_;
}

uint32_t FragmentContext::OsetIndexOf(NodeId global) const {
  const auto it = oset_index_.find(global);
  return it == oset_index_.end() ? kNoIndex : it->second;
}

const FragmentContext::ReachRows& FragmentContext::reach_rows(
    const Fragment& f) {
  if (!rows_.has_value()) {
    EnsureOset(f);
    const Condensation& c = cond(f);
    ReachRows rows;
    // Dense group ids in first-appearance order over in_nodes() — the same
    // rule ForEachReachableTargetGrouped applies, so its emitted group ids
    // line up with these.
    std::unordered_map<uint32_t, uint32_t> group_of_comp;
    rows.in_group.reserve(f.in_nodes().size());
    for (NodeId in : f.in_nodes()) {
      const uint32_t comp = c.scc.component_of[in];
      const auto [it, inserted] = group_of_comp.emplace(
          comp, static_cast<uint32_t>(rows.group_rep.size()));
      if (inserted) {
        rows.group_rep.push_back(in);
        rows.group_comp.push_back(comp);
      }
      rows.in_group.push_back(it->second);
    }
    rows.rows.resize(rows.group_rep.size());
    if (!oset_locals_.empty()) {
      const std::vector<uint32_t> sweep_groups = ForEachReachableTargetGrouped(
          c, f.in_nodes(), oset_locals_, kRowBlockBits,
          [&rows](uint32_t group, uint32_t oset_idx) {
            rows.rows[group].push_back(oset_idx);
          });
      PEREACH_CHECK(sweep_groups == rows.in_group);
    }
    rows_ = std::move(rows);
    ++section_builds_;
  }
  return *rows_;
}

const FragmentContext::DistRows& FragmentContext::dist_rows(
    const Fragment& f) {
  if (!dist_rows_.has_value()) {
    EnsureOset(f);
    const std::vector<NodeId>& in_nodes = f.in_nodes();

    // Unbounded multi-source level propagation: ForEachBoundedDistance is
    // frontier-driven, so a bound beyond the local diameter terminates as
    // soon as the frontier empties — one sweep serves every query bound.
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> per_in(
        in_nodes.size());
    if (!oset_locals_.empty() && !in_nodes.empty()) {
      ForEachBoundedDistance(
          f.local_graph(), in_nodes, oset_locals_, kInfDistance - 1,
          kRowBlockBits,
          [&per_in](uint32_t in_idx, uint32_t oset_idx, uint32_t hops) {
            per_in[in_idx].emplace_back(oset_idx, hops);
          });
      // Emission is per BFS level, not per index; restore the ascending
      // index order the delta encoding relies on.
      for (auto& row : per_in) std::sort(row.begin(), row.end());
    }

    // Content grouping: in-nodes with bit-identical weighted rows share one
    // group (an SCC does NOT imply equal distances, so this is the exact
    // analogue of the reach rows' component grouping).
    DistRows rows;
    rows.in_group.reserve(in_nodes.size());
    std::map<std::vector<std::pair<uint32_t, uint32_t>>, uint32_t>
        group_of_row;
    for (size_t i = 0; i < in_nodes.size(); ++i) {
      const auto [it, inserted] = group_of_row.emplace(
          std::move(per_in[i]), static_cast<uint32_t>(rows.group_rep.size()));
      if (inserted) {
        rows.group_rep.push_back(in_nodes[i]);
        rows.rows.push_back(it->first);
      }
      rows.in_group.push_back(it->second);
    }
    dist_rows_ = std::move(rows);
    ++section_builds_;
  }
  return *dist_rows_;
}

const LabelIndex& FragmentContext::label_index(const Fragment& f) {
  if (!label_index_.has_value()) {
    label_index_ = LabelIndex::Build(f.local_graph());
    ++section_builds_;
  }
  return *label_index_;
}

void FragmentContext::BeginRpqRound() {
  rpq_round_start_tick_ = rpq_tick_ + 1;
  // A previous round with more distinct automata than the cap overshot
  // (its products were pinned); nothing is pinned anymore, so trim.
  while (rpq_products_.size() > rpq_cache_cap_ && EvictRpqLru()) {
  }
}

bool FragmentContext::EvictRpqLru() {
  auto victim = rpq_products_.end();
  for (auto slot = rpq_products_.begin(); slot != rpq_products_.end();
       ++slot) {
    if (slot->second.last_used >= rpq_round_start_tick_) continue;  // pinned
    if (victim == rpq_products_.end() ||
        slot->second.last_used < victim->second.last_used) {
      victim = slot;
    }
  }
  if (victim == rpq_products_.end()) return false;
  rpq_products_.erase(victim);
  ++rpq_evictions_;
  return true;
}

const FragmentContext::RpqProduct& FragmentContext::rpq_product(
    const Fragment& f, const std::string& signature_key,
    const QueryAutomaton& canonical) {
  const auto it = rpq_products_.find(signature_key);
  if (it != rpq_products_.end()) {
    it->second.last_used = ++rpq_tick_;
    return *it->second.product;
  }
  if (rpq_products_.size() >= rpq_cache_cap_) EvictRpqLru();

  EnsureOset(f);
  const Graph& g = f.local_graph();
  const size_t n = g.NumNodes();
  const LabelIndex& labels = label_index(f);
  auto p = std::make_unique<RpqProduct>(canonical);

  // Compatibility mask per node: interior states matching the node's label.
  // Virtual nodes additionally carry u_t — any virtual node may be some
  // query's target, and an edge x -> w with u_t in out_mask(q_x) accepts at
  // w regardless of which query is asking, so the accept pairs (w, u_t) are
  // standing product sinks (u_t has no out-transitions).
  constexpr uint64_t kFinalBit = uint64_t{1} << QueryAutomaton::kFinal;
  p->compat.assign(n, 0);
  for (const auto& [label, nodes] : labels.groups) {
    const uint64_t mask = canonical.StatesWithLabel(label);
    for (NodeId v : nodes) p->compat[v] = mask;
  }
  for (NodeId w : oset_locals_) p->compat[w] |= kFinalBit;

  // Dense product ids: pid(v, q) = offset[v] + rank of q in compat[v] —
  // the same layout LocalEvalRegular uses.
  p->pid_offset.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    p->pid_offset[v + 1] =
        p->pid_offset[v] +
        static_cast<uint64_t>(__builtin_popcountll(p->compat[v]));
  }
  const uint64_t num_product = p->pid_offset[n];
  PEREACH_CHECK_LT(num_product, uint64_t{1} << 32);

  // Materialize the interior product graph F_i x G_q and condense it once;
  // every query over this automaton reuses the condensation.
  GraphBuilder pb;
  pb.AddNodes(static_cast<size_t>(num_product));
  for (NodeId v = 0; v < n; ++v) {
    if (p->compat[v] == 0) continue;
    for (NodeId w : g.OutNeighbors(v)) {
      if (p->compat[w] == 0) continue;
      uint64_t qs = p->compat[v];
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        uint64_t succs = canonical.out_mask(q) & p->compat[w];
        const NodeId from = p->pid(v, q);
        while (succs != 0) {
          const uint32_t q2 = static_cast<uint32_t>(__builtin_ctzll(succs));
          succs &= succs - 1;
          pb.AddEdge(from, p->pid(w, q2));
        }
      }
    }
  }
  p->cond = Condense(std::move(pb).Build());

  // Flattened frontier table: (oset position, state) ascending — which is
  // also ascending pid order, since oset locals are ascending local ids.
  std::vector<NodeId> targets;
  for (uint32_t j = 0; j < oset_locals_.size(); ++j) {
    const NodeId w = oset_locals_[j];
    uint64_t qs = p->compat[w];
    while (qs != 0) {
      const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
      qs &= qs - 1;
      const NodeId product_node = p->pid(w, q);
      p->table_oset.push_back(j);
      p->table_state.push_back(static_cast<uint8_t>(q));
      p->table_comp.push_back(p->cond.scc.component_of[product_node]);
      targets.push_back(product_node);
    }
  }

  // In-pairs grouped by product SCC, dense group ids in first-appearance
  // order — the same rule ForEachReachableTargetGrouped applies, so its
  // emitted group ids line up with these (mirrors reach_rows).
  std::vector<NodeId> sources;
  std::unordered_map<uint32_t, uint32_t> group_of_comp;
  for (NodeId in : f.in_nodes()) {
    uint64_t qs = p->compat[in];
    while (qs != 0) {
      const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
      qs &= qs - 1;
      const NodeId product_node = p->pid(in, q);
      const uint32_t comp = p->cond.scc.component_of[product_node];
      const auto [slot, inserted] = group_of_comp.emplace(
          comp, static_cast<uint32_t>(p->group_rep.size()));
      if (inserted) {
        p->group_rep.push_back(static_cast<uint32_t>(p->in_pairs.size()));
        p->group_comp.push_back(comp);
      }
      p->in_group.push_back(slot->second);
      p->in_pairs.emplace_back(in, static_cast<uint8_t>(q));
      sources.push_back(product_node);
    }
  }
  p->rows.resize(p->group_rep.size());
  if (!sources.empty() && !targets.empty()) {
    const std::vector<uint32_t> sweep_groups = ForEachReachableTargetGrouped(
        p->cond, sources, targets, kRowBlockBits,
        [&p](uint32_t group, uint32_t table_idx) {
          p->rows[group].push_back(table_idx);
        });
    PEREACH_CHECK(sweep_groups == p->in_group);
  }

  ++section_builds_;
  RpqCacheSlot slot;
  slot.product = std::move(p);
  slot.last_used = ++rpq_tick_;
  return *rpq_products_.emplace(signature_key, std::move(slot))
              .first->second.product;
}

}  // namespace pereach
