#ifndef PEREACH_ENGINE_QUERY_KEY_H_
#define PEREACH_ENGINE_QUERY_KEY_H_

#include <cstdint>
#include <string>

#include "src/engine/query_engine.h"

namespace pereach {

/// Canonical cache key of one query: a byte string that determines the
/// query's ANSWER at a fixed graph snapshot, plus a 64-bit hash of those
/// bytes for cheap bucketing. Two queries with equal keys have equal
/// answers at every snapshot:
///  - reach / dist keys are (kind, source, target[, bound]) — the literal
///    query, which trivially determines the answer;
///  - rpq keys substitute the CANONICAL automaton signature
///    (src/regex/canonical.h) for the client's automaton bytes, so every
///    phrasing that minimizes to the same automaton shares one key
///    (language equality => answer equality). The converse is best-effort:
///    equivalent regexes that canonicalize apart cost an extra cache
///    entry, never a wrong answer.
/// The key deliberately excludes the snapshot epoch: the AnswerCache pins
/// entries to the committed epoch separately (see ServerOptions::cache).
struct QueryKey {
  uint64_t hash = 0;
  std::string bytes;

  friend bool operator==(const QueryKey&, const QueryKey&) = default;
};

/// Builds the canonical key of a well-formed query. The rpq branch runs the
/// automaton canonicalizer (minimize + renumber + hash), which is O(states²)
/// on automata capped at 64 states — cheap next to one evaluation round,
/// but callers on the hot path should build the key once per submission.
QueryKey CanonicalQueryKey(const Query& query);

}  // namespace pereach

#endif  // PEREACH_ENGINE_QUERY_KEY_H_
