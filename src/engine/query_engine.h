#ifndef PEREACH_ENGINE_QUERY_ENGINE_H_
#define PEREACH_ENGINE_QUERY_ENGINE_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"
#include "src/regex/query_automaton.h"
#include "src/util/serialization.h"

namespace pereach {

/// The three query classes of the paper, unified for batch dispatch.
enum class QueryKind : uint8_t { kReach = 0, kDist = 1, kRpq = 2 };

/// One query of a batch: a tagged union over q_r(s, t), q_br(s, t, l) and
/// q_rr(s, t, R). The automaton is pre-built so a workload can reuse one
/// G_q(R) across many endpoint pairs.
struct Query {
  QueryKind kind = QueryKind::kReach;
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  uint32_t bound = 0;                        // kDist only
  std::optional<QueryAutomaton> automaton;   // kRpq only

  static Query Reach(NodeId s, NodeId t) {
    Query q;
    q.kind = QueryKind::kReach;
    q.source = s;
    q.target = t;
    return q;
  }

  static Query Dist(NodeId s, NodeId t, uint32_t bound) {
    Query q;
    q.kind = QueryKind::kDist;
    q.source = s;
    q.target = t;
    q.bound = bound;
    return q;
  }

  static Query Rpq(NodeId s, NodeId t, QueryAutomaton automaton) {
    Query q;
    q.kind = QueryKind::kRpq;
    q.source = s;
    q.target = t;
    q.automaton = std::move(automaton);
    return q;
  }

  /// Builds the rpq query for `regex`. When the regex exceeds the
  /// automaton's state cap (QueryAutomaton::FromRegex fails) the query
  /// carries NO automaton: engines CHECK-fail on it, but QueryServer::Submit
  /// rejects it gracefully — one oversized client regex must not kill a
  /// serving process.
  static Query Rpq(NodeId s, NodeId t, const Regex& regex) {
    Query q;
    q.kind = QueryKind::kRpq;
    q.source = s;
    q.target = t;
    Result<QueryAutomaton> automaton = QueryAutomaton::FromRegex(regex);
    if (automaton.ok()) q.automaton = std::move(automaton).value();
    return q;
  }

  /// True iff the query can be evaluated: every kind except an rpq whose
  /// regex failed to build an automaton. Engines CHECK this; QueryServer
  /// rejects instead.
  bool well_formed() const {
    return kind != QueryKind::kRpq || automaton.has_value();
  }

  /// Broadcast wire format of the automaton-independent fields — the
  /// single definition every engine's batch payload uses, so byte
  /// accounting cannot drift between the engines a bench compares. Batch
  /// encoders that dedupe automata write this header plus a table
  /// reference; Serialize appends the automaton inline.
  void SerializeHeader(Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(kind));
    enc->PutVarint(source);
    enc->PutVarint(target);
    if (kind == QueryKind::kDist) enc->PutVarint(bound);
  }

  void Serialize(Encoder* enc) const {
    SerializeHeader(enc);
    if (kind == QueryKind::kRpq) {
      PEREACH_CHECK(automaton.has_value() &&
                    "serializing an rpq query with no automaton");
      automaton->Serialize(enc);
    }
  }
};

/// Result of one batch run: per-query answers plus the cost of the whole
/// batch. Per-query metrics are not separable once replies are multiplexed
/// into one wire payload, so each answer's own metrics field is left empty.
/// `status` is non-OK when the batch could not be evaluated — a serving
/// transport failure (dead worker, expired deadline, corrupt frame) fails
/// the WHOLE batch, since its queries were multiplexed into the failed
/// round; `answers` must not be read then. The simulated backend never
/// fails.
struct BatchAnswer {
  Status status;
  std::vector<QueryAnswer> answers;
  RunMetrics metrics;
};

/// Polymorphic query evaluation over a Cluster. Implementations differ in
/// how they ship work to the sites (partial evaluation, ship-all, message
/// passing, ...) but share the contract:
///  - Evaluate answers one query, metrics attached;
///  - EvaluateBatch answers k queries in one metrics window, so engines that
///    can multiplex (PartialEvalEngine) pay O(1) communication rounds per
///    batch while round-per-query engines pay k — the comparison the
///    bench_batch harness draws.
/// Engines are not thread-safe; use one engine per concurrent caller. Any
/// number of engines may share one Cluster from distinct threads — metrics
/// windows are per-thread, and EvaluateBatch reads its own window, so
/// overlapping batches (the QueryServer's per-class dispatchers) keep
/// separate books.
class QueryEngine {
 public:
  explicit QueryEngine(Cluster* cluster) : cluster_(cluster) {}
  virtual ~QueryEngine() = default;

  virtual std::string_view name() const = 0;

  /// Evaluates one query (a batch of one).
  QueryAnswer Evaluate(const Query& query);

  /// Evaluates a batch of queries in one metrics window; answers are
  /// returned in query order.
  BatchAnswer EvaluateBatch(std::span<const Query> queries);

  Cluster* cluster() const { return cluster_; }

 protected:
  /// Runs the batch inside an open BeginQuery/EndQuery window, appending one
  /// answer per query (metrics left default) to `answers`. A non-OK return
  /// means the serving transport failed mid-batch; `answers` contents are
  /// unspecified then (the window is still closed and charged by
  /// EvaluateBatch).
  virtual Status RunBatch(std::span<const Query> queries,
                          std::vector<QueryAnswer>* answers) = 0;

  Cluster* cluster_;
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_QUERY_ENGINE_H_
