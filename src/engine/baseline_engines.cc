#include "src/engine/baseline_engines.h"

#include "src/baselines/centralized.h"
#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/baselines/dis_rpq_suciu.h"
#include "src/util/timer.h"

namespace pereach {

Status NaiveShipAllEngine::RunBatch(std::span<const Query> queries,
                                  std::vector<QueryAnswer>* answers) {
  answers->resize(queries.size());
  if (queries.empty()) return Status::OK();

  Encoder broadcast;
  broadcast.PutVarint(queries.size());
  for (const Query& q : queries) q.Serialize(&broadcast);

  const Graph g = ShipAndReassemble(cluster_, broadcast.size());
  StopWatch watch;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    QueryAnswer& answer = (*answers)[qi];
    switch (q.kind) {
      case QueryKind::kReach:
        answer.reachable = CentralizedReach(g, q.source, q.target);
        break;
      case QueryKind::kDist: {
        const uint32_t d = CentralizedDistance(g, q.source, q.target);
        answer.distance = d == kInfDistance ? kInfWeight : d;
        answer.reachable = d != kInfDistance && d <= q.bound;
        break;
      }
      case QueryKind::kRpq:
        PEREACH_CHECK(q.well_formed());
        answer.reachable =
            CentralizedRegularReach(g, q.source, q.target, *q.automaton);
        break;
    }
  }
  cluster_->AddCoordinatorWorkMs(watch.ElapsedMs());
  return Status::OK();
}

Status MessagePassingEngine::RunBatch(std::span<const Query> queries,
                                    std::vector<QueryAnswer>* answers) {
  answers->reserve(queries.size());
  for (const Query& q : queries) {
    PEREACH_CHECK(q.kind == QueryKind::kReach &&
                  "MessagePassingEngine supports reachability queries only");
    answers->push_back(RunDisReachMp(cluster_, q.source, q.target));
  }
  // Baselines round over the simulated backend only, which never fails.
  return Status::OK();
}

Status SuciuRpqEngine::RunBatch(std::span<const Query> queries,
                              std::vector<QueryAnswer>* answers) {
  answers->reserve(queries.size());
  for (const Query& q : queries) {
    PEREACH_CHECK(q.kind == QueryKind::kRpq && q.well_formed() &&
                  "SuciuRpqEngine supports regular queries only");
    answers->push_back(
        RunDisRpqSuciu(cluster_, q.source, q.target, *q.automaton));
  }
  return Status::OK();
}

}  // namespace pereach
