#include "src/engine/partial_eval_engine.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/bes/bes.h"
#include "src/bes/distance_system.h"
#include "src/engine/site_runtime.h"
#include "src/regex/canonical.h"
#include "src/util/timer.h"

namespace pereach {

// The per-site halves of every round below (the localEval sweeps, the row
// re-encodings, the sweep frames) live in src/engine/site_runtime.* — one
// definition shared by these simulated closures and by the worker-side
// RoundSpec decoder, which is what keeps the backends bit-identical.
//
// Every round goes through Cluster::TryRound/TryRoundAll and every reply
// byte is decoded TOLERANTLY (Decoder::OnError::kStatus): a serving
// transport can fail or frame garbage, and the contract is that this fails
// the batch with a Status — rejecting its queries — never the process. The
// deep semantic invariants inside the Deserialize bodies stay as CHECKs:
// they sit behind the wire CRC, so a violation there is a software bug on a
// byte-exact copy, not a transport hazard.

namespace {

/// True for queries the coordinator answers without touching any site.
/// Regular queries are never trivial: q_rr(s, s, R) asks for a cycle.
bool IsTrivial(const Query& q) {
  return (q.kind == QueryKind::kReach || q.kind == QueryKind::kDist) &&
         q.source == q.target;
}

Status MalformedReply(const char* what) {
  return Status::Corruption(std::string("transport: malformed ") + what);
}

}  // namespace

PartialEvalEngine::PartialEvalEngine(Cluster* cluster,
                                     PartialEvalOptions options)
    : QueryEngine(cluster),
      options_(options),
      contexts_(&cluster->fragmentation(),
                std::max<size_t>(1, options.rpq_cache_entries)) {}

Status PartialEvalEngine::RunBatch(std::span<const Query> queries,
                                   std::vector<QueryAnswer>* answers) {
  answers->resize(queries.size());

  // Coordinator-side answers need no site visit; everything else goes on the
  // wire as one multiplexed broadcast — except queries whose class runs
  // under a boundary index, which take their own endpoint-fragment paths.
  std::vector<size_t> wire;
  std::vector<size_t> indexed;
  std::vector<size_t> indexed_dist;
  std::vector<size_t> indexed_rpq;
  wire.reserve(queries.size());
  bool any_reach = false;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    if (IsTrivial(q)) {
      (*answers)[qi].reachable = true;
      (*answers)[qi].distance = 0;
      continue;
    }
    PEREACH_CHECK(q.well_formed());
    if (q.kind == QueryKind::kReach &&
        options_.reach_path == ReachAnswerPath::kBoundaryIndex) {
      indexed.push_back(qi);
      continue;
    }
    if (q.kind == QueryKind::kDist &&
        options_.dist_path == DistAnswerPath::kBoundaryIndex) {
      indexed_dist.push_back(qi);
      continue;
    }
    if (q.kind == QueryKind::kRpq &&
        options_.rpq_path == RpqAnswerPath::kBoundaryIndex) {
      indexed_rpq.push_back(qi);
      continue;
    }
    any_reach |= q.kind == QueryKind::kReach;
    wire.push_back(qi);
  }
  if (!indexed.empty()) {
    Status s = RunBoundaryReach(queries, indexed, answers);
    if (!s.ok()) return s;
  }
  if (!indexed_dist.empty()) {
    Status s = RunBoundaryDist(queries, indexed_dist, answers);
    if (!s.ok()) return s;
  }
  if (!indexed_rpq.empty()) {
    Status s = RunBoundaryRpq(queries, indexed_rpq, answers);
    if (!s.ok()) return s;
  }
  if (wire.empty()) return Status::OK();

  // Batched broadcast: k queries in one payload. This is BOTH the byte
  // accounting and (for the shm/socket backends) the literal bytes a worker
  // decodes; the simulated closures read the query objects directly, as
  // everywhere in this simulator. Regular queries dedupe their automata by
  // canonical signature: identical regexes in one batch ship one automaton
  // plus a per-query table reference instead of k serialized copies.
  Encoder broadcast;
  // Canonical automata in broadcast table order, plus each wire query's table
  // slot. Sites — simulated closures and remote workers alike — evaluate the
  // canonical automaton, so the reply bytes the model charges are exactly the
  // bytes a worker produces from the decoded broadcast.
  std::vector<QueryAutomaton> canon_pool;
  std::vector<uint32_t> canon_ref(wire.size(), 0);
  {
    std::unordered_map<std::string, uint32_t> automaton_ref;
    Encoder automata;
    broadcast.PutVarint(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      const Query& q = queries[wire[wi]];
      q.SerializeHeader(&broadcast);
      if (q.kind == QueryKind::kRpq) {
        CanonicalAutomaton canon = Canonicalize(*q.automaton);
        const auto [it, inserted] = automaton_ref.emplace(
            canon.signature.key,
            static_cast<uint32_t>(automaton_ref.size()));
        if (inserted) {
          canon.automaton.Serialize(&automata);
          canon_pool.push_back(std::move(canon.automaton));
        }
        broadcast.PutVarint(it->second);
        canon_ref[wi] = it->second;
      }
    }
    broadcast.PutVarint(automaton_ref.size());
    broadcast.PutRaw(automata.buffer());
  }

  // One round: every site runs localEval for all k queries in a single
  // visit and multiplexes the partial answers into one reply — shared oset
  // table first (reach frames reference it), then one frame per query.
  const EquationForm form = options_.form;
  RoundSpec spec;
  spec.kind = RoundKind::kBatchEval;
  spec.aux = static_cast<uint8_t>(form);
  spec.accounted_broadcast_bytes = broadcast.size();
  spec.broadcast = broadcast.TakeBuffer();
  Result<std::vector<std::vector<uint8_t>>> round = cluster_->TryRoundAll(
      spec, [this, queries, &wire, &canon_pool, &canon_ref, any_reach,
             form](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        reply.PutVarint(f.site());
        if (any_reach) {
          const std::vector<NodeId>& shared = ctx.oset_globals(f);
          reply.PutVarint(shared.size());
          for (NodeId g : shared) reply.PutVarint(g);
        }
        for (size_t wi = 0; wi < wire.size(); ++wi) {
          const Query& q = queries[wire[wi]];
          Encoder body;
          switch (q.kind) {
            case QueryKind::kReach: {
              const ReachPartialAnswer pa =
                  form == EquationForm::kClosure
                      ? ReachFromCachedRows(f, &ctx, q.source, q.target)
                      : RebaseOntoSharedOset(
                            LocalEvalReach(f, q.source, q.target, form,
                                           &ctx.cond(f)),
                            ctx);
              pa.SerializeBody(ctx.oset_globals(f).size(), &body);
              break;
            }
            case QueryKind::kDist:
              LocalEvalDist(f, q.source, q.target, q.bound).Serialize(&body);
              break;
            case QueryKind::kRpq:
              LocalEvalRegular(f, canon_pool[canon_ref[wi]], q.source,
                               q.target, form, &ctx.label_index(f))
                  .Serialize(&body);
              break;
          }
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });
  if (!round.ok()) return round.status();
  const std::vector<std::vector<uint8_t>>& replies = round.value();

  // Demultiplex: split every site reply into its shared oset table and one
  // frame decoder per query (frames view the reply buffers, no copies).
  StopWatch assemble_watch;
  std::vector<SiteId> reply_site(replies.size());
  std::vector<std::vector<NodeId>> reply_oset(replies.size());
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri], Decoder::OnError::kStatus);
    reply_site[ri] = static_cast<SiteId>(dec.GetVarint());
    if (any_reach) {
      reply_oset[ri].resize(dec.GetCount());
      for (NodeId& g : reply_oset[ri]) g = static_cast<NodeId>(dec.GetVarint());
    }
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    if (!dec.Done() || reply_site[ri] >= replies.size()) {
      return MalformedReply("site reply payload");
    }
  }

  // Assemble and solve one query at a time (evalDG / evalDGd / evalDGr), so
  // a large batch never holds more than one equation system live.
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    if (q.kind == QueryKind::kDist) {
      DistanceEquationSystem dist;
      for (size_t ri = 0; ri < replies.size(); ++ri) {
        Decoder& frame = frames[ri][wi];
        DistPartialAnswer pa = DistPartialAnswer::Deserialize(&frame);
        if (!frame.Done()) return MalformedReply("site reply frame");
        pa.AddToSystem(&dist);
      }
      answer.distance = dist.Evaluate(q.source);
      answer.reachable =
          answer.distance != kInfWeight && answer.distance <= q.bound;
      continue;
    }
    BooleanEquationSystem bes;
    for (size_t ri = 0; ri < replies.size(); ++ri) {
      Decoder& frame = frames[ri][wi];
      if (q.kind == QueryKind::kReach) {
        ReachPartialAnswer pa =
            ReachPartialAnswer::DeserializeBody(&frame, reply_site[ri]);
        if (!frame.Done()) return MalformedReply("site reply frame");
        pa.AddToBes(reply_oset[ri], &bes);
      } else {
        RegularPartialAnswer pa = RegularPartialAnswer::Deserialize(&frame);
        if (!frame.Done()) return MalformedReply("site reply frame");
        pa.AddToBes(&bes);
      }
    }
    answer.reachable =
        q.kind == QueryKind::kReach
            ? bes.Evaluate(q.source)
            : bes.Evaluate(PackNodeState(q.source, QueryAutomaton::kStart));
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
  return Status::OK();
}

Status PartialEvalEngine::RunBoundaryReach(std::span<const Query> queries,
                                           const std::vector<size_t>& wire,
                                           std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_ == nullptr) {
    boundary_ = std::make_unique<BoundaryReachIndex>(frag.num_fragments(),
                                                     options_.shortcut_budget);
  }

  // Refresh round: fetch the boundary rows of every dirty fragment (all of
  // them on first use; exactly the update-touched ones afterwards — the
  // InvalidateFragment path marks them) and rebuild the small condensation
  // + labels at the coordinator. Amortized across every later reach batch
  // until the next update. A fragment's rows are only installed once its
  // reply decoded cleanly, so a failed refresh leaves the site dirty and
  // the next batch re-fetches.
  const std::vector<SiteId> dirty = boundary_->DirtySites();
  if (!dirty.empty()) {
    RoundSpec spec;
    spec.kind = RoundKind::kReachRows;
    spec.accounted_broadcast_bytes = 1;  // the "please send rows" byte
    Result<std::vector<std::vector<uint8_t>>> round =
        cluster_->TryRound(dirty, spec, [this](const Fragment& f) {
          Encoder reply;
          BuildBoundaryRows(f, &contexts_.Get(f.site())).Serialize(&reply);
          return reply.TakeBuffer();
        });
    if (!round.ok()) return round.status();
    const std::vector<std::vector<uint8_t>>& rows_replies = round.value();
    StopWatch build_watch;
    for (size_t i = 0; i < dirty.size(); ++i) {
      Decoder dec(rows_replies[i], Decoder::OnError::kStatus);
      BoundaryRows rows = BoundaryRows::Deserialize(&dec);
      if (!dec.Done()) return MalformedReply("boundary rows payload");
      boundary_->SetFragmentRows(dirty[i], std::move(rows));
    }
    boundary_->Ensure();
    cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
  }

  // Sweep round over the ENDPOINT fragments only — the boundary index
  // replaces the all-sites equation broadcast. Each involved site answers
  // every query of the batch with one tiny frame (its two query-dependent
  // sweeps); sites holding neither endpoint of a query emit one flag byte.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(wire.size());
  for (size_t qi : wire) queries[qi].Serialize(&broadcast);

  RoundSpec spec;
  spec.kind = RoundKind::kReachSweep;
  spec.accounted_broadcast_bytes = broadcast.size();
  spec.broadcast = broadcast.TakeBuffer();
  Result<std::vector<std::vector<uint8_t>>> round = cluster_->TryRound(
      sites, spec, [this, queries, &wire](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          EncodeBoundarySweepFrame(f, &ctx, q.source, q.target, &body);
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });
  if (!round.ok()) return round.status();
  const std::vector<std::vector<uint8_t>>& replies = round.value();

  // Assemble: per query, splice the s-side exits onto the t-side arrivals
  // through the boundary label — no equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri], Decoder::OnError::kStatus);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    if (!dec.Done()) return MalformedReply("boundary sweep reply");
  }

  // Decode every query's frames into flat endpoint storage first (spans are
  // recorded as offsets so growth can't invalidate them), then answer the
  // pending questions: in 64-lane bit-parallel words through AnswerBatch, or
  // one scalar lookup each when batch_sweep is off (the reference path).
  std::vector<NodeId> nodes;
  struct PendingQuestion {
    size_t wi;
    size_t s_off, s_len;
    size_t t_off, t_len;
  };
  std::vector<PendingQuestion> pending;
  pending.reserve(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    if (s_flags & kFrameLocalTrue) {
      answer.reachable = true;
      continue;
    }
    if (!(s_flags & kFrameHasS)) return MalformedReply("boundary sweep frame");
    PendingQuestion p;
    p.wi = wi;
    p.s_off = nodes.size();
    const std::vector<NodeId>& oset = boundary_->oset_globals(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      if (prev >= oset.size()) return MalformedReply("boundary sweep frame");
      nodes.push_back(oset[prev]);
    }
    p.s_len = nodes.size() - p.s_off;

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    if (!(t_flags & kFrameHasT)) return MalformedReply("boundary sweep frame");
    p.t_off = nodes.size();
    for (size_t n = t_frame.GetCount(); n > 0; --n) {
      nodes.push_back(static_cast<NodeId>(t_frame.GetVarint()));
    }
    p.t_len = nodes.size() - p.t_off;
    if (!s_frame.ok() || !t_frame.ok()) {
      return MalformedReply("boundary sweep frame");
    }
    pending.push_back(p);
  }

  const std::span<const NodeId> flat(nodes);
  if (options_.batch_sweep) {
    std::vector<BoundaryReachIndex::ReachQuestion> questions(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      questions[i].sources = flat.subspan(pending[i].s_off, pending[i].s_len);
      questions[i].targets = flat.subspan(pending[i].t_off, pending[i].t_len);
    }
    std::vector<uint8_t> batched;
    boundary_->AnswerBatch(questions, &batched);
    for (size_t i = 0; i < pending.size(); ++i) {
      (*answers)[wire[pending[i].wi]].reachable = batched[i] != 0;
    }
  } else {
    for (const PendingQuestion& p : pending) {
      (*answers)[wire[p.wi]].reachable = boundary_->ReachesAny(
          flat.subspan(p.s_off, p.s_len), flat.subspan(p.t_off, p.t_len));
    }
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
  return Status::OK();
}

Status PartialEvalEngine::RunBoundaryDist(std::span<const Query> queries,
                                          const std::vector<size_t>& wire,
                                          std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_dist_ == nullptr) {
    boundary_dist_ = std::make_unique<BoundaryDistIndex>(frag.num_fragments());
  }

  // Refresh round: fetch the weighted boundary rows of every dirty fragment
  // and rebuild the standing CSR pair at the coordinator. Amortized across
  // every later dist batch until the next update.
  const std::vector<SiteId> dirty = boundary_dist_->DirtySites();
  if (!dirty.empty()) {
    RoundSpec spec;
    spec.kind = RoundKind::kDistRows;
    spec.accounted_broadcast_bytes = 1;  // the "please send rows" byte
    Result<std::vector<std::vector<uint8_t>>> round =
        cluster_->TryRound(dirty, spec, [this](const Fragment& f) {
          Encoder reply;
          BuildWeightedBoundaryRows(f, &contexts_.Get(f.site()))
              .Serialize(&reply);
          return reply.TakeBuffer();
        });
    if (!round.ok()) return round.status();
    const std::vector<std::vector<uint8_t>>& rows_replies = round.value();
    StopWatch build_watch;
    for (size_t i = 0; i < dirty.size(); ++i) {
      Decoder dec(rows_replies[i], Decoder::OnError::kStatus);
      WeightedBoundaryRows rows = WeightedBoundaryRows::Deserialize(&dec);
      if (!dec.Done()) return MalformedReply("weighted boundary rows payload");
      boundary_dist_->SetFragmentRows(dirty[i], std::move(rows));
    }
    boundary_dist_->Ensure();
    cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
  }

  // Sweep round over the ENDPOINT fragments only — the standing weighted
  // graph replaces the all-sites min-plus equation broadcast. Each involved
  // site answers every query of the batch with one tiny frame (its bounded
  // s-side / t-side distance sweeps); sites holding neither endpoint of a
  // query emit one flag byte.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(wire.size());
  for (size_t qi : wire) queries[qi].Serialize(&broadcast);

  RoundSpec spec;
  spec.kind = RoundKind::kDistSweep;
  spec.accounted_broadcast_bytes = broadcast.size();
  spec.broadcast = broadcast.TakeBuffer();
  Result<std::vector<std::vector<uint8_t>>> round = cluster_->TryRound(
      sites, spec, [this, queries, &wire](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          EncodeDistSweepFrame(f, &ctx, q.source, q.target, q.bound, &body);
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });
  if (!round.ok()) return round.status();
  const std::vector<std::vector<uint8_t>>& replies = round.value();

  // Assemble: per query, splice the s-side exit distances onto the t-side
  // entry distances through one bidirectional Dijkstra over the standing
  // graph (edges above the bound filtered), then take the minimum with the
  // local short-circuit — no min-plus equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri], Decoder::OnError::kStatus);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    if (!dec.Done()) return MalformedReply("dist sweep reply");
  }

  std::vector<BoundaryDistIndex::Seed> s_out;
  std::vector<BoundaryDistIndex::Seed> t_in;
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    if (!(s_flags & kFrameHasS)) return MalformedReply("dist sweep frame");
    uint64_t local_dist = kInfWeight;
    if (s_flags & kFrameHasLocalDist) local_dist = s_frame.GetVarint();
    s_out.clear();
    const std::vector<NodeId>& oset = boundary_dist_->oset_globals(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(2); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      if (prev >= oset.size()) return MalformedReply("dist sweep frame");
      s_out.push_back({oset[prev], s_frame.GetVarint()});
    }

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    if (!(t_flags & kFrameHasT)) return MalformedReply("dist sweep frame");
    t_in.clear();
    for (size_t n = t_frame.GetCount(2); n > 0; --n) {
      const NodeId global = static_cast<NodeId>(t_frame.GetVarint());
      t_in.push_back({global, t_frame.GetVarint()});
    }
    if (!s_frame.ok() || !t_frame.ok()) {
      return MalformedReply("dist sweep frame");
    }

    answer.distance = std::min(
        local_dist, boundary_dist_->ShortestPath(s_out, t_in, q.bound));
    answer.reachable =
        answer.distance != kInfWeight && answer.distance <= q.bound;
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
  return Status::OK();
}

Status PartialEvalEngine::RunBoundaryRpq(std::span<const Query> queries,
                                         const std::vector<size_t>& wire,
                                         std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_rpq_ == nullptr) {
    boundary_rpq_ = std::make_unique<BoundaryRpqIndex>(
        frag.num_fragments(), options_.rpq_cache_entries,
        options_.shortcut_budget);
  }
  boundary_rpq_->BeginBatch();

  // Canonicalize and dedupe the batch's automata: every distinct signature
  // maps to one LRU entry and crosses the wire at most once per round.
  struct SigGroup {
    CanonicalAutomaton canon;
    BoundaryRpqIndex::Entry* entry = nullptr;
    std::vector<SiteId> dirty;
  };
  std::vector<SigGroup> sigs;
  std::unordered_map<std::string, uint32_t> sig_index;
  std::vector<uint32_t> query_sig(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    CanonicalAutomaton canon = Canonicalize(*queries[wire[wi]].automaton);
    const auto [it, inserted] = sig_index.emplace(
        canon.signature.key, static_cast<uint32_t>(sigs.size()));
    if (inserted) sigs.push_back({std::move(canon), nullptr, {}});
    query_sig[wi] = it->second;
  }
  for (SigGroup& sig : sigs) {
    sig.entry = &boundary_rpq_->GetEntry(sig.canon.signature);
    sig.dirty = sig.entry->DirtySites();
  }

  // Refresh round: fetch the product boundary rows of every dirty
  // (fragment, automaton) combination in ONE round — all of them on an
  // entry's first use; exactly the update-touched fragments afterwards —
  // and rebuild the small per-entry condensation + labels. Amortized across
  // every later rpq batch over the same automaton until the next update or
  // LRU eviction. The broadcast carries each dirty automaton once plus its
  // site list.
  std::vector<std::vector<uint32_t>> site_sigs(frag.num_fragments());
  std::vector<SiteId> refresh_sites;
  {
    Encoder refresh_broadcast;
    size_t num_dirty_sigs = 0;
    Encoder dirty_payload;
    for (uint32_t si = 0; si < sigs.size(); ++si) {
      if (sigs[si].dirty.empty()) continue;
      ++num_dirty_sigs;
      sigs[si].canon.automaton.Serialize(&dirty_payload);
      dirty_payload.PutVarint(sigs[si].dirty.size());
      for (SiteId site : sigs[si].dirty) {
        dirty_payload.PutVarint(site);
        site_sigs[site].push_back(si);
      }
    }
    refresh_broadcast.PutVarint(num_dirty_sigs);
    refresh_broadcast.PutRaw(dirty_payload.buffer());
    for (SiteId site = 0; site < frag.num_fragments(); ++site) {
      if (!site_sigs[site].empty()) refresh_sites.push_back(site);
    }
    if (!refresh_sites.empty()) {
      RoundSpec spec;
      spec.kind = RoundKind::kRpqRows;
      spec.accounted_broadcast_bytes = refresh_broadcast.size();
      spec.broadcast = refresh_broadcast.TakeBuffer();
      Result<std::vector<std::vector<uint8_t>>> round = cluster_->TryRound(
          refresh_sites, spec, [this, &sigs, &site_sigs](const Fragment& f) {
            FragmentContext& ctx = contexts_.Get(f.site());
            ctx.BeginRpqRound();
            Encoder reply;
            for (uint32_t si : site_sigs[f.site()]) {
              Encoder body;
              BuildProductBoundaryRows(f, &ctx, sigs[si].canon.signature.key,
                                       sigs[si].canon.automaton)
                  .Serialize(&body);
              reply.PutFrame(body.buffer());
            }
            return reply.TakeBuffer();
          });
      if (!round.ok()) return round.status();
      const std::vector<std::vector<uint8_t>>& rows_replies = round.value();
      StopWatch build_watch;
      for (size_t ri = 0; ri < refresh_sites.size(); ++ri) {
        Decoder dec(rows_replies[ri], Decoder::OnError::kStatus);
        for (uint32_t si : site_sigs[refresh_sites[ri]]) {
          Decoder frame = dec.GetFrame();
          ProductBoundaryRows rows = ProductBoundaryRows::Deserialize(&frame);
          if (!frame.Done()) return MalformedReply("product rows frame");
          sigs[si].entry->SetFragmentRows(refresh_sites[ri], std::move(rows));
        }
        if (!dec.Done()) return MalformedReply("product rows payload");
      }
      for (SigGroup& sig : sigs) sig.entry->Ensure();
      cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
    }
  }

  // Sweep round over the ENDPOINT fragments only — the product boundary
  // graphs replace the all-sites product-equation broadcast. Each involved
  // site answers every query of the batch with one tiny frame (its two
  // query-dependent product sweeps); sites holding neither endpoint of a
  // query emit one flag byte. The broadcast ships the batch's distinct
  // canonical automata once each; queries reference them by index.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(sigs.size());
  for (const SigGroup& sig : sigs) sig.canon.automaton.Serialize(&broadcast);
  broadcast.PutVarint(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    broadcast.PutVarint(queries[wire[wi]].source);
    broadcast.PutVarint(queries[wire[wi]].target);
    broadcast.PutVarint(query_sig[wi]);
  }

  RoundSpec spec;
  spec.kind = RoundKind::kRpqSweep;
  spec.accounted_broadcast_bytes = broadcast.size();
  spec.broadcast = broadcast.TakeBuffer();
  Result<std::vector<std::vector<uint8_t>>> round = cluster_->TryRound(
      sites, spec,
      [this, queries, &wire, &sigs, &query_sig](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        ctx.BeginRpqRound();
        Encoder reply;
        for (size_t wi = 0; wi < wire.size(); ++wi) {
          const Query& q = queries[wire[wi]];
          Encoder body;
          if (!f.Contains(q.source) && !f.Contains(q.target)) {
            body.PutU8(0);
          } else {
            const SigGroup& sig = sigs[query_sig[wi]];
            const FragmentContext::RpqProduct& p = ctx.rpq_product(
                f, sig.canon.signature.key, sig.canon.automaton);
            EncodeRpqSweepFrame(f, &ctx, p, q.source, q.target, &body);
          }
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });
  if (!round.ok()) return round.status();
  const std::vector<std::vector<uint8_t>>& replies = round.value();

  // Assemble: per query, splice the s-side exit pairs onto the t-side
  // accepting entries (plus the standing accept pair (t, u_t), which covers
  // acceptance at fragments holding virtual copies of t) through the
  // standing product graph's labels — no equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri], Decoder::OnError::kStatus);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    if (!dec.Done()) return MalformedReply("product sweep reply");
  }

  // Decode every query's frames into flat pair storage first (spans are
  // recorded as offsets so growth can't invalidate them), then answer each
  // entry's pending questions together: in 64-lane bit-parallel words
  // through its AnswerBatch, or one scalar lookup per query when
  // batch_sweep is off (the reference path).
  std::vector<ProductPair> pairs;
  struct PendingQuestion {
    size_t wi;
    size_t s_off, s_len;
    size_t t_off, t_len;
  };
  std::vector<std::vector<PendingQuestion>> pending_by_sig(sigs.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    BoundaryRpqIndex::Entry& entry = *sigs[query_sig[wi]].entry;
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    if (s_flags & kFrameLocalTrue) {
      answer.reachable = true;
      continue;
    }
    if (!(s_flags & kFrameHasS)) return MalformedReply("product sweep frame");
    PendingQuestion p;
    p.wi = wi;
    p.s_off = pairs.size();
    const size_t table_size = entry.TableSize(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      if (prev >= table_size) return MalformedReply("product sweep frame");
      pairs.push_back(entry.TablePair(s_site, prev));
    }
    p.s_len = pairs.size() - p.s_off;

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    if (!(t_flags & kFrameHasT)) return MalformedReply("product sweep frame");
    p.t_off = pairs.size();
    for (size_t n = t_frame.GetCount(2); n > 0; --n) {
      const NodeId global = static_cast<NodeId>(t_frame.GetVarint());
      pairs.push_back({global, t_frame.GetU8()});
    }
    if (!s_frame.ok() || !t_frame.ok()) {
      return MalformedReply("product sweep frame");
    }
    // The standing accept pair (t, u_t): acceptance at any fragment holding
    // a virtual copy of t routes through it. Absent exactly when t has no
    // virtual copy, i.e. no cross edge enters t anywhere.
    const ProductPair accept{q.target,
                             static_cast<uint8_t>(QueryAutomaton::kFinal)};
    if (entry.HasPair(accept)) pairs.push_back(accept);
    p.t_len = pairs.size() - p.t_off;
    pending_by_sig[query_sig[wi]].push_back(p);
  }

  const std::span<const ProductPair> flat(pairs);
  std::vector<BoundaryRpqIndex::RpqQuestion> questions;
  std::vector<uint8_t> batched;
  for (size_t si = 0; si < sigs.size(); ++si) {
    const std::vector<PendingQuestion>& pending = pending_by_sig[si];
    if (pending.empty()) continue;
    BoundaryRpqIndex::Entry& entry = *sigs[si].entry;
    if (options_.batch_sweep) {
      questions.assign(pending.size(), {});
      for (size_t i = 0; i < pending.size(); ++i) {
        questions[i].sources =
            flat.subspan(pending[i].s_off, pending[i].s_len);
        questions[i].targets =
            flat.subspan(pending[i].t_off, pending[i].t_len);
      }
      entry.AnswerBatch(questions, &batched);
      for (size_t i = 0; i < pending.size(); ++i) {
        (*answers)[wire[pending[i].wi]].reachable = batched[i] != 0;
      }
    } else {
      for (const PendingQuestion& p : pending) {
        (*answers)[wire[p.wi]].reachable = entry.ReachesAny(
            flat.subspan(p.s_off, p.s_len), flat.subspan(p.t_off, p.t_len));
      }
    }
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
  return Status::OK();
}

}  // namespace pereach
