#include "src/engine/partial_eval_engine.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>

#include "src/bes/bes.h"
#include "src/bes/distance_system.h"
#include "src/regex/canonical.h"
#include "src/util/timer.h"

namespace pereach {

namespace {

/// True for queries the coordinator answers without touching any site.
/// Regular queries are never trivial: q_rr(s, s, R) asks for a cycle.
bool IsTrivial(const Query& q) {
  return (q.kind == QueryKind::kReach || q.kind == QueryKind::kDist) &&
         q.source == q.target;
}

/// Rebases a partial answer produced against its own query-local oset table
/// onto the fragment's shared (batch-wide) table; the answer's own table is
/// dropped (batch bodies serialize against the shared one). Every dependency
/// of a localEval answer is a non-target virtual node, so each one has a
/// shared index; ascending order survives because both tables list virtual
/// nodes in ascending local-id order.
ReachPartialAnswer RebaseOntoSharedOset(ReachPartialAnswer pa,
                                        const FragmentContext& ctx) {
  for (ReachPartialAnswer::Equation& eq : pa.equations) {
    for (uint32_t& dep : eq.deps) {
      const uint32_t idx = ctx.OsetIndexOf(pa.oset_globals[dep]);
      PEREACH_CHECK_NE(idx, FragmentContext::kNoIndex);
      dep = idx;
    }
    // The remap is order-preserving (a possible local-t entry at index 0 of
    // the query table is never a dep, and both tables list virtual nodes in
    // ascending local-id order), so no re-sort is needed.
    PEREACH_CHECK(std::is_sorted(eq.deps.begin(), eq.deps.end()));
  }
  pa.oset_globals.clear();
  return pa;
}

/// The two query-dependent condensation sweeps every cached-rows reach path
/// (BES closure frames and boundary-index frames) is built from. Both rely
/// on component ids being reverse topological: every edge goes to a smaller
/// id.

/// Components that locally reach `t_comp`: an ascending scan sees every
/// successor's final value.
std::vector<bool> ComponentsReaching(const Condensation& cond,
                                     uint32_t t_comp) {
  std::vector<bool> reaches(cond.scc.num_components, false);
  reaches[t_comp] = true;
  for (uint32_t c = t_comp + 1; c < cond.scc.num_components; ++c) {
    bool r = false;
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1] && !r; ++e) {
      r = reaches[cond.targets[e]];
    }
    reaches[c] = r;
  }
  return reaches;
}

/// Components locally reachable from `s_comp`: a descending scan spreads
/// the flag to all successors.
std::vector<bool> ComponentsReachableFrom(const Condensation& cond,
                                          uint32_t s_comp) {
  std::vector<bool> reachable(cond.scc.num_components, false);
  reachable[s_comp] = true;
  for (uint32_t c = s_comp + 1; c-- > 0;) {
    if (!reachable[c]) continue;
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
      reachable[cond.targets[e]] = true;
    }
  }
  return reachable;
}

/// Closure-form reach partial answer straight from the cached rows: the
/// query-independent part (in-node group -> reachable virtual nodes) is read
/// from FragmentContext, so the per-query work is two O(|cond|) sweeps (which
/// groups reach t, what s reaches) plus serialization.
ReachPartialAnswer ReachFromCachedRows(const Fragment& f, FragmentContext* ctx,
                                       NodeId s, NodeId t) {
  const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
  const Condensation& cond = ctx->cond(f);
  const std::vector<uint32_t>& oset_comp = ctx->oset_comp(f);

  ReachPartialAnswer pa;
  pa.site = f.site();

  // t-side query-dependent piece: which components reach t locally (only
  // meaningful when t is stored here; a virtual copy of t is an oset entry).
  const uint32_t t_idx = ctx->OsetIndexOf(t);
  const bool t_local = f.Contains(t);
  uint32_t t_comp = 0;
  std::vector<bool> reaches_t;
  if (t_local) {
    t_comp = cond.scc.component_of[f.ToLocal(t)];
    reaches_t = ComponentsReaching(cond, t_comp);
  }

  pa.equations.reserve(rows.group_rep.size() + 1);
  for (size_t g = 0; g < rows.group_rep.size(); ++g) {
    ReachPartialAnswer::Equation eq;
    eq.var = f.ToGlobal(rows.group_rep[g]);
    eq.has_true = t_local && reaches_t[rows.group_comp[g]];
    eq.deps.reserve(rows.rows[g].size());
    for (uint32_t idx : rows.rows[g]) {
      if (idx == t_idx) {
        eq.has_true = true;  // reaching the virtual copy of t answers q
      } else {
        eq.deps.push_back(idx);
      }
    }
    pa.equations.push_back(std::move(eq));
  }
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const uint32_t g = rows.in_group[i];
    if (rows.group_rep[g] == in) continue;
    pa.aliases.push_back({/*rep_is_aux=*/false, f.ToGlobal(in),
                          f.ToGlobal(rows.group_rep[g])});
  }

  // s-side query-dependent piece: s's own equation when s is stored here and
  // is not already covered by an in-node group.
  if (f.Contains(s)) {
    const NodeId local_s = f.ToLocal(s);
    if (!std::binary_search(f.in_nodes().begin(), f.in_nodes().end(),
                            local_s)) {
      const std::vector<bool> reachable =
          ComponentsReachableFrom(cond, cond.scc.component_of[local_s]);
      ReachPartialAnswer::Equation eq;
      eq.var = s;
      eq.has_true = t_local && reachable[t_comp];
      for (uint32_t j = 0; j < oset_comp.size(); ++j) {
        if (!reachable[oset_comp[j]]) continue;
        if (j == t_idx) {
          eq.has_true = true;
        } else {
          eq.deps.push_back(j);
        }
      }
      pa.equations.push_back(std::move(eq));
    }
  }
  return pa;
}

/// Re-encodes a fragment's cached ReachRows into the global-id form the
/// coordinator's boundary index consumes (one row per in-node SCC group,
/// plus member -> rep aliases). Pure re-labeling: the sweeps already ran
/// when reach_rows was built.
BoundaryRows BuildBoundaryRows(const Fragment& f, FragmentContext* ctx) {
  const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
  BoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.rep_globals.reserve(rows.group_rep.size());
  for (NodeId rep : rows.group_rep) out.rep_globals.push_back(f.ToGlobal(rep));
  out.rows = rows.rows;
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const NodeId rep = rows.group_rep[rows.in_group[i]];
    if (rep == in) continue;
    out.aliases.emplace_back(f.ToGlobal(in), f.ToGlobal(rep));
  }
  return out;
}

/// Re-encodes a fragment's cached DistRows into the global-id form the
/// coordinator's weighted boundary index consumes (one weighted row per
/// distinct-row group, plus member -> rep aliases). Pure re-labeling: the
/// unbounded distance sweep already ran when dist_rows was built.
WeightedBoundaryRows BuildWeightedBoundaryRows(const Fragment& f,
                                               FragmentContext* ctx) {
  const FragmentContext::DistRows& rows = ctx->dist_rows(f);
  WeightedBoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.rep_globals.reserve(rows.group_rep.size());
  for (NodeId rep : rows.group_rep) out.rep_globals.push_back(f.ToGlobal(rep));
  out.rows = rows.rows;
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const NodeId rep = rows.group_rep[rows.in_group[i]];
    if (rep == in) continue;
    out.aliases.emplace_back(f.ToGlobal(in), f.ToGlobal(rep));
  }
  return out;
}

/// Re-encodes a fragment's cached per-automaton product structures into the
/// global-id form the coordinator's product boundary index consumes (one
/// row per in-pair product-SCC group, plus member -> group aliases). Pure
/// re-labeling: the product sweep already ran when the RpqProduct was built.
ProductBoundaryRows BuildProductBoundaryRows(
    const Fragment& f, FragmentContext* ctx, const std::string& signature_key,
    const QueryAutomaton& canonical) {
  const FragmentContext::RpqProduct& p =
      ctx->rpq_product(f, signature_key, canonical);
  const std::vector<NodeId>& oset_locals = ctx->oset_locals(f);
  ProductBoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.oset_masks.reserve(oset_locals.size());
  for (NodeId w : oset_locals) out.oset_masks.push_back(p.compat[w]);
  out.rep_pairs.reserve(p.group_rep.size());
  for (uint32_t rep : p.group_rep) {
    out.rep_pairs.push_back(
        {f.ToGlobal(p.in_pairs[rep].first), p.in_pairs[rep].second});
  }
  out.rows = p.rows;
  for (size_t i = 0; i < p.in_pairs.size(); ++i) {
    const uint32_t g = p.in_group[i];
    if (p.group_rep[g] == i) continue;
    out.aliases.push_back(
        {{f.ToGlobal(p.in_pairs[i].first), p.in_pairs[i].second}, g});
  }
  return out;
}

// Flag bits of a boundary sweep frame.
constexpr uint8_t kFrameHasS = 1;      // s-side list present
constexpr uint8_t kFrameHasT = 2;      // t-side list present
constexpr uint8_t kFrameLocalTrue = 4; // answer decided inside this fragment
// Extra flag bit of a dist sweep frame: a local s -> t distance (within the
// query bound) is present. Unlike kFrameLocalTrue it does NOT end the frame
// — a cross-fragment route can still be shorter, so the lists follow.
constexpr uint8_t kFrameHasLocalDist = 4;

/// The query-dependent halves of one dist query at one fragment, encoded for
/// the weighted boundary answer path:
///  - s-side (s stored here): ascending (oset index, hops) pairs for the
///    virtual nodes s reaches locally within the bound — the exits a global
///    path can leave through, with their seed distances; reaching t or t's
///    virtual copy locally folds into the local short-circuit distance;
///  - t-side (t stored here): (in-node global, hops) pairs for the in-nodes
///    that reach t locally within the bound — the entries a global path can
///    arrive at, with their closing distances. No group-rep substitution:
///    distances differ across an SCC's members.
/// All three pieces are exactly what localEvald would have shipped (its s
/// equation, its base column), so the assembled answer matches the BES path.
void EncodeDistSweepFrame(const Fragment& f, FragmentContext* ctx, NodeId s,
                          NodeId t, uint32_t bound, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }

  uint64_t local_dist = kInfWeight;
  std::vector<std::pair<uint32_t, uint32_t>> s_out;
  if (s_here) {
    // One bounded sweep from s over the oset plus t's local copy; a virtual
    // copy of t folds into the short-circuit by global id, like localEvald's
    // base column.
    const std::vector<NodeId>& oset_locals = ctx->oset_locals(f);
    const std::vector<NodeId>& oset_globals = ctx->oset_globals(f);
    std::vector<NodeId> targets = oset_locals;
    if (t_here) targets.push_back(f.ToLocal(t));
    const std::vector<NodeId> source = {f.ToLocal(s)};
    ForEachBoundedDistance(
        f.local_graph(), source, targets, bound, /*block_bits=*/256,
        [&](uint32_t, uint32_t ti, uint32_t hops) {
          if (ti >= oset_globals.size() || oset_globals[ti] == t) {
            local_dist = std::min<uint64_t>(local_dist, hops);
          } else {
            s_out.emplace_back(ti, hops);
          }
        });
    std::sort(s_out.begin(), s_out.end());
  }

  std::vector<std::pair<NodeId, uint32_t>> t_in;
  if (t_here) {
    const std::vector<NodeId> target = {f.ToLocal(t)};
    ForEachBoundedDistance(
        f.local_graph(), f.in_nodes(), target, bound, /*block_bits=*/64,
        [&](uint32_t in_idx, uint32_t, uint32_t hops) {
          t_in.emplace_back(f.ToGlobal(f.in_nodes()[in_idx]), hops);
        });
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  if (local_dist != kInfWeight) flags |= kFrameHasLocalDist;
  body->PutU8(flags);
  if (local_dist != kInfWeight) body->PutVarint(local_dist);
  if (s_here) {
    body->PutVarint(s_out.size());
    uint32_t prev = 0;
    for (const auto& [idx, hops] : s_out) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      body->PutVarint(hops);
      prev = idx;
    }
  }
  if (t_here) {
    body->PutVarint(t_in.size());
    for (const auto& [global, hops] : t_in) {
      body->PutVarint(global);
      body->PutVarint(hops);
    }
  }
}

/// The query-dependent halves of one reach query at one fragment, encoded
/// for the boundary answer path:
///  - s-side (s stored here): ascending oset indices of the virtual nodes s
///    reaches locally — the boundary nodes a global path can leave through;
///  - t-side (t stored here): global ids of the in-node group REPS that
///    reach t locally — the boundary nodes a global path can arrive at (a
///    non-rep member's arrival implies its rep's, via the alias edge).
/// When the fragment alone decides the query (s reaches t or t's virtual
/// copy locally), the frame is the single kFrameLocalTrue byte.
void EncodeBoundarySweepFrame(const Fragment& f, FragmentContext* ctx,
                              NodeId s, NodeId t, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }
  const Condensation& cond = ctx->cond(f);
  const std::vector<uint32_t>& oset_comp = ctx->oset_comp(f);

  uint32_t t_comp = 0;
  std::vector<bool> reaches_t;
  if (t_here) {
    t_comp = cond.scc.component_of[f.ToLocal(t)];
    reaches_t = ComponentsReaching(cond, t_comp);
  }

  bool local_true = false;
  std::vector<uint32_t> s_out;
  if (s_here) {
    const std::vector<bool> reachable =
        ComponentsReachableFrom(cond, cond.scc.component_of[f.ToLocal(s)]);
    local_true = t_here && reachable[t_comp];
    // Virtual nodes are local sinks, so each one is a singleton component:
    // reachable[its component] is exactly "s reaches it". Reaching t's
    // virtual copy decides the query (the cross edge into t completes the
    // path); every other reachable virtual node is an exit candidate.
    const uint32_t t_idx = ctx->OsetIndexOf(t);
    for (uint32_t j = 0; j < oset_comp.size(); ++j) {
      if (!reachable[oset_comp[j]]) continue;
      if (j == t_idx) {
        local_true = true;
      } else {
        s_out.push_back(j);
      }
    }
  }
  if (local_true) {
    body->PutU8(kFrameLocalTrue);
    return;
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  body->PutU8(flags);
  if (s_here) {
    body->PutVarint(s_out.size());
    uint32_t prev = 0;
    for (uint32_t idx : s_out) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      prev = idx;
    }
  }
  if (t_here) {
    const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
    std::vector<NodeId> t_in;
    for (size_t g = 0; g < rows.group_rep.size(); ++g) {
      if (reaches_t[rows.group_comp[g]]) {
        t_in.push_back(f.ToGlobal(rows.group_rep[g]));
      }
    }
    body->PutVarint(t_in.size());
    for (NodeId g : t_in) body->PutVarint(g);
  }
}

/// The query-dependent halves of one regular query at one fragment, encoded
/// for the product-boundary answer path. All sweeps run over the standing
/// per-automaton product condensation (FragmentContext::RpqProduct); the
/// only per-query pieces are the u_s seeds, the u_t sinks, and two
/// O(|cond|) scans:
///  - s-side (s stored here): ascending pair-table indices of the frontier
///    pairs (w, q') reachable from (s, u_s) — the product boundary nodes a
///    global match can leave through. Reaching an accept pair at a copy of
///    t, or an accepting predecessor of the local copy, decides the query
///    (kFrameLocalTrue), exactly localEvalr's has_true;
///  - t-side (t stored here): the in-pair group REPS whose product
///    component locally reaches (t, u_t) — the pairs a global match can
///    arrive at to finish (a non-rep member's arrival implies its rep's,
///    via the alias edge).
/// Acceptance AT OTHER fragments (a virtual copy of t elsewhere) is not
/// swept at all: the standing accept pair (t, u_t) covers it, added to the
/// entry list by the coordinator.
void EncodeRpqSweepFrame(const Fragment& f, FragmentContext* ctx,
                         const FragmentContext::RpqProduct& p, NodeId s,
                         NodeId t, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }
  const QueryAutomaton& a = p.automaton;
  const Graph& g = f.local_graph();
  const size_t num_comps = p.cond.scc.num_components;
  constexpr uint64_t kFinalBit = uint64_t{1} << QueryAutomaton::kFinal;

  // t-side piece: components whose pairs locally reach (t, u_t). The seeds
  // are the accepting predecessors (x, q) — edge x -> t_local with u_t in
  // out_mask(q) — i.e. the product in-edges of the (t, u_t) node that the
  // standing product materializes only for VIRTUAL copies. An ascending
  // scan spreads the flag (component ids are reverse topological).
  std::vector<bool> reaches_final;
  if (t_here) {
    reaches_final.assign(num_comps, false);
    const NodeId t_local = f.ToLocal(t);
    bool any_seed = false;
    for (NodeId x : g.InNeighbors(t_local)) {
      uint64_t qs = p.compat[x];
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        if ((a.out_mask(q) >> QueryAutomaton::kFinal) & 1) {
          reaches_final[p.CompOfPair(x, q)] = true;
          any_seed = true;
        }
      }
    }
    if (any_seed) {
      for (uint32_t c = 0; c < num_comps; ++c) {
        if (reaches_final[c]) continue;
        for (size_t e = p.cond.offsets[c];
             e < p.cond.offsets[c + 1] && !reaches_final[c]; ++e) {
          reaches_final[c] = reaches_final[p.cond.targets[e]];
        }
      }
    }
  }

  bool local_true = false;
  std::vector<uint32_t> s_exits;
  if (s_here) {
    const NodeId s_local = f.ToLocal(s);
    // Seeds: the product out-edges of (s, u_s). A hop straight into u_t at
    // a copy of t (single edge s -> t with epsilon in L(R)) decides the
    // query; u_t bits at other copies are stripped — for this query those
    // pairs are not part of the product.
    std::vector<bool> reachable(num_comps, false);
    bool any_seed = false;
    const uint64_t start_mask = a.out_mask(QueryAutomaton::kStart);
    for (NodeId w : g.OutNeighbors(s_local)) {
      if (f.ToGlobal(w) == t && a.AcceptsEmpty()) local_true = true;
      uint64_t qs = start_mask & p.compat[w] & ~kFinalBit;
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        reachable[p.CompOfPair(w, q)] = true;
        any_seed = true;
      }
    }
    if (any_seed) {
      // Descending scan spreads the flag to all successors.
      for (uint32_t c = static_cast<uint32_t>(num_comps); c-- > 0;) {
        if (!reachable[c]) continue;
        for (size_t e = p.cond.offsets[c]; e < p.cond.offsets[c + 1]; ++e) {
          reachable[p.cond.targets[e]] = true;
        }
      }
    }
    // Acceptance via an interior path: at a virtual copy of t the accept
    // pair (t_virtual, u_t) is a standing product node; at the local copy,
    // any reachable component that reaches u_t closes the match.
    const uint32_t t_idx = ctx->OsetIndexOf(t);
    if (!local_true && t_idx != FragmentContext::kNoIndex) {
      const NodeId t_virtual = ctx->oset_locals(f)[t_idx];
      local_true =
          reachable[p.CompOfPair(t_virtual, QueryAutomaton::kFinal)];
    }
    if (!local_true && t_here) {
      for (uint32_t c = 0; c < num_comps && !local_true; ++c) {
        local_true = reachable[c] && reaches_final[c];
      }
    }
    if (!local_true) {
      for (uint32_t i = 0; i < p.table_comp.size(); ++i) {
        if (p.table_state[i] == QueryAutomaton::kFinal) continue;
        if (reachable[p.table_comp[i]]) s_exits.push_back(i);
      }
    }
  }
  if (local_true) {
    body->PutU8(kFrameLocalTrue);
    return;
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  body->PutU8(flags);
  if (s_here) {
    body->PutVarint(s_exits.size());
    uint32_t prev = 0;
    for (uint32_t idx : s_exits) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      prev = idx;
    }
  }
  if (t_here) {
    std::vector<ProductPair> t_in;
    for (size_t gi = 0; gi < p.group_rep.size(); ++gi) {
      if (!reaches_final[p.group_comp[gi]]) continue;
      const auto& [local, state] = p.in_pairs[p.group_rep[gi]];
      t_in.push_back({f.ToGlobal(local), state});
    }
    body->PutVarint(t_in.size());
    for (const ProductPair& pair : t_in) {
      body->PutVarint(pair.node);
      body->PutU8(pair.state);
    }
  }
}

}  // namespace

PartialEvalEngine::PartialEvalEngine(Cluster* cluster,
                                     PartialEvalOptions options)
    : QueryEngine(cluster),
      options_(options),
      contexts_(&cluster->fragmentation(),
                std::max<size_t>(1, options.rpq_cache_entries)) {}

void PartialEvalEngine::RunBatch(std::span<const Query> queries,
                                 std::vector<QueryAnswer>* answers) {
  answers->resize(queries.size());

  // Coordinator-side answers need no site visit; everything else goes on the
  // wire as one multiplexed broadcast — except queries whose class runs
  // under a boundary index, which take their own endpoint-fragment paths.
  std::vector<size_t> wire;
  std::vector<size_t> indexed;
  std::vector<size_t> indexed_dist;
  std::vector<size_t> indexed_rpq;
  wire.reserve(queries.size());
  bool any_reach = false;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    if (IsTrivial(q)) {
      (*answers)[qi].reachable = true;
      (*answers)[qi].distance = 0;
      continue;
    }
    PEREACH_CHECK(q.well_formed());
    if (q.kind == QueryKind::kReach &&
        options_.reach_path == ReachAnswerPath::kBoundaryIndex) {
      indexed.push_back(qi);
      continue;
    }
    if (q.kind == QueryKind::kDist &&
        options_.dist_path == DistAnswerPath::kBoundaryIndex) {
      indexed_dist.push_back(qi);
      continue;
    }
    if (q.kind == QueryKind::kRpq &&
        options_.rpq_path == RpqAnswerPath::kBoundaryIndex) {
      indexed_rpq.push_back(qi);
      continue;
    }
    any_reach |= q.kind == QueryKind::kReach;
    wire.push_back(qi);
  }
  if (!indexed.empty()) RunBoundaryReach(queries, indexed, answers);
  if (!indexed_dist.empty()) RunBoundaryDist(queries, indexed_dist, answers);
  if (!indexed_rpq.empty()) RunBoundaryRpq(queries, indexed_rpq, answers);
  if (wire.empty()) return;

  // Batched broadcast: k queries in one payload (byte accounting; the site
  // closures read the query objects directly, as everywhere in this
  // simulator). Regular queries dedupe their automata by canonical
  // signature: identical regexes in one batch ship one automaton plus a
  // per-query table reference instead of k serialized copies.
  Encoder broadcast;
  {
    std::unordered_map<std::string, uint32_t> automaton_ref;
    Encoder automata;
    broadcast.PutVarint(wire.size());
    for (size_t qi : wire) {
      const Query& q = queries[qi];
      q.SerializeHeader(&broadcast);
      if (q.kind == QueryKind::kRpq) {
        const CanonicalAutomaton canon = Canonicalize(*q.automaton);
        const auto [it, inserted] = automaton_ref.emplace(
            canon.signature.key,
            static_cast<uint32_t>(automaton_ref.size()));
        if (inserted) canon.automaton.Serialize(&automata);
        broadcast.PutVarint(it->second);
      }
    }
    broadcast.PutVarint(automaton_ref.size());
    broadcast.PutRaw(automata.buffer());
  }

  // One round: every site runs localEval for all k queries in a single
  // visit and multiplexes the partial answers into one reply — shared oset
  // table first (reach frames reference it), then one frame per query.
  const EquationForm form = options_.form;
  const std::vector<std::vector<uint8_t>> replies = cluster_->RoundAll(
      broadcast.size(),
      [this, queries, &wire, any_reach, form](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        reply.PutVarint(f.site());
        if (any_reach) {
          const std::vector<NodeId>& shared = ctx.oset_globals(f);
          reply.PutVarint(shared.size());
          for (NodeId g : shared) reply.PutVarint(g);
        }
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          switch (q.kind) {
            case QueryKind::kReach: {
              const ReachPartialAnswer pa =
                  form == EquationForm::kClosure
                      ? ReachFromCachedRows(f, &ctx, q.source, q.target)
                      : RebaseOntoSharedOset(
                            LocalEvalReach(f, q.source, q.target, form,
                                           &ctx.cond(f)),
                            ctx);
              pa.SerializeBody(ctx.oset_globals(f).size(), &body);
              break;
            }
            case QueryKind::kDist:
              LocalEvalDist(f, q.source, q.target, q.bound).Serialize(&body);
              break;
            case QueryKind::kRpq:
              LocalEvalRegular(f, *q.automaton, q.source, q.target, form,
                               &ctx.label_index(f))
                  .Serialize(&body);
              break;
          }
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });

  // Demultiplex: split every site reply into its shared oset table and one
  // frame decoder per query (frames view the reply buffers, no copies).
  StopWatch assemble_watch;
  std::vector<SiteId> reply_site(replies.size());
  std::vector<std::vector<NodeId>> reply_oset(replies.size());
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri]);
    reply_site[ri] = static_cast<SiteId>(dec.GetVarint());
    if (any_reach) {
      reply_oset[ri].resize(dec.GetCount());
      for (NodeId& g : reply_oset[ri]) g = static_cast<NodeId>(dec.GetVarint());
    }
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    PEREACH_CHECK(dec.Done() && "malformed site reply payload");
  }

  // Assemble and solve one query at a time (evalDG / evalDGd / evalDGr), so
  // a large batch never holds more than one equation system live.
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    if (q.kind == QueryKind::kDist) {
      DistanceEquationSystem dist;
      for (size_t ri = 0; ri < replies.size(); ++ri) {
        Decoder& frame = frames[ri][wi];
        DistPartialAnswer::Deserialize(&frame).AddToSystem(&dist);
        PEREACH_CHECK(frame.Done() && "malformed site reply frame");
      }
      answer.distance = dist.Evaluate(q.source);
      answer.reachable =
          answer.distance != kInfWeight && answer.distance <= q.bound;
      continue;
    }
    BooleanEquationSystem bes;
    for (size_t ri = 0; ri < replies.size(); ++ri) {
      Decoder& frame = frames[ri][wi];
      if (q.kind == QueryKind::kReach) {
        ReachPartialAnswer::DeserializeBody(&frame, reply_site[ri])
            .AddToBes(reply_oset[ri], &bes);
      } else {
        RegularPartialAnswer::Deserialize(&frame).AddToBes(&bes);
      }
      PEREACH_CHECK(frame.Done() && "malformed site reply frame");
    }
    answer.reachable =
        q.kind == QueryKind::kReach
            ? bes.Evaluate(q.source)
            : bes.Evaluate(PackNodeState(q.source, QueryAutomaton::kStart));
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
}

void PartialEvalEngine::RunBoundaryReach(std::span<const Query> queries,
                                         const std::vector<size_t>& wire,
                                         std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_ == nullptr) {
    boundary_ = std::make_unique<BoundaryReachIndex>(frag.num_fragments(),
                                                     options_.shortcut_budget);
  }

  // Refresh round: fetch the boundary rows of every dirty fragment (all of
  // them on first use; exactly the update-touched ones afterwards — the
  // InvalidateFragment path marks them) and rebuild the small condensation
  // + labels at the coordinator. Amortized across every later reach batch
  // until the next update.
  const std::vector<SiteId> dirty = boundary_->DirtySites();
  if (!dirty.empty()) {
    const std::vector<std::vector<uint8_t>> rows_replies = cluster_->Round(
        dirty, /*broadcast_bytes=*/1, [this](const Fragment& f) {
          Encoder reply;
          BuildBoundaryRows(f, &contexts_.Get(f.site())).Serialize(&reply);
          return reply.TakeBuffer();
        });
    StopWatch build_watch;
    for (size_t i = 0; i < dirty.size(); ++i) {
      Decoder dec(rows_replies[i]);
      boundary_->SetFragmentRows(dirty[i], BoundaryRows::Deserialize(&dec));
      PEREACH_CHECK(dec.Done() && "malformed boundary rows payload");
    }
    boundary_->Ensure();
    cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
  }

  // Sweep round over the ENDPOINT fragments only — the boundary index
  // replaces the all-sites equation broadcast. Each involved site answers
  // every query of the batch with one tiny frame (its two query-dependent
  // sweeps); sites holding neither endpoint of a query emit one flag byte.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(wire.size());
  for (size_t qi : wire) queries[qi].Serialize(&broadcast);

  const std::vector<std::vector<uint8_t>> replies = cluster_->Round(
      sites, broadcast.size(), [this, queries, &wire](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          EncodeBoundarySweepFrame(f, &ctx, q.source, q.target, &body);
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });

  // Assemble: per query, splice the s-side exits onto the t-side arrivals
  // through the boundary label — no equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri]);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    PEREACH_CHECK(dec.Done() && "malformed boundary sweep reply");
  }

  // Decode every query's frames into flat endpoint storage first (spans are
  // recorded as offsets so growth can't invalidate them), then answer the
  // pending questions: in 64-lane bit-parallel words through AnswerBatch, or
  // one scalar lookup each when batch_sweep is off (the reference path).
  std::vector<NodeId> nodes;
  struct PendingQuestion {
    size_t wi;
    size_t s_off, s_len;
    size_t t_off, t_len;
  };
  std::vector<PendingQuestion> pending;
  pending.reserve(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    if (s_flags & kFrameLocalTrue) {
      answer.reachable = true;
      continue;
    }
    PEREACH_CHECK(s_flags & kFrameHasS);
    PendingQuestion p;
    p.wi = wi;
    p.s_off = nodes.size();
    const std::vector<NodeId>& oset = boundary_->oset_globals(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      PEREACH_CHECK_LT(prev, oset.size());
      nodes.push_back(oset[prev]);
    }
    p.s_len = nodes.size() - p.s_off;

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    PEREACH_CHECK(t_flags & kFrameHasT);
    p.t_off = nodes.size();
    for (size_t n = t_frame.GetCount(); n > 0; --n) {
      nodes.push_back(static_cast<NodeId>(t_frame.GetVarint()));
    }
    p.t_len = nodes.size() - p.t_off;
    pending.push_back(p);
  }

  const std::span<const NodeId> flat(nodes);
  if (options_.batch_sweep) {
    std::vector<BoundaryReachIndex::ReachQuestion> questions(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      questions[i].sources = flat.subspan(pending[i].s_off, pending[i].s_len);
      questions[i].targets = flat.subspan(pending[i].t_off, pending[i].t_len);
    }
    std::vector<uint8_t> batched;
    boundary_->AnswerBatch(questions, &batched);
    for (size_t i = 0; i < pending.size(); ++i) {
      (*answers)[wire[pending[i].wi]].reachable = batched[i] != 0;
    }
  } else {
    for (const PendingQuestion& p : pending) {
      (*answers)[wire[p.wi]].reachable = boundary_->ReachesAny(
          flat.subspan(p.s_off, p.s_len), flat.subspan(p.t_off, p.t_len));
    }
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
}

void PartialEvalEngine::RunBoundaryDist(std::span<const Query> queries,
                                        const std::vector<size_t>& wire,
                                        std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_dist_ == nullptr) {
    boundary_dist_ = std::make_unique<BoundaryDistIndex>(frag.num_fragments());
  }

  // Refresh round: fetch the weighted boundary rows of every dirty fragment
  // and rebuild the standing CSR pair at the coordinator. Amortized across
  // every later dist batch until the next update.
  const std::vector<SiteId> dirty = boundary_dist_->DirtySites();
  if (!dirty.empty()) {
    const std::vector<std::vector<uint8_t>> rows_replies = cluster_->Round(
        dirty, /*broadcast_bytes=*/1, [this](const Fragment& f) {
          Encoder reply;
          BuildWeightedBoundaryRows(f, &contexts_.Get(f.site()))
              .Serialize(&reply);
          return reply.TakeBuffer();
        });
    StopWatch build_watch;
    for (size_t i = 0; i < dirty.size(); ++i) {
      Decoder dec(rows_replies[i]);
      boundary_dist_->SetFragmentRows(
          dirty[i], WeightedBoundaryRows::Deserialize(&dec));
      PEREACH_CHECK(dec.Done() && "malformed weighted boundary rows payload");
    }
    boundary_dist_->Ensure();
    cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
  }

  // Sweep round over the ENDPOINT fragments only — the standing weighted
  // graph replaces the all-sites min-plus equation broadcast. Each involved
  // site answers every query of the batch with one tiny frame (its bounded
  // s-side / t-side distance sweeps); sites holding neither endpoint of a
  // query emit one flag byte.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(wire.size());
  for (size_t qi : wire) queries[qi].Serialize(&broadcast);

  const std::vector<std::vector<uint8_t>> replies = cluster_->Round(
      sites, broadcast.size(), [this, queries, &wire](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          EncodeDistSweepFrame(f, &ctx, q.source, q.target, q.bound, &body);
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });

  // Assemble: per query, splice the s-side exit distances onto the t-side
  // entry distances through one bidirectional Dijkstra over the standing
  // graph (edges above the bound filtered), then take the minimum with the
  // local short-circuit — no min-plus equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri]);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    PEREACH_CHECK(dec.Done() && "malformed dist sweep reply");
  }

  std::vector<BoundaryDistIndex::Seed> s_out;
  std::vector<BoundaryDistIndex::Seed> t_in;
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    PEREACH_CHECK(s_flags & kFrameHasS);
    uint64_t local_dist = kInfWeight;
    if (s_flags & kFrameHasLocalDist) local_dist = s_frame.GetVarint();
    s_out.clear();
    const std::vector<NodeId>& oset = boundary_dist_->oset_globals(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(2); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      PEREACH_CHECK_LT(prev, oset.size());
      s_out.push_back({oset[prev], s_frame.GetVarint()});
    }

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    PEREACH_CHECK(t_flags & kFrameHasT);
    t_in.clear();
    for (size_t n = t_frame.GetCount(2); n > 0; --n) {
      const NodeId global = static_cast<NodeId>(t_frame.GetVarint());
      t_in.push_back({global, t_frame.GetVarint()});
    }

    answer.distance = std::min(
        local_dist, boundary_dist_->ShortestPath(s_out, t_in, q.bound));
    answer.reachable =
        answer.distance != kInfWeight && answer.distance <= q.bound;
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
}

void PartialEvalEngine::RunBoundaryRpq(std::span<const Query> queries,
                                       const std::vector<size_t>& wire,
                                       std::vector<QueryAnswer>* answers) {
  const Fragmentation& frag = cluster_->fragmentation();
  if (boundary_rpq_ == nullptr) {
    boundary_rpq_ = std::make_unique<BoundaryRpqIndex>(
        frag.num_fragments(), options_.rpq_cache_entries,
        options_.shortcut_budget);
  }
  boundary_rpq_->BeginBatch();

  // Canonicalize and dedupe the batch's automata: every distinct signature
  // maps to one LRU entry and crosses the wire at most once per round.
  struct SigGroup {
    CanonicalAutomaton canon;
    BoundaryRpqIndex::Entry* entry = nullptr;
    std::vector<SiteId> dirty;
  };
  std::vector<SigGroup> sigs;
  std::unordered_map<std::string, uint32_t> sig_index;
  std::vector<uint32_t> query_sig(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    CanonicalAutomaton canon = Canonicalize(*queries[wire[wi]].automaton);
    const auto [it, inserted] = sig_index.emplace(
        canon.signature.key, static_cast<uint32_t>(sigs.size()));
    if (inserted) sigs.push_back({std::move(canon), nullptr, {}});
    query_sig[wi] = it->second;
  }
  for (SigGroup& sig : sigs) {
    sig.entry = &boundary_rpq_->GetEntry(sig.canon.signature);
    sig.dirty = sig.entry->DirtySites();
  }

  // Refresh round: fetch the product boundary rows of every dirty
  // (fragment, automaton) combination in ONE round — all of them on an
  // entry's first use; exactly the update-touched fragments afterwards —
  // and rebuild the small per-entry condensation + labels. Amortized across
  // every later rpq batch over the same automaton until the next update or
  // LRU eviction. The broadcast carries each dirty automaton once plus its
  // site list.
  std::vector<std::vector<uint32_t>> site_sigs(frag.num_fragments());
  std::vector<SiteId> refresh_sites;
  {
    Encoder refresh_broadcast;
    size_t num_dirty_sigs = 0;
    Encoder dirty_payload;
    for (uint32_t si = 0; si < sigs.size(); ++si) {
      if (sigs[si].dirty.empty()) continue;
      ++num_dirty_sigs;
      sigs[si].canon.automaton.Serialize(&dirty_payload);
      dirty_payload.PutVarint(sigs[si].dirty.size());
      for (SiteId site : sigs[si].dirty) {
        dirty_payload.PutVarint(site);
        site_sigs[site].push_back(si);
      }
    }
    refresh_broadcast.PutVarint(num_dirty_sigs);
    refresh_broadcast.PutRaw(dirty_payload.buffer());
    for (SiteId site = 0; site < frag.num_fragments(); ++site) {
      if (!site_sigs[site].empty()) refresh_sites.push_back(site);
    }
    if (!refresh_sites.empty()) {
      const std::vector<std::vector<uint8_t>> rows_replies = cluster_->Round(
          refresh_sites, refresh_broadcast.size(),
          [this, &sigs, &site_sigs](const Fragment& f) {
            FragmentContext& ctx = contexts_.Get(f.site());
            ctx.BeginRpqRound();
            Encoder reply;
            for (uint32_t si : site_sigs[f.site()]) {
              Encoder body;
              BuildProductBoundaryRows(f, &ctx, sigs[si].canon.signature.key,
                                       sigs[si].canon.automaton)
                  .Serialize(&body);
              reply.PutFrame(body.buffer());
            }
            return reply.TakeBuffer();
          });
      StopWatch build_watch;
      for (size_t ri = 0; ri < refresh_sites.size(); ++ri) {
        Decoder dec(rows_replies[ri]);
        for (uint32_t si : site_sigs[refresh_sites[ri]]) {
          Decoder frame = dec.GetFrame();
          sigs[si].entry->SetFragmentRows(
              refresh_sites[ri], ProductBoundaryRows::Deserialize(&frame));
          PEREACH_CHECK(frame.Done() && "malformed product rows frame");
        }
        PEREACH_CHECK(dec.Done() && "malformed product rows payload");
      }
      for (SigGroup& sig : sigs) sig.entry->Ensure();
      cluster_->AddCoordinatorWorkMs(build_watch.ElapsedMs());
    }
  }

  // Sweep round over the ENDPOINT fragments only — the product boundary
  // graphs replace the all-sites product-equation broadcast. Each involved
  // site answers every query of the batch with one tiny frame (its two
  // query-dependent product sweeps); sites holding neither endpoint of a
  // query emit one flag byte. The broadcast ships the batch's distinct
  // canonical automata once each; queries reference them by index.
  std::vector<SiteId> sites;
  sites.reserve(2 * wire.size());
  for (size_t qi : wire) {
    sites.push_back(frag.site_of(queries[qi].source));
    sites.push_back(frag.site_of(queries[qi].target));
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  Encoder broadcast;
  broadcast.PutVarint(sigs.size());
  for (const SigGroup& sig : sigs) sig.canon.automaton.Serialize(&broadcast);
  broadcast.PutVarint(wire.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    broadcast.PutVarint(queries[wire[wi]].source);
    broadcast.PutVarint(queries[wire[wi]].target);
    broadcast.PutVarint(query_sig[wi]);
  }

  const std::vector<std::vector<uint8_t>> replies = cluster_->Round(
      sites, broadcast.size(),
      [this, queries, &wire, &sigs, &query_sig](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        ctx.BeginRpqRound();
        Encoder reply;
        for (size_t wi = 0; wi < wire.size(); ++wi) {
          const Query& q = queries[wire[wi]];
          Encoder body;
          if (!f.Contains(q.source) && !f.Contains(q.target)) {
            body.PutU8(0);
          } else {
            const SigGroup& sig = sigs[query_sig[wi]];
            const FragmentContext::RpqProduct& p = ctx.rpq_product(
                f, sig.canon.signature.key, sig.canon.automaton);
            EncodeRpqSweepFrame(f, &ctx, p, q.source, q.target, &body);
          }
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });

  // Assemble: per query, splice the s-side exit pairs onto the t-side
  // accepting entries (plus the standing accept pair (t, u_t), which covers
  // acceptance at fragments holding virtual copies of t) through the
  // standing product graph's labels — no equation system is ever built.
  StopWatch assemble_watch;
  std::vector<uint32_t> site_reply(frag.num_fragments(),
                                   std::numeric_limits<uint32_t>::max());
  for (size_t ri = 0; ri < sites.size(); ++ri) {
    site_reply[sites[ri]] = static_cast<uint32_t>(ri);
  }
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri]);
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    PEREACH_CHECK(dec.Done() && "malformed product sweep reply");
  }

  // Decode every query's frames into flat pair storage first (spans are
  // recorded as offsets so growth can't invalidate them), then answer each
  // entry's pending questions together: in 64-lane bit-parallel words
  // through its AnswerBatch, or one scalar lookup per query when
  // batch_sweep is off (the reference path).
  std::vector<ProductPair> pairs;
  struct PendingQuestion {
    size_t wi;
    size_t s_off, s_len;
    size_t t_off, t_len;
  };
  std::vector<std::vector<PendingQuestion>> pending_by_sig(sigs.size());
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    BoundaryRpqIndex::Entry& entry = *sigs[query_sig[wi]].entry;
    const SiteId s_site = frag.site_of(q.source);
    const SiteId t_site = frag.site_of(q.target);

    Decoder& s_frame = frames[site_reply[s_site]][wi];
    const uint8_t s_flags = s_frame.GetU8();
    if (s_flags & kFrameLocalTrue) {
      answer.reachable = true;
      continue;
    }
    PEREACH_CHECK(s_flags & kFrameHasS);
    PendingQuestion p;
    p.wi = wi;
    p.s_off = pairs.size();
    const size_t table_size = entry.TableSize(s_site);
    uint32_t prev = 0;
    for (size_t n = s_frame.GetCount(); n > 0; --n) {
      prev += static_cast<uint32_t>(s_frame.GetVarint());
      PEREACH_CHECK_LT(prev, table_size);
      pairs.push_back(entry.TablePair(s_site, prev));
    }
    p.s_len = pairs.size() - p.s_off;

    Decoder& t_frame = frames[site_reply[t_site]][wi];
    uint8_t t_flags = s_flags;
    if (t_site != s_site) t_flags = t_frame.GetU8();
    PEREACH_CHECK(t_flags & kFrameHasT);
    p.t_off = pairs.size();
    for (size_t n = t_frame.GetCount(2); n > 0; --n) {
      const NodeId global = static_cast<NodeId>(t_frame.GetVarint());
      pairs.push_back({global, t_frame.GetU8()});
    }
    // The standing accept pair (t, u_t): acceptance at any fragment holding
    // a virtual copy of t routes through it. Absent exactly when t has no
    // virtual copy, i.e. no cross edge enters t anywhere.
    const ProductPair accept{q.target,
                             static_cast<uint8_t>(QueryAutomaton::kFinal)};
    if (entry.HasPair(accept)) pairs.push_back(accept);
    p.t_len = pairs.size() - p.t_off;
    pending_by_sig[query_sig[wi]].push_back(p);
  }

  const std::span<const ProductPair> flat(pairs);
  std::vector<BoundaryRpqIndex::RpqQuestion> questions;
  std::vector<uint8_t> batched;
  for (size_t si = 0; si < sigs.size(); ++si) {
    const std::vector<PendingQuestion>& pending = pending_by_sig[si];
    if (pending.empty()) continue;
    BoundaryRpqIndex::Entry& entry = *sigs[si].entry;
    if (options_.batch_sweep) {
      questions.assign(pending.size(), {});
      for (size_t i = 0; i < pending.size(); ++i) {
        questions[i].sources =
            flat.subspan(pending[i].s_off, pending[i].s_len);
        questions[i].targets =
            flat.subspan(pending[i].t_off, pending[i].t_len);
      }
      entry.AnswerBatch(questions, &batched);
      for (size_t i = 0; i < pending.size(); ++i) {
        (*answers)[wire[pending[i].wi]].reachable = batched[i] != 0;
      }
    } else {
      for (const PendingQuestion& p : pending) {
        (*answers)[wire[p.wi]].reachable = entry.ReachesAny(
            flat.subspan(p.s_off, p.s_len), flat.subspan(p.t_off, p.t_len));
      }
    }
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
}

}  // namespace pereach
