#include "src/engine/partial_eval_engine.h"

#include <algorithm>

#include "src/bes/bes.h"
#include "src/bes/distance_system.h"
#include "src/util/timer.h"

namespace pereach {

namespace {

/// True for queries the coordinator answers without touching any site.
/// Regular queries are never trivial: q_rr(s, s, R) asks for a cycle.
bool IsTrivial(const Query& q) {
  return (q.kind == QueryKind::kReach || q.kind == QueryKind::kDist) &&
         q.source == q.target;
}

/// Rebases a partial answer produced against its own query-local oset table
/// onto the fragment's shared (batch-wide) table; the answer's own table is
/// dropped (batch bodies serialize against the shared one). Every dependency
/// of a localEval answer is a non-target virtual node, so each one has a
/// shared index; ascending order survives because both tables list virtual
/// nodes in ascending local-id order.
ReachPartialAnswer RebaseOntoSharedOset(ReachPartialAnswer pa,
                                        const FragmentContext& ctx) {
  for (ReachPartialAnswer::Equation& eq : pa.equations) {
    for (uint32_t& dep : eq.deps) {
      const uint32_t idx = ctx.OsetIndexOf(pa.oset_globals[dep]);
      PEREACH_CHECK_NE(idx, FragmentContext::kNoIndex);
      dep = idx;
    }
    // The remap is order-preserving (a possible local-t entry at index 0 of
    // the query table is never a dep, and both tables list virtual nodes in
    // ascending local-id order), so no re-sort is needed.
    PEREACH_CHECK(std::is_sorted(eq.deps.begin(), eq.deps.end()));
  }
  pa.oset_globals.clear();
  return pa;
}

/// Closure-form reach partial answer straight from the cached rows: the
/// query-independent part (in-node group -> reachable virtual nodes) is read
/// from FragmentContext, so the per-query work is two O(|cond|) sweeps (which
/// groups reach t, what s reaches) plus serialization.
ReachPartialAnswer ReachFromCachedRows(const Fragment& f, FragmentContext* ctx,
                                       NodeId s, NodeId t) {
  const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
  const Condensation& cond = ctx->cond(f);
  const std::vector<uint32_t>& oset_comp = ctx->oset_comp(f);
  const size_t num_comps = cond.scc.num_components;

  ReachPartialAnswer pa;
  pa.site = f.site();

  // t-side query-dependent piece: which components reach t locally (only
  // meaningful when t is stored here; a virtual copy of t is an oset entry).
  const uint32_t t_idx = ctx->OsetIndexOf(t);
  const bool t_local = f.Contains(t);
  uint32_t t_comp = 0;
  std::vector<bool> reaches_t;
  if (t_local) {
    t_comp = cond.scc.component_of[f.ToLocal(t)];
    reaches_t.assign(num_comps, false);
    reaches_t[t_comp] = true;
    // Component ids are reverse topological: edges go to smaller ids, so an
    // ascending scan sees every successor's final value.
    for (uint32_t c = t_comp + 1; c < num_comps; ++c) {
      bool r = false;
      for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1] && !r; ++e) {
        r = reaches_t[cond.targets[e]];
      }
      reaches_t[c] = r;
    }
  }

  pa.equations.reserve(rows.group_rep.size() + 1);
  for (size_t g = 0; g < rows.group_rep.size(); ++g) {
    ReachPartialAnswer::Equation eq;
    eq.var = f.ToGlobal(rows.group_rep[g]);
    eq.has_true = t_local && reaches_t[rows.group_comp[g]];
    eq.deps.reserve(rows.rows[g].size());
    for (uint32_t idx : rows.rows[g]) {
      if (idx == t_idx) {
        eq.has_true = true;  // reaching the virtual copy of t answers q
      } else {
        eq.deps.push_back(idx);
      }
    }
    pa.equations.push_back(std::move(eq));
  }
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const uint32_t g = rows.in_group[i];
    if (rows.group_rep[g] == in) continue;
    pa.aliases.push_back({/*rep_is_aux=*/false, f.ToGlobal(in),
                          f.ToGlobal(rows.group_rep[g])});
  }

  // s-side query-dependent piece: s's own equation when s is stored here and
  // is not already covered by an in-node group.
  if (f.Contains(s)) {
    const NodeId local_s = f.ToLocal(s);
    if (!std::binary_search(f.in_nodes().begin(), f.in_nodes().end(),
                            local_s)) {
      const uint32_t s_comp = cond.scc.component_of[local_s];
      std::vector<bool> reachable(num_comps, false);
      reachable[s_comp] = true;
      // Descending scan from s_comp spreads the flag to all successors.
      for (uint32_t c = s_comp + 1; c-- > 0;) {
        if (!reachable[c]) continue;
        for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
          reachable[cond.targets[e]] = true;
        }
      }
      ReachPartialAnswer::Equation eq;
      eq.var = s;
      eq.has_true = t_local && reachable[t_comp];
      for (uint32_t j = 0; j < oset_comp.size(); ++j) {
        if (!reachable[oset_comp[j]]) continue;
        if (j == t_idx) {
          eq.has_true = true;
        } else {
          eq.deps.push_back(j);
        }
      }
      pa.equations.push_back(std::move(eq));
    }
  }
  return pa;
}

}  // namespace

PartialEvalEngine::PartialEvalEngine(Cluster* cluster,
                                     PartialEvalOptions options)
    : QueryEngine(cluster),
      options_(options),
      contexts_(&cluster->fragmentation()) {}

void PartialEvalEngine::RunBatch(std::span<const Query> queries,
                                 std::vector<QueryAnswer>* answers) {
  answers->resize(queries.size());

  // Coordinator-side answers need no site visit; everything else goes on the
  // wire as one multiplexed broadcast.
  std::vector<size_t> wire;
  wire.reserve(queries.size());
  bool any_reach = false;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    if (IsTrivial(q)) {
      (*answers)[qi].reachable = true;
      (*answers)[qi].distance = 0;
      continue;
    }
    PEREACH_CHECK(q.kind != QueryKind::kRpq || q.automaton.has_value());
    any_reach |= q.kind == QueryKind::kReach;
    wire.push_back(qi);
  }
  if (wire.empty()) return;

  // Batched broadcast: k queries in one payload (byte accounting; the site
  // closures read the query objects directly, as everywhere in this
  // simulator).
  Encoder broadcast;
  broadcast.PutVarint(wire.size());
  for (size_t qi : wire) queries[qi].Serialize(&broadcast);

  // One round: every site runs localEval for all k queries in a single
  // visit and multiplexes the partial answers into one reply — shared oset
  // table first (reach frames reference it), then one frame per query.
  const EquationForm form = options_.form;
  const std::vector<std::vector<uint8_t>> replies = cluster_->RoundAll(
      broadcast.size(),
      [this, queries, &wire, any_reach, form](const Fragment& f) {
        FragmentContext& ctx = contexts_.Get(f.site());
        Encoder reply;
        reply.PutVarint(f.site());
        if (any_reach) {
          const std::vector<NodeId>& shared = ctx.oset_globals(f);
          reply.PutVarint(shared.size());
          for (NodeId g : shared) reply.PutVarint(g);
        }
        for (size_t qi : wire) {
          const Query& q = queries[qi];
          Encoder body;
          switch (q.kind) {
            case QueryKind::kReach: {
              const ReachPartialAnswer pa =
                  form == EquationForm::kClosure
                      ? ReachFromCachedRows(f, &ctx, q.source, q.target)
                      : RebaseOntoSharedOset(
                            LocalEvalReach(f, q.source, q.target, form,
                                           &ctx.cond(f)),
                            ctx);
              pa.SerializeBody(ctx.oset_globals(f).size(), &body);
              break;
            }
            case QueryKind::kDist:
              LocalEvalDist(f, q.source, q.target, q.bound).Serialize(&body);
              break;
            case QueryKind::kRpq:
              LocalEvalRegular(f, *q.automaton, q.source, q.target, form,
                               &ctx.label_index(f))
                  .Serialize(&body);
              break;
          }
          reply.PutFrame(body.buffer());
        }
        return reply.TakeBuffer();
      });

  // Demultiplex: split every site reply into its shared oset table and one
  // frame decoder per query (frames view the reply buffers, no copies).
  StopWatch assemble_watch;
  std::vector<SiteId> reply_site(replies.size());
  std::vector<std::vector<NodeId>> reply_oset(replies.size());
  std::vector<std::vector<Decoder>> frames(replies.size());
  for (size_t ri = 0; ri < replies.size(); ++ri) {
    Decoder dec(replies[ri]);
    reply_site[ri] = static_cast<SiteId>(dec.GetVarint());
    if (any_reach) {
      reply_oset[ri].resize(dec.GetCount());
      for (NodeId& g : reply_oset[ri]) g = static_cast<NodeId>(dec.GetVarint());
    }
    frames[ri].reserve(wire.size());
    for (size_t wi = 0; wi < wire.size(); ++wi) {
      frames[ri].push_back(dec.GetFrame());
    }
    PEREACH_CHECK(dec.Done() && "malformed site reply payload");
  }

  // Assemble and solve one query at a time (evalDG / evalDGd / evalDGr), so
  // a large batch never holds more than one equation system live.
  for (size_t wi = 0; wi < wire.size(); ++wi) {
    const Query& q = queries[wire[wi]];
    QueryAnswer& answer = (*answers)[wire[wi]];
    if (q.kind == QueryKind::kDist) {
      DistanceEquationSystem dist;
      for (size_t ri = 0; ri < replies.size(); ++ri) {
        Decoder& frame = frames[ri][wi];
        DistPartialAnswer::Deserialize(&frame).AddToSystem(&dist);
        PEREACH_CHECK(frame.Done() && "malformed site reply frame");
      }
      answer.distance = dist.Evaluate(q.source);
      answer.reachable =
          answer.distance != kInfWeight && answer.distance <= q.bound;
      continue;
    }
    BooleanEquationSystem bes;
    for (size_t ri = 0; ri < replies.size(); ++ri) {
      Decoder& frame = frames[ri][wi];
      if (q.kind == QueryKind::kReach) {
        ReachPartialAnswer::DeserializeBody(&frame, reply_site[ri])
            .AddToBes(reply_oset[ri], &bes);
      } else {
        RegularPartialAnswer::Deserialize(&frame).AddToBes(&bes);
      }
      PEREACH_CHECK(frame.Done() && "malformed site reply frame");
    }
    answer.reachable =
        q.kind == QueryKind::kReach
            ? bes.Evaluate(q.source)
            : bes.Evaluate(PackNodeState(q.source, QueryAutomaton::kStart));
  }
  cluster_->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());
}

}  // namespace pereach
