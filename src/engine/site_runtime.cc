#include "src/engine/site_runtime.h"

#include <algorithm>
#include <utility>

#include "src/engine/query_engine.h"
#include "src/regex/canonical.h"

namespace pereach {

ReachPartialAnswer RebaseOntoSharedOset(ReachPartialAnswer pa,
                                        const FragmentContext& ctx) {
  for (ReachPartialAnswer::Equation& eq : pa.equations) {
    for (uint32_t& dep : eq.deps) {
      const uint32_t idx = ctx.OsetIndexOf(pa.oset_globals[dep]);
      PEREACH_CHECK_NE(idx, FragmentContext::kNoIndex);
      dep = idx;
    }
    // The remap is order-preserving (a possible local-t entry at index 0 of
    // the query table is never a dep, and both tables list virtual nodes in
    // ascending local-id order), so no re-sort is needed.
    PEREACH_CHECK(std::is_sorted(eq.deps.begin(), eq.deps.end()));
  }
  pa.oset_globals.clear();
  return pa;
}

/// The two query-dependent condensation sweeps every cached-rows reach path
/// (BES closure frames and boundary-index frames) is built from. Both rely
/// on component ids being reverse topological: every edge goes to a smaller
/// id.

std::vector<bool> ComponentsReaching(const Condensation& cond,
                                     uint32_t t_comp) {
  std::vector<bool> reaches(cond.scc.num_components, false);
  reaches[t_comp] = true;
  for (uint32_t c = t_comp + 1; c < cond.scc.num_components; ++c) {
    bool r = false;
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1] && !r; ++e) {
      r = reaches[cond.targets[e]];
    }
    reaches[c] = r;
  }
  return reaches;
}

std::vector<bool> ComponentsReachableFrom(const Condensation& cond,
                                          uint32_t s_comp) {
  std::vector<bool> reachable(cond.scc.num_components, false);
  reachable[s_comp] = true;
  for (uint32_t c = s_comp + 1; c-- > 0;) {
    if (!reachable[c]) continue;
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
      reachable[cond.targets[e]] = true;
    }
  }
  return reachable;
}

ReachPartialAnswer ReachFromCachedRows(const Fragment& f, FragmentContext* ctx,
                                       NodeId s, NodeId t) {
  const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
  const Condensation& cond = ctx->cond(f);
  const std::vector<uint32_t>& oset_comp = ctx->oset_comp(f);

  ReachPartialAnswer pa;
  pa.site = f.site();

  // t-side query-dependent piece: which components reach t locally (only
  // meaningful when t is stored here; a virtual copy of t is an oset entry).
  const uint32_t t_idx = ctx->OsetIndexOf(t);
  const bool t_local = f.Contains(t);
  uint32_t t_comp = 0;
  std::vector<bool> reaches_t;
  if (t_local) {
    t_comp = cond.scc.component_of[f.ToLocal(t)];
    reaches_t = ComponentsReaching(cond, t_comp);
  }

  pa.equations.reserve(rows.group_rep.size() + 1);
  for (size_t g = 0; g < rows.group_rep.size(); ++g) {
    ReachPartialAnswer::Equation eq;
    eq.var = f.ToGlobal(rows.group_rep[g]);
    eq.has_true = t_local && reaches_t[rows.group_comp[g]];
    eq.deps.reserve(rows.rows[g].size());
    for (uint32_t idx : rows.rows[g]) {
      if (idx == t_idx) {
        eq.has_true = true;  // reaching the virtual copy of t answers q
      } else {
        eq.deps.push_back(idx);
      }
    }
    pa.equations.push_back(std::move(eq));
  }
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const uint32_t g = rows.in_group[i];
    if (rows.group_rep[g] == in) continue;
    pa.aliases.push_back({/*rep_is_aux=*/false, f.ToGlobal(in),
                          f.ToGlobal(rows.group_rep[g])});
  }

  // s-side query-dependent piece: s's own equation when s is stored here and
  // is not already covered by an in-node group.
  if (f.Contains(s)) {
    const NodeId local_s = f.ToLocal(s);
    if (!std::binary_search(f.in_nodes().begin(), f.in_nodes().end(),
                            local_s)) {
      const std::vector<bool> reachable =
          ComponentsReachableFrom(cond, cond.scc.component_of[local_s]);
      ReachPartialAnswer::Equation eq;
      eq.var = s;
      eq.has_true = t_local && reachable[t_comp];
      for (uint32_t j = 0; j < oset_comp.size(); ++j) {
        if (!reachable[oset_comp[j]]) continue;
        if (j == t_idx) {
          eq.has_true = true;
        } else {
          eq.deps.push_back(j);
        }
      }
      pa.equations.push_back(std::move(eq));
    }
  }
  return pa;
}

BoundaryRows BuildBoundaryRows(const Fragment& f, FragmentContext* ctx) {
  const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
  BoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.rep_globals.reserve(rows.group_rep.size());
  for (NodeId rep : rows.group_rep) out.rep_globals.push_back(f.ToGlobal(rep));
  out.rows = rows.rows;
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const NodeId rep = rows.group_rep[rows.in_group[i]];
    if (rep == in) continue;
    out.aliases.emplace_back(f.ToGlobal(in), f.ToGlobal(rep));
  }
  return out;
}

WeightedBoundaryRows BuildWeightedBoundaryRows(const Fragment& f,
                                               FragmentContext* ctx) {
  const FragmentContext::DistRows& rows = ctx->dist_rows(f);
  WeightedBoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.rep_globals.reserve(rows.group_rep.size());
  for (NodeId rep : rows.group_rep) out.rep_globals.push_back(f.ToGlobal(rep));
  out.rows = rows.rows;
  for (size_t i = 0; i < rows.in_group.size(); ++i) {
    const NodeId in = f.in_nodes()[i];
    const NodeId rep = rows.group_rep[rows.in_group[i]];
    if (rep == in) continue;
    out.aliases.emplace_back(f.ToGlobal(in), f.ToGlobal(rep));
  }
  return out;
}

ProductBoundaryRows BuildProductBoundaryRows(
    const Fragment& f, FragmentContext* ctx, const std::string& signature_key,
    const QueryAutomaton& canonical) {
  const FragmentContext::RpqProduct& p =
      ctx->rpq_product(f, signature_key, canonical);
  const std::vector<NodeId>& oset_locals = ctx->oset_locals(f);
  ProductBoundaryRows out;
  out.oset_globals = ctx->oset_globals(f);
  out.oset_masks.reserve(oset_locals.size());
  for (NodeId w : oset_locals) out.oset_masks.push_back(p.compat[w]);
  out.rep_pairs.reserve(p.group_rep.size());
  for (uint32_t rep : p.group_rep) {
    out.rep_pairs.push_back(
        {f.ToGlobal(p.in_pairs[rep].first), p.in_pairs[rep].second});
  }
  out.rows = p.rows;
  for (size_t i = 0; i < p.in_pairs.size(); ++i) {
    const uint32_t g = p.in_group[i];
    if (p.group_rep[g] == i) continue;
    out.aliases.push_back(
        {{f.ToGlobal(p.in_pairs[i].first), p.in_pairs[i].second}, g});
  }
  return out;
}

void EncodeDistSweepFrame(const Fragment& f, FragmentContext* ctx, NodeId s,
                          NodeId t, uint32_t bound, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }

  uint64_t local_dist = kInfWeight;
  std::vector<std::pair<uint32_t, uint32_t>> s_out;
  if (s_here) {
    // One bounded sweep from s over the oset plus t's local copy; a virtual
    // copy of t folds into the short-circuit by global id, like localEvald's
    // base column.
    const std::vector<NodeId>& oset_locals = ctx->oset_locals(f);
    const std::vector<NodeId>& oset_globals = ctx->oset_globals(f);
    std::vector<NodeId> targets = oset_locals;
    if (t_here) targets.push_back(f.ToLocal(t));
    const std::vector<NodeId> source = {f.ToLocal(s)};
    ForEachBoundedDistance(
        f.local_graph(), source, targets, bound, /*block_bits=*/256,
        [&](uint32_t, uint32_t ti, uint32_t hops) {
          if (ti >= oset_globals.size() || oset_globals[ti] == t) {
            local_dist = std::min<uint64_t>(local_dist, hops);
          } else {
            s_out.emplace_back(ti, hops);
          }
        });
    std::sort(s_out.begin(), s_out.end());
  }

  std::vector<std::pair<NodeId, uint32_t>> t_in;
  if (t_here) {
    const std::vector<NodeId> target = {f.ToLocal(t)};
    ForEachBoundedDistance(
        f.local_graph(), f.in_nodes(), target, bound, /*block_bits=*/64,
        [&](uint32_t in_idx, uint32_t, uint32_t hops) {
          t_in.emplace_back(f.ToGlobal(f.in_nodes()[in_idx]), hops);
        });
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  if (local_dist != kInfWeight) flags |= kFrameHasLocalDist;
  body->PutU8(flags);
  if (local_dist != kInfWeight) body->PutVarint(local_dist);
  if (s_here) {
    body->PutVarint(s_out.size());
    uint32_t prev = 0;
    for (const auto& [idx, hops] : s_out) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      body->PutVarint(hops);
      prev = idx;
    }
  }
  if (t_here) {
    body->PutVarint(t_in.size());
    for (const auto& [global, hops] : t_in) {
      body->PutVarint(global);
      body->PutVarint(hops);
    }
  }
}

void EncodeBoundarySweepFrame(const Fragment& f, FragmentContext* ctx,
                              NodeId s, NodeId t, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }
  const Condensation& cond = ctx->cond(f);
  const std::vector<uint32_t>& oset_comp = ctx->oset_comp(f);

  uint32_t t_comp = 0;
  std::vector<bool> reaches_t;
  if (t_here) {
    t_comp = cond.scc.component_of[f.ToLocal(t)];
    reaches_t = ComponentsReaching(cond, t_comp);
  }

  bool local_true = false;
  std::vector<uint32_t> s_out;
  if (s_here) {
    const std::vector<bool> reachable =
        ComponentsReachableFrom(cond, cond.scc.component_of[f.ToLocal(s)]);
    local_true = t_here && reachable[t_comp];
    // Virtual nodes are local sinks, so each one is a singleton component:
    // reachable[its component] is exactly "s reaches it". Reaching t's
    // virtual copy decides the query (the cross edge into t completes the
    // path); every other reachable virtual node is an exit candidate.
    const uint32_t t_idx = ctx->OsetIndexOf(t);
    for (uint32_t j = 0; j < oset_comp.size(); ++j) {
      if (!reachable[oset_comp[j]]) continue;
      if (j == t_idx) {
        local_true = true;
      } else {
        s_out.push_back(j);
      }
    }
  }
  if (local_true) {
    body->PutU8(kFrameLocalTrue);
    return;
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  body->PutU8(flags);
  if (s_here) {
    body->PutVarint(s_out.size());
    uint32_t prev = 0;
    for (uint32_t idx : s_out) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      prev = idx;
    }
  }
  if (t_here) {
    const FragmentContext::ReachRows& rows = ctx->reach_rows(f);
    std::vector<NodeId> t_in;
    for (size_t g = 0; g < rows.group_rep.size(); ++g) {
      if (reaches_t[rows.group_comp[g]]) {
        t_in.push_back(f.ToGlobal(rows.group_rep[g]));
      }
    }
    body->PutVarint(t_in.size());
    for (NodeId g : t_in) body->PutVarint(g);
  }
}

void EncodeRpqSweepFrame(const Fragment& f, FragmentContext* ctx,
                         const FragmentContext::RpqProduct& p, NodeId s,
                         NodeId t, Encoder* body) {
  const bool s_here = f.Contains(s);
  const bool t_here = f.Contains(t);
  if (!s_here && !t_here) {
    body->PutU8(0);
    return;
  }
  const QueryAutomaton& a = p.automaton;
  const Graph& g = f.local_graph();
  const size_t num_comps = p.cond.scc.num_components;
  constexpr uint64_t kFinalBit = uint64_t{1} << QueryAutomaton::kFinal;

  // t-side piece: components whose pairs locally reach (t, u_t). The seeds
  // are the accepting predecessors (x, q) — edge x -> t_local with u_t in
  // out_mask(q) — i.e. the product in-edges of the (t, u_t) node that the
  // standing product materializes only for VIRTUAL copies. An ascending
  // scan spreads the flag (component ids are reverse topological).
  std::vector<bool> reaches_final;
  if (t_here) {
    reaches_final.assign(num_comps, false);
    const NodeId t_local = f.ToLocal(t);
    bool any_seed = false;
    for (NodeId x : g.InNeighbors(t_local)) {
      uint64_t qs = p.compat[x];
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        if ((a.out_mask(q) >> QueryAutomaton::kFinal) & 1) {
          reaches_final[p.CompOfPair(x, q)] = true;
          any_seed = true;
        }
      }
    }
    if (any_seed) {
      for (uint32_t c = 0; c < num_comps; ++c) {
        if (reaches_final[c]) continue;
        for (size_t e = p.cond.offsets[c];
             e < p.cond.offsets[c + 1] && !reaches_final[c]; ++e) {
          reaches_final[c] = reaches_final[p.cond.targets[e]];
        }
      }
    }
  }

  bool local_true = false;
  std::vector<uint32_t> s_exits;
  if (s_here) {
    const NodeId s_local = f.ToLocal(s);
    // Seeds: the product out-edges of (s, u_s). A hop straight into u_t at
    // a copy of t (single edge s -> t with epsilon in L(R)) decides the
    // query; u_t bits at other copies are stripped — for this query those
    // pairs are not part of the product.
    std::vector<bool> reachable(num_comps, false);
    bool any_seed = false;
    const uint64_t start_mask = a.out_mask(QueryAutomaton::kStart);
    for (NodeId w : g.OutNeighbors(s_local)) {
      if (f.ToGlobal(w) == t && a.AcceptsEmpty()) local_true = true;
      uint64_t qs = start_mask & p.compat[w] & ~kFinalBit;
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        reachable[p.CompOfPair(w, q)] = true;
        any_seed = true;
      }
    }
    if (any_seed) {
      // Descending scan spreads the flag to all successors.
      for (uint32_t c = static_cast<uint32_t>(num_comps); c-- > 0;) {
        if (!reachable[c]) continue;
        for (size_t e = p.cond.offsets[c]; e < p.cond.offsets[c + 1]; ++e) {
          reachable[p.cond.targets[e]] = true;
        }
      }
    }
    // Acceptance via an interior path: at a virtual copy of t the accept
    // pair (t_virtual, u_t) is a standing product node; at the local copy,
    // any reachable component that reaches u_t closes the match.
    const uint32_t t_idx = ctx->OsetIndexOf(t);
    if (!local_true && t_idx != FragmentContext::kNoIndex) {
      const NodeId t_virtual = ctx->oset_locals(f)[t_idx];
      local_true =
          reachable[p.CompOfPair(t_virtual, QueryAutomaton::kFinal)];
    }
    if (!local_true && t_here) {
      for (uint32_t c = 0; c < num_comps && !local_true; ++c) {
        local_true = reachable[c] && reaches_final[c];
      }
    }
    if (!local_true) {
      for (uint32_t i = 0; i < p.table_comp.size(); ++i) {
        if (p.table_state[i] == QueryAutomaton::kFinal) continue;
        if (reachable[p.table_comp[i]]) s_exits.push_back(i);
      }
    }
  }
  if (local_true) {
    body->PutU8(kFrameLocalTrue);
    return;
  }

  uint8_t flags = 0;
  if (s_here) flags |= kFrameHasS;
  if (t_here) flags |= kFrameHasT;
  body->PutU8(flags);
  if (s_here) {
    body->PutVarint(s_exits.size());
    uint32_t prev = 0;
    for (uint32_t idx : s_exits) {  // ascending: delta-encode
      body->PutVarint(idx - prev);
      prev = idx;
    }
  }
  if (t_here) {
    std::vector<ProductPair> t_in;
    for (size_t gi = 0; gi < p.group_rep.size(); ++gi) {
      if (!reaches_final[p.group_comp[gi]]) continue;
      const auto& [local, state] = p.in_pairs[p.group_rep[gi]];
      t_in.push_back({f.ToGlobal(local), state});
    }
    body->PutVarint(t_in.size());
    for (const ProductPair& pair : t_in) {
      body->PutVarint(pair.node);
      body->PutU8(pair.state);
    }
  }
}

// --- Worker-side round dispatch ---------------------------------------------

namespace {

/// A query as decoded from a round broadcast — Query minus the inline
/// automaton (rpq queries reference the broadcast's canonical table).
struct WireQuery {
  QueryKind kind = QueryKind::kReach;
  NodeId source = 0;
  NodeId target = 0;
  uint32_t bound = 0;
  uint32_t automaton_ref = 0;
};

/// The multiplexed all-sites batch: reproduce the RunBatch closure.
Result<std::vector<uint8_t>> RunBatchEval(const Fragment& f,
                                          FragmentContext* ctx, uint8_t aux,
                                          Decoder* dec) {
  if (aux > static_cast<uint8_t>(EquationForm::kDag)) {
    return Status::Corruption("batch round: bad equation form");
  }
  const EquationForm form = static_cast<EquationForm>(aux);
  std::vector<WireQuery> queries(dec->GetCount());
  for (WireQuery& q : queries) {
    const uint8_t kind = dec->GetU8();
    if (!dec->ok()) return dec->status();
    if (kind > static_cast<uint8_t>(QueryKind::kRpq)) {
      return Status::Corruption("batch round: bad query kind");
    }
    q.kind = static_cast<QueryKind>(kind);
    q.source = static_cast<NodeId>(dec->GetVarint());
    q.target = static_cast<NodeId>(dec->GetVarint());
    if (q.kind == QueryKind::kDist) {
      q.bound = static_cast<uint32_t>(dec->GetVarint());
    }
    if (q.kind == QueryKind::kRpq) {
      q.automaton_ref = static_cast<uint32_t>(dec->GetVarint());
    }
  }
  if (!dec->ok()) return dec->status();
  const size_t num_automata = dec->GetCount();
  if (!dec->ok()) return dec->status();
  std::vector<QueryAutomaton> automata;
  automata.reserve(num_automata);
  for (size_t i = 0; i < num_automata; ++i) {
    automata.push_back(QueryAutomaton::Deserialize(dec));
    if (!dec->ok()) return dec->status();
  }
  if (!dec->Done()) return Status::Corruption("batch round: trailing bytes");
  bool any_reach = false;
  for (const WireQuery& q : queries) {
    if (q.kind == QueryKind::kRpq && q.automaton_ref >= automata.size()) {
      return Status::Corruption("batch round: automaton ref out of range");
    }
    any_reach |= q.kind == QueryKind::kReach;
  }

  Encoder reply;
  reply.PutVarint(f.site());
  if (any_reach) {
    const std::vector<NodeId>& shared = ctx->oset_globals(f);
    reply.PutVarint(shared.size());
    for (NodeId g : shared) reply.PutVarint(g);
  }
  for (const WireQuery& q : queries) {
    Encoder body;
    switch (q.kind) {
      case QueryKind::kReach: {
        const ReachPartialAnswer pa =
            form == EquationForm::kClosure
                ? ReachFromCachedRows(f, ctx, q.source, q.target)
                : RebaseOntoSharedOset(
                      LocalEvalReach(f, q.source, q.target, form,
                                     &ctx->cond(f)),
                      *ctx);
        pa.SerializeBody(ctx->oset_globals(f).size(), &body);
        break;
      }
      case QueryKind::kDist:
        LocalEvalDist(f, q.source, q.target, q.bound).Serialize(&body);
        break;
      case QueryKind::kRpq:
        LocalEvalRegular(f, automata[q.automaton_ref], q.source, q.target,
                         form, &ctx->label_index(f))
            .Serialize(&body);
        break;
    }
    reply.PutFrame(body.buffer());
  }
  return reply.TakeBuffer();
}

/// The reach/dist endpoint-sweep rounds: one flag-byte-or-frame per query.
Result<std::vector<uint8_t>> RunEndpointSweep(const Fragment& f,
                                              FragmentContext* ctx,
                                              RoundKind kind, Decoder* dec) {
  const QueryKind expect = kind == RoundKind::kReachSweep ? QueryKind::kReach
                                                          : QueryKind::kDist;
  std::vector<WireQuery> queries(dec->GetCount());
  for (WireQuery& q : queries) {
    const uint8_t k = dec->GetU8();
    if (!dec->ok()) return dec->status();
    if (k != static_cast<uint8_t>(expect)) {
      return Status::Corruption("sweep round: unexpected query kind");
    }
    q.kind = expect;
    q.source = static_cast<NodeId>(dec->GetVarint());
    q.target = static_cast<NodeId>(dec->GetVarint());
    if (expect == QueryKind::kDist) {
      q.bound = static_cast<uint32_t>(dec->GetVarint());
    }
  }
  if (!dec->Done()) return Status::Corruption("sweep round: trailing bytes");

  Encoder reply;
  for (const WireQuery& q : queries) {
    Encoder body;
    if (expect == QueryKind::kReach) {
      EncodeBoundarySweepFrame(f, ctx, q.source, q.target, &body);
    } else {
      EncodeDistSweepFrame(f, ctx, q.source, q.target, q.bound, &body);
    }
    reply.PutFrame(body.buffer());
  }
  return reply.TakeBuffer();
}

/// The rpq refresh round: product boundary rows for every dirty automaton
/// that lists this site, in broadcast order (matching the coordinator's
/// site_sigs demux order).
Result<std::vector<uint8_t>> RunRpqRows(const Fragment& f,
                                        FragmentContext* ctx, Decoder* dec) {
  const size_t num_dirty = dec->GetCount();
  if (!dec->ok()) return dec->status();
  std::vector<QueryAutomaton> mine;
  for (size_t i = 0; i < num_dirty; ++i) {
    QueryAutomaton a = QueryAutomaton::Deserialize(dec);
    if (!dec->ok()) return dec->status();
    bool lists_me = false;
    for (size_t n = dec->GetCount(); n > 0; --n) {
      lists_me |= static_cast<SiteId>(dec->GetVarint()) == f.site();
    }
    if (!dec->ok()) return dec->status();
    if (lists_me) mine.push_back(std::move(a));
  }
  if (!dec->Done()) return Status::Corruption("rpq rows round: trailing bytes");

  ctx->BeginRpqRound();
  Encoder reply;
  for (const QueryAutomaton& a : mine) {
    Encoder body;
    BuildProductBoundaryRows(f, ctx, Canonicalize(a).signature.key, a)
        .Serialize(&body);
    reply.PutFrame(body.buffer());
  }
  return reply.TakeBuffer();
}

/// The rpq endpoint-sweep round: canonical automaton table plus
/// (source, target, table ref) triples.
Result<std::vector<uint8_t>> RunRpqSweep(const Fragment& f,
                                         FragmentContext* ctx, Decoder* dec) {
  const size_t num_sigs = dec->GetCount();
  if (!dec->ok()) return dec->status();
  std::vector<QueryAutomaton> automata;
  automata.reserve(num_sigs);
  for (size_t i = 0; i < num_sigs; ++i) {
    automata.push_back(QueryAutomaton::Deserialize(dec));
    if (!dec->ok()) return dec->status();
  }
  std::vector<WireQuery> queries(dec->GetCount());
  for (WireQuery& q : queries) {
    q.kind = QueryKind::kRpq;
    q.source = static_cast<NodeId>(dec->GetVarint());
    q.target = static_cast<NodeId>(dec->GetVarint());
    q.automaton_ref = static_cast<uint32_t>(dec->GetVarint());
  }
  if (!dec->Done()) return Status::Corruption("rpq sweep: trailing bytes");
  for (const WireQuery& q : queries) {
    if (q.automaton_ref >= automata.size()) {
      return Status::Corruption("rpq sweep: automaton ref out of range");
    }
  }
  std::vector<std::string> keys(automata.size());
  for (size_t i = 0; i < automata.size(); ++i) {
    keys[i] = Canonicalize(automata[i]).signature.key;
  }

  ctx->BeginRpqRound();
  Encoder reply;
  for (const WireQuery& q : queries) {
    Encoder body;
    if (!f.Contains(q.source) && !f.Contains(q.target)) {
      body.PutU8(0);
    } else {
      const FragmentContext::RpqProduct& p = ctx->rpq_product(
          f, keys[q.automaton_ref], automata[q.automaton_ref]);
      EncodeRpqSweepFrame(f, ctx, p, q.source, q.target, &body);
    }
    reply.PutFrame(body.buffer());
  }
  return reply.TakeBuffer();
}

}  // namespace

Result<std::vector<uint8_t>> RunSiteRound(
    const Fragment& f, FragmentContext* ctx, RoundKind kind, uint8_t aux,
    const std::vector<uint8_t>& broadcast) {
  Decoder dec(broadcast, Decoder::OnError::kStatus);
  switch (kind) {
    case RoundKind::kBatchEval:
      return RunBatchEval(f, ctx, aux, &dec);
    case RoundKind::kReachRows: {
      if (!broadcast.empty()) {
        return Status::Corruption("rows round: unexpected payload");
      }
      Encoder reply;
      BuildBoundaryRows(f, ctx).Serialize(&reply);
      return reply.TakeBuffer();
    }
    case RoundKind::kDistRows: {
      if (!broadcast.empty()) {
        return Status::Corruption("rows round: unexpected payload");
      }
      Encoder reply;
      BuildWeightedBoundaryRows(f, ctx).Serialize(&reply);
      return reply.TakeBuffer();
    }
    case RoundKind::kRpqRows:
      return RunRpqRows(f, ctx, &dec);
    case RoundKind::kReachSweep:
    case RoundKind::kDistSweep:
      return RunEndpointSweep(f, ctx, kind, &dec);
    case RoundKind::kRpqSweep:
      return RunRpqSweep(f, ctx, &dec);
  }
  return Status::Corruption("unknown round kind");
}

}  // namespace pereach
