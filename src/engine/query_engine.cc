#include "src/engine/query_engine.h"

namespace pereach {

QueryAnswer QueryEngine::Evaluate(const Query& query) {
  BatchAnswer batch = EvaluateBatch(std::span<const Query>(&query, 1));
  QueryAnswer answer = std::move(batch.answers[0]);
  answer.metrics = std::move(batch.metrics);
  return answer;
}

BatchAnswer QueryEngine::EvaluateBatch(std::span<const Query> queries) {
  BatchAnswer batch;
  batch.answers.reserve(queries.size());
  cluster_->BeginQuery();
  RunBatch(queries, &batch.answers);
  cluster_->SetQueriesServed(queries.size());
  // Take the metrics from this thread's own window (not cluster_->metrics())
  // so engines on different threads can batch over one cluster concurrently.
  batch.metrics = cluster_->EndQuery();
  PEREACH_CHECK_EQ(batch.answers.size(), queries.size());
  return batch;
}

}  // namespace pereach
