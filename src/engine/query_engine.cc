#include "src/engine/query_engine.h"

namespace pereach {

QueryAnswer QueryEngine::Evaluate(const Query& query) {
  BatchAnswer batch = EvaluateBatch(std::span<const Query>(&query, 1));
  PEREACH_CHECK(batch.status.ok() &&
                "single-query Evaluate over a failed transport round");
  QueryAnswer answer = std::move(batch.answers[0]);
  answer.metrics = std::move(batch.metrics);
  return answer;
}

BatchAnswer QueryEngine::EvaluateBatch(std::span<const Query> queries) {
  BatchAnswer batch;
  batch.answers.reserve(queries.size());
  cluster_->BeginQuery();
  batch.status = RunBatch(queries, &batch.answers);
  cluster_->SetQueriesServed(queries.size());
  // Take the metrics from this thread's own window (the only way to read
  // it) so engines on different threads can batch over one cluster
  // concurrently. A failed batch still closes and returns its window — the
  // rounds that did complete were real cost.
  batch.metrics = cluster_->EndQuery();
  if (batch.status.ok()) {
    PEREACH_CHECK_EQ(batch.answers.size(), queries.size());
  }
  return batch;
}

}  // namespace pereach
