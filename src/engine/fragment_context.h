#ifndef PEREACH_ENGINE_FRAGMENT_CONTEXT_H_
#define PEREACH_ENGINE_FRAGMENT_CONTEXT_H_

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/local_eval.h"
#include "src/fragment/fragmentation.h"
#include "src/graph/algorithms.h"
#include "src/util/common.h"

namespace pereach {

/// Query-independent precomputed structure of one fragment, built once and
/// reused by every query of every class (§8 "combine partial evaluation and
/// incremental computation", generalized to a standing cache):
///  - the SCC condensation of the local graph (reach, all equation forms);
///  - the boundary tables: virtual-node oset with global ids and a
///    global -> oset-index map (all classes);
///  - the closure rows: per in-node SCC group, the set of oset indices the
///    group reaches locally — the whole query-independent part of localEval,
///    leaving only O(|cond|) per-query work for s and t;
///  - the dist rows: per in-node, the local shortest-path hop counts to the
///    oset — the query-independent part of localEvald, feeding the
///    coordinator's weighted boundary graph (BoundaryDistIndex);
///  - the label index (regular reachability compatibility masks).
/// Sections build lazily so workloads only pay for what they touch.
///
/// Thread-safety: one FragmentContext may be used by one thread at a time.
/// The engine's cluster rounds satisfy this — each site is simulated by a
/// single pool thread per round.
class FragmentContext {
 public:
  static constexpr uint32_t kNoIndex = std::numeric_limits<uint32_t>::max();

  /// Closure-form boundary equations over in-node SCC groups.
  struct ReachRows {
    std::vector<uint32_t> in_group;   // per f.in_nodes() position -> group
    std::vector<NodeId> group_rep;    // group -> local id of its first in-node
    std::vector<uint32_t> group_comp; // group -> condensation component
    std::vector<std::vector<uint32_t>> rows;  // group -> ascending oset idx
  };

  /// Weighted (min-plus) boundary rows: per in-node, the local shortest-path
  /// hop count to every virtual node it reaches — the query-independent part
  /// of localEvald, computed UNBOUNDED so one cache serves every query bound
  /// (the per-query bound filter applies at lookup). Distances differ across
  /// an SCC's members, so groups collapse by ROW CONTENT instead of by
  /// component: members with bit-identical weighted rows share one group
  /// (in particular, all boundary-blind in-nodes with empty rows).
  struct DistRows {
    std::vector<uint32_t> in_group;  // per f.in_nodes() position -> group
    std::vector<NodeId> group_rep;   // group -> local id of its first in-node
    // group -> ascending (oset index, local min hops).
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> rows;
  };

  /// SCC condensation of f.local_graph().
  const Condensation& cond(const Fragment& f);

  /// Virtual nodes (local ids, ascending) and their global ids.
  const std::vector<NodeId>& oset_locals(const Fragment& f);
  const std::vector<NodeId>& oset_globals(const Fragment& f);

  /// Condensation component of each oset entry. Implies cond().
  const std::vector<uint32_t>& oset_comp(const Fragment& f);

  /// Oset index of a global id, or kNoIndex if it is not a virtual node of
  /// this fragment. Valid once any oset accessor ran.
  uint32_t OsetIndexOf(NodeId global) const;

  const ReachRows& reach_rows(const Fragment& f);

  const DistRows& dist_rows(const Fragment& f);

  const LabelIndex& label_index(const Fragment& f);

  /// Number of section builds performed (observability for tests/benches:
  /// a warm cache answers whole batches with zero additional builds).
  size_t section_builds() const { return section_builds_; }

 private:
  void EnsureOset(const Fragment& f);

  std::optional<Condensation> cond_;
  bool oset_built_ = false;
  std::vector<NodeId> oset_locals_;
  std::vector<NodeId> oset_globals_;
  std::unordered_map<NodeId, uint32_t> oset_index_;
  std::vector<uint32_t> oset_comp_;  // built with cond on demand
  std::optional<ReachRows> rows_;
  std::optional<DistRows> dist_rows_;
  std::optional<LabelIndex> label_index_;
  size_t section_builds_ = 0;
};

/// One FragmentContext per site of a fragmentation, built on first use and
/// explicitly invalidated when an edge update changes a fragment (wired to
/// IncrementalReachIndex::SetUpdateListener). Distinct sites may be accessed
/// concurrently (each site from at most one thread, the cluster-round
/// discipline); invalidation must not race with an in-flight round.
class FragmentContextCache {
 public:
  explicit FragmentContextCache(const Fragmentation* fragmentation)
      : contexts_(fragmentation->num_fragments()) {}

  FragmentContext& Get(SiteId site) {
    PEREACH_CHECK_LT(site, contexts_.size());
    if (contexts_[site] == nullptr) {
      contexts_[site] = std::make_unique<FragmentContext>();
      builds_.fetch_add(1, std::memory_order_relaxed);
    }
    return *contexts_[site];
  }

  /// Drops the cached context of `site`; the next query rebuilds it.
  void Invalidate(SiteId site) {
    PEREACH_CHECK_LT(site, contexts_.size());
    contexts_[site] = nullptr;
  }

  void InvalidateAll() {
    for (auto& ctx : contexts_) ctx = nullptr;
  }

  /// Number of context constructions since creation — cold starts plus
  /// rebuilds after invalidation.
  size_t build_count() const {
    return builds_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<FragmentContext>> contexts_;
  std::atomic<size_t> builds_{0};
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_FRAGMENT_CONTEXT_H_
