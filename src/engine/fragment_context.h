#ifndef PEREACH_ENGINE_FRAGMENT_CONTEXT_H_
#define PEREACH_ENGINE_FRAGMENT_CONTEXT_H_

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/local_eval.h"
#include "src/fragment/fragmentation.h"
#include "src/graph/algorithms.h"
#include "src/regex/query_automaton.h"
#include "src/util/common.h"

namespace pereach {

/// Query-independent precomputed structure of one fragment, built once and
/// reused by every query of every class (§8 "combine partial evaluation and
/// incremental computation", generalized to a standing cache):
///  - the SCC condensation of the local graph (reach, all equation forms);
///  - the boundary tables: virtual-node oset with global ids and a
///    global -> oset-index map (all classes);
///  - the closure rows: per in-node SCC group, the set of oset indices the
///    group reaches locally — the whole query-independent part of localEval,
///    leaving only O(|cond|) per-query work for s and t;
///  - the dist rows: per in-node, the local shortest-path hop counts to the
///    oset — the query-independent part of localEvald, feeding the
///    coordinator's weighted boundary graph (BoundaryDistIndex);
///  - the label index (regular reachability compatibility masks);
///  - the rpq products: per CANONICAL AUTOMATON (signature-keyed, LRU
///    capped), the fragment's label-compatible product graph over interior
///    states, its condensation, and the per-in-pair-group frontier rows —
///    the query-independent part of localEvalr, feeding the coordinator's
///    product boundary graphs (BoundaryRpqIndex).
/// Sections build lazily so workloads only pay for what they touch.
///
/// Thread-safety: one FragmentContext may be used by one thread at a time.
/// The engine's cluster rounds satisfy this — each site is simulated by a
/// single pool thread per round.
class FragmentContext {
 public:
  static constexpr uint32_t kNoIndex = std::numeric_limits<uint32_t>::max();

  /// Closure-form boundary equations over in-node SCC groups.
  struct ReachRows {
    std::vector<uint32_t> in_group;   // per f.in_nodes() position -> group
    std::vector<NodeId> group_rep;    // group -> local id of its first in-node
    std::vector<uint32_t> group_comp; // group -> condensation component
    std::vector<std::vector<uint32_t>> rows;  // group -> ascending oset idx
  };

  /// Default LRU cap for the per-automaton rpq products (matches
  /// PartialEvalOptions::rpq_cache_entries).
  static constexpr size_t kDefaultRpqCacheCap = 8;

  /// Weighted (min-plus) boundary rows: per in-node, the local shortest-path
  /// hop count to every virtual node it reaches — the query-independent part
  /// of localEvald, computed UNBOUNDED so one cache serves every query bound
  /// (the per-query bound filter applies at lookup). Distances differ across
  /// an SCC's members, so groups collapse by ROW CONTENT instead of by
  /// component: members with bit-identical weighted rows share one group
  /// (in particular, all boundary-blind in-nodes with empty rows).
  struct DistRows {
    std::vector<uint32_t> in_group;  // per f.in_nodes() position -> group
    std::vector<NodeId> group_rep;   // group -> local id of its first in-node
    // group -> ascending (oset index, local min hops).
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> rows;
  };

  /// Query-independent product structures of this fragment for ONE
  /// canonical automaton (regular reachability, §5): the label-compatible
  /// product F_i x G_q over INTERIOR states — virtual nodes additionally
  /// carry u_t, because any virtual node may be some query's target and the
  /// hop that ACCEPTS into it is automaton-static (see DESIGN.md §9) — its
  /// SCC condensation, the flattened (oset entry, state) frontier table,
  /// and per in-pair SCC group the reachable frontier rows. Everything a
  /// query needs beyond this is two O(|cond|) sweeps at its endpoint
  /// fragments.
  struct RpqProduct {
    explicit RpqProduct(QueryAutomaton a) : automaton(std::move(a)) {}

    QueryAutomaton automaton;  // canonical form (language-equal to queries')
    std::vector<uint64_t> compat;      // per local-graph node: state mask
    std::vector<uint64_t> pid_offset;  // per node: first product id (n + 1)
    Condensation cond;                 // product-graph condensation
    // Flattened frontier table, ascending (oset position, state):
    std::vector<uint32_t> table_oset;   // table idx -> oset position
    std::vector<uint8_t> table_state;   // table idx -> automaton state
    std::vector<uint32_t> table_comp;   // table idx -> product component
    // In-pairs (in-node local id, state), ascending, grouped by product SCC
    // exactly like ReachRows groups in-nodes by local SCC:
    std::vector<std::pair<NodeId, uint8_t>> in_pairs;
    std::vector<uint32_t> in_group;   // per in-pair -> group
    std::vector<uint32_t> group_rep;  // group -> in-pair index
    std::vector<uint32_t> group_comp; // group -> product component
    std::vector<std::vector<uint32_t>> rows;  // group -> ascending table idx

    /// Dense product id of (v, q); q must be set in compat[v].
    NodeId pid(NodeId v, uint32_t q) const {
      const uint64_t below = compat[v] & ((uint64_t{1} << q) - 1);
      return static_cast<NodeId>(
          pid_offset[v] +
          static_cast<uint64_t>(__builtin_popcountll(below)));
    }
    uint32_t CompOfPair(NodeId v, uint32_t q) const {
      return cond.scc.component_of[pid(v, q)];
    }
  };

  explicit FragmentContext(size_t rpq_cache_cap = kDefaultRpqCacheCap)
      : rpq_cache_cap_(rpq_cache_cap < 1 ? 1 : rpq_cache_cap) {}

  /// SCC condensation of f.local_graph().
  const Condensation& cond(const Fragment& f);

  /// Virtual nodes (local ids, ascending) and their global ids.
  const std::vector<NodeId>& oset_locals(const Fragment& f);
  const std::vector<NodeId>& oset_globals(const Fragment& f);

  /// Condensation component of each oset entry. Implies cond().
  const std::vector<uint32_t>& oset_comp(const Fragment& f);

  /// Oset index of a global id, or kNoIndex if it is not a virtual node of
  /// this fragment. Valid once any oset accessor ran.
  uint32_t OsetIndexOf(NodeId global) const;

  const ReachRows& reach_rows(const Fragment& f);

  const DistRows& dist_rows(const Fragment& f);

  const LabelIndex& label_index(const Fragment& f);

  /// Marks the start of one round's work at this fragment: products
  /// touched from here on are pinned against LRU eviction until the next
  /// call, so a round cycling through more distinct automata than the cap
  /// builds each at most once (temporarily overshooting the cap) instead
  /// of thrashing per query — the same pinning discipline as the
  /// coordinator's BoundaryRpqIndex. Trims a previous round's overshoot.
  void BeginRpqRound();

  /// The cached product structures for the canonical automaton behind
  /// `signature_key`, building them (one product condensation + one grouped
  /// sweep) on a miss. The cache holds at most `rpq_cache_cap` distinct
  /// automata, LRU-evicted; rebuilding after an eviction is deterministic,
  /// so rows re-fetched by the coordinator always match the sweeps.
  const RpqProduct& rpq_product(const Fragment& f,
                                const std::string& signature_key,
                                const QueryAutomaton& canonical);

  /// Live per-automaton product entries (observability).
  size_t rpq_cache_size() const { return rpq_products_.size(); }
  size_t rpq_cache_evictions() const { return rpq_evictions_; }

  /// Number of section builds performed (observability for tests/benches:
  /// a warm cache answers whole batches with zero additional builds; each
  /// rpq product construction counts as one build).
  size_t section_builds() const { return section_builds_; }

 private:
  struct RpqCacheSlot {
    std::unique_ptr<RpqProduct> product;
    uint64_t last_used = 0;
  };

  void EnsureOset(const Fragment& f);

  std::optional<Condensation> cond_;
  bool oset_built_ = false;
  std::vector<NodeId> oset_locals_;
  std::vector<NodeId> oset_globals_;
  std::unordered_map<NodeId, uint32_t> oset_index_;
  std::vector<uint32_t> oset_comp_;  // built with cond on demand
  std::optional<ReachRows> rows_;
  std::optional<DistRows> dist_rows_;
  std::optional<LabelIndex> label_index_;
  /// Evicts the least recently used product not touched since the last
  /// BeginRpqRound; returns false when every slot is pinned.
  bool EvictRpqLru();

  size_t rpq_cache_cap_;
  std::unordered_map<std::string, RpqCacheSlot> rpq_products_;
  uint64_t rpq_tick_ = 0;
  uint64_t rpq_round_start_tick_ = 0;
  size_t rpq_evictions_ = 0;
  size_t section_builds_ = 0;
};

/// One FragmentContext per site of a fragmentation, built on first use and
/// explicitly invalidated when an edge update changes a fragment (wired to
/// IncrementalReachIndex::SetUpdateListener). Distinct sites may be accessed
/// concurrently (each site from at most one thread, the cluster-round
/// discipline); invalidation must not race with an in-flight round.
class FragmentContextCache {
 public:
  explicit FragmentContextCache(
      const Fragmentation* fragmentation,
      size_t rpq_cache_cap = FragmentContext::kDefaultRpqCacheCap)
      : rpq_cache_cap_(rpq_cache_cap),
        contexts_(fragmentation->num_fragments()) {}

  FragmentContext& Get(SiteId site) {
    PEREACH_CHECK_LT(site, contexts_.size());
    if (contexts_[site] == nullptr) {
      contexts_[site] = std::make_unique<FragmentContext>(rpq_cache_cap_);
      builds_.fetch_add(1, std::memory_order_relaxed);
    }
    return *contexts_[site];
  }

  /// Drops the cached context of `site`; the next query rebuilds it.
  void Invalidate(SiteId site) {
    PEREACH_CHECK_LT(site, contexts_.size());
    contexts_[site] = nullptr;
  }

  void InvalidateAll() {
    for (auto& ctx : contexts_) ctx = nullptr;
  }

  /// Number of context constructions since creation — cold starts plus
  /// rebuilds after invalidation.
  size_t build_count() const {
    return builds_.load(std::memory_order_relaxed);
  }

 private:
  size_t rpq_cache_cap_;
  std::vector<std::unique_ptr<FragmentContext>> contexts_;
  std::atomic<size_t> builds_{0};
};

}  // namespace pereach

#endif  // PEREACH_ENGINE_FRAGMENT_CONTEXT_H_
