#ifndef PEREACH_BES_DISTANCE_SYSTEM_H_
#define PEREACH_BES_DISTANCE_SYSTEM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/util/common.h"

namespace pereach {

/// "Unreachable" distance value of the min-plus system.
inline constexpr uint64_t kInfWeight = ~uint64_t{0};

/// One equation X_var = min(base, min_j (w_j + X_{d_j})) of a min-plus
/// (tropical) equation system — the arithmetic RVset of paper §4. `base`
/// is the locally measured distance to the query target (kInfWeight if the
/// target is not locally reachable).
struct DistEquation {
  uint64_t var = 0;
  uint64_t base = kInfWeight;
  std::vector<std::pair<uint64_t, uint64_t>> terms;  // (dep var, weight)
};

/// Min-plus equation system solved by Dijkstra over the weighted dependency
/// graph (procedure evalDGd, §4): the least solution of X_var equals the
/// shortest weighted path from `var` to any equation's base.
class DistanceEquationSystem {
 public:
  DistanceEquationSystem() = default;

  /// Adds an equation; duplicate definitions merge by pointwise minimum.
  void Add(DistEquation eq);

  void Clear();

  size_t num_equations() const { return equations_.size(); }
  size_t num_terms() const;

  /// Least-fixpoint value of X_var via Dijkstra,
  /// O((V + E) log V) over the dependency graph.
  uint64_t Evaluate(uint64_t var) const;

  /// Oracle: Bellman-Ford-style chaotic iteration.
  uint64_t EvaluateNaive(uint64_t var) const;

 private:
  struct Entry {
    uint64_t base = kInfWeight;
    std::vector<std::pair<uint64_t, uint64_t>> terms;
  };
  std::unordered_map<uint64_t, Entry> equations_;
};

}  // namespace pereach

#endif  // PEREACH_BES_DISTANCE_SYSTEM_H_
