#ifndef PEREACH_BES_BES_H_
#define PEREACH_BES_BES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/util/common.h"

namespace pereach {

/// One equation X_var = has_true ∨ ⋁_{d ∈ deps} X_d of a disjunctive
/// Boolean equation system (paper §3: the set RVset assembled at the
/// coordinator). Variables are opaque 64-bit keys so callers can pack
/// (node) or (node, automaton-state) identities.
struct BoolEquation {
  uint64_t var = 0;
  bool has_true = false;
  std::vector<uint64_t> deps;
};

/// Disjunctive Boolean equation system under least-fixpoint semantics
/// (Groote & Keinänen [14] restricted to disjunctions, which is all the
/// reachability translation produces). Equations may be mutually recursive;
/// variables without an equation are false.
class BooleanEquationSystem {
 public:
  BooleanEquationSystem() = default;

  /// Adds an equation. A duplicate definition of the same variable is
  /// merged disjunctively (used by incremental re-evaluation).
  void Add(BoolEquation eq);

  /// Pre-sizes the hash table for `n` additional equations (assembling a
  /// large RVset is the coordinator's hot path).
  void Reserve(size_t n) { equations_.reserve(equations_.size() + n); }

  /// Removes all equations (used when a fragment's contribution is rebuilt).
  void Clear();

  size_t num_equations() const { return equations_.size(); }

  /// Total number of dependency occurrences (size of the dependency graph).
  size_t num_dependencies() const;

  /// Least-fixpoint value of X_var, computed by BFS over the dependency
  /// graph from `var` until an equation with has_true is reached — procedure
  /// evalDG of Fig. 4, with the v_true merge realized implicitly.
  /// O(num_equations + num_dependencies).
  bool Evaluate(uint64_t var) const;

  /// Oracle: chaotic iteration to fixpoint; O(n · deps) worst case. Kept for
  /// differential testing of Evaluate.
  bool EvaluateNaive(uint64_t var) const;

 private:
  struct Entry {
    bool has_true = false;
    std::vector<uint64_t> deps;
  };
  std::unordered_map<uint64_t, Entry> equations_;
};

}  // namespace pereach

#endif  // PEREACH_BES_BES_H_
