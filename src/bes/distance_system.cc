#include "src/bes/distance_system.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"

namespace pereach {

void DistanceEquationSystem::Add(DistEquation eq) {
  Entry& e = equations_[eq.var];
  e.base = std::min(e.base, eq.base);
  e.terms.insert(e.terms.end(), eq.terms.begin(), eq.terms.end());
}

void DistanceEquationSystem::Clear() { equations_.clear(); }

size_t DistanceEquationSystem::num_terms() const {
  size_t total = 0;
  for (const auto& [var, e] : equations_) total += e.terms.size();
  return total;
}

uint64_t DistanceEquationSystem::Evaluate(uint64_t var) const {
  // Dijkstra from `var`; the answer is min over settled v of
  // dist(v) + base(v), i.e. the distance to an implicit anchor node.
  using HeapItem = std::pair<uint64_t, uint64_t>;  // (dist, var)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::unordered_map<uint64_t, uint64_t> dist;
  heap.emplace(0, var);
  dist[var] = 0;
  uint64_t best = kInfWeight;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    auto dit = dist.find(v);
    if (dit != dist.end() && dit->second < d) continue;  // stale entry
    if (d >= best) break;  // nothing closer than the best anchor remains
    auto it = equations_.find(v);
    if (it == equations_.end()) continue;  // undefined variable: +inf
    const Entry& e = it->second;
    if (e.base != kInfWeight) best = std::min(best, d + e.base);
    for (const auto& [dep, w] : e.terms) {
      PEREACH_CHECK_NE(w, kInfWeight);
      const uint64_t nd = d + w;
      auto [slot, inserted] = dist.emplace(dep, nd);
      if (!inserted) {
        if (slot->second <= nd) continue;
        slot->second = nd;
      }
      heap.emplace(nd, dep);
    }
  }
  return best;
}

uint64_t DistanceEquationSystem::EvaluateNaive(uint64_t var) const {
  std::unordered_map<uint64_t, uint64_t> value;
  for (const auto& [v, e] : equations_) value[v] = e.base;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [v, e] : equations_) {
      uint64_t best = value[v];
      for (const auto& [dep, w] : e.terms) {
        auto it = value.find(dep);
        if (it == value.end() || it->second == kInfWeight) continue;
        best = std::min(best, it->second + w);
      }
      if (best < value[v]) {
        value[v] = best;
        changed = true;
      }
    }
  }
  auto it = value.find(var);
  return it == value.end() ? kInfWeight : it->second;
}

}  // namespace pereach
