#include "src/bes/bes.h"

#include <deque>
#include <unordered_set>

namespace pereach {

void BooleanEquationSystem::Add(BoolEquation eq) {
  Entry& e = equations_[eq.var];
  e.has_true |= eq.has_true;
  e.deps.insert(e.deps.end(), eq.deps.begin(), eq.deps.end());
}

void BooleanEquationSystem::Clear() { equations_.clear(); }

size_t BooleanEquationSystem::num_dependencies() const {
  size_t total = 0;
  for (const auto& [var, e] : equations_) total += e.deps.size();
  return total;
}

bool BooleanEquationSystem::Evaluate(uint64_t var) const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(equations_.size() * 2);
  seen.insert(var);
  std::deque<uint64_t> queue{var};
  while (!queue.empty()) {
    const uint64_t v = queue.front();
    queue.pop_front();
    auto it = equations_.find(v);
    if (it == equations_.end()) continue;  // undefined variable: false
    if (it->second.has_true) return true;
    for (uint64_t d : it->second.deps) {
      if (seen.insert(d).second) queue.push_back(d);
    }
  }
  return false;
}

bool BooleanEquationSystem::EvaluateNaive(uint64_t var) const {
  std::unordered_map<uint64_t, bool> value;
  value.reserve(equations_.size());
  for (const auto& [v, e] : equations_) value[v] = e.has_true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [v, e] : equations_) {
      if (value[v]) continue;
      for (uint64_t d : e.deps) {
        auto it = value.find(d);
        if (it != value.end() && it->second) {
          value[v] = true;
          changed = true;
          break;
        }
      }
    }
  }
  auto it = value.find(var);
  return it != value.end() && it->second;
}

}  // namespace pereach
