#ifndef PEREACH_UTIL_BITSET_H_
#define PEREACH_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace pereach {

/// Fixed-capacity dynamic bitset used for set-of-variables formulas and for
/// reachable-set propagation. Sized at construction; bitwise OR between two
/// bitsets of the same size is the hot operation (word-parallel).
class Bitset {
 public:
  Bitset() = default;

  /// Creates a bitset able to hold bits [0, num_bits), all clear.
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i) {
    PEREACH_CHECK_LT(i, num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(size_t i) {
    PEREACH_CHECK_LT(i, num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    PEREACH_CHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets every bit of `other` in this bitset. Returns true if this bitset
  /// changed (used by fixpoint loops to detect convergence).
  bool UnionWith(const Bitset& other) {
    PEREACH_CHECK_EQ(num_bits_, other.num_bits_);
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      const uint64_t merged = words_[w] | other.words_[w];
      changed |= (merged != words_[w]);
      words_[w] = merged;
    }
    return changed;
  }

  /// True if no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True if this and `other` share at least one set bit.
  bool Intersects(const Bitset& other) const {
    PEREACH_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t count = 0;
    for (uint64_t w : words_) {
      count += static_cast<size_t>(__builtin_popcountll(w));
    }
    return count;
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  /// Calls `fn(i)` for every set bit i in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToVector() const {
    std::vector<size_t> out;
    out.reserve(Count());
    ForEachSetBit([&out](size_t i) { out.push_back(i); });
    return out;
  }

  /// Raw word access for serialization.
  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_BITSET_H_
