#ifndef PEREACH_UTIL_LOGGING_H_
#define PEREACH_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pereach {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
/// Used by the CHECK macros below; not part of the public API.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Aborts with a diagnostic unless `condition` holds. Active in all build
/// modes: invariants of the algorithms are cheap relative to graph work.
#define PEREACH_CHECK(condition)                                       \
  (condition) ? (void)0                                                \
              : (void)::pereach::internal_logging::FatalLogMessage(    \
                    __FILE__, __LINE__, #condition)                    \
                    .stream()

#define PEREACH_CHECK_EQ(a, b) PEREACH_CHECK((a) == (b))
#define PEREACH_CHECK_NE(a, b) PEREACH_CHECK((a) != (b))
#define PEREACH_CHECK_LT(a, b) PEREACH_CHECK((a) < (b))
#define PEREACH_CHECK_LE(a, b) PEREACH_CHECK((a) <= (b))
#define PEREACH_CHECK_GT(a, b) PEREACH_CHECK((a) > (b))
#define PEREACH_CHECK_GE(a, b) PEREACH_CHECK((a) >= (b))

}  // namespace pereach

#endif  // PEREACH_UTIL_LOGGING_H_
