#ifndef PEREACH_UTIL_TIMER_H_
#define PEREACH_UTIL_TIMER_H_

#include <chrono>

namespace pereach {

/// Wall-clock stopwatch. Started at construction; ElapsedMs() may be called
/// repeatedly; Restart() resets the origin.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction/Restart, as a double.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Microseconds elapsed since construction/Restart.
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_TIMER_H_
