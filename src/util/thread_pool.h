#ifndef PEREACH_UTIL_THREAD_POOL_H_
#define PEREACH_UTIL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/common.h"
#include "src/util/sync.h"

namespace pereach {

/// Fixed-size worker pool. Simulated sites and MapReduce mappers run their
/// local work on pool threads so that "partial evaluation in parallel at each
/// site" is genuinely parallel (threads simulate partitions).
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributed over the pool, and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  void WorkerLoop();

  Mutex mu_{LockRank::kThreadPool};
  CondVar work_available_;
  CondVar work_done_;
  std::queue<std::function<void()>> queue_ PEREACH_GUARDED_BY(mu_);
  size_t in_flight_ PEREACH_GUARDED_BY(mu_) = 0;
  bool shutdown_ PEREACH_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_THREAD_POOL_H_
