#ifndef PEREACH_UTIL_STATUS_H_
#define PEREACH_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace pereach {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kCorruption = 4,
  kInternal = 5,
};

/// Lightweight success/error result for fallible operations (the project
/// does not use exceptions). Modeled after the RocksDB/Arrow Status idiom.
/// [[nodiscard]]: silently dropping a Status loses the only error signal a
/// non-throwing API has — builds run -Werror=unused-result, so every call
/// site either consumes it or discards explicitly with (void).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: unbalanced paren".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. [[nodiscard]] for the
/// same reason as Status: an ignored Result is an ignored failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so functions can `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PEREACH_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; CHECK-fails if this holds an error.
  const T& value() const& {
    PEREACH_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PEREACH_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    PEREACH_CHECK(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_STATUS_H_
