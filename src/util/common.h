#ifndef PEREACH_UTIL_COMMON_H_
#define PEREACH_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace pereach {

/// Identifier of a node in a (global or fragment-local) graph.
using NodeId = uint32_t;

/// Identifier of a node label (index into a LabelDictionary).
using LabelId = uint32_t;

/// Identifier of a site / fragment in a fragmentation.
using SiteId = uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel meaning "no label".
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// Sentinel distance meaning "unreachable".
inline constexpr uint32_t kInfDistance = std::numeric_limits<uint32_t>::max();

/// Disallow copy and assign; place in the private section of a class.
#define PEREACH_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;              \
  TypeName& operator=(const TypeName&) = delete

}  // namespace pereach

#endif  // PEREACH_UTIL_COMMON_H_
