#ifndef PEREACH_UTIL_SYNC_H_
#define PEREACH_UTIL_SYNC_H_

// The project's ONLY synchronization primitives. Every mutex in the tree is
// a pereach::Mutex or pereach::SharedMutex (scripts/check_static.py rejects
// naked std::mutex / std::lock_guard / std::shared_mutex outside this
// header), which buys two machine-checked properties on every build:
//
//  1. Clang Thread Safety Analysis. The wrappers carry the CAPABILITY /
//     ACQUIRE / RELEASE attributes and protected state is declared with
//     PEREACH_GUARDED_BY / must-hold-lock helpers with PEREACH_REQUIRES, so
//     a clang build with -Wthread-safety -Werror PROVES that no annotated
//     field is touched without its lock — the epoch/locking protocol of
//     DESIGN.md §12 stops being prose. The attributes compile to nothing on
//     gcc (no __attribute__((capability))), so the gcc jobs build the same
//     code unannotated.
//
//  2. Lock-rank deadlock detection. Every mutex is constructed with a
//     LockRank; a thread-local stack of held ranks PEREACH_CHECKs on every
//     acquisition that the new rank is STRICTLY GREATER than every rank
//     already held. Any potential deadlock cycle must contain at least one
//     out-of-order edge, so the first acquisition along such a cycle aborts
//     deterministically — on the FIRST run, with a clean stack trace —
//     instead of needing TSan plus the one bad interleaving. The check is
//     on in all build modes (same philosophy as PEREACH_CHECK: a vector
//     push/compare is free next to the condvar/hash-map work these locks
//     guard); DESIGN.md §12 is the authoritative rank table and
//     scripts/check_static.py fails CI when a rank is missing from it.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/util/common.h"
#include "src/util/logging.h"

// --- Clang Thread Safety Analysis attribute shims ---------------------------
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Each macro expands
// to the clang attribute when the compiler understands it and to nothing
// otherwise, so gcc builds are unaffected.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PEREACH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PEREACH_THREAD_ANNOTATION
#define PEREACH_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define PEREACH_CAPABILITY(x) PEREACH_THREAD_ANNOTATION(capability(x))
#define PEREACH_SCOPED_CAPABILITY PEREACH_THREAD_ANNOTATION(scoped_lockable)
#define PEREACH_GUARDED_BY(x) PEREACH_THREAD_ANNOTATION(guarded_by(x))
#define PEREACH_PT_GUARDED_BY(x) PEREACH_THREAD_ANNOTATION(pt_guarded_by(x))
#define PEREACH_REQUIRES(...) \
  PEREACH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PEREACH_REQUIRES_SHARED(...) \
  PEREACH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PEREACH_ACQUIRE(...) \
  PEREACH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PEREACH_ACQUIRE_SHARED(...) \
  PEREACH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PEREACH_RELEASE(...) \
  PEREACH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PEREACH_RELEASE_SHARED(...) \
  PEREACH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PEREACH_RELEASE_GENERIC(...) \
  PEREACH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define PEREACH_EXCLUDES(...) \
  PEREACH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PEREACH_ASSERT_CAPABILITY(x) \
  PEREACH_THREAD_ANNOTATION(assert_capability(x))
#define PEREACH_RETURN_CAPABILITY(x) PEREACH_THREAD_ANNOTATION(lock_returned(x))
#define PEREACH_NO_THREAD_SAFETY_ANALYSIS \
  PEREACH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pereach {

/// Acquisition order of every mutex in the tree, low acquired first: a
/// thread may only acquire a mutex whose rank is STRICTLY GREATER than
/// every rank it already holds. The enumerators are the machine half of the
/// DESIGN.md §12 table (one row per rank, same names); scripts/
/// check_static.py cross-checks that every enumerator and every Mutex
/// declaration appears there. Gaps between values are deliberate — new
/// locks slot in without renumbering the table.
enum class LockRank : int {
  /// QueryServer::stop_mu_ — serializes Stop(); held across dispatcher
  /// joins and the final writer-held listener detach.
  kServerStop = 10,
  /// EpochGate's SharedMutex — readers hold it across a whole batch
  /// evaluation, the writer across an index update, so every lock the
  /// evaluation or commit path touches ranks above it.
  kEpochGate = 20,
  /// BatchQueue::mu_ — one per class queue; admission verdicts, arrival
  /// stamps and the window estimator are decided under it.
  kBatchQueue = 30,
  /// Cluster::mu_ — the per-thread metrics-window map; taken and released
  /// round by round inside gate-reader-held evaluations.
  kClusterMetrics = 40,
  /// SocketTransport's per-connection io_mu — serializes one round's
  /// send+receive exchange on a worker socket; taken inside gate-reader-held
  /// rounds, never with any higher rank held. Also the per-site eval_mu
  /// guarding degrade-local FragmentContexts (never nested with io_mu:
  /// degradation runs only after the exchange released it).
  kTransportConn = 45,
  /// SocketTransport::frag_mu_ — the serialized fragment snapshots Hello
  /// and Sync ship; read under io_mu during establishment, written by
  /// SyncFragments under the writer-held epoch gate.
  kTransportFrag = 46,
  /// WorkerSupervisor::mu_ — per-connection breaker state and the repair
  /// worklist. Ranked above io_mu so the repair thread can never hold it
  /// while re-establishing a connection (it copies the worklist and
  /// releases first); breaker bookkeeping nests inside io_mu-free code or
  /// after io_mu on the round path.
  kTransportHealth = 48,
  /// ThreadPool::mu_ — task queue and in-flight count of the site pool.
  kThreadPool = 50,
  /// ThreadPool::ParallelFor's per-call completion latch; workers take it
  /// after finishing their slice (never under ThreadPool::mu_, but ranked
  /// above it so a future nesting fails loudly rather than deadlocking).
  kPoolLatch = 55,
  /// AnswerCache::mu_ — looked up lock-free of everything else in Submit,
  /// and taken under the writer-held EpochGate in OnEpochAdvance.
  kAnswerCache = 60,
  /// QueryServer::drain_mu_ — in-flight and per-tenant quota books.
  kServerDrain = 70,
  /// QueryServer::stats_mu_ — aggregate ServerStats; taken under the
  /// writer-held gate on the update path.
  kServerStats = 75,
  /// ServerMetrics::mu_ — gauges and histograms; leaf rank, taken under
  /// drain_mu_ when Metrics() samples the tenant gauge.
  kServerMetrics = 80,
  /// Leaf rank for tests and scratch structures that never nest.
  kLeaf = 1000,
};

namespace internal_sync {

/// One held lock: the rank plus the owning object (so the LIFO-release
/// check and the abort diagnostic can name the exact mutex pair).
struct HeldLock {
  int rank;
  const void* mutex;
};

/// The calling thread's stack of held ranks. Function-local static avoids
/// the init-order hazards of a namespace-scope thread_local.
inline std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

/// The deadlock detector: aborts unless `rank` is strictly greater than
/// every rank this thread already holds. Strictness also rejects two
/// same-rank mutexes nested (two BatchQueues, say) — an order the DESIGN
/// table does not declare, hence a potential cycle against a thread nesting
/// them the other way.
inline void PushRank(int rank, const void* mutex) {
  std::vector<HeldLock>& stack = HeldStack();
  if (!stack.empty()) {
    PEREACH_CHECK(rank > stack.back().rank &&
                  "lock-rank inversion: acquiring a mutex whose rank is not "
                  "above every held rank (DESIGN.md §12 order violated)");
  }
  stack.push_back(HeldLock{rank, mutex});
}

/// Releases must be LIFO (all acquisition in this codebase is scoped); a
/// mismatch means a lock escaped its scope, which the detector treats as
/// corruption rather than guessing.
inline void PopRank(const void* mutex) {
  std::vector<HeldLock>& stack = HeldStack();
  PEREACH_CHECK(!stack.empty() && stack.back().mutex == mutex &&
                "lock released out of LIFO order");
  stack.pop_back();
}

}  // namespace internal_sync

class CondVar;

/// Annotated, ranked exclusive mutex. Prefer the scoped MutexLock; call
/// Lock/Unlock directly only from RAII types (EpochGate's guards).
class PEREACH_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}

  void Lock() PEREACH_ACQUIRE() {
    // Check BEFORE blocking: an inverted order aborts even when the other
    // thread of the would-be cycle never shows up.
    internal_sync::PushRank(rank_, this);
    native_.lock();
  }

  void Unlock() PEREACH_RELEASE() {
    native_.unlock();
    internal_sync::PopRank(this);
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }

 private:
  friend class CondVar;
  PEREACH_DISALLOW_COPY_AND_ASSIGN(Mutex);

  std::mutex native_;
  const int rank_;
};

/// Annotated, ranked shared (reader/writer) mutex. Shared acquisitions feed
/// the same rank stack as exclusive ones: readers constrain ordering too
/// (a reader blocking on a writer is half of a deadlock cycle).
class PEREACH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(static_cast<int>(rank)) {}

  void Lock() PEREACH_ACQUIRE() {
    internal_sync::PushRank(rank_, this);
    native_.lock();
  }

  void Unlock() PEREACH_RELEASE() {
    native_.unlock();
    internal_sync::PopRank(this);
  }

  void LockShared() PEREACH_ACQUIRE_SHARED() {
    internal_sync::PushRank(rank_, this);
    native_.lock_shared();
  }

  void UnlockShared() PEREACH_RELEASE_SHARED() {
    native_.unlock_shared();
    internal_sync::PopRank(this);
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(SharedMutex);

  std::shared_mutex native_;
  const int rank_;
};

/// Scoped exclusive lock — the std::lock_guard of this codebase.
class PEREACH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PEREACH_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PEREACH_RELEASE() { mu_->Unlock(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(MutexLock);

  Mutex* const mu_;
};

/// Scoped shared lock on a SharedMutex.
class PEREACH_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) PEREACH_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() PEREACH_RELEASE_GENERIC() { mu_->UnlockShared(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(ReaderLock);

  SharedMutex* const mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class PEREACH_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) PEREACH_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() PEREACH_RELEASE() { mu_->Unlock(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(WriterLock);

  SharedMutex* const mu_;
};

/// Condition variable over a Mutex. Wait takes the mutex the caller already
/// holds (REQUIRES — thread-safety analysis rejects a call without it) and
/// re-holds it on return. There is deliberately NO predicate overload:
/// clang cannot see through a predicate lambda to check its guarded-field
/// accesses, so callers write the standard `while (!pred) cv.Wait(&mu);`
/// loop inline, where the analysis covers the predicate too.
class CondVar {
 public:
  CondVar() = default;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// reacquires `mu`. The rank-stack entry stays in place across the wait —
  /// the thread is blocked, and it re-holds the same mutex on return, so
  /// the stack is accurate whenever this thread can run checks.
  void Wait(Mutex* mu) PEREACH_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->native_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scoped lock
  }

  /// Wait with a deadline; returns std::cv_status::timeout when the
  /// deadline passed before a notification.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PEREACH_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->native_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(CondVar);

  std::condition_variable cv_;
};

/// Debug-build assertion that a structure with EXTERNAL synchronization
/// (the single-dispatcher discipline of the boundary indexes, DESIGN.md
/// §10.5) really is entered by one thread at a time: each public entry
/// point holds a ScopedExclusiveUse for its duration, and overlapping
/// holders abort deterministically instead of corrupting scratch. Reentrant
/// holds from the SAME holder scope are not supported — take it once at
/// the outermost entry point. Compiles to nothing under NDEBUG.
class ExclusiveUseToken {
 public:
  ExclusiveUseToken() = default;

 private:
  friend class ScopedExclusiveUse;
  PEREACH_DISALLOW_COPY_AND_ASSIGN(ExclusiveUseToken);

#ifndef NDEBUG
  std::atomic<bool> in_use_{false};
#endif
};

class ScopedExclusiveUse {
 public:
#ifndef NDEBUG
  explicit ScopedExclusiveUse(ExclusiveUseToken* token) : token_(token) {
    PEREACH_CHECK(!token_->in_use_.exchange(true, std::memory_order_acquire) &&
                  "externally-synchronized structure entered concurrently");
  }
  ~ScopedExclusiveUse() {
    token_->in_use_.store(false, std::memory_order_release);
  }
#else
  explicit ScopedExclusiveUse(ExclusiveUseToken* /*token*/) {}
#endif

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(ScopedExclusiveUse);

#ifndef NDEBUG
  ExclusiveUseToken* const token_;
#endif
};

namespace internal_sync {

/// Test hook: ranks currently held by the calling thread, innermost last.
inline std::vector<int> HeldRanksForTest() {
  std::vector<int> ranks;
  for (const HeldLock& held : HeldStack()) ranks.push_back(held.rank);
  return ranks;
}

}  // namespace internal_sync

}  // namespace pereach

#endif  // PEREACH_UTIL_SYNC_H_
