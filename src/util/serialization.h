#ifndef PEREACH_UTIL_SERIALIZATION_H_
#define PEREACH_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/logging.h"

namespace pereach {

/// Append-only byte buffer with varint and fixed-width primitives. Every
/// payload that crosses a simulated site boundary is encoded through this
/// class so that reported network traffic reflects real byte counts.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  /// LEB128-style variable-length unsigned integer (1 byte for values < 128).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends raw bytes (no length prefix).
  void PutRaw(const std::vector<uint8_t>& bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Appends a length-prefixed frame — the multiplexing unit of batched
  /// replies: one frame per query inside one wire payload.
  void PutFrame(const std::vector<uint8_t>& bytes) {
    PutVarint(bytes.size());
    PutRaw(bytes);
  }

  /// Encodes a bitset as its bit length followed by ceil(n/8) payload bytes —
  /// the "|Fi.O| bits per equation" wire format of the paper's traffic bound.
  void PutBitset(const Bitset& b) {
    PutVarint(b.size());
    const size_t num_bytes = (b.size() + 7) / 8;
    const std::vector<uint64_t>& words = b.words();
    for (size_t i = 0; i < num_bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(words[i >> 3] >> (8 * (i & 7))));
    }
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer produced by Encoder. Every read is
/// bounds-checked: a truncated or malformed payload CHECK-aborts with a
/// diagnostic instead of reading out of range, over-allocating, or
/// fabricating data. Reply payloads cross (simulated) site boundaries, so
/// decoding treats them as untrusted input.
class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  /// View over a raw byte range (used for sub-frames of batched payloads).
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] uint8_t GetU8() {
    PEREACH_CHECK(pos_ < size_ && "decoder: truncated payload");
    return data_[pos_++];
  }

  [[nodiscard]] uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
    return v;
  }

  [[nodiscard]] uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
    return v;
  }

  [[nodiscard]] uint64_t GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      const uint8_t byte = GetU8();
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      PEREACH_CHECK(shift < 64 && "decoder: overlong varint");
    }
    return v;
  }

  /// Reads a varint that declares a count of elements occupying at least
  /// `min_element_bytes` each. A count the remaining buffer cannot possibly
  /// hold aborts here, before any allocation — a malformed length can
  /// otherwise request a multi-gigabyte resize and die far from the cause.
  [[nodiscard]] size_t GetCount(size_t min_element_bytes = 1) {
    const uint64_t n = GetVarint();
    PEREACH_CHECK((min_element_bytes == 0 ||
                   n <= remaining() / min_element_bytes) &&
                  "decoder: count exceeds payload size");
    return static_cast<size_t>(n);
  }

  [[nodiscard]] double GetDouble() {
    const uint64_t bits = GetU64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string GetString() {
    // remaining()-relative comparison avoids the pos_ + n overflow that a
    // near-SIZE_MAX length would slip past an absolute bounds check.
    const uint64_t n = GetVarint();
    PEREACH_CHECK(n <= remaining() && "decoder: truncated string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  [[nodiscard]] Bitset GetBitset() {
    // Compare bit counts, not (num_bits + 7) / 8: a length near UINT64_MAX
    // would wrap the byte count to 0 and slip past the check.
    const uint64_t num_bits = GetVarint();
    PEREACH_CHECK(num_bits <= 8 * static_cast<uint64_t>(remaining()) &&
                  "decoder: truncated bitset");
    const uint64_t num_bytes = (num_bits + 7) / 8;
    Bitset b(static_cast<size_t>(num_bits));
    std::vector<uint64_t>& words = b.mutable_words();
    for (size_t i = 0; i < num_bytes; ++i) {
      words[i >> 3] |= static_cast<uint64_t>(GetU8()) << (8 * (i & 7));
    }
    return b;
  }

  /// Consumes a length-prefixed frame and returns a decoder over its bytes.
  /// The frame must lie entirely within the remaining buffer.
  [[nodiscard]] Decoder GetFrame() {
    const uint64_t n = GetVarint();
    PEREACH_CHECK(n <= remaining() && "decoder: truncated frame");
    Decoder sub(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return sub;
  }

  [[nodiscard]] bool Done() const { return pos_ == size_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_SERIALIZATION_H_
