#ifndef PEREACH_UTIL_SERIALIZATION_H_
#define PEREACH_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/logging.h"

namespace pereach {

/// Append-only byte buffer with varint and fixed-width primitives. Every
/// payload that crosses a simulated site boundary is encoded through this
/// class so that reported network traffic reflects real byte counts.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// LEB128-style variable-length unsigned integer (1 byte for values < 128).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Encodes a bitset as its bit length followed by ceil(n/8) payload bytes —
  /// the "|Fi.O| bits per equation" wire format of the paper's traffic bound.
  void PutBitset(const Bitset& b) {
    PutVarint(b.size());
    const size_t num_bytes = (b.size() + 7) / 8;
    const std::vector<uint64_t>& words = b.words();
    for (size_t i = 0; i < num_bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(words[i >> 3] >> (8 * (i & 7))));
    }
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer produced by Encoder. Out-of-bounds
/// reads CHECK-fail: buffers are produced and consumed inside the library,
/// so truncation indicates a bug rather than untrusted input.
class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t GetU8() {
    PEREACH_CHECK_LT(pos_, buf_.size());
    return buf_[pos_++];
  }

  uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
    return v;
  }

  uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
    return v;
  }

  uint64_t GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      const uint8_t byte = GetU8();
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      PEREACH_CHECK_LT(shift, 64);
    }
    return v;
  }

  double GetDouble() {
    const uint64_t bits = GetU64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    const size_t n = GetVarint();
    PEREACH_CHECK_LE(pos_ + n, buf_.size());
    std::string s(buf_.begin() + static_cast<ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }

  Bitset GetBitset() {
    const size_t num_bits = GetVarint();
    Bitset b(num_bits);
    const size_t num_bytes = (num_bits + 7) / 8;
    std::vector<uint64_t>& words = b.mutable_words();
    for (size_t i = 0; i < num_bytes; ++i) {
      words[i >> 3] |= static_cast<uint64_t>(GetU8()) << (8 * (i & 7));
    }
    return b;
  }

  bool Done() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_SERIALIZATION_H_
