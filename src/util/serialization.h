#ifndef PEREACH_UTIL_SERIALIZATION_H_
#define PEREACH_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/logging.h"
#include "src/util/status.h"

namespace pereach {

/// Append-only byte buffer with varint and fixed-width primitives. Every
/// payload that crosses a simulated site boundary is encoded through this
/// class so that reported network traffic reflects real byte counts.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  /// LEB128-style variable-length unsigned integer (1 byte for values < 128).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends raw bytes (no length prefix).
  void PutRaw(const std::vector<uint8_t>& bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Appends a length-prefixed frame — the multiplexing unit of batched
  /// replies: one frame per query inside one wire payload.
  void PutFrame(const std::vector<uint8_t>& bytes) {
    PutVarint(bytes.size());
    PutRaw(bytes);
  }

  /// Encodes a bitset as its bit length followed by ceil(n/8) payload bytes —
  /// the "|Fi.O| bits per equation" wire format of the paper's traffic bound.
  void PutBitset(const Bitset& b) {
    PutVarint(b.size());
    const size_t num_bytes = (b.size() + 7) / 8;
    const std::vector<uint64_t>& words = b.words();
    for (size_t i = 0; i < num_bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(words[i >> 3] >> (8 * (i & 7))));
    }
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer produced by Encoder. Every read is
/// bounds-checked; what a violation does depends on the error mode chosen at
/// construction:
///
///   - `OnError::kAbort` (default): a truncated or malformed payload
///     CHECK-aborts with a diagnostic instead of reading out of range,
///     over-allocating, or fabricating data. Correct for trusted in-process
///     buffers this program encoded itself, where corruption is a bug.
///   - `OnError::kStatus`: the first violation records a sticky Corruption
///     status; that read and every subsequent read return a zero/empty value
///     and `ok()` turns false. Required at every transport ingress — one
///     corrupt frame from a socket peer must reject the message, never kill
///     the server (DESIGN.md §13).
///
/// In kStatus mode callers poll `ok()` at decode checkpoints and must treat
/// all intermediate values as garbage once it is false. Sub-decoders from
/// `GetFrame()` inherit the mode but track their own status: check both.
class Decoder {
 public:
  enum class OnError : uint8_t { kAbort, kStatus };

  explicit Decoder(const std::vector<uint8_t>& buf,
                   OnError on_error = OnError::kAbort)
      : data_(buf.data()), size_(buf.size()), on_error_(on_error) {}

  /// View over a raw byte range (used for sub-frames of batched payloads).
  Decoder(const uint8_t* data, size_t size, OnError on_error = OnError::kAbort)
      : data_(data), size_(size), on_error_(on_error) {}

  [[nodiscard]] uint8_t GetU8() {
    if (!Check(pos_ < size_, "decoder: truncated payload")) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
    return v;
  }

  [[nodiscard]] uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
    return v;
  }

  [[nodiscard]] uint64_t GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      const uint8_t byte = GetU8();
      if (failed_) return 0;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (!Check(shift < 64, "decoder: overlong varint")) return 0;
    }
    return v;
  }

  /// Reads a varint that declares a count of elements occupying at least
  /// `min_element_bytes` each. A count the remaining buffer cannot possibly
  /// hold fails here, before any allocation — a malformed length can
  /// otherwise request a multi-gigabyte resize and die far from the cause.
  [[nodiscard]] size_t GetCount(size_t min_element_bytes = 1) {
    const uint64_t n = GetVarint();
    if (!Check(min_element_bytes == 0 || n <= remaining() / min_element_bytes,
               "decoder: count exceeds payload size")) {
      return 0;
    }
    return static_cast<size_t>(n);
  }

  [[nodiscard]] double GetDouble() {
    const uint64_t bits = GetU64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string GetString() {
    // remaining()-relative comparison avoids the pos_ + n overflow that a
    // near-SIZE_MAX length would slip past an absolute bounds check.
    const uint64_t n = GetVarint();
    if (!Check(n <= remaining(), "decoder: truncated string")) return "";
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  [[nodiscard]] Bitset GetBitset() {
    // Compare bit counts, not (num_bits + 7) / 8: a length near UINT64_MAX
    // would wrap the byte count to 0 and slip past the check.
    const uint64_t num_bits = GetVarint();
    if (!Check(num_bits <= 8 * static_cast<uint64_t>(remaining()),
               "decoder: truncated bitset")) {
      return Bitset(0);
    }
    const uint64_t num_bytes = (num_bits + 7) / 8;
    Bitset b(static_cast<size_t>(num_bits));
    std::vector<uint64_t>& words = b.mutable_words();
    for (size_t i = 0; i < num_bytes; ++i) {
      words[i >> 3] |= static_cast<uint64_t>(GetU8()) << (8 * (i & 7));
    }
    return b;
  }

  /// Consumes a length-prefixed frame and returns a decoder over its bytes.
  /// The frame must lie entirely within the remaining buffer. The sub-decoder
  /// inherits the error mode but keeps its own status.
  [[nodiscard]] Decoder GetFrame() {
    const uint64_t n = GetVarint();
    if (!Check(n <= remaining(), "decoder: truncated frame")) {
      return Decoder(data_, 0, on_error_);
    }
    Decoder sub(data_ + pos_, static_cast<size_t>(n), on_error_);
    pos_ += static_cast<size_t>(n);
    return sub;
  }

  /// False once any read failed, regardless of position.
  [[nodiscard]] bool Done() const { return !failed_ && pos_ == size_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return size_ - pos_; }

  /// kStatus mode: true until the first malformed read. Always true in
  /// kAbort mode (a violation never returns).
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] Status status() const {
    return failed_ ? Status::Corruption(error_) : Status::OK();
  }

 private:
  /// Returns true when `cond` holds. Otherwise aborts (kAbort) or marks the
  /// decoder failed and exhausts it so no later read touches the buffer
  /// (kStatus); the first failure's message wins.
  bool Check(bool cond, const char* msg) {
    if (cond) return true;
    if (on_error_ == OnError::kAbort) {
      (void)internal_logging::FatalLogMessage(__FILE__, __LINE__, msg);
    }
    if (!failed_) {
      failed_ = true;
      error_ = msg;
    }
    pos_ = size_;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  OnError on_error_;
  bool failed_ = false;
  const char* error_ = "";
};

}  // namespace pereach

#endif  // PEREACH_UTIL_SERIALIZATION_H_
