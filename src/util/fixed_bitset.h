#ifndef PEREACH_UTIL_FIXED_BITSET_H_
#define PEREACH_UTIL_FIXED_BITSET_H_

#include <cstddef>
#include <cstdint>

#include "src/util/logging.h"

namespace pereach {

/// Fixed-width bitset of kWords x 64 bits held inline — no heap, trivially
/// copyable — so a flat `std::vector<FixedBitset<W>>` is one contiguous
/// mask-per-node array a CSR sweep can stream through (a dynamic Bitset per
/// node would scatter the inner loop across allocations). Every operation
/// is a straight word loop that unrolls completely for small kWords; the
/// hot specialization `Lanes64 = FixedBitset<1>` compiles to plain uint64_t
/// arithmetic.
template <size_t kWords>
class FixedBitset {
  static_assert(kWords > 0, "FixedBitset needs at least one word");

 public:
  static constexpr size_t kNumBits = kWords * 64;
  static constexpr size_t kNumWords = kWords;

  constexpr FixedBitset() : words_{} {}

  /// A bitset with exactly bit `i` set.
  static FixedBitset Bit(size_t i) {
    FixedBitset b;
    b.Set(i);
    return b;
  }

  constexpr size_t size() const { return kNumBits; }

  void Set(size_t i) {
    PEREACH_CHECK_LT(i, kNumBits);
    words_[i / 64] |= uint64_t{1} << (i % 64);
  }

  void Reset(size_t i) {
    PEREACH_CHECK_LT(i, kNumBits);
    words_[i / 64] &= ~(uint64_t{1} << (i % 64));
  }

  bool Test(size_t i) const {
    PEREACH_CHECK_LT(i, kNumBits);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  /// Raw word access (word 0 holds bits [0, 64)).
  uint64_t word(size_t w) const {
    PEREACH_CHECK_LT(w, kWords);
    return words_[w];
  }
  void set_word(size_t w, uint64_t value) {
    PEREACH_CHECK_LT(w, kWords);
    words_[w] = value;
  }

  bool Any() const {
    for (size_t w = 0; w < kWords; ++w) {
      if (words_[w] != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  size_t Count() const {
    size_t count = 0;
    for (size_t w = 0; w < kWords; ++w) {
      count += static_cast<size_t>(__builtin_popcountll(words_[w]));
    }
    return count;
  }

  void Clear() {
    for (size_t w = 0; w < kWords; ++w) words_[w] = 0;
  }

  /// OR-in `other`; returns true when this bitset changed (fixpoint loops).
  bool UnionWith(const FixedBitset& other) {
    bool changed = false;
    for (size_t w = 0; w < kWords; ++w) {
      const uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }

  bool Intersects(const FixedBitset& other) const {
    for (size_t w = 0; w < kWords; ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  FixedBitset& operator|=(const FixedBitset& other) {
    for (size_t w = 0; w < kWords; ++w) words_[w] |= other.words_[w];
    return *this;
  }
  FixedBitset& operator&=(const FixedBitset& other) {
    for (size_t w = 0; w < kWords; ++w) words_[w] &= other.words_[w];
    return *this;
  }

  friend FixedBitset operator&(FixedBitset a, const FixedBitset& b) {
    a &= b;
    return a;
  }
  friend FixedBitset operator|(FixedBitset a, const FixedBitset& b) {
    a |= b;
    return a;
  }
  friend bool operator==(const FixedBitset& a, const FixedBitset& b) {
    for (size_t w = 0; w < kWords; ++w) {
      if (a.words_[w] != b.words_[w]) return false;
    }
    return true;
  }

  /// Calls `fn(i)` for every set bit i in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < kWords; ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  uint64_t words_[kWords];
};

/// The batch-answering lane mask: one bit per question of a 64-wide word.
using Lanes64 = FixedBitset<1>;

}  // namespace pereach

#endif  // PEREACH_UTIL_FIXED_BITSET_H_
