#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/util/logging.h"

namespace pereach {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    PEREACH_CHECK(!shutdown_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) work_done_.Wait(&mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Block-cyclic split: one task per worker keeps scheduling overhead low
  // while still spreading uneven per-index costs across workers.
  const size_t workers = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  // Per-call completion latch rather than the pool-wide Wait(): concurrent
  // ParallelFor callers (overlapping server batches) must each return as
  // soon as their own indices finish, not when the whole pool drains. The
  // latch is shared-owned so a worker finishing after the caller woke cannot
  // touch a destroyed mutex/condvar.
  struct Latch {
    Mutex mu{LockRank::kPoolLatch};
    CondVar cv;
    size_t remaining PEREACH_GUARDED_BY(mu) = 0;
  };
  auto latch = std::make_shared<Latch>();
  {
    MutexLock lock(&latch->mu);
    latch->remaining = workers;
  }
  for (size_t w = 0; w < workers; ++w) {
    Submit([latch, &next, n, &fn] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      MutexLock lock(&latch->mu);
      if (--latch->remaining == 0) latch->cv.NotifyAll();
    });
  }
  MutexLock lock(&latch->mu);
  while (latch->remaining != 0) latch->cv.Wait(&latch->mu);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(&mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.NotifyAll();
    }
  }
}

}  // namespace pereach
