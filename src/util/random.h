#ifndef PEREACH_UTIL_RANDOM_H_
#define PEREACH_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/util/logging.h"

namespace pereach {

/// Deterministic, seedable random source. All stochastic components (graph
/// generators, partitioners, query generators, property tests) draw from an
/// explicitly passed Rng so every run is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    PEREACH_CHECK_GT(bound, 0u);
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    PEREACH_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric number of trials with success probability p (>= 1).
  uint64_t Geometric(double p) {
    PEREACH_CHECK_GT(p, 0.0);
    return std::geometric_distribution<uint64_t>(p)(engine_) + 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

  /// Derives an independent child generator (for parallel workers).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pereach

#endif  // PEREACH_UTIL_RANDOM_H_
