#include "src/mapreduce/mapreduce.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"
#include "src/util/timer.h"

namespace pereach {

MapReduce::Result MapReduce::Run(const std::vector<KeyValue>& inputs,
                                 size_t num_mappers, size_t num_reducers,
                                 const MapFn& map_fn,
                                 const ReduceFn& reduce_fn) {
  PEREACH_CHECK_GE(num_mappers, 1u);
  PEREACH_CHECK_GE(num_reducers, 1u);

  Result result;
  result.stats.num_mappers = num_mappers;
  result.stats.num_reducers = num_reducers;
  StopWatch job_watch;

  // --- assign inputs to mappers.
  std::vector<std::vector<const KeyValue*>> mapper_inputs(num_mappers);
  std::vector<size_t> mapper_input_bytes(num_mappers, 0);
  for (const KeyValue& kv : inputs) {
    const size_t m = kv.key % num_mappers;
    mapper_inputs[m].push_back(&kv);
    mapper_input_bytes[m] += kv.value.size() + sizeof(kv.key);
  }
  for (size_t m = 0; m < num_mappers; ++m) {
    result.stats.map_input_bytes += mapper_input_bytes[m];
    result.stats.max_mapper_input =
        std::max(result.stats.max_mapper_input, mapper_input_bytes[m]);
  }

  // --- map phase (parallel over logical mappers).
  std::vector<std::vector<KeyValue>> mapper_outputs(num_mappers);
  std::vector<double> mapper_ms(num_mappers, 0.0);
  pool_->ParallelFor(num_mappers, [&](size_t m) {
    StopWatch watch;
    for (const KeyValue* kv : mapper_inputs[m]) {
      std::vector<KeyValue> out = map_fn(*kv);
      mapper_outputs[m].insert(mapper_outputs[m].end(),
                               std::make_move_iterator(out.begin()),
                               std::make_move_iterator(out.end()));
    }
    mapper_ms[m] = watch.ElapsedMs();
  });
  for (double ms : mapper_ms) {
    result.stats.map_wall_ms = std::max(result.stats.map_wall_ms, ms);
  }

  // --- shuffle: hash-partition intermediate records by key.
  // std::map keeps key groups deterministic across runs.
  std::vector<std::map<uint64_t, std::vector<std::vector<uint8_t>>>> buckets(
      num_reducers);
  std::vector<size_t> reducer_input_bytes(num_reducers, 0);
  for (size_t m = 0; m < num_mappers; ++m) {
    for (KeyValue& kv : mapper_outputs[m]) {
      const size_t r = kv.key % num_reducers;
      reducer_input_bytes[r] += kv.value.size() + sizeof(kv.key);
      buckets[r][kv.key].push_back(std::move(kv.value));
    }
  }
  for (size_t r = 0; r < num_reducers; ++r) {
    result.stats.shuffle_bytes += reducer_input_bytes[r];
    result.stats.max_reducer_input =
        std::max(result.stats.max_reducer_input, reducer_input_bytes[r]);
  }

  // --- reduce phase (parallel over reducers).
  std::vector<std::vector<KeyValue>> reducer_outputs(num_reducers);
  std::vector<double> reducer_ms(num_reducers, 0.0);
  pool_->ParallelFor(num_reducers, [&](size_t r) {
    StopWatch watch;
    for (const auto& [key, values] : buckets[r]) {
      std::vector<KeyValue> out = reduce_fn(key, values);
      reducer_outputs[r].insert(reducer_outputs[r].end(),
                                std::make_move_iterator(out.begin()),
                                std::make_move_iterator(out.end()));
    }
    reducer_ms[r] = watch.ElapsedMs();
  });
  for (double ms : reducer_ms) {
    result.stats.reduce_wall_ms = std::max(result.stats.reduce_wall_ms, ms);
  }

  for (std::vector<KeyValue>& out : reducer_outputs) {
    result.output.insert(result.output.end(),
                         std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
  }
  result.stats.wall_ms = job_watch.ElapsedMs();
  return result;
}

}  // namespace pereach
