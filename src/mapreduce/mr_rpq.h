#ifndef PEREACH_MAPREDUCE_MR_RPQ_H_
#define PEREACH_MAPREDUCE_MR_RPQ_H_

#include "src/core/answer.h"
#include "src/fragment/fragmentation.h"
#include "src/mapreduce/mapreduce.h"
#include "src/net/metrics.h"
#include "src/regex/query_automaton.h"

namespace pereach {

/// Algorithm MRdRPQ (paper §6, Fig. 10): regular reachability as one
/// MapReduce job. preMRPQ partitions the graph into K fragments and sends
/// ⟨i, (F_i, G_q)⟩ to mapper i; mapRPQ runs localEvalr as the Map function;
/// reduceRPQ collects every rvset at a single reducer and runs evalDGr.
///
/// The returned metrics report the job: traffic = fragment shipping plus
/// shuffle (the Map-phase distribution cost the paper observes dominating),
/// modeled time derived from the ECC of [1] under `net`, and one visit per
/// mapper plus one for the reducer.
struct MapReduceRpqResult {
  QueryAnswer answer;
  MapReduceStats stats;
};

/// Runs MRdRPQ over a pre-built fragmentation (parG's output; the paper
/// uses Hadoop's default chunking, built here with ChunkPartitioner).
MapReduceRpqResult MapReduceRpq(const Fragmentation& fragmentation, NodeId s,
                                NodeId t, const QueryAutomaton& automaton,
                                const NetworkModel& net, ThreadPool* pool);

/// Convenience wrapper: chunk-partitions `g` into `num_mappers` fragments
/// (procedure preMRPQ) and runs the job.
MapReduceRpqResult MapReduceRpqOnGraph(const Graph& g, NodeId s, NodeId t,
                                       const QueryAutomaton& automaton,
                                       size_t num_mappers,
                                       const NetworkModel& net,
                                       ThreadPool* pool);

/// The §6 adaptation to plain reachability ("special cases of regular
/// reachability queries"): localEval as the Map function, evalDG as Reduce.
MapReduceRpqResult MapReduceReach(const Fragmentation& fragmentation, NodeId s,
                                  NodeId t, const NetworkModel& net,
                                  ThreadPool* pool);

/// The §6 adaptation to bounded reachability: localEvald as Map, evalDGd as
/// Reduce. answer.distance carries the exact distance when <= bound.
MapReduceRpqResult MapReduceBoundedReach(const Fragmentation& fragmentation,
                                         NodeId s, NodeId t, uint32_t bound,
                                         const NetworkModel& net,
                                         ThreadPool* pool);

}  // namespace pereach

#endif  // PEREACH_MAPREDUCE_MR_RPQ_H_
