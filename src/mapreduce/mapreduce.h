#ifndef PEREACH_MAPREDUCE_MAPREDUCE_H_
#define PEREACH_MAPREDUCE_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/thread_pool.h"

namespace pereach {

/// One key/value record of the mini MapReduce framework (§6). Values are
/// opaque byte strings; keys route records to mappers and reducers.
struct KeyValue {
  uint64_t key = 0;
  std::vector<uint8_t> value;
};

/// Cost accounting for one MapReduce job, following Afrati & Ullman [1]:
/// the elapsed communication cost (ECC) is the maximum, over process paths
/// coordinator -> mapper -> reducer, of the input bytes shipped to the nodes
/// on the path. In-memory Map/Reduce compute is reported separately.
struct MapReduceStats {
  size_t num_mappers = 0;
  size_t num_reducers = 0;
  size_t map_input_bytes = 0;     // total shipped to mappers
  size_t shuffle_bytes = 0;       // total shipped mappers -> reducers
  size_t max_mapper_input = 0;    // max over mappers
  size_t max_reducer_input = 0;   // max over reducers
  double map_wall_ms = 0.0;       // max mapper compute
  double reduce_wall_ms = 0.0;    // max reducer compute
  double wall_ms = 0.0;           // whole job, wall clock

  /// ECC in bytes: max mapper input + max reducer input along one path.
  size_t EccBytes() const { return max_mapper_input + max_reducer_input; }
  size_t TotalTrafficBytes() const { return map_input_bytes + shuffle_bytes; }
};

/// Minimal multi-threaded MapReduce runner: inputs are pre-keyed to mappers
/// (key = mapper id), the Map function emits intermediate records, which are
/// hash-partitioned by key across reducers and reduced per key group.
class MapReduce {
 public:
  using MapFn =
      std::function<std::vector<KeyValue>(const KeyValue& input)>;
  /// Reduce sees all values of one key, already concatenated in arrival
  /// order (deterministic: mapper id, then emission order).
  using ReduceFn = std::function<std::vector<KeyValue>(
      uint64_t key, const std::vector<std::vector<uint8_t>>& values)>;

  struct Result {
    std::vector<KeyValue> output;
    MapReduceStats stats;
  };

  /// `pool` may be shared with other components; must outlive the call.
  explicit MapReduce(ThreadPool* pool) : pool_(pool) {}

  /// Runs one job. `num_mappers` logical mappers execute on the pool;
  /// records with input key i go to mapper i % num_mappers.
  Result Run(const std::vector<KeyValue>& inputs, size_t num_mappers,
             size_t num_reducers, const MapFn& map_fn,
             const ReduceFn& reduce_fn);

 private:
  ThreadPool* pool_;
};

}  // namespace pereach

#endif  // PEREACH_MAPREDUCE_MAPREDUCE_H_
