#include "src/mapreduce/mr_rpq.h"

#include "src/bes/bes.h"
#include "src/bes/distance_system.h"
#include "src/core/local_eval.h"
#include "src/fragment/partitioner.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace pereach {

MapReduceRpqResult MapReduceRpq(const Fragmentation& fragmentation, NodeId s,
                                NodeId t, const QueryAutomaton& automaton,
                                const NetworkModel& net, ThreadPool* pool) {
  const size_t k = fragmentation.num_fragments();

  // preMRPQ: one ⟨i, (F_i, G_q)⟩ input pair per mapper.
  std::vector<KeyValue> inputs(k);
  for (SiteId i = 0; i < k; ++i) {
    inputs[i].key = i;
    Encoder enc;
    enc.PutVarint(s);
    enc.PutVarint(t);
    automaton.Serialize(&enc);
    fragmentation.fragment(i).Serialize(&enc);
    inputs[i].value = enc.TakeBuffer();
  }

  // mapRPQ: localEvalr as the Map function; all pairs share key 1 so they
  // meet at a single reducer (Fig. 10).
  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    Decoder dec(input.value);
    const NodeId qs = static_cast<NodeId>(dec.GetVarint());
    const NodeId qt = static_cast<NodeId>(dec.GetVarint());
    const QueryAutomaton a = QueryAutomaton::Deserialize(&dec);
    const Fragment f = Fragment::Deserialize(&dec);
    Encoder enc;
    LocalEvalRegular(f, a, qs, qt).Serialize(&enc);
    std::vector<KeyValue> out(1);
    out[0].key = 1;
    out[0].value = enc.TakeBuffer();
    return out;
  };

  // reduceRPQ: assemble RVset, run evalDGr, emit ⟨0, ans⟩.
  const MapReduce::ReduceFn reduce_fn =
      [s](uint64_t key, const std::vector<std::vector<uint8_t>>& values) {
        PEREACH_CHECK_EQ(key, 1u);
        BooleanEquationSystem bes;
        for (const std::vector<uint8_t>& rvset : values) {
          Decoder dec(rvset);
          RegularPartialAnswer::Deserialize(&dec).AddToBes(&bes);
        }
        const bool ans =
            bes.Evaluate(PackNodeState(s, QueryAutomaton::kStart));
        std::vector<KeyValue> out(1);
        out[0].key = 0;
        out[0].value.push_back(ans ? 1 : 0);
        return out;
      };

  MapReduce mr(pool);
  MapReduce::Result run = mr.Run(inputs, k, /*num_reducers=*/1, map_fn,
                                 reduce_fn);
  PEREACH_CHECK_EQ(run.output.size(), 1u);

  MapReduceRpqResult result;
  result.stats = run.stats;
  result.answer.reachable = run.output[0].value[0] != 0;
  result.answer.metrics.wall_ms = run.stats.wall_ms;
  result.answer.metrics.traffic_bytes = run.stats.TotalTrafficBytes();
  result.answer.metrics.messages = 2 * k + 1;  // k inputs, k rvsets, 1 output
  result.answer.metrics.rounds = 2;            // map round + reduce round
  // Modeled response: ship inputs, run the slowest mapper, ship its rvset to
  // the reducer, reduce — the ECC critical path of [1] plus compute.
  result.answer.metrics.modeled_ms =
      2 * net.latency_ms + net.TransferMs(run.stats.EccBytes()) +
      run.stats.map_wall_ms + run.stats.reduce_wall_ms;
  result.answer.metrics.site_visits.assign(k, 1);
  return result;
}

MapReduceRpqResult MapReduceRpqOnGraph(const Graph& g, NodeId s, NodeId t,
                                       const QueryAutomaton& automaton,
                                       size_t num_mappers,
                                       const NetworkModel& net,
                                       ThreadPool* pool) {
  Rng rng(0);  // chunking is deterministic; rng is unused by ChunkPartitioner
  const std::vector<SiteId> partition =
      ChunkPartitioner().Partition(g, num_mappers, &rng);
  const Fragmentation fragmentation =
      Fragmentation::Build(g, partition, num_mappers);
  return MapReduceRpq(fragmentation, s, t, automaton, net, pool);
}

namespace {

/// Shared scaffolding of the reach/dist adaptations: ship ⟨i, (query, F_i)⟩
/// to the mappers, collect every rvset at one reducer, read one verdict.
MapReduceRpqResult RunAdaptedJob(const Fragmentation& fragmentation,
                                 const Encoder& query_header,
                                 const NetworkModel& net, ThreadPool* pool,
                                 const MapReduce::MapFn& map_fn,
                                 const MapReduce::ReduceFn& reduce_fn) {
  const size_t k = fragmentation.num_fragments();
  std::vector<KeyValue> inputs(k);
  for (SiteId i = 0; i < k; ++i) {
    inputs[i].key = i;
    Encoder enc;
    for (uint8_t b : query_header.buffer()) enc.PutU8(b);
    fragmentation.fragment(i).Serialize(&enc);
    inputs[i].value = enc.TakeBuffer();
  }

  MapReduce mr(pool);
  MapReduce::Result run =
      mr.Run(inputs, k, /*num_reducers=*/1, map_fn, reduce_fn);
  PEREACH_CHECK_EQ(run.output.size(), 1u);

  MapReduceRpqResult result;
  result.stats = run.stats;
  Decoder out(run.output[0].value);
  result.answer.reachable = out.GetU8() != 0;
  const uint64_t dist = out.GetVarint();
  result.answer.distance = dist == 0 ? kInfWeight : dist - 1;
  result.answer.metrics.wall_ms = run.stats.wall_ms;
  result.answer.metrics.traffic_bytes = run.stats.TotalTrafficBytes();
  result.answer.metrics.messages = 2 * k + 1;
  result.answer.metrics.rounds = 2;
  result.answer.metrics.modeled_ms =
      2 * net.latency_ms + net.TransferMs(run.stats.EccBytes()) +
      run.stats.map_wall_ms + run.stats.reduce_wall_ms;
  result.answer.metrics.site_visits.assign(k, 1);
  return result;
}

std::vector<KeyValue> EmitOne(std::vector<uint8_t> value) {
  std::vector<KeyValue> out(1);
  out[0].key = 1;
  out[0].value = std::move(value);
  return out;
}

std::vector<KeyValue> EmitVerdict(bool reachable, uint64_t distance) {
  std::vector<KeyValue> out(1);
  out[0].key = 0;
  Encoder enc;
  enc.PutU8(reachable ? 1 : 0);
  enc.PutVarint(distance == kInfWeight ? 0 : distance + 1);
  out[0].value = enc.TakeBuffer();
  return out;
}

}  // namespace

MapReduceRpqResult MapReduceReach(const Fragmentation& fragmentation, NodeId s,
                                  NodeId t, const NetworkModel& net,
                                  ThreadPool* pool) {
  Encoder header;
  header.PutVarint(s);
  header.PutVarint(t);

  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    Decoder dec(input.value);
    const NodeId qs = static_cast<NodeId>(dec.GetVarint());
    const NodeId qt = static_cast<NodeId>(dec.GetVarint());
    const Fragment f = Fragment::Deserialize(&dec);
    Encoder enc;
    LocalEvalReach(f, qs, qt).Serialize(&enc);
    return EmitOne(enc.TakeBuffer());
  };
  const MapReduce::ReduceFn reduce_fn =
      [s](uint64_t, const std::vector<std::vector<uint8_t>>& values) {
        BooleanEquationSystem bes;
        for (const std::vector<uint8_t>& rvset : values) {
          Decoder dec(rvset);
          ReachPartialAnswer::Deserialize(&dec).AddToBes(&bes);
        }
        return EmitVerdict(bes.Evaluate(s), kInfWeight);
      };
  MapReduceRpqResult result =
      RunAdaptedJob(fragmentation, header, net, pool, map_fn, reduce_fn);
  if (s == t) result.answer.reachable = true;
  return result;
}

MapReduceRpqResult MapReduceBoundedReach(const Fragmentation& fragmentation,
                                         NodeId s, NodeId t, uint32_t bound,
                                         const NetworkModel& net,
                                         ThreadPool* pool) {
  Encoder header;
  header.PutVarint(s);
  header.PutVarint(t);
  header.PutVarint(bound);

  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    Decoder dec(input.value);
    const NodeId qs = static_cast<NodeId>(dec.GetVarint());
    const NodeId qt = static_cast<NodeId>(dec.GetVarint());
    const uint32_t qbound = static_cast<uint32_t>(dec.GetVarint());
    const Fragment f = Fragment::Deserialize(&dec);
    Encoder enc;
    LocalEvalDist(f, qs, qt, qbound).Serialize(&enc);
    return EmitOne(enc.TakeBuffer());
  };
  const MapReduce::ReduceFn reduce_fn =
      [s, bound](uint64_t, const std::vector<std::vector<uint8_t>>& values) {
        DistanceEquationSystem system;
        for (const std::vector<uint8_t>& rvset : values) {
          Decoder dec(rvset);
          DistPartialAnswer::Deserialize(&dec).AddToSystem(&system);
        }
        const uint64_t dist = system.Evaluate(s);
        return EmitVerdict(dist != kInfWeight && dist <= bound, dist);
      };
  MapReduceRpqResult result =
      RunAdaptedJob(fragmentation, header, net, pool, map_fn, reduce_fn);
  if (s == t) {
    result.answer.reachable = true;
    result.answer.distance = 0;
  }
  return result;
}

}  // namespace pereach
