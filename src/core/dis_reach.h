#ifndef PEREACH_CORE_DIS_REACH_H_
#define PEREACH_CORE_DIS_REACH_H_

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"

namespace pereach {

/// Algorithm disReach (paper §3, Fig. 3): evaluates q_r(s, t) over a
/// fragmentation via partial evaluation.
///  1. The coordinator posts (s, t) to every site — one visit each.
///  2. Every site runs localEval in parallel, producing Boolean equations.
///  3. The coordinator assembles the equation system and solves it with the
///     dependency-graph procedure evalDG (Fig. 4).
/// Guarantees (Theorem 1): one visit per site, O(|V_f|^2) traffic,
/// O(|V_f| |F_m|) time. Metrics are recorded in answer.metrics.
///
/// Thin single-query wrapper over PartialEvalEngine (src/engine); use the
/// engine directly to batch queries and keep per-fragment caches warm.
QueryAnswer DisReach(Cluster* cluster, const ReachQuery& query);

}  // namespace pereach

#endif  // PEREACH_CORE_DIS_REACH_H_
