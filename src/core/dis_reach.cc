#include "src/core/dis_reach.h"

#include "src/engine/partial_eval_engine.h"

namespace pereach {

QueryAnswer DisReach(Cluster* cluster, const ReachQuery& query) {
  PartialEvalEngine engine(cluster);
  return engine.Evaluate(Query::Reach(query.source, query.target));
}

}  // namespace pereach
