#include "src/core/dis_reach.h"

#include "src/bes/bes.h"
#include "src/core/local_eval.h"
#include "src/util/timer.h"

namespace pereach {

QueryAnswer DisReach(Cluster* cluster, const ReachQuery& query) {
  const NodeId s = query.source;
  const NodeId t = query.target;

  QueryAnswer answer;
  cluster->BeginQuery();
  if (s == t) {
    answer.reachable = true;
    answer.distance = 0;
    cluster->EndQuery();
    answer.metrics = cluster->metrics();
    return answer;
  }

  // Step 1+2: post q_r(s, t) to all sites; each runs localEval in parallel.
  Encoder query_enc;
  query_enc.PutVarint(s);
  query_enc.PutVarint(t);
  const std::vector<std::vector<uint8_t>> replies = cluster->RoundAll(
      query_enc.size(), [s, t](const Fragment& f) {
        Encoder enc;
        LocalEvalReach(f, s, t).Serialize(&enc);
        return enc.TakeBuffer();
      });

  // Step 3: assemble RVset and solve it (evalDG).
  StopWatch assemble_watch;
  BooleanEquationSystem bes;
  for (const std::vector<uint8_t>& reply : replies) {
    Decoder dec(reply);
    ReachPartialAnswer::Deserialize(&dec).AddToBes(&bes);
  }
  answer.reachable = bes.Evaluate(s);
  cluster->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());

  cluster->EndQuery();
  answer.metrics = cluster->metrics();
  return answer;
}

}  // namespace pereach
