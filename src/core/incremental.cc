#include "src/core/incremental.h"

#include <algorithm>
#include <deque>

#include "src/graph/algorithms.h"

namespace pereach {

IncrementalReachIndex::IncrementalReachIndex(const Graph& graph,
                                             std::vector<SiteId> partition,
                                             size_t num_sites)
    : partition_(std::move(partition)), num_sites_(num_sites) {
  labels_ = graph.labels();
  edges_.reserve(graph.NumEdges());
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) edges_.emplace_back(u, v);
  }
  cached_equations_.resize(num_sites_);
  cache_valid_.assign(num_sites_, false);
  RebuildStructure();
}

void IncrementalReachIndex::RebuildStructure() {
  GraphBuilder b;
  b.AddNodes(labels_.size());
  for (NodeId v = 0; v < labels_.size(); ++v) b.SetLabel(v, labels_[v]);
  for (const auto& [u, v] : edges_) b.AddEdge(u, v);
  const Graph g = std::move(b).Build();
  fragmentation_ = Fragmentation::Build(g, partition_, num_sites_);
}

void IncrementalReachIndex::EnsureFragmentEquations(SiteId site) {
  if (cache_valid_[site]) return;
  const Fragment& f = fragmentation_.fragment(site);

  std::vector<NodeId> targets;  // all virtual nodes, local ids
  targets.reserve(f.num_virtual());
  for (NodeId v = static_cast<NodeId>(f.num_local());
       v < f.local_graph().NumNodes(); ++v) {
    targets.push_back(v);
  }

  std::vector<BoolEquation>& eqs = cached_equations_[site];
  eqs.clear();
  eqs.reserve(f.in_nodes().size());
  if (targets.empty()) {
    // No virtual nodes: every in-node's cached equation is empty (only the
    // query-dependent t-side pass can make it true).
    for (const NodeId in : f.in_nodes()) {
      eqs.push_back(BoolEquation{f.ToGlobal(in), false, {}});
    }
  } else {
    // Same-SCC in-nodes have identical reachable sets, so the full row is
    // stored once per group representative and every other member caches a
    // one-dep alias X_member = X_rep (the BES merges duplicate definitions
    // disjunctively, and the alias is sound: member and rep are mutually
    // reachable inside the fragment). This is localEval's equation-merging
    // optimization applied to the incremental cache — on fragments with a
    // giant SCC it shrinks the cache from |I| dense rows to one.
    std::vector<std::vector<uint32_t>> rows;  // group -> target indices
    const std::vector<uint32_t> groups = ForEachReachableTargetGrouped(
        f.local_graph(), f.in_nodes(), targets, 4096,
        [&rows](uint32_t group, uint32_t ti) {
          if (group >= rows.size()) rows.resize(group + 1);
          rows[group].push_back(ti);
        });
    size_t num_groups = 0;
    for (const uint32_t g : groups) {
      num_groups = std::max<size_t>(num_groups, g + 1);
    }
    rows.resize(num_groups);
    std::vector<NodeId> rep(num_groups, kInvalidNode);
    for (size_t i = 0; i < f.in_nodes().size(); ++i) {
      const uint32_t g = groups[i];
      const NodeId global = f.ToGlobal(f.in_nodes()[i]);
      if (rep[g] == kInvalidNode) {
        rep[g] = global;
        BoolEquation eq{global, false, {}};
        eq.deps.reserve(rows[g].size());
        for (const uint32_t ti : rows[g]) {
          eq.deps.push_back(
              f.ToGlobal(static_cast<NodeId>(f.num_local() + ti)));
        }
        eqs.push_back(std::move(eq));
      } else {
        eqs.push_back(BoolEquation{global, false, {rep[g]}});
      }
    }
  }
  cache_valid_[site] = true;
  ++recompute_count_;
}

bool IncrementalReachIndex::Reach(NodeId s, NodeId t) {
  if (s == t) return true;

  BooleanEquationSystem bes;
  for (SiteId site = 0; site < num_sites_; ++site) {
    EnsureFragmentEquations(site);
    for (const BoolEquation& eq : cached_equations_[site]) bes.Add(eq);
  }

  // Query-dependent piece 1: which in-nodes of t's fragment reach t locally
  // (one reverse BFS; virtual nodes are sinks, so local paths suffice).
  const SiteId t_site = partition_[t];
  {
    const Fragment& f = fragmentation_.fragment(t_site);
    const Graph& g = f.local_graph();
    const NodeId lt = f.ToLocal(t);
    std::vector<bool> seen(g.NumNodes(), false);
    std::deque<NodeId> queue{lt};
    seen[lt] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NodeId u : g.InNeighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    for (NodeId in : f.in_nodes()) {
      if (seen[in]) bes.Add(BoolEquation{f.ToGlobal(in), true, {}});
    }
  }

  // Query-dependent piece 2: s's own equation (one forward BFS).
  const SiteId s_site = partition_[s];
  {
    const Fragment& f = fragmentation_.fragment(s_site);
    const Graph& g = f.local_graph();
    const NodeId ls = f.ToLocal(s);
    BoolEquation s_eq{s, false, {}};
    std::vector<bool> seen(g.NumNodes(), false);
    std::deque<NodeId> queue{ls};
    seen[ls] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      if (f.ToGlobal(v) == t) s_eq.has_true = true;
      if (f.IsVirtual(v)) continue;  // virtual nodes are frontier variables
      for (NodeId w : g.OutNeighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          if (f.IsVirtual(w)) s_eq.deps.push_back(f.ToGlobal(w));
          queue.push_back(w);
        }
      }
    }
    bes.Add(std::move(s_eq));
  }

  return bes.Evaluate(s);
}

void IncrementalReachIndex::AddEdge(NodeId u, NodeId v) {
  const std::pair<NodeId, NodeId> edge(u, v);
  AddEdges(std::span<const std::pair<NodeId, NodeId>>(&edge, 1));
}

void IncrementalReachIndex::AddEdges(
    std::span<const std::pair<NodeId, NodeId>> edges) {
  if (edges.empty()) return;
  // Fragments whose caches an edge of this batch invalidates: u's fragment
  // always (its reachable sets may grow); v's when the edge crosses
  // fragments (a new cross edge makes v an in-node with a fresh equation).
  std::vector<bool> touched(num_sites_, false);
  for (const auto& [u, v] : edges) {
    PEREACH_CHECK_LT(u, labels_.size());
    PEREACH_CHECK_LT(v, labels_.size());
    edges_.emplace_back(u, v);
    touched[partition_[u]] = true;
    if (partition_[u] != partition_[v]) touched[partition_[v]] = true;
  }
  for (SiteId site = 0; site < num_sites_; ++site) {
    if (!touched[site]) continue;
    cache_valid_[site] = false;
    if (update_listener_) update_listener_(site);
  }
  // One structural rebuild per batch — the writer path's dominant cost is
  // amortized over every edge of the update.
  RebuildStructure();
  ++epoch_;
}

}  // namespace pereach
