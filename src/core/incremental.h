#ifndef PEREACH_CORE_INCREMENTAL_H_
#define PEREACH_CORE_INCREMENTAL_H_

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "src/bes/bes.h"
#include "src/fragment/fragmentation.h"
#include "src/graph/graph.h"
#include "src/util/common.h"

namespace pereach {

/// Incremental partial evaluation for reachability — the paper's §8 future
/// work ("combine partial evaluation and incremental computation").
///
/// Observation: the equations localEval ships are almost query-independent —
/// X_v = ⋁ X_w over the virtual nodes w reachable from in-node v inside its
/// fragment. Only the has_true disjuncts depend on t, and only the X_s
/// equation depends on s. This class caches the query-independent boundary
/// equations per fragment and answers queries by adding the two
/// query-dependent pieces:
///  - one forward pass in s's fragment (s's own equation), and
///  - one backward pass in t's fragment (which in-nodes reach t locally).
///
/// On AddEdge(u, v), only the fragments whose cached equations can change
/// are recomputed: u's fragment always (its reachable sets grow); v's
/// fragment only through the structural rebuild (a new cross edge makes v an
/// in-node with a fresh equation). All other fragments' caches survive.
class IncrementalReachIndex {
 public:
  IncrementalReachIndex(const Graph& graph, std::vector<SiteId> partition,
                        size_t num_sites);

  /// q_r(s, t) against the current graph.
  bool Reach(NodeId s, NodeId t);

  /// Inserts edge (u, v) and invalidates only the affected caches. One call
  /// is one update epoch.
  void AddEdge(NodeId u, NodeId v);

  /// Inserts a batch of edges as ONE update epoch: affected caches are
  /// invalidated per edge (listener fires once per distinct touched
  /// fragment) but the structural rebuild — the expensive part of the writer
  /// path — runs once for the whole batch. This is the amortized writer path
  /// the QueryServer's update queue uses.
  void AddEdges(std::span<const std::pair<NodeId, NodeId>> edges);

  /// Number of update epochs applied (non-empty AddEdge / AddEdges calls).
  /// QueryServer's writer path checks its gate's committed epoch against
  /// this after every update, so the serving snapshot counter and the
  /// index's applied-update count cannot drift apart.
  uint64_t epoch() const { return epoch_; }

  /// Registers a callback invoked with every fragment id whose cached
  /// query-independent structure an AddEdge invalidates (u's fragment, and
  /// v's when the edge crosses fragments). External caches keyed by fragment
  /// — e.g. a PartialEvalEngine's FragmentContextCache over this index's
  /// fragmentation — hook here so all update flows share one invalidation
  /// path.
  void SetUpdateListener(std::function<void(SiteId)> listener) {
    update_listener_ = std::move(listener);
  }

  /// Number of per-fragment equation recomputations performed so far —
  /// the ablation benches compare this against card(F) * updates.
  size_t recompute_count() const { return recompute_count_; }

  const Fragmentation& fragmentation() const { return fragmentation_; }

 private:
  void RebuildStructure();
  void EnsureFragmentEquations(SiteId site);

  // Mutable edge list + labels; fragmentation is rebuilt from these.
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<LabelId> labels_;
  std::vector<SiteId> partition_;
  size_t num_sites_;

  Fragmentation fragmentation_;
  // Cached query-independent equations per fragment: for each in-node, the
  // global ids of the virtual nodes it reaches locally.
  std::vector<std::vector<BoolEquation>> cached_equations_;
  std::vector<bool> cache_valid_;
  size_t recompute_count_ = 0;
  uint64_t epoch_ = 0;
  std::function<void(SiteId)> update_listener_;
};

}  // namespace pereach

#endif  // PEREACH_CORE_INCREMENTAL_H_
