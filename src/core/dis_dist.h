#ifndef PEREACH_CORE_DIS_DIST_H_
#define PEREACH_CORE_DIS_DIST_H_

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"

namespace pereach {

/// Algorithm disDist (paper §4): evaluates q_br(s, t, l) via partial
/// evaluation. Sites run localEvald producing min-plus equations with
/// locally measured distances; the coordinator runs Dijkstra over the
/// weighted dependency graph (evalDGd). Same guarantees as disReach
/// (Theorem 2). answer.distance is the exact distance when <= l.
///
/// Thin single-query wrapper over PartialEvalEngine (src/engine).
QueryAnswer DisDist(Cluster* cluster, const BoundedReachQuery& query);

}  // namespace pereach

#endif  // PEREACH_CORE_DIS_DIST_H_
