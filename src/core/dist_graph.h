#ifndef PEREACH_CORE_DIST_GRAPH_H_
#define PEREACH_CORE_DIST_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/fragment/fragmentation.h"
#include "src/net/cluster.h"
#include "src/regex/query_automaton.h"

namespace pereach {

/// Which evaluation strategy answers a query.
enum class Engine {
  kPartialEval,     // the paper's disReach / disDist / disRPQ
  kShipAll,         // disReachn / disDistn / disRPQn
  kMessagePassing,  // disReachm (reachability only)
  kSuciu,           // disRPQd (regular reachability only)
  kMapReduce,       // MRdRPQ (regular; reachability via the wildcard regex)
};

/// Human-readable engine name as used in the paper ("disReach", ...).
std::string EngineName(Engine engine);

/// The library's front door: a graph plus its fragmentation plus a simulated
/// cluster, answering the paper's three query classes with any engine.
///
///   DistributedGraph dg(std::move(graph), partition, /*num_sites=*/4);
///   QueryAnswer a = dg.Reach(s, t);
///   QueryAnswer b = dg.BoundedReach(s, t, 6);
///   QueryAnswer c = dg.RegularReach(s, t, regex);
///
/// Every answer carries the run's metrics (visits per site, traffic, wall
/// and modeled response time).
class DistributedGraph {
 public:
  struct Options {
    NetworkModel network;
    size_t num_threads = 0;  // 0 = hardware concurrency
  };

  /// Takes ownership of `graph`; `partition[v]` is the site of node v.
  DistributedGraph(Graph graph, const std::vector<SiteId>& partition,
                   size_t num_sites, const Options& options);

  /// Same, with default Options.
  DistributedGraph(Graph graph, const std::vector<SiteId>& partition,
                   size_t num_sites);

  /// q_r(s, t).
  QueryAnswer Reach(NodeId s, NodeId t, Engine engine = Engine::kPartialEval);

  /// q_br(s, t, l).
  QueryAnswer BoundedReach(NodeId s, NodeId t, uint32_t bound,
                           Engine engine = Engine::kPartialEval);

  /// q_rr(s, t, R).
  QueryAnswer RegularReach(NodeId s, NodeId t, const Regex& regex,
                           Engine engine = Engine::kPartialEval);

  /// q_rr with a pre-built automaton.
  QueryAnswer RegularReachAutomaton(NodeId s, NodeId t,
                                    const QueryAutomaton& automaton,
                                    Engine engine = Engine::kPartialEval);

  const Graph& graph() const { return graph_; }
  const Fragmentation& fragmentation() const { return fragmentation_; }
  Cluster* cluster() { return cluster_.get(); }

 private:
  PEREACH_DISALLOW_COPY_AND_ASSIGN(DistributedGraph);

  Graph graph_;
  Fragmentation fragmentation_;
  NetworkModel network_;
  std::unique_ptr<Cluster> cluster_;
};

}  // namespace pereach

#endif  // PEREACH_CORE_DIST_GRAPH_H_
