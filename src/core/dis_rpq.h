#ifndef PEREACH_CORE_DIS_RPQ_H_
#define PEREACH_CORE_DIS_RPQ_H_

#include "src/core/answer.h"
#include "src/core/query.h"
#include "src/net/cluster.h"
#include "src/regex/query_automaton.h"

namespace pereach {

/// Algorithm disRPQ (paper §5): evaluates q_rr(s, t, R) via partial
/// evaluation. The coordinator builds the query automaton G_q(R) once and
/// broadcasts it; each site runs localEvalr producing vectors of Boolean
/// formulas over (node, state) variables; the coordinator assembles the
/// dependency graph over those variables and checks whether (s, u_s)
/// reaches a true formula (evalDGr). Guarantees (Theorem 3): one visit per
/// site, O(|R|^2 |V_f|^2) traffic, O(|F_m||R|^2 + |R|^2|V_f|^2) time.
///
/// Thin single-query wrapper over PartialEvalEngine (src/engine).
QueryAnswer DisRpq(Cluster* cluster, const RegularReachQuery& query);

/// Variant taking a pre-built automaton (used by benches that sweep the
/// automaton complexity directly).
QueryAnswer DisRpqAutomaton(Cluster* cluster, NodeId s, NodeId t,
                            const QueryAutomaton& automaton);

}  // namespace pereach

#endif  // PEREACH_CORE_DIS_RPQ_H_
