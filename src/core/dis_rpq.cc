#include "src/core/dis_rpq.h"

#include "src/engine/partial_eval_engine.h"

namespace pereach {

QueryAnswer DisRpq(Cluster* cluster, const RegularReachQuery& query) {
  return DisRpqAutomaton(cluster, query.source, query.target,
                         QueryAutomaton::FromRegex(query.regex).value());
}

QueryAnswer DisRpqAutomaton(Cluster* cluster, NodeId s, NodeId t,
                            const QueryAutomaton& automaton) {
  PartialEvalEngine engine(cluster);
  return engine.Evaluate(Query::Rpq(s, t, automaton));
}

}  // namespace pereach
