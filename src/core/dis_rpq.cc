#include "src/core/dis_rpq.h"

#include "src/bes/bes.h"
#include "src/core/local_eval.h"
#include "src/util/timer.h"

namespace pereach {

QueryAnswer DisRpq(Cluster* cluster, const RegularReachQuery& query) {
  const QueryAutomaton automaton = QueryAutomaton::FromRegex(query.regex);
  return DisRpqAutomaton(cluster, query.source, query.target, automaton);
}

QueryAnswer DisRpqAutomaton(Cluster* cluster, NodeId s, NodeId t,
                            const QueryAutomaton& automaton) {
  QueryAnswer answer;
  cluster->BeginQuery();

  // Step 1+2: broadcast G_q(R) (plus s, t) to all sites; each runs
  // localEvalr in parallel.
  Encoder query_enc;
  query_enc.PutVarint(s);
  query_enc.PutVarint(t);
  automaton.Serialize(&query_enc);
  const std::vector<std::vector<uint8_t>> replies = cluster->RoundAll(
      query_enc.size(), [s, t, &automaton](const Fragment& f) {
        Encoder enc;
        LocalEvalRegular(f, automaton, s, t).Serialize(&enc);
        return enc.TakeBuffer();
      });

  // Step 3: assemble the (node, state) equation system and run evalDGr.
  StopWatch assemble_watch;
  BooleanEquationSystem bes;
  for (const std::vector<uint8_t>& reply : replies) {
    Decoder dec(reply);
    RegularPartialAnswer::Deserialize(&dec).AddToBes(&bes);
  }
  answer.reachable = bes.Evaluate(PackNodeState(s, QueryAutomaton::kStart));
  cluster->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());

  cluster->EndQuery();
  answer.metrics = cluster->metrics();
  return answer;
}

}  // namespace pereach
