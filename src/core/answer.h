#ifndef PEREACH_CORE_ANSWER_H_
#define PEREACH_CORE_ANSWER_H_

#include "src/bes/distance_system.h"
#include "src/net/metrics.h"

namespace pereach {

/// Result of one distributed query run: the Boolean answer, the exact
/// distance for bounded queries (kInfWeight when unreachable or not
/// applicable), and the run's cost metrics.
struct QueryAnswer {
  bool reachable = false;
  uint64_t distance = kInfWeight;
  RunMetrics metrics;
};

}  // namespace pereach

#endif  // PEREACH_CORE_ANSWER_H_
