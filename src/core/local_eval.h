#ifndef PEREACH_CORE_LOCAL_EVAL_H_
#define PEREACH_CORE_LOCAL_EVAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/bes/bes.h"
#include "src/bes/distance_system.h"
#include "src/fragment/fragment.h"
#include "src/graph/algorithms.h"
#include "src/regex/query_automaton.h"
#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// Packs a (node, automaton state) pair into one BES variable key — the
/// X_(v,u) variables of §5. States fit in 6 bits (kMaxStates == 64).
inline uint64_t PackNodeState(NodeId node, uint32_t state) {
  return (static_cast<uint64_t>(node) << 6) | state;
}

/// Key of an auxiliary variable Y_aux introduced by the DAG-form encoding
/// (one per local SCC); disjoint from node and (node, state) keys via the
/// top bit.
inline uint64_t PackAuxVar(SiteId site, uint32_t aux) {
  return (uint64_t{1} << 63) | (static_cast<uint64_t>(site) << 32) | aux;
}

/// How a fragment encodes its Boolean equations.
///
/// kClosure is the paper's literal form (Fig. 3): one equation per in-node
/// SCC whose dependencies are *all* virtual nodes it can reach — worst case
/// Θ(|I|·|O|) bits, the O(|V_f|²) of Theorem 1.
///
/// kDag ships the fragment's SCC condensation restricted to the components
/// that both are reachable from an in-node and can reach the boundary, with
/// one auxiliary variable per component: X_v = Y_comp(v), Y_c = (terms at c)
/// ∨ (Y of successor components). Same least fixpoint, size O(|F_i|) but in
/// practice far below the closure on dense graphs.
///
/// kAuto estimates both sizes and picks the smaller per fragment — the
/// shipped bytes never exceed the closure form, so Theorem 1's traffic bound
/// is preserved while the typical case matches the paper's measured ~10% of
/// |G|.
enum class EquationForm { kAuto, kClosure, kDag };

// ---------------------------------------------------------------------------
// Reachability (paper §3, procedure localEval of Fig. 3)
// ---------------------------------------------------------------------------

/// Partial answer F_i.rvset of one fragment. Two kinds of equations:
///  - node equations (is_aux == false): X_v for an in-node v (global id),
///  - aux equations (is_aux == true): Y_c for a local SCC (DAG form only).
/// Dependencies are term indices into oset_globals (frontier variables;
/// a term equal to t is folded into has_true) plus aux ids. Aliases bind
/// in-nodes to representatives (another in-node, or an aux variable).
struct ReachPartialAnswer {
  struct Equation {
    bool is_aux = false;
    NodeId var = kInvalidNode;   // global node id, or aux id if is_aux
    bool has_true = false;
    std::vector<uint32_t> deps;      // ascending indices into oset_globals
    std::vector<uint32_t> aux_deps;  // ascending aux ids
  };
  struct Alias {
    bool rep_is_aux = false;
    NodeId var = kInvalidNode;  // global node id of the aliased in-node
    NodeId rep = kInvalidNode;  // global node id or aux id

    friend bool operator==(const Alias&, const Alias&) = default;
  };

  SiteId site = 0;
  std::vector<NodeId> oset_globals;
  std::vector<Equation> equations;
  std::vector<Alias> aliases;

  /// Wire format: site, oset table, aliases, then per-equation sparse delta
  /// list or dense |oset|-bit row, whichever is smaller (the paper's
  /// bit-vector encoding is the dense case).
  void Serialize(Encoder* enc) const;
  static ReachPartialAnswer Deserialize(Decoder* dec);

  /// Split wire format for batched replies: a site serving k queries ships
  /// the query-independent shared part (site id + oset table) once and one
  /// body (aliases + equations referencing that shared table) per query.
  /// The `universe` / `frontier` overloads work against an external shared
  /// table so batch paths never copy it per query; a DeserializeBody'd
  /// answer has an empty oset_globals and must AddToBes with the external
  /// table.
  void SerializeShared(Encoder* enc) const;
  void SerializeBody(size_t universe, Encoder* enc) const;
  void SerializeBody(Encoder* enc) const {
    SerializeBody(oset_globals.size(), enc);
  }
  static ReachPartialAnswer DeserializeBody(Decoder* dec, SiteId site);

  /// Converts equations and aliases to BES equations (aux variables are
  /// namespaced by `site`). Reserves capacity up front. `frontier` is the
  /// table dep indices resolve against (oset_globals, or a batch's shared
  /// table).
  void AddToBes(const std::vector<NodeId>& frontier,
                BooleanEquationSystem* bes) const;
  void AddToBes(BooleanEquationSystem* bes) const {
    AddToBes(oset_globals, bes);
  }
};

/// Runs localEval on one fragment: for every in-node (and s if local),
/// a formula over the virtual nodes it reaches inside F_i and whether it
/// reaches t locally. One SCC condensation; O(|F_i| · |oset|/64) worst case
/// (closure form), O(|F_i|) for the DAG form.
///
/// `cond`, when non-null, must be the condensation of f.local_graph(); the
/// per-query Tarjan pass is skipped. Engines cache it per fragment
/// (FragmentContext) because it is query-independent.
ReachPartialAnswer LocalEvalReach(const Fragment& f, NodeId s, NodeId t,
                                  EquationForm form = EquationForm::kAuto,
                                  const Condensation* cond = nullptr);

// ---------------------------------------------------------------------------
// Bounded reachability (paper §4, procedure localEvald)
// ---------------------------------------------------------------------------

/// Partial answer for q_br: min-plus equations X_v = min(base,
/// min_j(dist + X_w)) with locally measured distances <= bound. Distances
/// differ across an SCC's members, so no equation merging applies here.
struct DistPartialAnswer {
  struct Equation {
    NodeId var_global = kInvalidNode;
    uint64_t base = kInfWeight;  // local dist(v, t), if t locally reachable
    std::vector<std::pair<uint32_t, uint32_t>> terms;  // (oset index, dist)
  };

  std::vector<NodeId> oset_globals;
  std::vector<Equation> equations;

  void Serialize(Encoder* enc) const;
  static DistPartialAnswer Deserialize(Decoder* dec);
  void AddToSystem(DistanceEquationSystem* system) const;
};

/// Runs localEvald: bounded multi-source distance propagation,
/// O(bound * |F_i| * |oset|/64).
DistPartialAnswer LocalEvalDist(const Fragment& f, NodeId s, NodeId t,
                                uint32_t bound);

// ---------------------------------------------------------------------------
// Regular reachability (paper §5, procedure localEvalr of Fig. 7)
// ---------------------------------------------------------------------------

/// Partial answer for q_rr: per (in-node, compatible automaton state) a
/// Boolean formula over frontier variables X_(w,u') — w a virtual node, u'
/// a state label-compatible with w. var_table lists the frontier variables;
/// equations reference them by index. The closure/DAG adaptivity works on
/// the *product graph* F_i × G_q.
struct RegularPartialAnswer {
  struct Equation {
    bool is_aux = false;
    NodeId var_global = kInvalidNode;  // or aux id when is_aux
    uint8_t state = 0;                 // unused when is_aux
    bool has_true = false;             // reaches (t, u_t) inside the fragment
    std::vector<uint32_t> deps;        // ascending indices into var_table
    std::vector<uint32_t> aux_deps;    // ascending aux ids
  };

  /// X_(node, state) = rep, where rep is X_(rep node, rep state) or Y_aux.
  struct Alias {
    bool rep_is_aux = false;
    NodeId var_global = kInvalidNode;
    uint8_t state = 0;
    NodeId rep_global = kInvalidNode;  // or aux id
    uint8_t rep_state = 0;

    friend bool operator==(const Alias&, const Alias&) = default;
  };

  SiteId site = 0;
  std::vector<std::pair<NodeId, uint8_t>> var_table;
  std::vector<Equation> equations;
  std::vector<Alias> aliases;

  void Serialize(Encoder* enc) const;
  static RegularPartialAnswer Deserialize(Decoder* dec);
  void AddToBes(BooleanEquationSystem* bes) const;
};

/// Query-independent index of a fragment's nodes grouped by label. Lets
/// localEvalr compute one automaton compatibility mask per distinct label
/// instead of one hash probe per node; cached per fragment by engines.
struct LabelIndex {
  std::vector<std::pair<LabelId, std::vector<NodeId>>> groups;

  static LabelIndex Build(const Graph& g);
};

/// Runs localEvalr: builds the label-compatible product of the fragment
/// with G_q and encodes its boundary equation system. Equivalent to the
/// paper's memoized cmpRvec but correct on cyclic fragments (see DESIGN.md
/// §1.4); O(|F_i| |R|^2) plus the closure bitset factor when that form wins.
///
/// `labels`, when non-null, must be LabelIndex::Build(f.local_graph()) —
/// the product-graph condensation is query-dependent and cannot be cached,
/// but the label grouping can.
RegularPartialAnswer LocalEvalRegular(const Fragment& f,
                                      const QueryAutomaton& automaton,
                                      NodeId s, NodeId t,
                                      EquationForm form = EquationForm::kAuto,
                                      const LabelIndex* labels = nullptr);

}  // namespace pereach

#endif  // PEREACH_CORE_LOCAL_EVAL_H_
