#include "src/core/dist_graph.h"

#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/baselines/dis_rpq_suciu.h"
#include "src/core/dis_dist.h"
#include "src/core/dis_reach.h"
#include "src/core/dis_rpq.h"
#include "src/mapreduce/mr_rpq.h"

namespace pereach {

std::string EngineName(Engine engine) {
  switch (engine) {
    case Engine::kPartialEval:
      return "partial-eval";
    case Engine::kShipAll:
      return "ship-all";
    case Engine::kMessagePassing:
      return "message-passing";
    case Engine::kSuciu:
      return "suciu";
    case Engine::kMapReduce:
      return "mapreduce";
  }
  return "unknown";
}

DistributedGraph::DistributedGraph(Graph graph,
                                   const std::vector<SiteId>& partition,
                                   size_t num_sites)
    : DistributedGraph(std::move(graph), partition, num_sites, Options()) {}

DistributedGraph::DistributedGraph(Graph graph,
                                   const std::vector<SiteId>& partition,
                                   size_t num_sites, const Options& options)
    : graph_(std::move(graph)),
      fragmentation_(Fragmentation::Build(graph_, partition, num_sites)),
      network_(options.network) {
  cluster_ = std::make_unique<Cluster>(&fragmentation_, network_,
                                       options.num_threads);
}

QueryAnswer DistributedGraph::Reach(NodeId s, NodeId t, Engine engine) {
  const ReachQuery query{s, t};
  switch (engine) {
    case Engine::kPartialEval:
      return DisReach(cluster_.get(), query);
    case Engine::kShipAll:
      return DisReachNaive(cluster_.get(), query);
    case Engine::kMessagePassing:
      return DisReachMp(cluster_.get(), query);
    case Engine::kSuciu:
      // Reachability is the regular query `_*` (§2.2 remark).
      return RegularReachAutomaton(s, t, QueryAutomaton::WildcardStar(),
                                   engine);
    case Engine::kMapReduce:
      // The §6 adaptation: localEval as Map, evalDG as Reduce.
      return MapReduceReach(fragmentation_, s, t, network_, cluster_->pool())
          .answer;
  }
  PEREACH_CHECK(false);
  return QueryAnswer();
}

QueryAnswer DistributedGraph::BoundedReach(NodeId s, NodeId t, uint32_t bound,
                                           Engine engine) {
  const BoundedReachQuery query{s, t, bound};
  switch (engine) {
    case Engine::kPartialEval:
      return DisDist(cluster_.get(), query);
    case Engine::kShipAll:
      return DisDistNaive(cluster_.get(), query);
    case Engine::kMapReduce:
      return MapReduceBoundedReach(fragmentation_, s, t, bound, network_,
                                   cluster_->pool())
          .answer;
    default:
      PEREACH_CHECK(false);  // not evaluated by the paper for q_br
      return QueryAnswer();
  }
}

QueryAnswer DistributedGraph::RegularReach(NodeId s, NodeId t,
                                           const Regex& regex, Engine engine) {
  return RegularReachAutomaton(s, t, QueryAutomaton::FromRegex(regex).value(),
                               engine);
}

QueryAnswer DistributedGraph::RegularReachAutomaton(
    NodeId s, NodeId t, const QueryAutomaton& automaton, Engine engine) {
  switch (engine) {
    case Engine::kPartialEval:
      return DisRpqAutomaton(cluster_.get(), s, t, automaton);
    case Engine::kShipAll:
      return DisRpqNaive(cluster_.get(), s, t, automaton);
    case Engine::kSuciu:
      return DisRpqSuciu(cluster_.get(), s, t, automaton);
    case Engine::kMapReduce:
      return MapReduceRpq(fragmentation_, s, t, automaton, network_,
                          cluster_->pool())
          .answer;
    case Engine::kMessagePassing:
      PEREACH_CHECK(false);  // not studied in [21], per the paper
      return QueryAnswer();
  }
  PEREACH_CHECK(false);
  return QueryAnswer();
}

}  // namespace pereach
