#include "src/core/dis_dist.h"

#include "src/engine/partial_eval_engine.h"

namespace pereach {

QueryAnswer DisDist(Cluster* cluster, const BoundedReachQuery& query) {
  PartialEvalEngine engine(cluster);
  return engine.Evaluate(
      Query::Dist(query.source, query.target, query.bound));
}

}  // namespace pereach
