#include "src/core/dis_dist.h"

#include "src/bes/distance_system.h"
#include "src/core/local_eval.h"
#include "src/util/timer.h"

namespace pereach {

QueryAnswer DisDist(Cluster* cluster, const BoundedReachQuery& query) {
  const NodeId s = query.source;
  const NodeId t = query.target;

  QueryAnswer answer;
  cluster->BeginQuery();
  if (s == t) {
    answer.reachable = true;
    answer.distance = 0;
    cluster->EndQuery();
    answer.metrics = cluster->metrics();
    return answer;
  }

  Encoder query_enc;
  query_enc.PutVarint(s);
  query_enc.PutVarint(t);
  query_enc.PutVarint(query.bound);
  const uint32_t bound = query.bound;
  const std::vector<std::vector<uint8_t>> replies = cluster->RoundAll(
      query_enc.size(), [s, t, bound](const Fragment& f) {
        Encoder enc;
        LocalEvalDist(f, s, t, bound).Serialize(&enc);
        return enc.TakeBuffer();
      });

  StopWatch assemble_watch;
  DistanceEquationSystem system;
  for (const std::vector<uint8_t>& reply : replies) {
    Decoder dec(reply);
    DistPartialAnswer::Deserialize(&dec).AddToSystem(&system);
  }
  answer.distance = system.Evaluate(s);
  answer.reachable =
      answer.distance != kInfWeight && answer.distance <= query.bound;
  cluster->AddCoordinatorWorkMs(assemble_watch.ElapsedMs());

  cluster->EndQuery();
  answer.metrics = cluster->metrics();
  return answer;
}

}  // namespace pereach
