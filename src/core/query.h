#ifndef PEREACH_CORE_QUERY_H_
#define PEREACH_CORE_QUERY_H_

#include <cstdint>

#include "src/regex/regex.h"
#include "src/util/common.h"

namespace pereach {

/// q_r(s, t): is there a path from s to t? (paper §2.2)
struct ReachQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
};

/// q_br(s, t, l): is dist(s, t) <= l?
struct BoundedReachQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  uint32_t bound = 0;
};

/// q_rr(s, t, R): is there a path from s to t whose interior node labels
/// spell a word of L(R)?
struct RegularReachQuery {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  Regex regex = Regex::Epsilon();
};

}  // namespace pereach

#endif  // PEREACH_CORE_QUERY_H_
