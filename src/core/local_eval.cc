#include "src/core/local_eval.h"

#include <algorithm>

#include "src/graph/algorithms.h"
#include "src/util/bitset.h"

namespace pereach {

namespace {

constexpr size_t kReachBlockBits = 4096;
constexpr size_t kDistBlockBits = 1024;

/// Encodes an ascending index set over a universe of `universe` elements:
/// sparse delta-varints or a dense bit row, whichever is smaller. Tag byte
/// distinguishes the two.
void EncodeIndexSet(const std::vector<uint32_t>& indices, size_t universe,
                    Encoder* enc) {
  // Rough cost: sparse ~1.3 bytes/index, dense universe/8 bytes.
  const bool dense = universe > 0 && indices.size() * 10 >= universe;
  enc->PutU8(dense ? 1 : 0);
  if (dense) {
    Bitset row(universe);
    for (uint32_t i : indices) row.Set(i);
    enc->PutBitset(row);
  } else {
    enc->PutVarint(indices.size());
    uint32_t prev = 0;
    for (uint32_t i : indices) {
      enc->PutVarint(i - prev);
      prev = i;
    }
  }
}

std::vector<uint32_t> DecodeIndexSet(Decoder* dec) {
  std::vector<uint32_t> indices;
  if (dec->GetU8() != 0) {
    const Bitset row = dec->GetBitset();
    row.ForEachSetBit(
        [&indices](size_t i) { indices.push_back(static_cast<uint32_t>(i)); });
  } else {
    const size_t n = dec->GetCount();
    indices.reserve(n);
    uint32_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      indices.push_back(prev);
    }
  }
  return indices;
}

void EncodeDeltaList(const std::vector<uint32_t>& values, Encoder* enc) {
  enc->PutVarint(values.size());
  uint32_t prev = 0;
  for (uint32_t v : values) {
    enc->PutVarint(v - prev);
    prev = v;
  }
}

std::vector<uint32_t> DecodeDeltaList(Decoder* dec) {
  std::vector<uint32_t> values(dec->GetCount());
  uint32_t prev = 0;
  for (uint32_t& v : values) {
    prev += static_cast<uint32_t>(dec->GetVarint());
    v = prev;
  }
  return values;
}

/// iset of Fig. 3 lines 1-2: the fragment's in-nodes plus s if stored here.
std::vector<NodeId> CollectISet(const Fragment& f, NodeId s) {
  std::vector<NodeId> iset = f.in_nodes();
  if (f.Contains(s)) {
    const NodeId local_s = f.ToLocal(s);
    if (!std::binary_search(iset.begin(), iset.end(), local_s)) {
      iset.insert(std::lower_bound(iset.begin(), iset.end(), local_s), local_s);
    }
  }
  return iset;
}

/// oset of Fig. 3 lines 1+3: the fragment's virtual nodes plus t if stored
/// here (t may also be one of the virtual nodes; dependencies on it are
/// folded into has_true by the callers).
std::vector<NodeId> CollectOSet(const Fragment& f, NodeId t) {
  std::vector<NodeId> oset;
  oset.reserve(f.num_virtual() + 1);
  if (f.Contains(t)) oset.push_back(f.ToLocal(t));
  for (NodeId v = static_cast<NodeId>(f.num_local());
       v < f.local_graph().NumNodes(); ++v) {
    oset.push_back(v);
  }
  return oset;
}

// ---------------------------------------------------------------------------
// Generic boundary equation system (shared by reach and regular local eval)
// ---------------------------------------------------------------------------

/// One equation of the abstract system. Non-aux equations are keyed by an
/// index into `sources`; aux equations by a dense aux id (DAG form only).
struct GenericEquation {
  bool is_aux = false;
  uint32_t var = 0;  // source index or aux id
  bool has_true = false;
  std::vector<uint32_t> deps;      // target indices (true targets folded)
  std::vector<uint32_t> aux_deps;  // aux ids
};

/// Binds source `source_index` to a representative equation.
struct GenericAlias {
  bool rep_is_aux = false;
  uint32_t source_index = 0;
  uint32_t rep = 0;  // source index or aux id
};

struct GenericSystem {
  std::vector<GenericEquation> equations;
  std::vector<GenericAlias> aliases;
  bool used_dag = false;
};

/// Computes the boundary equation system of `g` for the given sources and
/// frontier targets (target_is_true[i] marks literal-true terminals, e.g.
/// the query target). Chooses between the closure form (Fig. 3) and the
/// condensation DAG form with aux variables; see EquationForm.
GenericSystem ComputeBoundarySystem(const Graph& g,
                                    const std::vector<NodeId>& sources,
                                    const std::vector<NodeId>& targets,
                                    const std::vector<bool>& target_is_true,
                                    EquationForm form,
                                    const Condensation* precomputed = nullptr) {
  GenericSystem sys;
  if (sources.empty()) return sys;

  Condensation local_cond;
  if (precomputed == nullptr) {
    local_cond = Condense(g);
    precomputed = &local_cond;
  }
  const Condensation& cond = *precomputed;
  const size_t k = cond.scc.num_components;

  // Terminal targets per component (virtual nodes are sinks, so their
  // components are singletons; a local t may share a component with others).
  std::vector<std::vector<uint32_t>> comp_terms(k);
  for (uint32_t ti = 0; ti < targets.size(); ++ti) {
    comp_terms[cond.scc.component_of[targets[ti]]].push_back(ti);
  }

  // reach_boundary[c]: c can reach a terminal. Ascending component order is
  // reverse topological, so successors (smaller ids) are already final.
  std::vector<bool> reach_boundary(k, false);
  for (uint32_t c = 0; c < k; ++c) {
    bool rb = !comp_terms[c].empty();
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1] && !rb; ++e) {
      rb = reach_boundary[cond.targets[e]];
    }
    reach_boundary[c] = rb;
  }

  // relevant[c]: c is reachable from a source. Descending order visits every
  // predecessor before its successors (edges go to smaller ids).
  std::vector<bool> relevant(k, false);
  size_t num_source_comps = 0;
  for (NodeId src : sources) {
    const uint32_t c = cond.scc.component_of[src];
    if (!relevant[c]) {
      relevant[c] = true;
      ++num_source_comps;
    }
  }
  // (count source comps before the sweep spreads the flag)
  for (uint32_t c = static_cast<uint32_t>(k); c-- > 0;) {
    if (!relevant[c]) continue;
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
      relevant[cond.targets[e]] = true;
    }
  }

  // Size estimates (bytes, coarse): pick the smaller encoding.
  size_t dag_items = sources.size();
  for (uint32_t c = 0; c < k; ++c) {
    if (!(relevant[c] && reach_boundary[c])) continue;
    dag_items += 1 + comp_terms[c].size();
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
      const uint32_t succ = cond.targets[e];
      dag_items += (relevant[succ] && reach_boundary[succ]) ? 1 : 0;
    }
  }
  const size_t dag_cost = 6 * dag_items;
  const size_t closure_cost =
      num_source_comps * ((targets.size() + 7) / 8 + 6);
  // Closure also pays Θ(groups × targets) materialization time that the
  // byte estimate does not see, so it must win by 2x to be chosen.
  const bool use_dag =
      form == EquationForm::kDag ||
      (form == EquationForm::kAuto && dag_cost < 2 * closure_cost);

  if (use_dag) {
    sys.used_dag = true;
    // Dense aux ids over the kept components, ascending by component id so
    // aux dependencies (successors == smaller components) stay ascending.
    constexpr uint32_t kNoAux = std::numeric_limits<uint32_t>::max();
    std::vector<uint32_t> aux_of(k, kNoAux);
    for (uint32_t c = 0; c < k; ++c) {
      if (!(relevant[c] && reach_boundary[c])) continue;
      const uint32_t aux = aux_of[c] =
          static_cast<uint32_t>(sys.equations.size());
      GenericEquation eq;
      eq.is_aux = true;
      eq.var = aux;
      for (uint32_t ti : comp_terms[c]) {
        if (target_is_true[ti]) {
          eq.has_true = true;
        } else {
          eq.deps.push_back(ti);
        }
      }
      for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
        const uint32_t succ_aux = aux_of[cond.targets[e]];
        if (succ_aux != kNoAux) eq.aux_deps.push_back(succ_aux);
      }
      std::sort(eq.aux_deps.begin(), eq.aux_deps.end());
      eq.aux_deps.erase(std::unique(eq.aux_deps.begin(), eq.aux_deps.end()),
                        eq.aux_deps.end());
      sys.equations.push_back(std::move(eq));
    }
    for (uint32_t si = 0; si < sources.size(); ++si) {
      const uint32_t aux = aux_of[cond.scc.component_of[sources[si]]];
      if (aux != kNoAux) {
        sys.aliases.push_back({/*rep_is_aux=*/true, si, aux});
      } else {
        // Source reaches no terminal: an (empty == false) equation.
        GenericEquation eq;
        eq.var = si;
        sys.equations.push_back(std::move(eq));
      }
    }
    return sys;
  }

  // Closure form: one equation per source component (grouped propagation),
  // aliases for the other sources of each component.
  std::vector<uint32_t> group_of = ForEachReachableTargetGrouped(
      cond, sources, targets, kReachBlockBits,
      [&sys, &target_is_true](uint32_t group, uint32_t ti) {
        if (sys.equations.size() <= group) sys.equations.resize(group + 1);
        GenericEquation& eq = sys.equations[group];
        if (target_is_true[ti]) {
          eq.has_true = true;
        } else {
          eq.deps.push_back(ti);
        }
      });
  std::vector<uint32_t> group_rep;
  for (uint32_t si = 0; si < sources.size(); ++si) {
    const uint32_t g_id = group_of[si];
    if (sys.equations.size() <= g_id) sys.equations.resize(g_id + 1);
    if (g_id >= group_rep.size()) {
      PEREACH_CHECK_EQ(g_id, group_rep.size());  // groups appear in order
      group_rep.push_back(si);
      sys.equations[g_id].var = si;
    } else {
      sys.aliases.push_back({/*rep_is_aux=*/false, si, group_rep[g_id]});
    }
  }
  return sys;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

void ReachPartialAnswer::SerializeShared(Encoder* enc) const {
  enc->PutVarint(site);
  enc->PutVarint(oset_globals.size());
  for (NodeId g : oset_globals) enc->PutVarint(g);
}

void ReachPartialAnswer::SerializeBody(size_t universe, Encoder* enc) const {
  enc->PutVarint(aliases.size());
  for (const Alias& a : aliases) {
    enc->PutU8(a.rep_is_aux ? 1 : 0);
    enc->PutVarint(a.var);
    enc->PutVarint(a.rep);
  }
  enc->PutVarint(equations.size());
  for (const Equation& eq : equations) {
    enc->PutU8(static_cast<uint8_t>((eq.has_true ? 1 : 0) |
                                    (eq.is_aux ? 2 : 0)));
    enc->PutVarint(eq.var);
    EncodeIndexSet(eq.deps, universe, enc);
    EncodeDeltaList(eq.aux_deps, enc);
  }
}

void ReachPartialAnswer::Serialize(Encoder* enc) const {
  SerializeShared(enc);
  SerializeBody(enc);
}

ReachPartialAnswer ReachPartialAnswer::DeserializeBody(Decoder* dec,
                                                       SiteId site) {
  ReachPartialAnswer pa;
  pa.site = site;
  pa.aliases.resize(dec->GetCount());
  for (Alias& a : pa.aliases) {
    a.rep_is_aux = dec->GetU8() != 0;
    a.var = static_cast<NodeId>(dec->GetVarint());
    a.rep = static_cast<NodeId>(dec->GetVarint());
  }
  pa.equations.resize(dec->GetCount());
  for (Equation& eq : pa.equations) {
    const uint8_t flags = dec->GetU8();
    eq.has_true = (flags & 1) != 0;
    eq.is_aux = (flags & 2) != 0;
    eq.var = static_cast<NodeId>(dec->GetVarint());
    eq.deps = DecodeIndexSet(dec);
    eq.aux_deps = DecodeDeltaList(dec);
  }
  return pa;
}

ReachPartialAnswer ReachPartialAnswer::Deserialize(Decoder* dec) {
  const SiteId site = static_cast<SiteId>(dec->GetVarint());
  std::vector<NodeId> oset_globals(dec->GetCount());
  for (NodeId& g : oset_globals) g = static_cast<NodeId>(dec->GetVarint());
  ReachPartialAnswer pa = DeserializeBody(dec, site);
  pa.oset_globals = std::move(oset_globals);
  return pa;
}

void ReachPartialAnswer::AddToBes(const std::vector<NodeId>& frontier,
                                  BooleanEquationSystem* bes) const {
  bes->Reserve(equations.size() + aliases.size());
  for (const Equation& eq : equations) {
    BoolEquation out;
    out.var = eq.is_aux ? PackAuxVar(site, eq.var) : eq.var;
    out.has_true = eq.has_true;
    out.deps.reserve(eq.deps.size() + eq.aux_deps.size());
    for (uint32_t i : eq.deps) {
      PEREACH_CHECK(i < frontier.size() && "dep index outside frontier table");
      out.deps.push_back(frontier[i]);
    }
    for (uint32_t a : eq.aux_deps) out.deps.push_back(PackAuxVar(site, a));
    bes->Add(std::move(out));
  }
  for (const Alias& a : aliases) {
    bes->Add(BoolEquation{
        a.var, false, {a.rep_is_aux ? PackAuxVar(site, a.rep) : a.rep}});
  }
}

ReachPartialAnswer LocalEvalReach(const Fragment& f, NodeId s, NodeId t,
                                  EquationForm form, const Condensation* cond) {
  const std::vector<NodeId> iset = CollectISet(f, s);
  const std::vector<NodeId> oset = CollectOSet(f, t);

  ReachPartialAnswer pa;
  pa.site = f.site();
  pa.oset_globals.reserve(oset.size());
  std::vector<bool> target_is_true(oset.size(), false);
  for (size_t i = 0; i < oset.size(); ++i) {
    const NodeId global = f.ToGlobal(oset[i]);
    pa.oset_globals.push_back(global);
    target_is_true[i] = global == t;
  }

  GenericSystem sys = ComputeBoundarySystem(f.local_graph(), iset, oset,
                                            target_is_true, form, cond);
  pa.equations.reserve(sys.equations.size());
  for (GenericEquation& eq : sys.equations) {
    ReachPartialAnswer::Equation out;
    out.is_aux = eq.is_aux;
    out.var = eq.is_aux ? eq.var : f.ToGlobal(iset[eq.var]);
    out.has_true = eq.has_true;
    out.deps = std::move(eq.deps);
    out.aux_deps = std::move(eq.aux_deps);
    pa.equations.push_back(std::move(out));
  }
  pa.aliases.reserve(sys.aliases.size());
  for (const GenericAlias& a : sys.aliases) {
    ReachPartialAnswer::Alias out;
    out.rep_is_aux = a.rep_is_aux;
    out.var = f.ToGlobal(iset[a.source_index]);
    out.rep = a.rep_is_aux ? a.rep : f.ToGlobal(iset[a.rep]);
    pa.aliases.push_back(out);
  }
  return pa;
}

// ---------------------------------------------------------------------------
// Bounded reachability
// ---------------------------------------------------------------------------

void DistPartialAnswer::Serialize(Encoder* enc) const {
  enc->PutVarint(oset_globals.size());
  for (NodeId g : oset_globals) enc->PutVarint(g);
  enc->PutVarint(equations.size());
  for (const Equation& eq : equations) {
    enc->PutVarint(eq.var_global);
    enc->PutVarint(eq.base == kInfWeight ? 0 : eq.base + 1);
    enc->PutVarint(eq.terms.size());
    uint32_t prev = 0;
    for (const auto& [index, dist] : eq.terms) {
      enc->PutVarint(index - prev);
      prev = index;
      enc->PutVarint(dist);
    }
  }
}

DistPartialAnswer DistPartialAnswer::Deserialize(Decoder* dec) {
  DistPartialAnswer pa;
  const size_t num_oset = dec->GetCount();
  pa.oset_globals.resize(num_oset);
  for (NodeId& g : pa.oset_globals) g = static_cast<NodeId>(dec->GetVarint());
  const size_t num_eq = dec->GetCount();
  pa.equations.resize(num_eq);
  for (Equation& eq : pa.equations) {
    eq.var_global = static_cast<NodeId>(dec->GetVarint());
    const uint64_t base = dec->GetVarint();
    eq.base = base == 0 ? kInfWeight : base - 1;
    const size_t num_terms = dec->GetCount(2);
    eq.terms.reserve(num_terms);
    uint32_t prev = 0;
    for (size_t i = 0; i < num_terms; ++i) {
      prev += static_cast<uint32_t>(dec->GetVarint());
      eq.terms.emplace_back(prev, static_cast<uint32_t>(dec->GetVarint()));
    }
  }
  return pa;
}

void DistPartialAnswer::AddToSystem(DistanceEquationSystem* system) const {
  for (const Equation& eq : equations) {
    DistEquation out;
    out.var = eq.var_global;
    out.base = eq.base;
    out.terms.reserve(eq.terms.size());
    for (const auto& [index, dist] : eq.terms) {
      out.terms.emplace_back(oset_globals[index], dist);
    }
    system->Add(std::move(out));
  }
}

DistPartialAnswer LocalEvalDist(const Fragment& f, NodeId s, NodeId t,
                                uint32_t bound) {
  const std::vector<NodeId> iset = CollectISet(f, s);
  const std::vector<NodeId> oset = CollectOSet(f, t);

  DistPartialAnswer pa;
  pa.oset_globals.reserve(oset.size());
  for (NodeId w : oset) pa.oset_globals.push_back(f.ToGlobal(w));

  pa.equations.resize(iset.size());
  for (size_t i = 0; i < iset.size(); ++i) {
    pa.equations[i].var_global = f.ToGlobal(iset[i]);
  }

  ForEachBoundedDistance(
      f.local_graph(), iset, oset, bound, kDistBlockBits,
      [&pa, t](uint32_t si, uint32_t ti, uint32_t dist) {
        DistPartialAnswer::Equation& eq = pa.equations[si];
        if (pa.oset_globals[ti] == t) {
          eq.base = std::min<uint64_t>(eq.base, dist);
        } else {
          eq.terms.emplace_back(ti, dist);
        }
      });
  // Emission is per BFS level, not per index; restore the ascending index
  // order the delta encoding in Serialize relies on.
  for (DistPartialAnswer::Equation& eq : pa.equations) {
    std::sort(eq.terms.begin(), eq.terms.end());
  }
  return pa;
}

// ---------------------------------------------------------------------------
// Regular reachability
// ---------------------------------------------------------------------------

void RegularPartialAnswer::Serialize(Encoder* enc) const {
  enc->PutVarint(site);
  enc->PutVarint(var_table.size());
  for (const auto& [node, state] : var_table) {
    enc->PutVarint(node);
    enc->PutU8(state);
  }
  enc->PutVarint(aliases.size());
  for (const Alias& a : aliases) {
    enc->PutU8(a.rep_is_aux ? 1 : 0);
    enc->PutVarint(a.var_global);
    enc->PutU8(a.state);
    enc->PutVarint(a.rep_global);
    enc->PutU8(a.rep_state);
  }
  enc->PutVarint(equations.size());
  for (const Equation& eq : equations) {
    enc->PutU8(static_cast<uint8_t>((eq.has_true ? 1 : 0) |
                                    (eq.is_aux ? 2 : 0)));
    enc->PutVarint(eq.var_global);
    enc->PutU8(eq.state);
    EncodeIndexSet(eq.deps, var_table.size(), enc);
    EncodeDeltaList(eq.aux_deps, enc);
  }
}

RegularPartialAnswer RegularPartialAnswer::Deserialize(Decoder* dec) {
  RegularPartialAnswer pa;
  pa.site = static_cast<SiteId>(dec->GetVarint());
  pa.var_table.resize(dec->GetCount(2));
  for (auto& [node, state] : pa.var_table) {
    node = static_cast<NodeId>(dec->GetVarint());
    state = dec->GetU8();
  }
  pa.aliases.resize(dec->GetCount(5));
  for (Alias& a : pa.aliases) {
    a.rep_is_aux = dec->GetU8() != 0;
    a.var_global = static_cast<NodeId>(dec->GetVarint());
    a.state = dec->GetU8();
    a.rep_global = static_cast<NodeId>(dec->GetVarint());
    a.rep_state = dec->GetU8();
  }
  pa.equations.resize(dec->GetCount(5));
  for (Equation& eq : pa.equations) {
    const uint8_t flags = dec->GetU8();
    eq.has_true = (flags & 1) != 0;
    eq.is_aux = (flags & 2) != 0;
    eq.var_global = static_cast<NodeId>(dec->GetVarint());
    eq.state = dec->GetU8();
    eq.deps = DecodeIndexSet(dec);
    eq.aux_deps = DecodeDeltaList(dec);
  }
  return pa;
}

void RegularPartialAnswer::AddToBes(BooleanEquationSystem* bes) const {
  bes->Reserve(equations.size() + aliases.size());
  for (const Equation& eq : equations) {
    BoolEquation out;
    out.var = eq.is_aux ? PackAuxVar(site, eq.var_global)
                        : PackNodeState(eq.var_global, eq.state);
    out.has_true = eq.has_true;
    out.deps.reserve(eq.deps.size() + eq.aux_deps.size());
    for (uint32_t i : eq.deps) {
      out.deps.push_back(
          PackNodeState(var_table[i].first, var_table[i].second));
    }
    for (uint32_t a : eq.aux_deps) out.deps.push_back(PackAuxVar(site, a));
    bes->Add(std::move(out));
  }
  for (const Alias& a : aliases) {
    bes->Add(BoolEquation{PackNodeState(a.var_global, a.state),
                          false,
                          {a.rep_is_aux
                               ? PackAuxVar(site, a.rep_global)
                               : PackNodeState(a.rep_global, a.rep_state)}});
  }
}

LabelIndex LabelIndex::Build(const Graph& g) {
  std::unordered_map<LabelId, std::vector<NodeId>> by_label;
  for (NodeId v = 0; v < g.NumNodes(); ++v) by_label[g.label(v)].push_back(v);
  LabelIndex index;
  index.groups.reserve(by_label.size());
  for (auto& [label, nodes] : by_label) {
    index.groups.emplace_back(label, std::move(nodes));
  }
  return index;
}

RegularPartialAnswer LocalEvalRegular(const Fragment& f,
                                      const QueryAutomaton& automaton,
                                      NodeId s, NodeId t, EquationForm form,
                                      const LabelIndex* labels) {
  const Graph& g = f.local_graph();
  const size_t n = g.NumNodes();

  // Compatibility mask per local node: interior states matching the node's
  // label, u_s for the node s itself, u_t for t itself (§5.1 semantics).
  // With a label index, one automaton probe per distinct label suffices.
  std::vector<uint64_t> compat(n);
  if (labels != nullptr) {
    for (const auto& [label, nodes] : labels->groups) {
      const uint64_t mask = automaton.StatesWithLabel(label);
      for (NodeId v : nodes) compat[v] = mask;
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      compat[v] = automaton.StatesWithLabel(g.label(v));
    }
  }
  if (f.ToLocal(s) != kInvalidNode) {
    compat[f.ToLocal(s)] |= uint64_t{1} << QueryAutomaton::kStart;
  }
  if (f.ToLocal(t) != kInvalidNode) {
    compat[f.ToLocal(t)] |= uint64_t{1} << QueryAutomaton::kFinal;
  }

  // Dense product node ids: pid(v, q) = offset[v] + rank of q in compat[v].
  std::vector<uint64_t> offset(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offset[v + 1] =
        offset[v] + static_cast<uint64_t>(__builtin_popcountll(compat[v]));
  }
  const uint64_t num_product = offset[n];
  PEREACH_CHECK_LT(num_product, uint64_t{1} << 32);
  const auto pid = [&](NodeId v, uint32_t q) -> NodeId {
    const uint64_t below = compat[v] & ((uint64_t{1} << q) - 1);
    return static_cast<NodeId>(
        offset[v] + static_cast<uint64_t>(__builtin_popcountll(below)));
  };

  // Materialize the product graph F_i x G_q restricted to compatible pairs.
  GraphBuilder pb;
  pb.AddNodes(static_cast<size_t>(num_product));
  for (NodeId v = 0; v < n; ++v) {
    if (compat[v] == 0) continue;
    for (NodeId w : g.OutNeighbors(v)) {
      if (compat[w] == 0) continue;
      uint64_t qs = compat[v];
      while (qs != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
        qs &= qs - 1;
        uint64_t succs = automaton.out_mask(q) & compat[w];
        const NodeId from = pid(v, q);
        while (succs != 0) {
          const uint32_t q2 = static_cast<uint32_t>(__builtin_ctzll(succs));
          succs &= succs - 1;
          pb.AddEdge(from, pid(w, q2));
        }
      }
    }
  }
  const Graph product = std::move(pb).Build();

  // Sources: (v, q) for every in-node v (plus s) and compatible state q.
  const std::vector<NodeId> iset = CollectISet(f, s);
  std::vector<NodeId> sources;
  std::vector<std::pair<NodeId, uint8_t>> source_info;  // (global, state)
  for (NodeId v : iset) {
    uint64_t qs = compat[v];
    const NodeId global = f.ToGlobal(v);
    while (qs != 0) {
      const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
      qs &= qs - 1;
      sources.push_back(pid(v, q));
      source_info.emplace_back(global, static_cast<uint8_t>(q));
    }
  }

  // Targets: frontier variables (virtual w, state q'), plus the accepting
  // product node (t, u_t) — reaching it makes a formula `true`.
  RegularPartialAnswer pa;
  pa.site = f.site();
  std::vector<NodeId> targets;
  std::vector<bool> target_is_true;
  std::vector<uint32_t> target_var;  // index into var_table (or unused)
  for (NodeId w = static_cast<NodeId>(f.num_local()); w < n; ++w) {
    uint64_t qs = compat[w];
    const NodeId global = f.ToGlobal(w);
    while (qs != 0) {
      const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(qs));
      qs &= qs - 1;
      targets.push_back(pid(w, q));
      if (global == t && q == QueryAutomaton::kFinal) {
        target_is_true.push_back(true);
        target_var.push_back(0);  // unused
      } else {
        target_is_true.push_back(false);
        target_var.push_back(static_cast<uint32_t>(pa.var_table.size()));
        pa.var_table.emplace_back(global, static_cast<uint8_t>(q));
      }
    }
  }
  if (f.Contains(t)) {
    const NodeId lt = f.ToLocal(t);
    if ((compat[lt] >> QueryAutomaton::kFinal) & 1) {
      targets.push_back(pid(lt, QueryAutomaton::kFinal));
      target_is_true.push_back(true);
      target_var.push_back(0);  // unused
    }
  }

  GenericSystem sys =
      ComputeBoundarySystem(product, sources, targets, target_is_true, form);

  pa.equations.reserve(sys.equations.size());
  for (GenericEquation& eq : sys.equations) {
    RegularPartialAnswer::Equation out;
    out.is_aux = eq.is_aux;
    if (eq.is_aux) {
      out.var_global = eq.var;
    } else {
      out.var_global = source_info[eq.var].first;
      out.state = source_info[eq.var].second;
    }
    out.has_true = eq.has_true;
    out.deps.reserve(eq.deps.size());
    for (uint32_t ti : eq.deps) out.deps.push_back(target_var[ti]);
    out.aux_deps = std::move(eq.aux_deps);
    pa.equations.push_back(std::move(out));
  }
  pa.aliases.reserve(sys.aliases.size());
  for (const GenericAlias& a : sys.aliases) {
    RegularPartialAnswer::Alias out;
    out.rep_is_aux = a.rep_is_aux;
    out.var_global = source_info[a.source_index].first;
    out.state = source_info[a.source_index].second;
    if (a.rep_is_aux) {
      out.rep_global = a.rep;
    } else {
      out.rep_global = source_info[a.rep].first;
      out.rep_state = source_info[a.rep].second;
    }
    pa.aliases.push_back(out);
  }
  return pa;
}

}  // namespace pereach
