#ifndef PEREACH_REGEX_REGEX_H_
#define PEREACH_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/common.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace pereach {

/// Regular expressions over node labels (paper §2.2):
///   R ::= ε | a | R R | R ∪ R | R*
/// Values are immutable trees shared by cheap copies.
class Regex {
 public:
  enum class Kind { kEpsilon, kSymbol, kConcat, kUnion, kStar };

  /// ε — matches only the empty label string.
  static Regex Epsilon();
  /// A single label.
  static Regex Symbol(LabelId label);
  /// Concatenation `ab`.
  static Regex Concat(Regex a, Regex b);
  /// Alternation `a | b` (the paper's R ∪ R).
  static Regex Union(Regex a, Regex b);
  /// Kleene closure `a*`.
  static Regex Star(Regex a);

  /// The wildcard `_` = a_1 ∪ ... ∪ a_m over all labels (paper §2.2 remark:
  /// reachability queries are the regular query `_*`).
  static Regex AnyOf(const std::vector<LabelId>& labels);

  /// Parses the textual syntax: identifiers are label names resolved against
  /// `dict`, `~` is ε, juxtaposition (whitespace) concatenates, `|` is union,
  /// `*` is Kleene star, parentheses group. Example: "(DB* | HR*)".
  static Result<Regex> Parse(const std::string& text,
                             const LabelDictionary& dict);

  /// Uniformly random regex with exactly `num_symbols` symbol occurrences
  /// over labels [0, num_labels); used by the query generators (§7).
  static Regex Random(size_t num_symbols, size_t num_labels, Rng* rng);

  Kind kind() const { return node_->kind; }
  LabelId symbol() const;
  /// Child accessors (cheap: the tree is shared, not cloned).
  Regex left() const;
  Regex right() const;

  /// Number of symbol occurrences (the "positions" of the Glushkov
  /// construction); |R| in the paper's bounds is linear in this.
  size_t NumSymbols() const;

  /// True iff the empty string is in L(R).
  bool MatchesEmpty() const;

  /// Direct recursive matcher — test oracle, exponential-free via simple
  /// marked-position NFA simulation in the implementation.
  bool Matches(const std::vector<LabelId>& word) const;

  /// Renders with label names from `dict`; Parse(ToString()) round-trips.
  std::string ToString(const LabelDictionary& dict) const;

 private:
  struct Node {
    Kind kind;
    LabelId symbol = kInvalidLabel;
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
  };

  explicit Regex(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;

  friend class QueryAutomaton;
};

}  // namespace pereach

#endif  // PEREACH_REGEX_REGEX_H_
