#include "src/regex/query_automaton.h"

#include <string>
#include <utility>

namespace pereach {

namespace {

/// Glushkov attributes of a subexpression over position bitmasks.
struct GlushkovInfo {
  bool nullable = false;
  uint64_t first = 0;
  uint64_t last = 0;
};

/// Computes nullable/first/last and fills follow[] (indexed by position).
/// Positions are assigned left-to-right starting at `*next_pos`.
GlushkovInfo Analyze(const Regex& r, std::vector<uint64_t>* follow,
                     std::vector<LabelId>* pos_label, uint32_t* next_pos) {
  GlushkovInfo info;
  switch (r.kind()) {
    case Regex::Kind::kEpsilon:
      info.nullable = true;
      return info;
    case Regex::Kind::kSymbol: {
      const uint32_t p = (*next_pos)++;
      PEREACH_CHECK_LT(p, 64u);
      pos_label->push_back(r.symbol());
      follow->push_back(0);
      info.nullable = false;
      info.first = info.last = uint64_t{1} << p;
      return info;
    }
    case Regex::Kind::kConcat: {
      const GlushkovInfo a = Analyze(r.left(), follow, pos_label, next_pos);
      const GlushkovInfo b = Analyze(r.right(), follow, pos_label, next_pos);
      info.nullable = a.nullable && b.nullable;
      info.first = a.first | (a.nullable ? b.first : 0);
      info.last = b.last | (b.nullable ? a.last : 0);
      uint64_t lasts = a.last;
      while (lasts != 0) {
        const int p = __builtin_ctzll(lasts);
        (*follow)[p] |= b.first;
        lasts &= lasts - 1;
      }
      return info;
    }
    case Regex::Kind::kUnion: {
      const GlushkovInfo a = Analyze(r.left(), follow, pos_label, next_pos);
      const GlushkovInfo b = Analyze(r.right(), follow, pos_label, next_pos);
      info.nullable = a.nullable || b.nullable;
      info.first = a.first | b.first;
      info.last = a.last | b.last;
      return info;
    }
    case Regex::Kind::kStar: {
      const GlushkovInfo a = Analyze(r.left(), follow, pos_label, next_pos);
      info.nullable = true;
      info.first = a.first;
      info.last = a.last;
      uint64_t lasts = a.last;
      while (lasts != 0) {
        const int p = __builtin_ctzll(lasts);
        (*follow)[p] |= a.first;
        lasts &= lasts - 1;
      }
      return info;
    }
  }
  return info;
}

}  // namespace

Result<QueryAutomaton> QueryAutomaton::FromRegex(const Regex& r) {
  const size_t num_positions = r.NumSymbols();
  if (num_positions + 2 > kMaxStates) {
    return Status::InvalidArgument(
        "regex has " + std::to_string(num_positions) +
        " symbol occurrences; the query automaton caps at " +
        std::to_string(kMaxStates - 2));
  }

  std::vector<uint64_t> follow;
  std::vector<LabelId> pos_label;
  uint32_t next_pos = 0;
  const GlushkovInfo info = Analyze(r, &follow, &pos_label, &next_pos);
  PEREACH_CHECK_EQ(static_cast<size_t>(next_pos), num_positions);

  QueryAutomaton a;
  // State layout: 0 = u_s, 1 = u_t, 2 + p = position p.
  a.labels_.assign(num_positions + 2, kInvalidLabel);
  a.out_.assign(num_positions + 2, 0);
  for (uint32_t p = 0; p < num_positions; ++p) a.labels_[2 + p] = pos_label[p];

  const auto shift_positions = [](uint64_t mask) { return mask << 2; };

  a.out_[kStart] = shift_positions(info.first);
  if (info.nullable) a.out_[kStart] |= uint64_t{1} << kFinal;
  for (uint32_t p = 0; p < num_positions; ++p) {
    a.out_[2 + p] = shift_positions(follow[p]);
    if ((info.last >> p) & 1) a.out_[2 + p] |= uint64_t{1} << kFinal;
  }
  a.RebuildLabelIndex();
  return a;
}

QueryAutomaton QueryAutomaton::FromParts(std::vector<LabelId> labels,
                                         std::vector<uint64_t> out) {
  PEREACH_CHECK_EQ(labels.size(), out.size());
  PEREACH_CHECK_GE(labels.size(), size_t{2});
  PEREACH_CHECK_LE(labels.size(), kMaxStates);
  const size_t n = labels.size();
  const uint64_t valid =
      (n >= 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  for (uint64_t m : out) PEREACH_CHECK_EQ(m & ~valid, uint64_t{0});
  QueryAutomaton a;
  a.labels_ = std::move(labels);
  a.out_ = std::move(out);
  a.RebuildLabelIndex();
  return a;
}

QueryAutomaton QueryAutomaton::WildcardStar() {
  QueryAutomaton a;
  // States: u_s, u_t, and one wildcard state 2 with a self-loop.
  a.labels_ = {kInvalidLabel, kInvalidLabel, kWildcardLabel};
  a.out_.assign(3, 0);
  a.out_[kStart] = (uint64_t{1} << kFinal) | (uint64_t{1} << 2);
  a.out_[2] = (uint64_t{1} << kFinal) | (uint64_t{1} << 2);
  a.RebuildLabelIndex();
  return a;
}

size_t QueryAutomaton::num_transitions() const {
  size_t count = 0;
  for (uint64_t m : out_) count += static_cast<size_t>(__builtin_popcountll(m));
  return count;
}

uint64_t QueryAutomaton::StatesWithLabel(LabelId label) const {
  auto it = states_by_label_.find(label);
  return (it == states_by_label_.end() ? 0 : it->second) | wildcard_mask_;
}

bool QueryAutomaton::AcceptsInterior(std::span<const LabelId> interior) const {
  uint64_t current = uint64_t{1} << kStart;
  for (LabelId l : interior) {
    uint64_t next = 0;
    uint64_t cur = current;
    while (cur != 0) {
      const int q = __builtin_ctzll(cur);
      next |= out_[q];
      cur &= cur - 1;
    }
    current = next & StatesWithLabel(l);
    if (current == 0) return false;
  }
  uint64_t cur = current;
  while (cur != 0) {
    const int q = __builtin_ctzll(cur);
    if ((out_[q] >> kFinal) & 1) return true;
    cur &= cur - 1;
  }
  return false;
}

void QueryAutomaton::Serialize(Encoder* enc) const {
  enc->PutVarint(labels_.size());
  for (LabelId l : labels_) {
    // 0 = no label (u_s/u_t), 1 = wildcard, else label + 2.
    if (l == kInvalidLabel) {
      enc->PutVarint(0);
    } else if (l == kWildcardLabel) {
      enc->PutVarint(1);
    } else {
      enc->PutVarint(static_cast<uint64_t>(l) + 2);
    }
  }
  for (uint64_t m : out_) enc->PutU64(m);
}

QueryAutomaton QueryAutomaton::Deserialize(Decoder* dec) {
  QueryAutomaton a;
  const size_t n = dec->GetCount();
  PEREACH_CHECK_LE(n, kMaxStates);
  a.labels_.resize(n);
  for (LabelId& l : a.labels_) {
    const uint64_t v = dec->GetVarint();
    l = (v == 0) ? kInvalidLabel
                 : (v == 1) ? kWildcardLabel : static_cast<LabelId>(v - 2);
  }
  a.out_.resize(n);
  for (uint64_t& m : a.out_) m = dec->GetU64();
  a.RebuildLabelIndex();
  return a;
}

size_t QueryAutomaton::ByteSize() const {
  Encoder enc;
  Serialize(&enc);
  return enc.size();
}

void QueryAutomaton::RebuildLabelIndex() {
  states_by_label_.clear();
  wildcard_mask_ = 0;
  for (uint32_t q = 2; q < labels_.size(); ++q) {
    if (labels_[q] == kWildcardLabel) {
      wildcard_mask_ |= uint64_t{1} << q;
    } else {
      states_by_label_[labels_[q]] |= uint64_t{1} << q;
    }
  }
}

}  // namespace pereach
