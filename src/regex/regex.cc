#include "src/regex/regex.h"

#include <cctype>

namespace pereach {

Regex Regex::Epsilon() {
  auto node = std::make_shared<Regex::Node>();
  node->kind = Kind::kEpsilon;
  return Regex(std::move(node));
}

Regex Regex::Symbol(LabelId label) {
  auto node = std::make_shared<Regex::Node>();
  node->kind = Kind::kSymbol;
  node->symbol = label;
  return Regex(std::move(node));
}

Regex Regex::Concat(Regex a, Regex b) {
  auto node = std::make_shared<Regex::Node>();
  node->kind = Kind::kConcat;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Regex(std::move(node));
}

Regex Regex::Union(Regex a, Regex b) {
  auto node = std::make_shared<Regex::Node>();
  node->kind = Kind::kUnion;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Regex(std::move(node));
}

Regex Regex::Star(Regex a) {
  auto node = std::make_shared<Regex::Node>();
  node->kind = Kind::kStar;
  node->left = std::move(a.node_);
  return Regex(std::move(node));
}

Regex Regex::AnyOf(const std::vector<LabelId>& labels) {
  PEREACH_CHECK(!labels.empty());
  Regex r = Symbol(labels[0]);
  for (size_t i = 1; i < labels.size(); ++i) {
    r = Union(std::move(r), Symbol(labels[i]));
  }
  return r;
}

LabelId Regex::symbol() const {
  PEREACH_CHECK(kind() == Kind::kSymbol);
  return node_->symbol;
}

Regex Regex::left() const {
  PEREACH_CHECK(node_->left != nullptr);
  return Regex(node_->left);
}

Regex Regex::right() const {
  PEREACH_CHECK(node_->right != nullptr);
  return Regex(node_->right);
}

size_t Regex::NumSymbols() const {
  switch (kind()) {
    case Kind::kEpsilon:
      return 0;
    case Kind::kSymbol:
      return 1;
    case Kind::kConcat:
    case Kind::kUnion:
      return left().NumSymbols() + right().NumSymbols();
    case Kind::kStar:
      return left().NumSymbols();
  }
  return 0;
}

bool Regex::MatchesEmpty() const {
  switch (kind()) {
    case Kind::kEpsilon:
      return true;
    case Kind::kSymbol:
      return false;
    case Kind::kConcat:
      return left().MatchesEmpty() && right().MatchesEmpty();
    case Kind::kUnion:
      return left().MatchesEmpty() || right().MatchesEmpty();
    case Kind::kStar:
      return true;
  }
  return false;
}

namespace {

// Set-of-positions matcher: given start positions S over `word`, returns the
// positions j such that word[i..j) ∈ L(node) for some i ∈ S. Polynomial and
// independent of the automaton code, so it can serve as its oracle.
std::vector<bool> MatchFrom(const Regex& r, const std::vector<LabelId>& word,
                            const std::vector<bool>& starts) {
  const size_t n = word.size();
  switch (r.kind()) {
    case Regex::Kind::kEpsilon:
      return starts;
    case Regex::Kind::kSymbol: {
      std::vector<bool> out(n + 1, false);
      for (size_t i = 0; i < n; ++i) {
        if (starts[i] && word[i] == r.symbol()) out[i + 1] = true;
      }
      return out;
    }
    case Regex::Kind::kConcat:
      return MatchFrom(r.right(), word, MatchFrom(r.left(), word, starts));
    case Regex::Kind::kUnion: {
      std::vector<bool> a = MatchFrom(r.left(), word, starts);
      const std::vector<bool> b = MatchFrom(r.right(), word, starts);
      for (size_t i = 0; i <= n; ++i) a[i] = a[i] || b[i];
      return a;
    }
    case Regex::Kind::kStar: {
      std::vector<bool> acc = starts;
      bool changed = true;
      while (changed) {
        changed = false;
        const std::vector<bool> step = MatchFrom(r.left(), word, acc);
        for (size_t i = 0; i <= n; ++i) {
          if (step[i] && !acc[i]) {
            acc[i] = true;
            changed = true;
          }
        }
      }
      return acc;
    }
  }
  return std::vector<bool>(n + 1, false);
}

}  // namespace

bool Regex::Matches(const std::vector<LabelId>& word) const {
  std::vector<bool> starts(word.size() + 1, false);
  starts[0] = true;
  return MatchFrom(*this, word, starts)[word.size()];
}

namespace {

/// Recursive-descent parser for the textual regex syntax.
class Parser {
 public:
  Parser(const std::string& text, const LabelDictionary& dict)
      : text_(text), dict_(dict) {}

  Result<Regex> Parse() {
    Result<Regex> r = ParseUnion();
    if (!r.ok()) return r;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("unexpected trailing input at offset " +
                                     std::to_string(pos_) + " in: " + text_);
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return c == '(' || c == '~' || c == '_' ||
           std::isalnum(static_cast<unsigned char>(c));
  }

  Result<Regex> ParseUnion() {
    Result<Regex> lhs = ParseConcat();
    if (!lhs.ok()) return lhs;
    Regex r = std::move(lhs).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        Result<Regex> rhs = ParseConcat();
        if (!rhs.ok()) return rhs;
        r = Regex::Union(std::move(r), std::move(rhs).value());
      } else {
        return r;
      }
    }
  }

  Result<Regex> ParseConcat() {
    Result<Regex> lhs = ParseStar();
    if (!lhs.ok()) return lhs;
    Regex r = std::move(lhs).value();
    while (AtAtomStart()) {
      Result<Regex> rhs = ParseStar();
      if (!rhs.ok()) return rhs;
      r = Regex::Concat(std::move(r), std::move(rhs).value());
    }
    return r;
  }

  Result<Regex> ParseStar() {
    Result<Regex> atom = ParseAtom();
    if (!atom.ok()) return atom;
    Regex r = std::move(atom).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        r = Regex::Star(std::move(r));
      } else {
        return r;
      }
    }
  }

  Result<Regex> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of regex: " + text_);
    }
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Result<Regex> inner = ParseUnion();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument("missing ')' in: " + text_);
      }
      ++pos_;
      return inner;
    }
    if (c == '~') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string name = text_.substr(start, pos_ - start);
      const LabelId id = dict_.Find(name);
      if (id == kInvalidLabel) {
        return Status::NotFound("unknown label '" + name + "' in: " + text_);
      }
      return Regex::Symbol(id);
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in: " + text_);
  }

  const std::string& text_;
  const LabelDictionary& dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<Regex> Regex::Parse(const std::string& text,
                           const LabelDictionary& dict) {
  return Parser(text, dict).Parse();
}

Regex Regex::Random(size_t num_symbols, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(num_symbols, 1u);
  PEREACH_CHECK_GE(num_labels, 1u);
  if (num_symbols == 1) {
    Regex r = Symbol(static_cast<LabelId>(rng->Uniform(num_labels)));
    if (rng->Bernoulli(0.4)) r = Star(std::move(r));
    return r;
  }
  const size_t left_symbols = 1 + rng->Uniform(num_symbols - 1);
  Regex l = Random(left_symbols, num_labels, rng);
  Regex r = Random(num_symbols - left_symbols, num_labels, rng);
  Regex combined = rng->Bernoulli(0.55) ? Concat(std::move(l), std::move(r))
                                        : Union(std::move(l), std::move(r));
  if (rng->Bernoulli(0.15)) combined = Star(std::move(combined));
  return combined;
}

namespace {

void ToStringRec(const Regex& r, const LabelDictionary& dict,
                 std::string* out) {
  switch (r.kind()) {
    case Regex::Kind::kEpsilon:
      *out += "~";
      return;
    case Regex::Kind::kSymbol:
      *out += dict.Name(r.symbol());
      return;
    case Regex::Kind::kConcat:
      *out += "(";
      ToStringRec(r.left(), dict, out);
      *out += " ";
      ToStringRec(r.right(), dict, out);
      *out += ")";
      return;
    case Regex::Kind::kUnion:
      *out += "(";
      ToStringRec(r.left(), dict, out);
      *out += " | ";
      ToStringRec(r.right(), dict, out);
      *out += ")";
      return;
    case Regex::Kind::kStar:
      *out += "(";
      ToStringRec(r.left(), dict, out);
      *out += ")*";
      return;
  }
}

}  // namespace

std::string Regex::ToString(const LabelDictionary& dict) const {
  std::string out;
  ToStringRec(*this, dict, &out);
  return out;
}

}  // namespace pereach
