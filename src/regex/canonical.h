#ifndef PEREACH_REGEX_CANONICAL_H_
#define PEREACH_REGEX_CANONICAL_H_

#include <string>
#include <utility>

#include "src/regex/query_automaton.h"

namespace pereach {

/// Canonical signature of a query automaton: the wire bytes of its
/// minimized, canonically renumbered form, plus a 64-bit hash of those
/// bytes for cheap routing. Two queries with equal signatures have
/// LANGUAGE-EQUAL automata (the key bytes fully determine the canonical
/// automaton), so signature-keyed caches — the coordinator's standing
/// product boundary graphs, the per-fragment product rows, the batch
/// broadcast's automaton table — may serve both from one entry without any
/// correctness caveat. The converse is best-effort: equivalent regexes
/// written differently may canonicalize apart, which costs a cache entry,
/// never an answer.
struct AutomatonSignature {
  uint64_t hash = 0;
  std::string key;  // canonical wire bytes (QueryAutomaton::Serialize)

  friend bool operator==(const AutomatonSignature&,
                         const AutomatonSignature&) = default;
};

/// A canonicalized automaton together with its signature. The automaton is
/// the one signature-keyed caches evaluate with, so every consumer of one
/// signature uses bit-identical structure.
struct CanonicalAutomaton {
  QueryAutomaton automaton;
  AutomatonSignature signature;
};

/// Minimized canonical form of `a` ("minimized Glushkov form"):
///  1. prune interior states that are unreachable from u_s or cannot reach
///     u_t — they sit on no accepting run;
///  2. iteratively merge interior states with identical (label, successor
///     mask) — such states have equal right languages, so redirecting
///     every transition onto one representative preserves L(G_q);
///  3. renumber the surviving interior states by (label, original position)
///     so construction-order noise (e.g. `a|a` vs `a`) cancels.
/// u_s and u_t keep indices 0 and 1. The result accepts exactly the same
/// interior label sequences as `a` (fuzzed against AcceptsInterior in
/// tests/query_automaton_test.cc).
CanonicalAutomaton Canonicalize(const QueryAutomaton& a);

/// FNV-1a over a canonical key; exposed for tests and observability.
uint64_t SignatureHash(const std::string& key);

}  // namespace pereach

#endif  // PEREACH_REGEX_CANONICAL_H_
