#include "src/regex/canonical.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace pereach {

namespace {

constexpr uint32_t kStart = QueryAutomaton::kStart;
constexpr uint32_t kFinal = QueryAutomaton::kFinal;

/// Bitmask fixpoint of `step` starting from `seed` over <= 64 states.
template <typename Step>
uint64_t MaskFixpoint(uint64_t seed, const Step& step) {
  uint64_t current = seed;
  while (true) {
    const uint64_t next = step(current);
    if (next == current) return current;
    current = next;
  }
}

}  // namespace

uint64_t SignatureHash(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return hash;
}

CanonicalAutomaton Canonicalize(const QueryAutomaton& a) {
  const size_t n = a.num_states();
  std::vector<LabelId> labels(n);
  std::vector<uint64_t> out(n);
  for (uint32_t q = 0; q < n; ++q) {
    labels[q] = a.state_label(q);
    out[q] = a.out_mask(q);
  }

  // 1. Prune interior states off every accepting run: keep those reachable
  // from u_s AND co-reachable to u_t. Ascending scans converge because each
  // step only adds bits.
  const uint64_t fwd = MaskFixpoint(uint64_t{1} << kStart, [&](uint64_t m) {
    uint64_t next = m;
    uint64_t scan = m;
    while (scan != 0) {
      next |= out[__builtin_ctzll(scan)];
      scan &= scan - 1;
    }
    return next;
  });
  const uint64_t bwd = MaskFixpoint(uint64_t{1} << kFinal, [&](uint64_t m) {
    uint64_t next = m;
    for (uint32_t q = 0; q < n; ++q) {
      if ((out[q] & m) != 0) next |= uint64_t{1} << q;
    }
    return next;
  });
  uint64_t alive =
      (fwd & bwd) | (uint64_t{1} << kStart) | (uint64_t{1} << kFinal);
  alive &= (n >= 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  for (uint32_t q = 0; q < n; ++q) out[q] &= alive;

  // 2. Merge fixpoint: interior states with identical (label, successor
  // mask) are interchangeable; fold each class onto its smallest member and
  // redirect every transition. Merging rewrites masks, which can equalize
  // further states, so iterate to fixpoint (<= 62 rounds).
  std::vector<uint32_t> rep(n);
  std::iota(rep.begin(), rep.end(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t q = 2; q < n; ++q) {
      if (rep[q] != q || !((alive >> q) & 1)) continue;
      for (uint32_t p = 2; p < q; ++p) {
        if (rep[p] != p || !((alive >> p) & 1)) continue;
        if (labels[p] == labels[q] && out[p] == out[q]) {
          rep[q] = p;
          alive &= ~(uint64_t{1} << q);
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
    // Redirect transitions of merged states onto their representatives.
    for (uint32_t q = 0; q < n; ++q) {
      uint64_t mask = out[q];
      uint64_t merged = 0;
      uint64_t scan = mask;
      while (scan != 0) {
        const uint32_t s = static_cast<uint32_t>(__builtin_ctzll(scan));
        scan &= scan - 1;
        if (rep[s] != s) {
          mask &= ~(uint64_t{1} << s);
          merged |= uint64_t{1} << rep[s];
        }
      }
      out[q] = mask | merged;
    }
  }

  // 3. Canonical renumbering: u_s, u_t keep 0 and 1; surviving interior
  // states sort by (label, original position) — stable under the
  // left-to-right position numbering of the Glushkov construction.
  std::vector<uint32_t> kept;
  for (uint32_t q = 2; q < n; ++q) {
    if ((alive >> q) & 1) kept.push_back(q);
  }
  std::stable_sort(kept.begin(), kept.end(), [&](uint32_t x, uint32_t y) {
    return labels[x] < labels[y];
  });
  std::vector<uint32_t> new_id(n, 0);
  new_id[kStart] = kStart;
  new_id[kFinal] = kFinal;
  for (uint32_t i = 0; i < kept.size(); ++i) new_id[kept[i]] = 2 + i;

  std::vector<LabelId> canon_labels(2 + kept.size(), kInvalidLabel);
  std::vector<uint64_t> canon_out(2 + kept.size(), 0);
  const auto remap = [&](uint64_t mask) {
    uint64_t result = 0;
    while (mask != 0) {
      result |= uint64_t{1} << new_id[__builtin_ctzll(mask)];
      mask &= mask - 1;
    }
    return result;
  };
  canon_out[kStart] = remap(out[kStart]);
  for (uint32_t i = 0; i < kept.size(); ++i) {
    canon_labels[2 + i] = labels[kept[i]];
    canon_out[2 + i] = remap(out[kept[i]]);
  }

  CanonicalAutomaton result{
      QueryAutomaton::FromParts(std::move(canon_labels), std::move(canon_out)),
      {}};
  Encoder enc;
  result.automaton.Serialize(&enc);
  result.signature.key.assign(enc.buffer().begin(), enc.buffer().end());
  result.signature.hash = SignatureHash(result.signature.key);
  return result;
}

}  // namespace pereach
