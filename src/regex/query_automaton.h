#ifndef PEREACH_REGEX_QUERY_AUTOMATON_H_
#define PEREACH_REGEX_QUERY_AUTOMATON_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/regex/regex.h"
#include "src/util/common.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace pereach {

/// Query automaton G_q(R) of a regular reachability query q_rr(s, t, R)
/// (paper §5.1): an ε-free NFA variant whose states carry *node labels* and
/// whose runs are matched against the interior nodes of graph paths.
///
/// States: kStart (u_s, matches the source node s by identity), kFinal
/// (u_t, matches the target t by identity), and one interior state per
/// symbol occurrence of R (Glushkov positions, following Hromkovic et
/// al. [15]). A path (s, v_1, ..., v_{n-1}, t) satisfies R iff there is a
/// transition path u_s -> q_1 -> ... -> q_{n-1} -> u_t with
/// state_label(q_i) == L(v_i) for all interior i.
///
/// The construction is O(|R| log |R|)-ish with O(|R|) states and O(|R|^2)
/// transitions; the whole automaton is capped at 64 states so transition
/// sets are single machine words (the paper's queries use ≤ 18 states).
class QueryAutomaton {
 public:
  static constexpr uint32_t kStart = 0;
  static constexpr uint32_t kFinal = 1;
  static constexpr size_t kMaxStates = 64;

  /// Label sentinel for states that match *any* node label — the wildcard
  /// `_` of §2.2, which expresses plain reachability as the regular query
  /// `_*` without enumerating the alphabet.
  static constexpr LabelId kWildcardLabel = kInvalidLabel - 1;

  /// Builds the Glushkov query automaton of `r`. Fails with InvalidArgument
  /// when r has more than kMaxStates - 2 symbol occurrences (the 64-state
  /// word-parallel cap): serving paths surface the status to the client
  /// instead of aborting the process on an oversized regex.
  static Result<QueryAutomaton> FromRegex(const Regex& r);

  /// The automaton of `_*`: u_s -> u_t plus one wildcard self-loop state.
  /// Reach(s, t) == RegularReach(s, t, WildcardStar()).
  static QueryAutomaton WildcardStar();

  /// Assembles an automaton from explicit per-state labels and successor
  /// masks (state 0 = u_s, 1 = u_t, labels kInvalidLabel for both). Used by
  /// the canonicalizer (src/regex/canonical.h) and by tests that need exact
  /// control over the transition structure. CHECK-fails on inconsistent
  /// sizes or mask bits beyond the state count.
  static QueryAutomaton FromParts(std::vector<LabelId> labels,
                                  std::vector<uint64_t> out);

  /// Number of states |V_q| (including u_s and u_t).
  size_t num_states() const { return labels_.size(); }

  /// Number of transitions |E_q|.
  size_t num_transitions() const;

  /// Label an interior state matches; kInvalidLabel for kStart/kFinal.
  LabelId state_label(uint32_t q) const {
    PEREACH_CHECK_LT(q, labels_.size());
    return labels_[q];
  }

  /// Bitmask of successor states of q.
  uint64_t out_mask(uint32_t q) const {
    PEREACH_CHECK_LT(q, out_.size());
    return out_[q];
  }

  /// Bitmask of interior states compatible with `label`: exact-label states
  /// plus every wildcard state (never includes kStart/kFinal).
  uint64_t StatesWithLabel(LabelId label) const;

  /// True iff ε ∈ L(R), i.e. a single edge (s, t) satisfies the query.
  bool AcceptsEmpty() const { return (out_[kStart] >> kFinal) & 1; }

  /// NFA simulation over an interior label sequence — the oracle used by
  /// tests to validate the construction against Regex::Matches.
  bool AcceptsInterior(std::span<const LabelId> interior) const;

  /// Wire format (what the coordinator broadcasts to every site, §5).
  void Serialize(Encoder* enc) const;
  static QueryAutomaton Deserialize(Decoder* dec);

  /// Serialized size in bytes, |G_q| in the traffic accounting.
  size_t ByteSize() const;

 private:
  QueryAutomaton() = default;

  std::vector<LabelId> labels_;  // per state; kInvalidLabel for start/final
  std::vector<uint64_t> out_;    // per state successor mask
  std::unordered_map<LabelId, uint64_t> states_by_label_;
  uint64_t wildcard_mask_ = 0;   // states labeled kWildcardLabel

  void RebuildLabelIndex();
};

}  // namespace pereach

#endif  // PEREACH_REGEX_QUERY_AUTOMATON_H_
