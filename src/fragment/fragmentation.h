#ifndef PEREACH_FRAGMENT_FRAGMENTATION_H_
#define PEREACH_FRAGMENT_FRAGMENTATION_H_

#include <vector>

#include "src/fragment/fragment.h"
#include "src/graph/graph.h"
#include "src/util/common.h"

namespace pereach {

/// A fragmentation F = (F, G_f) of a graph G (paper §2.1): the list of
/// fragments plus the fragment graph G_f = (V_f, E_f) collecting all
/// in-nodes, virtual nodes and cross edges. No constraint is imposed on how
/// nodes are assigned to fragments.
class Fragmentation {
 public:
  Fragmentation() = default;

  /// Builds the fragmentation of `g` induced by `partition` (node -> site,
  /// values in [0, num_fragments)).
  static Fragmentation Build(const Graph& g,
                             const std::vector<SiteId>& partition,
                             size_t num_fragments);

  size_t num_fragments() const { return fragments_.size(); }
  const Fragment& fragment(SiteId i) const {
    PEREACH_CHECK_LT(i, fragments_.size());
    return fragments_[i];
  }

  /// Site storing the real copy of `global`.
  SiteId site_of(NodeId global) const {
    PEREACH_CHECK_LT(global, partition_.size());
    return partition_[global];
  }

  const std::vector<SiteId>& partition() const { return partition_; }

  /// Total number of nodes of the underlying graph.
  size_t num_nodes() const { return partition_.size(); }

  /// |E_f|: total number of cross edges.
  size_t num_cross_edges() const { return num_cross_edges_; }

  /// |V_f|: number of distinct global nodes with an incoming cross edge
  /// (equivalently, Σ_i |F_i.I| — every boundary node is an in-node of
  /// exactly one fragment). This is the V_f of the paper's bounds.
  size_t num_boundary_nodes() const { return num_boundary_nodes_; }

  /// |F_m|: size (nodes + edges) of the largest fragment.
  size_t largest_fragment_size() const { return largest_fragment_size_; }

  /// Cross edges as (source global id, target global id) pairs — the edge
  /// set E_f of the fragment graph G_f.
  const std::vector<std::pair<NodeId, NodeId>>& cross_edges() const {
    return cross_edges_;
  }

 private:
  std::vector<Fragment> fragments_;
  std::vector<SiteId> partition_;
  std::vector<std::pair<NodeId, NodeId>> cross_edges_;
  size_t num_cross_edges_ = 0;
  size_t num_boundary_nodes_ = 0;
  size_t largest_fragment_size_ = 0;
};

}  // namespace pereach

#endif  // PEREACH_FRAGMENT_FRAGMENTATION_H_
