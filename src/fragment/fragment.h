#ifndef PEREACH_FRAGMENT_FRAGMENT_H_
#define PEREACH_FRAGMENT_FRAGMENT_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/common.h"
#include "src/util/serialization.h"

namespace pereach {

/// One fragment F_i = (V_i ∪ F_i.O, E_i ∪ cE_i, L_i) of a fragmentation
/// (paper §2.1). Local node ids are dense: [0, num_local()) are the real
/// nodes V_i; [num_local(), NumNodes()) are the virtual nodes F_i.O, which
/// are sinks in the local graph (their out-edges live in other fragments).
/// Cross edges cE_i are exactly the local edges whose target is virtual.
/// Labels are kept for virtual nodes too (regular reachability needs them).
class Fragment {
 public:
  Fragment() = default;

  /// The site this fragment is stored at (fragment id == site id here;
  /// the runtime also supports mapping several fragments to one site).
  SiteId site() const { return site_; }

  /// Local graph over V_i ∪ F_i.O (virtual nodes are sinks).
  const Graph& local_graph() const { return graph_; }

  /// |V_i|: number of real (locally stored) nodes.
  size_t num_local() const { return num_local_; }

  /// |F_i.O|: number of virtual nodes.
  size_t num_virtual() const { return graph_.NumNodes() - num_local_; }

  bool IsVirtual(NodeId local) const { return local >= num_local_; }

  /// Global id of a local node (real or virtual).
  NodeId ToGlobal(NodeId local) const {
    PEREACH_CHECK_LT(local, local_to_global_.size());
    return local_to_global_[local];
  }

  /// Local id of a global node, or kInvalidNode if this fragment holds
  /// neither a real nor a virtual copy of it.
  NodeId ToLocal(NodeId global) const {
    auto it = global_to_local_.find(global);
    return it == global_to_local_.end() ? kInvalidNode : it->second;
  }

  /// True iff `global` is one of this fragment's real nodes.
  bool Contains(NodeId global) const {
    const NodeId local = ToLocal(global);
    return local != kInvalidNode && !IsVirtual(local);
  }

  /// F_i.I — local ids of the in-nodes (real nodes with an incoming cross
  /// edge from another fragment), ascending.
  const std::vector<NodeId>& in_nodes() const { return in_nodes_; }

  /// Site that stores the real copy of virtual node `local`.
  SiteId VirtualOwner(NodeId local) const {
    PEREACH_CHECK(IsVirtual(local));
    return virtual_owner_[local - num_local_];
  }

  /// |cE_i|: number of cross edges (edges into virtual nodes).
  size_t num_cross_edges() const { return num_cross_edges_; }

  /// |F_i| as used in the paper's complexity bounds: nodes plus edges.
  size_t Size() const { return graph_.NumNodes() + graph_.NumEdges(); }

  /// Serialized size in bytes (what shipping this fragment would cost).
  size_t ByteSize() const;

  /// Wire format: local graph, global-id table, in-node list, virtual owners.
  void Serialize(Encoder* enc) const;
  static Fragment Deserialize(Decoder* dec);

 private:
  friend class Fragmentation;

  SiteId site_ = 0;
  Graph graph_;
  size_t num_local_ = 0;
  size_t num_cross_edges_ = 0;
  std::vector<NodeId> local_to_global_;
  std::unordered_map<NodeId, NodeId> global_to_local_;
  std::vector<NodeId> in_nodes_;
  std::vector<SiteId> virtual_owner_;
};

}  // namespace pereach

#endif  // PEREACH_FRAGMENT_FRAGMENT_H_
