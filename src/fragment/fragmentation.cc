#include "src/fragment/fragmentation.h"

#include <algorithm>

namespace pereach {

namespace {

/// Per-fragment accumulation state used during the single build pass.
struct FragmentAccumulator {
  std::vector<NodeId> local_to_global;
  std::unordered_map<NodeId, NodeId> global_to_local;  // reals then virtuals
  std::vector<std::pair<NodeId, NodeId>> local_edges;  // local ids
  std::vector<NodeId> virtual_globals;                 // F_i.O (global ids)
  std::vector<bool> is_in_node;                        // per real node
  size_t num_cross = 0;
};

}  // namespace

Fragmentation Fragmentation::Build(const Graph& g,
                                   const std::vector<SiteId>& partition,
                                   size_t num_fragments) {
  PEREACH_CHECK_EQ(partition.size(), g.NumNodes());
  PEREACH_CHECK_GE(num_fragments, 1u);

  Fragmentation result;
  result.partition_ = partition;

  std::vector<FragmentAccumulator> acc(num_fragments);

  // Pass 1: assign local ids to real nodes, fragment by fragment, in global
  // id order (so local order is deterministic).
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const SiteId s = partition[v];
    PEREACH_CHECK_LT(s, num_fragments);
    FragmentAccumulator& a = acc[s];
    a.global_to_local.emplace(v, static_cast<NodeId>(a.local_to_global.size()));
    a.local_to_global.push_back(v);
  }
  for (FragmentAccumulator& a : acc) {
    a.is_in_node.assign(a.local_to_global.size(), false);
  }

  // Pass 2: route every edge. An edge (u, v) lives in u's fragment; if v is
  // remote it becomes a cross edge to a (deduplicated) virtual node, and v
  // becomes an in-node of its own fragment.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const SiteId su = partition[u];
    FragmentAccumulator& a = acc[su];
    const NodeId lu = a.global_to_local.at(u);
    for (NodeId v : g.OutNeighbors(u)) {
      const SiteId sv = partition[v];
      if (sv == su) {
        a.local_edges.emplace_back(lu, a.global_to_local.at(v));
      } else {
        auto [it, inserted] = a.global_to_local.emplace(
            v, static_cast<NodeId>(a.local_to_global.size() +
                                   a.virtual_globals.size()));
        if (inserted) a.virtual_globals.push_back(v);
        a.local_edges.emplace_back(lu, it->second);
        ++a.num_cross;
        // Mark v as an in-node of its home fragment.
        FragmentAccumulator& home = acc[sv];
        home.is_in_node[home.global_to_local.at(v)] = true;
        result.cross_edges_.emplace_back(u, v);
      }
    }
  }

  // Pass 3: materialize fragments.
  result.fragments_.resize(num_fragments);
  for (SiteId s = 0; s < num_fragments; ++s) {
    FragmentAccumulator& a = acc[s];
    Fragment& f = result.fragments_[s];
    f.site_ = s;
    f.num_local_ = a.local_to_global.size();
    f.num_cross_edges_ = a.num_cross;

    GraphBuilder b;
    b.AddNodes(f.num_local_ + a.virtual_globals.size());
    for (NodeId l = 0; l < f.num_local_; ++l) {
      b.SetLabel(l, g.label(a.local_to_global[l]));
    }
    for (size_t i = 0; i < a.virtual_globals.size(); ++i) {
      b.SetLabel(static_cast<NodeId>(f.num_local_ + i),
                 g.label(a.virtual_globals[i]));
    }
    for (const auto& [lu, lv] : a.local_edges) b.AddEdge(lu, lv);
    f.graph_ = std::move(b).Build();

    f.local_to_global_ = std::move(a.local_to_global);
    f.local_to_global_.insert(f.local_to_global_.end(),
                              a.virtual_globals.begin(),
                              a.virtual_globals.end());
    f.global_to_local_ = std::move(a.global_to_local);
    for (NodeId l = 0; l < f.num_local_; ++l) {
      if (a.is_in_node[l]) f.in_nodes_.push_back(l);
    }
    f.virtual_owner_.reserve(a.virtual_globals.size());
    for (NodeId vg : a.virtual_globals) {
      f.virtual_owner_.push_back(partition[vg]);
    }

    result.num_cross_edges_ += f.num_cross_edges_;
    result.num_boundary_nodes_ += f.in_nodes_.size();
    result.largest_fragment_size_ =
        std::max(result.largest_fragment_size_, f.Size());
  }
  return result;
}

}  // namespace pereach
