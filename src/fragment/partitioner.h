#ifndef PEREACH_FRAGMENT_PARTITIONER_H_
#define PEREACH_FRAGMENT_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/common.h"
#include "src/util/random.h"

namespace pereach {

/// Strategy that assigns every node of a graph to one of k sites. The paper
/// imposes no constraint on fragmentation; different strategies let the
/// benchmarks study how boundary size |V_f| affects each algorithm.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Returns a site id in [0, k) for every node. Every site is non-empty
  /// whenever k <= NumNodes().
  virtual std::vector<SiteId> Partition(const Graph& g, size_t k,
                                        Rng* rng) const = 0;

  /// Name used in bench output.
  virtual std::string name() const = 0;
};

/// Uniform random assignment — the paper's default ("randomly partitioned",
/// §7). Worst case for |V_f|.
class RandomPartitioner : public Partitioner {
 public:
  std::vector<SiteId> Partition(const Graph& g, size_t k,
                                Rng* rng) const override;
  std::string name() const override { return "random"; }
};

/// Contiguous equal-size chunks of the node id range — Hadoop's default
/// input split, used by MRdRPQ's parG (§6). Good for graphs whose node ids
/// correlate with locality (e.g. generated or crawled graphs).
class ChunkPartitioner : public Partitioner {
 public:
  std::vector<SiteId> Partition(const Graph& g, size_t k,
                                Rng* rng) const override;
  std::string name() const override { return "chunk"; }
};

/// Greedy balanced BFS growth: k seeds expand breadth-first, each claiming
/// unassigned nodes, preferring the currently smallest region. A cheap
/// edge-cut reducer standing in for METIS-style partitioners; used by the
/// partitioning ablation bench.
class BfsGrowPartitioner : public Partitioner {
 public:
  std::vector<SiteId> Partition(const Graph& g, size_t k,
                                Rng* rng) const override;
  std::string name() const override { return "bfs-grow"; }
};

/// Ensures every site in [0, k) owns at least one node by reassigning nodes
/// into empty sites; mutates `partition` in place. (Fragmentation tolerates
/// empty fragments, but benches report per-site stats.)
void EnsureNonEmptySites(std::vector<SiteId>* partition, size_t k, Rng* rng);

}  // namespace pereach

#endif  // PEREACH_FRAGMENT_PARTITIONER_H_
