#include "src/fragment/partitioner.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "src/util/logging.h"

namespace pereach {

std::vector<SiteId> RandomPartitioner::Partition(const Graph& g, size_t k,
                                                 Rng* rng) const {
  PEREACH_CHECK_GE(k, 1u);
  std::vector<SiteId> part(g.NumNodes());
  for (SiteId& s : part) s = static_cast<SiteId>(rng->Uniform(k));
  EnsureNonEmptySites(&part, k, rng);
  return part;
}

std::vector<SiteId> ChunkPartitioner::Partition(const Graph& g, size_t k,
                                                Rng* rng) const {
  (void)rng;
  PEREACH_CHECK_GE(k, 1u);
  const size_t n = g.NumNodes();
  std::vector<SiteId> part(n);
  for (NodeId v = 0; v < n; ++v) {
    part[v] = static_cast<SiteId>(std::min(k - 1, v * k / n));
  }
  return part;
}

std::vector<SiteId> BfsGrowPartitioner::Partition(const Graph& g, size_t k,
                                                  Rng* rng) const {
  PEREACH_CHECK_GE(k, 1u);
  const size_t n = g.NumNodes();
  constexpr SiteId kUnassigned = std::numeric_limits<SiteId>::max();
  std::vector<SiteId> part(n, kUnassigned);

  // Random distinct seeds.
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  rng->Shuffle(&order);

  // Claim-on-pop multi-source BFS: queues hold *candidate* nodes which may
  // already be taken by another region; a node is claimed when popped while
  // still unassigned. Each edge enqueues its endpoints O(1) times, so the
  // whole pass is linear in |E|.
  std::vector<std::deque<NodeId>> frontier(k);
  std::vector<size_t> region_size(k, 0);
  const size_t num_seeds = std::min(k, n);
  for (SiteId s = 0; s < num_seeds; ++s) frontier[s].push_back(order[s]);

  size_t assigned = 0;
  size_t reseed_cursor = num_seeds;
  while (assigned < n) {
    SiteId best = 0;
    for (SiteId s = 1; s < k; ++s) {
      if (region_size[s] < region_size[best]) best = s;
    }
    NodeId claimed = kInvalidNode;
    while (!frontier[best].empty()) {
      const NodeId u = frontier[best].front();
      frontier[best].pop_front();
      if (part[u] == kUnassigned) {
        claimed = u;
        break;
      }
    }
    if (claimed == kInvalidNode) {
      // Frontier exhausted: reseed from any unassigned node.
      while (reseed_cursor < n && part[order[reseed_cursor]] != kUnassigned) {
        ++reseed_cursor;
      }
      if (reseed_cursor == n) break;
      claimed = order[reseed_cursor];
    }
    part[claimed] = best;
    ++region_size[best];
    ++assigned;
    for (NodeId v : g.OutNeighbors(claimed)) {
      if (part[v] == kUnassigned) frontier[best].push_back(v);
    }
    // Also consider in-neighbors so sink-heavy regions can still grow.
    for (NodeId v : g.InNeighbors(claimed)) {
      if (part[v] == kUnassigned) frontier[best].push_back(v);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (part[v] == kUnassigned) part[v] = static_cast<SiteId>(rng->Uniform(k));
  }
  return part;
}

void EnsureNonEmptySites(std::vector<SiteId>* partition, size_t k, Rng* rng) {
  const size_t n = partition->size();
  if (n < k) return;
  std::vector<size_t> count(k, 0);
  for (SiteId s : *partition) ++count[s];
  for (SiteId s = 0; s < k; ++s) {
    while (count[s] == 0) {
      const NodeId v = static_cast<NodeId>(rng->Uniform(n));
      const SiteId old = (*partition)[v];
      if (count[old] > 1) {
        (*partition)[v] = s;
        --count[old];
        ++count[s];
      }
    }
  }
}

}  // namespace pereach
