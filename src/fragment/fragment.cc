#include "src/fragment/fragment.h"

#include "src/graph/graph_io.h"

namespace pereach {

size_t Fragment::ByteSize() const {
  Encoder enc;
  Serialize(&enc);
  return enc.size();
}

void Fragment::Serialize(Encoder* enc) const {
  enc->PutVarint(site_);
  enc->PutVarint(num_local_);
  enc->PutVarint(num_cross_edges_);
  SerializeGraph(graph_, enc);
  // Global ids are delta-encoded against the previous entry where ascending
  // (real nodes are ascending by construction; virtual ids are arbitrary).
  for (NodeId g : local_to_global_) enc->PutVarint(g);
  enc->PutVarint(in_nodes_.size());
  for (NodeId v : in_nodes_) enc->PutVarint(v);
  for (SiteId s : virtual_owner_) enc->PutVarint(s);
}

Fragment Fragment::Deserialize(Decoder* dec) {
  Fragment f;
  f.site_ = static_cast<SiteId>(dec->GetVarint());
  f.num_local_ = dec->GetVarint();
  f.num_cross_edges_ = dec->GetVarint();
  f.graph_ = DeserializeGraph(dec);
  // A corrupted num_local_ above the node count would wrap the virtual-node
  // count below into a huge resize.
  PEREACH_CHECK_LE(f.num_local_, f.graph_.NumNodes());
  f.local_to_global_.resize(f.graph_.NumNodes());
  for (NodeId& g : f.local_to_global_) {
    g = static_cast<NodeId>(dec->GetVarint());
  }
  f.global_to_local_.reserve(f.local_to_global_.size());
  for (NodeId local = 0; local < f.local_to_global_.size(); ++local) {
    f.global_to_local_.emplace(f.local_to_global_[local], local);
  }
  const size_t num_in = dec->GetCount();
  f.in_nodes_.resize(num_in);
  for (NodeId& v : f.in_nodes_) v = static_cast<NodeId>(dec->GetVarint());
  f.virtual_owner_.resize(f.graph_.NumNodes() - f.num_local_);
  for (SiteId& s : f.virtual_owner_) s = static_cast<SiteId>(dec->GetVarint());
  return f;
}

}  // namespace pereach
