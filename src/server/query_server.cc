#include "src/server/query_server.h"

#include <algorithm>

#include "src/util/logging.h"

namespace pereach {

QueryServer::QueryServer(IncrementalReachIndex* index, ServerOptions options)
    : index_(index),
      options_(options),
      cluster_(&index->fragmentation(), options.net, options.cluster_threads),
      index_epoch_base_(index->epoch()) {
  for (size_t c = 0; c < kNumClasses; ++c) {
    queues_[c] = std::make_unique<BatchQueue>(options_.policy);
    engines_[c] = std::make_unique<PartialEvalEngine>(&cluster_, options_.eval);
  }
  // All update flows share one invalidation path (§8): the index reports
  // each fragment an update structurally touches, and every class engine
  // drops exactly that context. Runs under the writer's exclusive gate, so
  // no batch is mid-flight over the caches being dropped.
  index_->SetUpdateListener([this](SiteId site) {
    for (auto& engine : engines_) engine->InvalidateFragment(site);
  });
  for (size_t c = 0; c < kNumClasses; ++c) {
    dispatchers_[c] = std::thread([this, c] { DispatcherLoop(c); });
  }
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);  // serialize concurrent Stops
  stopping_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->Shutdown();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  // Detach under the exclusive gate: a concurrent AddEdges writer may be
  // inside the index invoking the listener, and assigning the std::function
  // while it runs would race. The uncommitted writer leaves the epoch
  // untouched.
  EpochGate::Write writer(&gate_);
  index_->SetUpdateListener(nullptr);
}

std::future<ServedAnswer> QueryServer::Submit(Query query) {
  const size_t class_idx = static_cast<size_t>(query.kind);
  PEREACH_CHECK_LT(class_idx, kNumClasses);
  PendingQuery pending;
  pending.query = std::move(query);
  std::future<ServedAnswer> future = pending.promise.get_future();
  // The stopping_ probe is an early out; the authoritative admission test is
  // Push itself, which decides under the queue lock. A submission that loses
  // the race against Stop() — probe passes, queue shuts down, Push rejects —
  // resolves as rejected here rather than aborting in the queue.
  // A malformed regular query — an oversized regex leaves Query::Rpq with
  // no automaton — is rejected here instead of CHECK-aborting the
  // dispatcher's engine: the client sees a rejected answer, the server
  // keeps serving everyone else.
  if (!pending.query.well_formed()) {
    ServedAnswer rejected;
    rejected.epoch = gate_.epoch();
    rejected.rejected = true;
    pending.promise.set_value(std::move(rejected));
    return future;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    ServedAnswer rejected;
    rejected.epoch = gate_.epoch();
    rejected.rejected = true;
    pending.promise.set_value(std::move(rejected));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_;
  }
  if (!queues_[class_idx]->Push(std::move(pending))) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (--in_flight_ == 0) drained_.notify_all();
    }
    ServedAnswer rejected;
    rejected.epoch = gate_.epoch();
    rejected.rejected = true;
    pending.promise.set_value(std::move(rejected));
  }
  return future;
}

uint64_t QueryServer::AddEdge(NodeId u, NodeId v) {
  const std::pair<NodeId, NodeId> edge(u, v);
  return AddEdges(std::span<const std::pair<NodeId, NodeId>>(&edge, 1));
}

uint64_t QueryServer::AddEdges(
    std::span<const std::pair<NodeId, NodeId>> edges) {
  if (edges.empty()) return gate_.epoch();  // the index ignores empty batches
  EpochGate::Write writer(&gate_);
  // Exclusive: every in-flight batch has drained, none enters until commit.
  // The index rebuilds the fragmentation in place and fires the listener for
  // each touched fragment; Cluster reads the fragmentation only inside
  // reader-held batches, so the swap is invisible to queries.
  index_->AddEdges(edges);
  const uint64_t epoch = writer.Commit();
  // Updates during this server's lifetime all flow through this writer
  // path, so the gate's committed epoch tracks the index's applied-update
  // count exactly, offset by whatever the index had applied pre-server.
  PEREACH_CHECK_EQ(epoch + index_epoch_base_, index_->epoch());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.updates;
  }
  return epoch;
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void QueryServer::DispatcherLoop(size_t class_idx) {
  BatchQueue& queue = *queues_[class_idx];
  PartialEvalEngine& engine = *engines_[class_idx];
  while (true) {
    std::vector<PendingQuery> pending = queue.PopBatch();
    if (pending.empty()) return;  // shut down and drained

    std::vector<Query> batch;
    batch.reserve(pending.size());
    for (PendingQuery& p : pending) batch.push_back(std::move(p.query));

    uint64_t epoch = 0;
    BatchAnswer result;
    {
      // Reader-held for the whole round trip: the batch's queries all see
      // the same committed snapshot.
      EpochGate::Read reader(&gate_);
      epoch = reader.epoch();
      result = engine.EvaluateBatch(batch);
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.queries += pending.size();
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, pending.size());
      stats_.sum_modeled_ms += result.metrics.modeled_ms;
      stats_.sum_wall_ms += result.metrics.wall_ms;
      stats_.modeled_ms_by_class[class_idx] += result.metrics.modeled_ms;
    }

    for (size_t i = 0; i < pending.size(); ++i) {
      ServedAnswer served;
      served.answer = std::move(result.answers[i]);
      served.answer.metrics = result.metrics;  // whole-batch window
      served.epoch = epoch;
      served.batch_size = pending.size();
      pending[i].promise.set_value(std::move(served));
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      in_flight_ -= pending.size();
      if (in_flight_ == 0) drained_.notify_all();
    }
  }
}

}  // namespace pereach
