#include "src/server/query_server.h"

#include <algorithm>

#include "src/engine/query_key.h"
#include "src/util/logging.h"

namespace pereach {

namespace {

RejectReason PushOutcomeToReason(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kAccepted:
      return RejectReason::kNone;
    case PushOutcome::kShutdown:
      return RejectReason::kStopping;
    case PushOutcome::kQueueFull:
      return RejectReason::kQueueFull;
    case PushOutcome::kQueueStale:
      return RejectReason::kQueueStale;
  }
  return RejectReason::kStopping;
}

CounterId ReasonCounter(RejectReason reason) {
  switch (reason) {
    case RejectReason::kStopping:
      return CounterId::kRejectedStopping;
    case RejectReason::kMalformed:
      return CounterId::kRejectedMalformed;
    case RejectReason::kQueueFull:
      return CounterId::kRejectedQueueFull;
    case RejectReason::kQueueStale:
      return CounterId::kRejectedQueueStale;
    case RejectReason::kTenantQuota:
      return CounterId::kRejectedTenantQuota;
    case RejectReason::kTransportError:
      return CounterId::kRejectedTransport;
    case RejectReason::kNone:
      break;
  }
  PEREACH_CHECK(false && "rejecting with reason kNone");
  return CounterId::kQueriesRejected;
}

}  // namespace

QueryServer::QueryServer(IncrementalReachIndex* index, ServerOptions options)
    : index_(index),
      options_(options),
      cluster_(&index->fragmentation(), options.net, options.cluster_threads,
               options.transport),
      index_epoch_base_(index->epoch()),
      cache_(options.cache) {
  for (size_t c = 0; c < kNumClasses; ++c) {
    queues_[c] = std::make_unique<BatchQueue>(options_.policy,
                                              options_.admission);
    engines_[c] = std::make_unique<PartialEvalEngine>(&cluster_, options_.eval);
  }
  // All update flows share one invalidation path (§8): the index reports
  // each fragment an update structurally touches, and every class engine
  // drops exactly that context. Runs under the writer's exclusive gate, so
  // no batch is mid-flight over the caches being dropped.
  index_->SetUpdateListener([this](SiteId site) {
    for (auto& engine : engines_) engine->InvalidateFragment(site);
  });
  for (size_t c = 0; c < kNumClasses; ++c) {
    dispatchers_[c] = std::thread([this, c] { DispatcherLoop(c); });
  }
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  MutexLock lock(&stop_mu_);  // serialize concurrent Stops
  stopping_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->Shutdown();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  // Detach under the exclusive gate: a concurrent AddEdges writer may be
  // inside the index invoking the listener, and assigning the std::function
  // while it runs would race. The uncommitted writer leaves the epoch
  // untouched.
  EpochGate::Write writer(&gate_);
  index_->SetUpdateListener(nullptr);
}

void QueryServer::Reject(std::promise<ServedAnswer>* promise,
                         RejectReason reason) {
  metrics_.AddCounter(CounterId::kQueriesRejected);
  metrics_.AddCounter(ReasonCounter(reason));
  ServedAnswer rejected;
  rejected.epoch = gate_.epoch();
  rejected.rejected = true;
  rejected.reject_reason = reason;
  promise->set_value(std::move(rejected));
}

std::future<ServedAnswer> QueryServer::Submit(Query query, TenantId tenant) {
  const size_t class_idx = static_cast<size_t>(query.kind);
  PEREACH_CHECK_LT(class_idx, kNumClasses);
  metrics_.AddCounter(CounterId::kQueriesSubmitted);
  PendingQuery pending;
  pending.query = std::move(query);
  pending.tenant = tenant;
  std::future<ServedAnswer> future = pending.promise.get_future();
  // The stopping_ probe is an early out; the authoritative admission test is
  // Push itself, which decides under the queue lock. A submission that loses
  // the race against Stop() — probe passes, queue shuts down, Push rejects —
  // resolves as rejected here rather than aborting in the queue.
  // A malformed regular query — an oversized regex leaves Query::Rpq with
  // no automaton — is rejected here instead of CHECK-aborting the
  // dispatcher's engine: the client sees a rejected answer, the server
  // keeps serving everyone else.
  if (!pending.query.well_formed()) {
    Reject(&pending.promise, RejectReason::kMalformed);
    return future;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    Reject(&pending.promise, RejectReason::kStopping);
    return future;
  }
  // Answer cache, consulted BEFORE admission: a hit consumes no queue
  // space, no quota, and no evaluation round — exactly the load the cache
  // exists to shed. The lookup epoch is the committed epoch at this
  // instant; a writer committing concurrently just misses (the entry set
  // was invalidated), it can never produce a stale hit.
  if (options_.cache.enabled) {
    pending.cache_key = CanonicalQueryKey(pending.query);
    pending.has_cache_key = true;
    const uint64_t lookup_epoch = gate_.epoch();
    if (const std::optional<CachedAnswer> hit =
            cache_.Lookup(pending.cache_key, lookup_epoch)) {
      metrics_.AddCounter(CounterId::kQueriesAnswered);
      ServedAnswer served;
      served.answer.reachable = hit->reachable;
      served.answer.distance = hit->distance;
      served.epoch = lookup_epoch;
      served.batch_size = 1;
      served.cache_hit = true;
      pending.promise.set_value(std::move(served));
      return future;
    }
  }
  // Tenant quota: decided under drain_mu_ together with the in-flight
  // charge so completion (which decrements under the same lock) can never
  // interleave between check and charge.
  if (options_.admission.tenant_quota > 0) {
    bool over_quota = false;
    {
      MutexLock lock(&drain_mu_);
      size_t& tenant_count = tenant_in_flight_[tenant];
      if (tenant_count >= options_.admission.tenant_quota) {
        over_quota = true;
      } else {
        ++tenant_count;
        ++in_flight_;
      }
    }
    if (over_quota) {
      Reject(&pending.promise, RejectReason::kTenantQuota);
      return future;
    }
  } else {
    MutexLock lock(&drain_mu_);
    ++in_flight_;
  }
  const TenantId pending_tenant = pending.tenant;
  const PushOutcome outcome = queues_[class_idx]->Push(std::move(pending));
  if (outcome != PushOutcome::kAccepted) {
    {
      MutexLock lock(&drain_mu_);
      if (options_.admission.tenant_quota > 0) {
        const auto it = tenant_in_flight_.find(pending_tenant);
        if (it != tenant_in_flight_.end() && --it->second == 0) {
          tenant_in_flight_.erase(it);
        }
      }
      if (--in_flight_ == 0) drained_.NotifyAll();
    }
    Reject(&pending.promise, PushOutcomeToReason(outcome));
  }
  return future;
}

uint64_t QueryServer::AddEdge(NodeId u, NodeId v) {
  const std::pair<NodeId, NodeId> edge(u, v);
  return AddEdges(std::span<const std::pair<NodeId, NodeId>>(&edge, 1));
}

uint64_t QueryServer::AddEdges(
    std::span<const std::pair<NodeId, NodeId>> edges) {
  if (edges.empty()) return gate_.epoch();  // the index ignores empty batches
  EpochGate::Write writer(&gate_);
  // Exclusive: every in-flight batch has drained, none enters until commit.
  // The index rebuilds the fragmentation in place and fires the listener for
  // each touched fragment; Cluster reads the fragmentation only inside
  // reader-held batches, so the swap is invisible to queries.
  index_->AddEdges(edges);
  // Ship the updated fragments to the serving workers while still
  // exclusive, so no batch can round over stale remote state. A failed sync
  // only closes the affected connections: the next round re-establishes and
  // the reconnect handshake ships the CURRENT fragment, so a worker can
  // never serve pre-update answers after this commit.
  Status sync = cluster_.SyncFragments();
  (void)sync;
  const uint64_t epoch = writer.Commit();
  // Epoch-keyed cache entries can never be served at the new epoch; drop
  // them while still under the exclusive gate, so no reader can look up
  // between commit and invalidation.
  cache_.OnEpochAdvance(epoch);
  // Updates during this server's lifetime all flow through this writer
  // path, so the gate's committed epoch tracks the index's applied-update
  // count exactly, offset by whatever the index had applied pre-server.
  PEREACH_CHECK_EQ(epoch + index_epoch_base_, index_->epoch());
  metrics_.AddCounter(CounterId::kUpdates);
  {
    MutexLock lock(&stats_mu_);
    ++stats_.updates;
  }
  return epoch;
}

void QueryServer::Drain() {
  MutexLock lock(&drain_mu_);
  while (in_flight_ != 0) drained_.Wait(&drain_mu_);
}

ServerStats QueryServer::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

MetricsSnapshot QueryServer::Metrics() const {
  // Sample the gauges at call time; counters and histograms already live
  // in the registry.
  const uint64_t epoch = gate_.epoch();
  static constexpr GaugeId kDepthGauges[kNumClasses] = {
      GaugeId::kQueueDepthReach, GaugeId::kQueueDepthDist,
      GaugeId::kQueueDepthRpq};
  double max_lag = 0;
  for (size_t c = 0; c < kNumClasses; ++c) {
    const size_t depth = queues_[c]->pending();
    metrics_.SetGauge(kDepthGauges[c], static_cast<double>(depth));
    // Epoch lag counts only dispatchers with QUEUED work: an idle class is
    // current by definition, a backlogged one shows how many commits ago
    // it last answered.
    if (depth > 0) {
      const uint64_t answered =
          last_answered_epoch_[c].load(std::memory_order_relaxed);
      if (epoch > answered) {
        max_lag = std::max(max_lag, static_cast<double>(epoch - answered));
      }
    }
  }
  metrics_.SetGauge(GaugeId::kEpoch, static_cast<double>(epoch));
  metrics_.SetGauge(GaugeId::kEpochLag, max_lag);
  metrics_.SetGauge(GaugeId::kCacheEntries,
                    static_cast<double>(cache_.entries()));
  metrics_.SetGauge(GaugeId::kCacheBytes, static_cast<double>(cache_.bytes()));
  {
    MutexLock lock(&drain_mu_);
    metrics_.SetGauge(GaugeId::kTenantsInFlight,
                      static_cast<double>(tenant_in_flight_.size()));
  }
  // The cache keeps its own monotonic books; import them so one snapshot
  // carries the whole surface.
  const AnswerCacheCounters cache = cache_.counters();
  metrics_.SetCounter(CounterId::kCacheHits, cache.hits);
  metrics_.SetCounter(CounterId::kCacheMisses, cache.misses);
  metrics_.SetCounter(CounterId::kCacheInsertions, cache.insertions);
  metrics_.SetCounter(CounterId::kCacheEvictions, cache.evictions);
  metrics_.SetCounter(CounterId::kCacheInvalidated, cache.invalidated);
  // The transport keeps its own recovery books (retries, respawns,
  // degraded rounds, breaker state) — import them the same way.
  if (const Transport* transport = cluster_.transport()) {
    const TransportHealth health = transport->Health();
    metrics_.SetCounter(CounterId::kTransportRetries, health.round_retries);
    metrics_.SetCounter(CounterId::kTransportRespawns, health.worker_respawns);
    metrics_.SetCounter(CounterId::kTransportDegraded,
                        health.degraded_site_rounds);
    metrics_.SetGauge(GaugeId::kBreakersOpen,
                      static_cast<double>(health.breakers_open));
  }
  return metrics_.Snapshot();
}

void QueryServer::DispatcherLoop(size_t class_idx) {
  BatchQueue& queue = *queues_[class_idx];
  PartialEvalEngine& engine = *engines_[class_idx];
  while (true) {
    std::vector<PendingQuery> pending = queue.PopBatch();
    if (pending.empty()) return;  // shut down and drained

    std::vector<Query> batch;
    batch.reserve(pending.size());
    for (PendingQuery& p : pending) batch.push_back(std::move(p.query));

    uint64_t epoch = 0;
    BatchAnswer result;
    {
      // Reader-held for the whole round trip: the batch's queries all see
      // the same committed snapshot.
      EpochGate::Read reader(&gate_);
      epoch = reader.epoch();
      result = engine.EvaluateBatch(batch);
    }

    const auto release_charges = [&] {
      // Release the in-flight and tenant-quota charges BEFORE resolving the
      // promises: a client that saw its future resolve must not be able to
      // observe its own query still charged (a resubmit racing the books
      // would be spuriously quota-rejected, and a quiesced server could
      // show a non-zero tenants-in-flight gauge). Drain() consequently
      // returns when all answers are computed, possibly a few set_value
      // calls early.
      MutexLock lock(&drain_mu_);
      if (options_.admission.tenant_quota > 0) {
        for (const PendingQuery& p : pending) {
          const auto it = tenant_in_flight_.find(p.tenant);
          if (it != tenant_in_flight_.end() && --it->second == 0) {
            tenant_in_flight_.erase(it);
          }
        }
      }
      in_flight_ -= pending.size();
      if (in_flight_ == 0) drained_.NotifyAll();
    };

    if (!result.status.ok()) {
      // The serving transport failed the round carrying this batch (dead
      // worker, expired deadline, corrupt frame). Its answers are
      // unspecified, so the whole batch resolves rejected — charges
      // released, nothing cached, no answered/latency books — and the
      // dispatcher keeps serving; the transport re-establishes lazily on
      // the next round.
      release_charges();
      for (PendingQuery& p : pending) {
        Reject(&p.promise, RejectReason::kTransportError);
      }
      continue;
    }

    {
      MutexLock lock(&stats_mu_);
      stats_.queries += pending.size();
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, pending.size());
      stats_.sum_modeled_ms += result.metrics.modeled_ms;
      stats_.sum_wall_ms += result.metrics.wall_ms;
      stats_.modeled_ms_by_class[class_idx] += result.metrics.modeled_ms;
    }
    metrics_.AddCounter(CounterId::kBatches);
    metrics_.AddCounter(CounterId::kQueriesAnswered, pending.size());
    metrics_.Observe(HistogramId::kBatchSize,
                     static_cast<double>(pending.size()));
    metrics_.Observe(
        static_cast<HistogramId>(
            static_cast<size_t>(HistogramId::kModeledMsReach) + class_idx),
        result.metrics.modeled_ms);
    metrics_.Observe(
        static_cast<HistogramId>(
            static_cast<size_t>(HistogramId::kWallMsReach) + class_idx),
        result.metrics.wall_ms);
    last_answered_epoch_[class_idx].store(epoch, std::memory_order_relaxed);

    release_charges();
    for (size_t i = 0; i < pending.size(); ++i) {
      // Feed the answer cache before resolving the promise: a client
      // resubmitting the moment its future resolves must hit. Insert
      // drops the write harmlessly if a commit invalidated this epoch
      // while the batch drained.
      if (pending[i].has_cache_key) {
        cache_.Insert(pending[i].cache_key, epoch,
                      CachedAnswer{result.answers[i].reachable,
                                   result.answers[i].distance});
      }
      ServedAnswer served;
      served.answer = std::move(result.answers[i]);
      served.answer.metrics = result.metrics;  // whole-batch window
      served.epoch = epoch;
      served.batch_size = pending.size();
      pending[i].promise.set_value(std::move(served));
    }
  }
}

}  // namespace pereach
