#include "src/server/server_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"

namespace pereach {

namespace {

// The metric catalog. scripts/check_docs.py parses the quoted names out of
// these tables and fails CI when one is missing from docs/OPERATIONS.md —
// keep one entry per line, name first.
constexpr MetricInfo kCounterInfos[] = {
    {"server_queries_submitted_total", "counter", "queries",
     "Submit calls, admitted or not"},
    {"server_queries_answered_total", "counter", "queries",
     "futures resolved with an answer (evaluated + cache hits)"},
    {"server_queries_rejected_total", "counter", "queries",
     "futures resolved rejected, all reasons"},
    {"server_rejected_stopping_total", "counter", "queries",
     "rejections because the server was stopping"},
    {"server_rejected_malformed_total", "counter", "queries",
     "rejections of unevaluable queries (oversized rpq regex)"},
    {"server_rejected_queue_full_total", "counter", "queries",
     "rejections at the per-class queue entry budget"},
    {"server_rejected_queue_stale_total", "counter", "queries",
     "rejections because the class queue's oldest entry overran the age "
     "budget"},
    {"server_rejected_tenant_quota_total", "counter", "queries",
     "rejections at the per-tenant in-flight quota"},
    {"server_rejected_transport_total", "counter", "queries",
     "rejections because the serving transport failed the batch's round"},
    {"server_batches_total", "counter", "batches",
     "dispatched EvaluateBatch windows across all classes"},
    {"server_updates_total", "counter", "epochs",
     "committed update epochs"},
    {"server_cache_hits_total", "counter", "queries",
     "answer-cache hits served without evaluation"},
    {"server_cache_misses_total", "counter", "queries",
     "enabled-cache lookups that missed"},
    {"server_cache_insertions_total", "counter", "entries",
     "answer-cache entries written after evaluation"},
    {"server_cache_evictions_total", "counter", "entries",
     "answer-cache LRU drops to hold the entry/byte budgets"},
    {"server_cache_invalidated_total", "counter", "entries",
     "answer-cache entries dropped by epoch advances"},
    {"server_transport_retries_total", "counter", "rounds",
     "in-round re-dispatches after a site's exchange failed"},
    {"server_transport_respawns_total", "counter", "workers",
     "worker re-establishments (respawn/reconnect) after the first Hello"},
    {"server_transport_degraded_total", "counter", "rounds",
     "site-rounds evaluated locally on the coordinator (degrade_local)"},
};

constexpr MetricInfo kGaugeInfos[] = {
    {"server_queue_depth_reach", "gauge", "queries",
     "pending entries in the reach class queue"},
    {"server_queue_depth_dist", "gauge", "queries",
     "pending entries in the dist class queue"},
    {"server_queue_depth_rpq", "gauge", "queries",
     "pending entries in the rpq class queue"},
    {"server_cache_entries", "gauge", "entries",
     "live answer-cache entries"},
    {"server_cache_bytes", "gauge", "bytes",
     "answer-cache footprint charged against the byte budget"},
    {"server_epoch", "gauge", "epochs", "committed update epoch"},
    {"server_epoch_lag", "gauge", "epochs",
     "committed epoch minus the stalest dispatcher's last answered epoch"},
    {"server_tenants_in_flight", "gauge", "tenants",
     "tenants with at least one admitted unanswered query"},
    {"server_transport_breakers_open", "gauge", "connections",
     "transport connections whose circuit breaker is open or half-open"},
};

constexpr MetricInfo kHistogramInfos[] = {
    {"server_batch_size", "histogram", "queries",
     "queries coalesced per dispatched batch"},
    {"server_batch_modeled_ms_reach", "histogram", "ms",
     "modeled time per reach batch window"},
    {"server_batch_modeled_ms_dist", "histogram", "ms",
     "modeled time per dist batch window"},
    {"server_batch_modeled_ms_rpq", "histogram", "ms",
     "modeled time per rpq batch window"},
    {"server_batch_wall_ms_reach", "histogram", "ms",
     "wall time per reach batch window"},
    {"server_batch_wall_ms_dist", "histogram", "ms",
     "wall time per dist batch window"},
    {"server_batch_wall_ms_rpq", "histogram", "ms",
     "wall time per rpq batch window"},
};

static_assert(std::size(kCounterInfos) ==
              static_cast<size_t>(CounterId::kCount));
static_assert(std::size(kGaugeInfos) == static_cast<size_t>(GaugeId::kCount));
static_assert(std::size(kHistogramInfos) ==
              static_cast<size_t>(HistogramId::kCount));

void AppendJsonNumber(std::string* out, double v) {
  // JSON has no inf/nan; clamp to null (never produced by the server in
  // practice, but the serializer must not emit invalid JSON).
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::span<const MetricInfo> CounterInfos() { return kCounterInfos; }
std::span<const MetricInfo> GaugeInfos() { return kGaugeInfos; }
std::span<const MetricInfo> HistogramInfos() { return kHistogramInfos; }

ServerMetrics::ServerMetrics() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

double ServerMetrics::BucketUpper(size_t i) {
  // Bucket i covers (upper(i-1), 2^(i-10)]: 2^-10 ≈ 0.001 up to 2^20 ≈ 1e6.
  return std::ldexp(1.0, static_cast<int>(i) - 10);
}

void ServerMetrics::Observe(HistogramId id, double value) {
  MutexLock lock(&mu_);
  Histogram& h = histograms_[static_cast<size_t>(id)];
  size_t bucket = kNumBuckets;  // overflow unless a bound admits the value
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (value <= BucketUpper(i)) {
      bucket = i;
      break;
    }
  }
  ++h.buckets[bucket];
  h.min = h.count == 0 ? value : std::min(h.min, value);
  h.max = h.count == 0 ? value : std::max(h.max, value);
  ++h.count;
  h.sum += value;
}

HistogramSnapshot ServerMetrics::Summarize(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count;
  snap.sum = h.sum;
  snap.min = h.min;
  snap.max = h.max;
  if (h.count == 0) return snap;
  const double quantiles[] = {0.50, 0.90, 0.99};
  double* outs[] = {&snap.p50, &snap.p90, &snap.p99};
  for (size_t q = 0; q < 3; ++q) {
    const double rank = quantiles[q] * static_cast<double>(h.count);
    uint64_t cumulative = 0;
    double estimate = h.max;
    for (size_t i = 0; i <= kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      const uint64_t before = cumulative;
      cumulative += h.buckets[i];
      if (static_cast<double>(cumulative) < rank) continue;
      // Interpolate within the landing bucket, clamped to the observed
      // extremes so single-bucket histograms report exact values.
      const double lower = i == 0 ? 0.0 : BucketUpper(i - 1);
      const double upper = i == kNumBuckets ? h.max : BucketUpper(i);
      const double frac = (rank - static_cast<double>(before)) /
                          static_cast<double>(h.buckets[i]);
      estimate = lower + frac * (upper - lower);
      break;
    }
    *outs[q] = std::clamp(estimate, h.min, h.max);
  }
  return snap;
}

MetricsSnapshot ServerMetrics::Snapshot() const {
  MetricsSnapshot snap;
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    snap.counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  MutexLock lock(&mu_);
  snap.gauges = gauges_;
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    snap.histograms[i] = Summarize(histograms_[i]);
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    out += kCounterInfos[i].name;
    out += "\": ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(counters[i]));
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    out += kGaugeInfos[i].name;
    out += "\": ";
    AppendJsonNumber(&out, gauges[i]);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    \"" : ",\n    \"";
    out += kHistogramInfos[i].name;
    out += "\": {\"count\": ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.count));
    out += buf;
    const std::pair<const char*, double> fields[] = {
        {"sum", h.sum}, {"min", h.min}, {"max", h.max},
        {"p50", h.p50}, {"p90", h.p90}, {"p99", h.p99}};
    for (const auto& [name, value] : fields) {
      out += ", \"";
      out += name;
      out += "\": ";
      AppendJsonNumber(&out, value);
    }
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace pereach
