#ifndef PEREACH_SERVER_EPOCH_GATE_H_
#define PEREACH_SERVER_EPOCH_GATE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace pereach {

/// Snapshot gate between query batches (readers) and graph updates
/// (writers). The mutable state behind the gate — the index's
/// Fragmentation, the engines' FragmentContext caches — is only touched by
/// a writer while every reader is drained, so a batch that entered at epoch
/// e evaluates every one of its queries against exactly the first e updates:
/// readers never observe a half-applied update.
///
/// The scheme is deliberately coarse (one shared_mutex, epoch counter
/// advanced by the writer before release): updates are rare relative to
/// queries, batches bound reader hold times, and writers on a shared_mutex
/// do not starve behind a stream of readers.
class EpochGate {
 public:
  /// Epoch of the last committed update. Thread-safe without the gate held.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Shared (reader) side: hold for the lifetime of one query batch.
  class Read {
   public:
    explicit Read(EpochGate* gate)
        : lock_(gate->mu_), epoch_(gate->epoch()) {}

    /// The snapshot this reader is pinned to. Stable while the lock is
    /// held — writers are excluded.
    uint64_t epoch() const { return epoch_; }

   private:
    std::shared_lock<std::shared_mutex> lock_;
    uint64_t epoch_;
  };

  /// Exclusive (writer) side: hold while mutating the fragmentation and
  /// invalidating caches. Call Commit() once the update is fully applied;
  /// a destructed uncommitted writer leaves the epoch unchanged (the
  /// update path CHECK-failed or threw — readers keep the old snapshot).
  class Write {
   public:
    explicit Write(EpochGate* gate) : gate_(gate), lock_(gate->mu_) {}

    /// Publishes the applied update; returns the new epoch.
    uint64_t Commit() {
      return gate_->epoch_.fetch_add(1, std::memory_order_release) + 1;
    }

   private:
    EpochGate* gate_;
    std::unique_lock<std::shared_mutex> lock_;
  };

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace pereach

#endif  // PEREACH_SERVER_EPOCH_GATE_H_
