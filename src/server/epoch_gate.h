#ifndef PEREACH_SERVER_EPOCH_GATE_H_
#define PEREACH_SERVER_EPOCH_GATE_H_

#include <atomic>
#include <cstdint>

#include "src/util/sync.h"

namespace pereach {

/// Snapshot gate between query batches (readers) and graph updates
/// (writers). The mutable state behind the gate — the index's
/// Fragmentation, the engines' FragmentContext caches — is only touched by
/// a writer while every reader is drained, so a batch that entered at epoch
/// e evaluates every one of its queries against exactly the first e updates:
/// readers never observe a half-applied update.
///
/// The scheme is deliberately coarse (one SharedMutex, epoch counter
/// advanced by the writer before release): updates are rare relative to
/// queries, batches bound reader hold times, and writers on a shared mutex
/// do not starve behind a stream of readers.
class EpochGate {
 public:
  /// Epoch of the last committed update. Thread-safe without the gate held.
  ///
  /// Memory ordering: the counter is published by Commit() with RELEASE and
  /// read here with ACQUIRE — not the defaulted seq_cst, and not relaxed.
  /// The pairing is load-bearing for the gateless readers (Submit's cache
  /// lookup, Reject's epoch stamp, observability): an acquire load that
  /// observes epoch e synchronizes-with the release increment to e, so it
  /// also sees every index/cache mutation the writer made BEFORE committing
  /// e (the writer holds mu_ exclusively across those writes, and the
  /// fetch_add happens after them in program order). Readers under the
  /// shared lock get the same guarantee from the mutex itself; acquire
  /// keeps the unlocked path correct too. Nothing here needs a total order
  /// across unrelated atomics, which is all seq_cst would add.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Shared (reader) side: hold for the lifetime of one query batch.
  class PEREACH_SCOPED_CAPABILITY Read {
   public:
    explicit Read(EpochGate* gate) PEREACH_ACQUIRE_SHARED(gate->mu_)
        : gate_(gate) {
      gate_->mu_.LockShared();
      epoch_ = gate_->epoch();
    }
    ~Read() PEREACH_RELEASE_GENERIC() { gate_->mu_.UnlockShared(); }

    /// The snapshot this reader is pinned to. Stable while the lock is
    /// held — writers are excluded.
    uint64_t epoch() const { return epoch_; }

   private:
    PEREACH_DISALLOW_COPY_AND_ASSIGN(Read);

    EpochGate* const gate_;
    uint64_t epoch_;
  };

  /// Exclusive (writer) side: hold while mutating the fragmentation and
  /// invalidating caches. Call Commit() once the update is fully applied;
  /// a destructed uncommitted writer leaves the epoch unchanged (the
  /// update path CHECK-failed or threw — readers keep the old snapshot).
  class PEREACH_SCOPED_CAPABILITY Write {
   public:
    explicit Write(EpochGate* gate) PEREACH_ACQUIRE(gate->mu_) : gate_(gate) {
      gate_->mu_.Lock();
    }
    ~Write() PEREACH_RELEASE() { gate_->mu_.Unlock(); }

    /// Publishes the applied update; returns the new epoch. The RELEASE
    /// increment is the other half of epoch()'s acquire pairing: it fences
    /// every mutation this writer made under the exclusive lock before the
    /// new value, so a gateless acquire reader that sees the new epoch
    /// sees the fully-applied update.
    uint64_t Commit() {
      return gate_->epoch_.fetch_add(1, std::memory_order_release) + 1;
    }

   private:
    PEREACH_DISALLOW_COPY_AND_ASSIGN(Write);

    EpochGate* const gate_;
  };

 private:
  SharedMutex mu_{LockRank::kEpochGate};
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace pereach

#endif  // PEREACH_SERVER_EPOCH_GATE_H_
