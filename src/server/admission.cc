#include "src/server/admission.h"

namespace pereach {

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kStopping:
      return "stopping";
    case RejectReason::kMalformed:
      return "malformed";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kQueueStale:
      return "queue_stale";
    case RejectReason::kTenantQuota:
      return "tenant_quota";
    case RejectReason::kTransportError:
      return "transport_error";
  }
  return "unknown";
}

}  // namespace pereach
