#ifndef PEREACH_SERVER_ADMISSION_H_
#define PEREACH_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>

namespace pereach {

/// Client identity for fair-share quotas. Tenancy is cooperative (the id is
/// whatever the caller passes to Submit); the default tenant 0 is what
/// single-tenant callers get without thinking about it.
using TenantId = uint64_t;

/// Why a submission resolved as rejected. Every non-kNone reason pairs with
/// ServedAnswer::rejected == true; accepted-and-answered queries carry
/// kNone. Mapped one-to-one onto the server_rejected_*_total counters
/// (docs/OPERATIONS.md has the full table).
enum class RejectReason : uint8_t {
  kNone = 0,
  /// The server is stopping (or stopped); the query was never evaluated.
  kStopping,
  /// The query cannot be evaluated (an rpq whose regex exceeded the
  /// automaton state cap carries no automaton).
  kMalformed,
  /// The query's class queue is at its entry budget (admission.max_queue).
  kQueueFull,
  /// The query's class queue is stalled: the oldest pending query has
  /// waited longer than admission.max_queue_age_us, so admitting more work
  /// would only grow an already-unserviced backlog.
  kQueueStale,
  /// The submitting tenant is at its in-flight quota
  /// (admission.tenant_quota).
  kTenantQuota,
  /// The serving transport failed the round carrying this query's batch (a
  /// worker died, a deadline expired, or a frame arrived corrupt). The
  /// query was admitted and dispatched but could not be evaluated; the
  /// server keeps serving and the client may retry.
  kTransportError,
};

/// Printable name of a reason ("none", "stopping", ...), for logs and the
/// metrics snapshot.
const char* RejectReasonName(RejectReason reason);

/// Backpressure budgets. Defaults are all 0 = disabled, which reproduces
/// the pre-hardening behavior (unbounded queues, no quotas); production
/// deployments should set every budget (tuning guidance in
/// docs/OPERATIONS.md).
struct AdmissionOptions {
  /// Per-class pending-entry budget: Submit rejects (kQueueFull) while the
  /// class queue holds this many queries. 0 = unbounded.
  size_t max_queue = 0;
  /// Per-class age budget in microseconds: Submit rejects (kQueueStale)
  /// while the OLDEST pending query of the class has waited longer than
  /// this — the dispatcher is not keeping up, so queueing more work only
  /// grows latency without bound. 0 = disabled.
  uint32_t max_queue_age_us = 0;
  /// Per-tenant in-flight quota, counted ACROSS all three class queues:
  /// Submit rejects (kTenantQuota) while the submitting tenant has this
  /// many admitted-but-unanswered queries. Bounds how much of the shared
  /// queue budget any one tenant can hold — the fair-share mechanism under
  /// skewed load. 0 = unlimited.
  size_t tenant_quota = 0;
};

}  // namespace pereach

#endif  // PEREACH_SERVER_ADMISSION_H_
