#ifndef PEREACH_SERVER_BATCH_QUEUE_H_
#define PEREACH_SERVER_BATCH_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/util/logging.h"

namespace pereach {

/// Knobs for one coalescing window (one per query class).
struct BatchPolicy {
  /// Size cap: a batch dispatches the moment this many queries are pending.
  size_t max_batch = 64;

  /// Time cap in microseconds, counted from the arrival of the oldest
  /// pending query. 0 dispatches whatever is pending immediately (paired
  /// with max_batch = 1 this is the per-query serving baseline).
  uint32_t max_window_us = 200;

  /// Adapt the window to the arrival rate: wait only as long as filling the
  /// batch is expected to take (EWMA of inter-arrival gaps × max_batch),
  /// capped at max_window_us. Under load the window collapses toward the
  /// burst width; after an idle stretch the estimate decays back to the cap
  /// within a few arrivals. When false, every batch waits exactly
  /// max_window_us.
  bool adaptive = true;
};

/// What the server returns for one query, beyond the answer itself.
struct ServedAnswer {
  /// The answer; its metrics field holds the WHOLE batch window the query
  /// was served in (metrics.queries = batch size, so PerQueryModeledMs()
  /// is this query's amortized modeled cost).
  QueryAnswer answer;
  /// Snapshot the batch evaluated at (number of committed updates).
  uint64_t epoch = 0;
  /// Number of queries coalesced into the batch.
  size_t batch_size = 0;
  /// True when the server was stopping and the query was never evaluated:
  /// `answer` is default-constructed and must not be read. A submission that
  /// loses the race against Stop() resolves this way instead of crashing the
  /// process or leaving the future broken.
  bool rejected = false;
};

/// One enqueued query: payload, completion promise, arrival stamp.
struct PendingQuery {
  Query query;
  std::promise<ServedAnswer> promise;
  std::chrono::steady_clock::time_point enqueue_time;
};

/// MPSC coalescing queue for one query class. Producers Push from any
/// thread; the class's dispatcher loops on PopBatch, which blocks until at
/// least one query is pending, then keeps collecting until the size cap or
/// the (adaptive) window deadline — measured from the OLDEST pending
/// arrival, so the window bounds queueing latency, not just batch spacing.
/// After Shutdown, Push rejects new queries (returns false) and PopBatch
/// drains whatever is queued without waiting for windows, then returns
/// empty batches forever.
class BatchQueue {
 public:
  explicit BatchQueue(BatchPolicy policy) : policy_(policy) {
    // max_batch == 0 would make PopBatch return empty batches forever while
    // queries sit queued — the dispatcher busy-spins on "empty means shut
    // down" and every client hangs. Clamp to the nearest sane policy
    // (per-query batches) instead of trusting callers; policy() reports the
    // clamped value.
    if (policy_.max_batch == 0) policy_.max_batch = 1;
  }

  /// Enqueues a query and feeds the arrival-rate estimator. Returns false —
  /// leaving `pending` unmoved, promise intact — when the queue has been
  /// Shutdown: the dispatcher is draining or gone, so the caller must
  /// resolve the promise itself (a Push CHECK here would let any client
  /// thread racing Stop() abort the whole process).
  [[nodiscard]] bool Push(PendingQuery&& pending);

  /// Blocks for the next batch; empty means shut down and drained.
  std::vector<PendingQuery> PopBatch();

  /// Wakes the dispatcher and switches PopBatch to drain mode.
  void Shutdown();

  size_t pending() const;

  /// Current adaptive window in microseconds (observability).
  double window_us() const;

  const BatchPolicy& policy() const { return policy_; }

 private:
  double WindowUsLocked() const;

  BatchPolicy policy_;  // clamped at construction, immutable afterwards
  mutable std::mutex mu_;
  std::condition_variable arrived_;
  std::deque<PendingQuery> queue_;
  bool shutdown_ = false;

  // EWMA of inter-arrival gaps, microseconds. A cold queue (no gap observed
  // yet) behaves like the fixed-window policy; the first gap initializes
  // the estimate outright, later gaps blend in.
  double ewma_gap_us_ = 0.0;
  bool have_arrival_ = false;
  bool have_gap_ = false;
  std::chrono::steady_clock::time_point last_arrival_;
};

}  // namespace pereach

#endif  // PEREACH_SERVER_BATCH_QUEUE_H_
