#ifndef PEREACH_SERVER_BATCH_QUEUE_H_
#define PEREACH_SERVER_BATCH_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/engine/query_key.h"
#include "src/server/admission.h"
#include "src/util/logging.h"
#include "src/util/sync.h"

namespace pereach {

/// Knobs for one coalescing window (one per query class).
struct BatchPolicy {
  /// Size cap: a batch dispatches the moment this many queries are pending.
  size_t max_batch = 64;

  /// Time cap in microseconds, counted from the arrival of the oldest
  /// pending query. 0 dispatches whatever is pending immediately (paired
  /// with max_batch = 1 this is the per-query serving baseline).
  uint32_t max_window_us = 200;

  /// Adapt the window to the arrival rate: wait only as long as filling the
  /// batch is expected to take (EWMA of inter-arrival gaps × max_batch),
  /// capped at max_window_us. Under load the window collapses toward the
  /// burst width; after an idle stretch the estimate decays back to the cap
  /// within a few arrivals. When false, every batch waits exactly
  /// max_window_us.
  bool adaptive = true;
};

/// What the server returns for one query, beyond the answer itself.
struct ServedAnswer {
  /// The answer; its metrics field holds the WHOLE batch window the query
  /// was served in (metrics.queries = batch size, so PerQueryModeledMs()
  /// is this query's amortized modeled cost). Cache hits carry EMPTY
  /// metrics — a hit costs no evaluation round, so there is no fresh
  /// window to report (the answer fields are bit-identical to the
  /// evaluated entry's).
  QueryAnswer answer;
  /// Snapshot the batch evaluated at (number of committed updates). For a
  /// cache hit, the snapshot the cached entry was computed at — always the
  /// committed epoch at submission, by the cache's epoch key.
  uint64_t epoch = 0;
  /// Number of queries coalesced into the batch (1 for a cache hit).
  size_t batch_size = 0;
  /// True when the query was never evaluated: `answer` is
  /// default-constructed and must not be read. `reject_reason` says why —
  /// a Stop() race, a malformed query, or admission control turning work
  /// away under pressure (the backpressure contract: reject, never queue
  /// unboundedly).
  bool rejected = false;
  RejectReason reject_reason = RejectReason::kNone;
  /// True when the answer was served from the epoch-keyed answer cache.
  bool cache_hit = false;
};

/// One enqueued query: payload, completion promise, arrival stamp, plus the
/// admission bookkeeping Submit resolved (tenant for quota release, the
/// canonical cache key so the dispatcher inserts without re-canonicalizing).
struct PendingQuery {
  Query query;
  std::promise<ServedAnswer> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  TenantId tenant = 0;
  QueryKey cache_key;      // empty bytes when the answer cache is off
  bool has_cache_key = false;
};

/// Push verdict, decided atomically under the queue lock. Everything except
/// kAccepted leaves `pending` unmoved (promise intact) so the caller can
/// resolve it as rejected with the matching RejectReason.
enum class PushOutcome : uint8_t {
  kAccepted = 0,
  /// Shutdown() ran: the dispatcher is draining or gone.
  kShutdown,
  /// The queue holds budget.max_queue entries already.
  kQueueFull,
  /// The oldest pending entry overran budget.max_queue_age_us.
  kQueueStale,
};

/// MPSC coalescing queue for one query class. Producers Push from any
/// thread; the class's dispatcher loops on PopBatch, which blocks until at
/// least one query is pending, then keeps collecting until the size cap or
/// the (adaptive) window deadline — measured from the OLDEST pending
/// arrival, so the window bounds queueing latency, not just batch spacing.
/// Push enforces the class's admission budgets (entries and age) under the
/// same lock that orders arrivals, so budget verdicts are exact, not racy.
/// After Shutdown, Push rejects new queries and PopBatch drains whatever is
/// queued without waiting for windows, then returns empty batches forever.
class BatchQueue {
 public:
  explicit BatchQueue(BatchPolicy policy, AdmissionOptions admission = {})
      : policy_(policy), admission_(admission) {
    // max_batch == 0 would make PopBatch return empty batches forever while
    // queries sit queued — the dispatcher busy-spins on "empty means shut
    // down" and every client hangs. Clamp to the nearest sane policy
    // (per-query batches) instead of trusting callers; policy() reports the
    // clamped value.
    if (policy_.max_batch == 0) policy_.max_batch = 1;
  }

  /// Enqueues a query and feeds the arrival-rate estimator. Any verdict
  /// other than kAccepted leaves `pending` unmoved — promise intact — and
  /// the caller must resolve it (a CHECK here would let any client thread
  /// racing Stop() or a backlogged queue abort the whole process).
  [[nodiscard]] PushOutcome Push(PendingQuery&& pending);

  /// Blocks for the next batch; empty means shut down and drained.
  std::vector<PendingQuery> PopBatch();

  /// Wakes the dispatcher and switches PopBatch to drain mode.
  void Shutdown();

  size_t pending() const;

  /// Current adaptive window in microseconds (observability).
  double window_us() const;

  const BatchPolicy& policy() const { return policy_; }
  const AdmissionOptions& admission() const { return admission_; }

 private:
  double WindowUsLocked() const PEREACH_REQUIRES(mu_);

  BatchPolicy policy_;  // clamped at construction, immutable afterwards
  AdmissionOptions admission_;
  mutable Mutex mu_{LockRank::kBatchQueue};
  CondVar arrived_;
  std::deque<PendingQuery> queue_ PEREACH_GUARDED_BY(mu_);
  bool shutdown_ PEREACH_GUARDED_BY(mu_) = false;

  // EWMA of inter-arrival gaps, microseconds. A cold queue (no gap observed
  // yet) behaves like the fixed-window policy; the first gap initializes
  // the estimate outright, later gaps blend in.
  double ewma_gap_us_ PEREACH_GUARDED_BY(mu_) = 0.0;
  bool have_arrival_ PEREACH_GUARDED_BY(mu_) = false;
  bool have_gap_ PEREACH_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point last_arrival_ PEREACH_GUARDED_BY(mu_);
};

}  // namespace pereach

#endif  // PEREACH_SERVER_BATCH_QUEUE_H_
