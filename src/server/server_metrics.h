#ifndef PEREACH_SERVER_SERVER_METRICS_H_
#define PEREACH_SERVER_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "src/util/sync.h"

namespace pereach {

/// The serving layer's exportable metrics registry: a fixed, enumerable set
/// of counters, gauges and histograms. Fixed and enum-keyed on purpose —
/// update sites are branch-free array indexing, the full name/type/unit
/// catalog is available to tooling (examples/server_stats --list prints it;
/// scripts/check_docs.py fails CI when a name is missing from
/// docs/OPERATIONS.md), and a snapshot is a plain struct that serializes to
/// JSON without reflection.
///
/// Conventions: counters are monotonic and suffixed _total; gauges are
/// instantaneous values sampled at snapshot time; histograms record one
/// observation per batch window on geometric buckets (powers of two), with
/// percentiles interpolated within the bucket. Metric names are the
/// stable operations surface — renaming one is a breaking change for
/// operators and must update docs/OPERATIONS.md (CI enforces presence).

enum class CounterId : size_t {
  kQueriesSubmitted = 0,  // every Submit call, admitted or not
  kQueriesAnswered,       // futures resolved with an answer (evaluated + cached)
  kQueriesRejected,       // futures resolved rejected, any reason
  kRejectedStopping,
  kRejectedMalformed,
  kRejectedQueueFull,
  kRejectedQueueStale,
  kRejectedTenantQuota,
  kRejectedTransport,  // serving-transport failures (dead worker, deadline,
                       // corrupt frame) that rejected a dispatched batch
  kBatches,            // EvaluateBatch windows across all classes
  kUpdates,            // committed update epochs
  kCacheHits,          // answer-cache hits (served without evaluation)
  kCacheMisses,        // enabled-cache lookups that missed
  kCacheInsertions,    // entries written after evaluation
  kCacheEvictions,     // LRU drops to hold the entry/byte budgets
  kCacheInvalidated,   // entries dropped by epoch advances
  kTransportRetries,   // in-round re-dispatches after a site exchange failed
  kTransportRespawns,  // worker re-establishments after the first Hello
  kTransportDegraded,  // site-rounds evaluated locally (degrade_local)
  kCount,
};

enum class GaugeId : size_t {
  kQueueDepthReach = 0,  // pending entries in the reach class queue
  kQueueDepthDist,
  kQueueDepthRpq,
  kCacheEntries,
  kCacheBytes,
  kEpoch,            // committed update epoch
  kEpochLag,         // committed epoch minus the stalest dispatcher's last
                     // answered epoch (0 when every class is current)
  kTenantsInFlight,  // tenants with at least one admitted unanswered query
  kBreakersOpen,     // transport connections with an open/half-open breaker
  kCount,
};

enum class HistogramId : size_t {
  kBatchSize = 0,     // queries coalesced per dispatched batch
  kModeledMsReach,    // modeled ms per reach batch window
  kModeledMsDist,
  kModeledMsRpq,
  kWallMsReach,       // wall ms per reach batch window
  kWallMsDist,
  kWallMsRpq,
  kCount,
};

/// Catalog row: everything an operator needs to interpret one metric.
struct MetricInfo {
  const char* name;  // stable exported name, e.g. "server_cache_hits_total"
  const char* type;  // "counter" | "gauge" | "histogram"
  const char* unit;  // "queries", "ms", "bytes", ...
  const char* help;  // one-line meaning
};

std::span<const MetricInfo> CounterInfos();
std::span<const MetricInfo> GaugeInfos();
std::span<const MetricInfo> HistogramInfos();

/// Histogram state at snapshot time. Percentiles are estimates (linear
/// interpolation inside the landing bucket); count/sum/min/max are exact.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// One consistent-enough view of every metric (counters are read
/// individually-atomically; a snapshot taken mid-batch may see the batch
/// counter but not yet its histogram observation — fine for monitoring).
struct MetricsSnapshot {
  std::array<uint64_t, static_cast<size_t>(CounterId::kCount)> counters{};
  std::array<double, static_cast<size_t>(GaugeId::kCount)> gauges{};
  std::array<HistogramSnapshot, static_cast<size_t>(HistogramId::kCount)>
      histograms{};

  uint64_t counter(CounterId id) const {
    return counters[static_cast<size_t>(id)];
  }
  double gauge(GaugeId id) const { return gauges[static_cast<size_t>(id)]; }
  const HistogramSnapshot& histogram(HistogramId id) const {
    return histograms[static_cast<size_t>(id)];
  }

  /// Serializes the whole snapshot as one JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, p50, p90, p99}, ...}} — the bench_server --metrics-json=
  /// payload and the server_stats example's source of truth.
  std::string ToJson() const;
};

class ServerMetrics {
 public:
  ServerMetrics();

  void AddCounter(CounterId id, uint64_t delta = 1) {
    counters_[static_cast<size_t>(id)].fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  /// Imports an externally-maintained monotonic counter (the AnswerCache
  /// keeps its own books; the server copies them in before snapshotting).
  void SetCounter(CounterId id, uint64_t value) {
    counters_[static_cast<size_t>(id)].store(value, std::memory_order_relaxed);
  }
  void SetGauge(GaugeId id, double value) {
    MutexLock lock(&mu_);
    gauges_[static_cast<size_t>(id)] = value;
  }
  void Observe(HistogramId id, double value);

  MetricsSnapshot Snapshot() const;

  /// Histogram bucket upper bounds: powers of two spanning [2^-10, 2^20],
  /// shared by every histogram (values are ms or queries; both fit), plus
  /// an implicit overflow bucket.
  static constexpr size_t kNumBuckets = 31;

 private:
  struct Histogram {
    std::array<uint64_t, kNumBuckets + 1> buckets{};  // +1 = overflow
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  static double BucketUpper(size_t i);
  static HistogramSnapshot Summarize(const Histogram& h);

  std::array<std::atomic<uint64_t>, static_cast<size_t>(CounterId::kCount)>
      counters_;
  mutable Mutex mu_{LockRank::kServerMetrics};
  std::array<double, static_cast<size_t>(GaugeId::kCount)> gauges_
      PEREACH_GUARDED_BY(mu_){};
  std::array<Histogram, static_cast<size_t>(HistogramId::kCount)> histograms_
      PEREACH_GUARDED_BY(mu_);
};

}  // namespace pereach

#endif  // PEREACH_SERVER_SERVER_METRICS_H_
