#include "src/server/answer_cache.h"

#include <utility>

namespace pereach {

AnswerCache::AnswerCache(AnswerCacheOptions options) : options_(options) {}

std::optional<CachedAnswer> AnswerCache::Lookup(const QueryKey& key,
                                                uint64_t epoch) {
  if (!options_.enabled) return std::nullopt;
  MutexLock lock(&mu_);
  if (epoch != epoch_) {
    // The caller's committed epoch ran ahead of the last OnEpochAdvance
    // (or the cache was built mid-stream); nothing cached answers there.
    ++counters_.misses;
    return std::nullopt;
  }
  const auto it = map_.find(key.bytes);
  if (it == map_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  return it->second->answer;
}

void AnswerCache::Insert(const QueryKey& key, uint64_t epoch,
                         const CachedAnswer& answer) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  if (epoch != epoch_) return;  // batch drained across a commit: stale
  const auto it = map_.find(key.bytes);
  if (it != map_.end()) {
    // Same key, same epoch: the answer is necessarily identical (the key
    // determines it at a fixed snapshot) — just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key.bytes, answer});
  map_.emplace(key.bytes, lru_.begin());
  bytes_ += EntryBytes(lru_.front());
  ++counters_.insertions;
  EvictToBudgetLocked();
}

void AnswerCache::OnEpochAdvance(uint64_t epoch) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  epoch_ = epoch;
  counters_.invalidated += lru_.size();
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

void AnswerCache::EvictToBudgetLocked() {
  while (!lru_.empty() &&
         ((options_.max_entries > 0 && lru_.size() > options_.max_entries) ||
          (options_.max_bytes > 0 && bytes_ > options_.max_bytes))) {
    const Entry& victim = lru_.back();
    bytes_ -= EntryBytes(victim);
    map_.erase(victim.key_bytes);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

size_t AnswerCache::entries() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

size_t AnswerCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

AnswerCacheCounters AnswerCache::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

}  // namespace pereach
