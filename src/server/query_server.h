#ifndef PEREACH_SERVER_QUERY_SERVER_H_
#define PEREACH_SERVER_QUERY_SERVER_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/net/cluster.h"
#include "src/server/batch_queue.h"
#include "src/server/epoch_gate.h"

namespace pereach {

struct ServerOptions {
  /// Coalescing policy, applied to each query class's window independently.
  BatchPolicy policy;
  /// Equation form and coordinator answer paths the per-class engines
  /// evaluate with: reach_path / dist_path route the reach and dist
  /// dispatchers through their standing boundary indexes (which ride the
  /// same epoch-gated invalidation as every per-fragment cache), kBes keeps
  /// the paper's per-query assembling.
  PartialEvalOptions eval;
  /// Network cost model of the underlying simulated cluster.
  NetworkModel net;
  /// Site-simulation threads (0 = hardware concurrency).
  size_t cluster_threads = 0;
};

/// Aggregate serving counters. Snapshot via QueryServer::stats().
struct ServerStats {
  size_t queries = 0;         // answered (set promises)
  size_t batches = 0;         // EvaluateBatch calls across all classes
  size_t max_batch = 0;       // largest batch dispatched
  size_t updates = 0;         // committed update epochs
  double sum_modeled_ms = 0;  // total modeled time across batch windows
  double sum_wall_ms = 0;     // total wall time across batch windows
  // Modeled time per class dispatcher. Batches of one class serialize on
  // its dispatcher while classes overlap, so the modeled time to serve the
  // whole workload — the simulator's throughput denominator — is the max
  // entry, not the sum.
  std::array<double, 3> modeled_ms_by_class{};

  double AvgBatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(batches);
  }
  double AvgPerQueryModeledMs() const {
    return queries == 0 ? 0.0 : sum_modeled_ms / static_cast<double>(queries);
  }
  double ModeledMakespanMs() const {
    double makespan = 0;
    for (double ms : modeled_ms_by_class) makespan = std::max(makespan, ms);
    return makespan;
  }
};

/// Concurrent serving frontend over one fragmentation — the piece that
/// turns the one-query-at-a-time simulator into a serving system:
///
///  - Submit() is callable from any number of client threads and returns a
///    future. Queries are routed to a per-class BatchQueue (reach / dist /
///    rpq batches multiplex different wire shapes, so classes coalesce
///    separately and in parallel).
///  - One dispatcher thread per class pops coalesced batches — adaptive
///    time/size window, see BatchPolicy — and drives them through a
///    DEDICATED PartialEvalEngine in one EvaluateBatch round, amortizing
///    communication across every in-flight query of the class (per-thread
///    cluster metrics windows keep the three dispatchers' books separate).
///  - AddEdge/AddEdges serialize through an epoch-based writer path: the
///    writer drains in-flight batches (EpochGate), applies the update via
///    the IncrementalReachIndex (whose listener invalidates exactly the
///    touched FragmentContext entries in every class engine), commits the
///    epoch, and only then readmits batches. Every answer reports the epoch
///    it was computed at; a batch never observes a half-applied update.
///
/// The index must outlive the server. The server installs itself as the
/// index's update listener; updates must flow through the server (calling
/// index.AddEdge directly would race in-flight batches).
class QueryServer {
 public:
  explicit QueryServer(IncrementalReachIndex* index,
                       ServerOptions options = {});

  /// Drains pending queries, stops the dispatchers, detaches from the index.
  ~QueryServer();

  /// Stops serving: pending queries drain and are answered, dispatchers
  /// exit, the index listener detaches. Submissions racing (or following)
  /// Stop resolve with ServedAnswer::rejected instead of crashing — the
  /// future always becomes ready. Idempotent; the destructor calls it.
  void Stop();

  /// Enqueues one query; the future resolves once its batch is answered
  /// (or immediately, with rejected == true, if the server is stopping).
  std::future<ServedAnswer> Submit(Query query);

  /// Applies one edge insertion as one snapshot epoch; blocks while
  /// in-flight batches drain. Returns the committed epoch.
  uint64_t AddEdge(NodeId u, NodeId v);

  /// Applies a whole update batch as ONE snapshot epoch (one structural
  /// rebuild); the cheaper writer path for bulk loads.
  uint64_t AddEdges(std::span<const std::pair<NodeId, NodeId>> edges);

  /// Blocks until every query submitted so far has been answered. Queries
  /// submitted concurrently with Drain may or may not be covered.
  void Drain();

  /// Epoch of the latest committed update.
  uint64_t epoch() const { return gate_.epoch(); }

  ServerStats stats() const;

  /// Adaptive window currently estimated for a class (observability).
  double window_us(QueryKind kind) const {
    return queues_[static_cast<size_t>(kind)]->window_us();
  }

  Cluster* cluster() { return &cluster_; }

 private:
  static constexpr size_t kNumClasses = 3;  // QueryKind values

  void DispatcherLoop(size_t class_idx);

  IncrementalReachIndex* index_;
  ServerOptions options_;
  Cluster cluster_;
  EpochGate gate_;
  // Updates the index had applied before this server attached; the gate's
  // epochs count from here.
  uint64_t index_epoch_base_ = 0;

  std::array<std::unique_ptr<BatchQueue>, kNumClasses> queues_;
  std::array<std::unique_ptr<PartialEvalEngine>, kNumClasses> engines_;
  std::array<std::thread, kNumClasses> dispatchers_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes concurrent Stop() calls

  // Drain bookkeeping: queries submitted but not yet answered.
  mutable std::mutex drain_mu_;
  std::condition_variable drained_;
  size_t in_flight_ = 0;  // guarded by drain_mu_

  mutable std::mutex stats_mu_;
  ServerStats stats_;  // guarded by stats_mu_
};

}  // namespace pereach

#endif  // PEREACH_SERVER_QUERY_SERVER_H_
