#ifndef PEREACH_SERVER_QUERY_SERVER_H_
#define PEREACH_SERVER_QUERY_SERVER_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/net/cluster.h"
#include "src/server/admission.h"
#include "src/server/answer_cache.h"
#include "src/server/batch_queue.h"
#include "src/server/epoch_gate.h"
#include "src/server/server_metrics.h"
#include "src/util/sync.h"

namespace pereach {

struct ServerOptions {
  /// Coalescing policy, applied to each query class's window independently.
  BatchPolicy policy;
  /// Equation form and coordinator answer paths the per-class engines
  /// evaluate with: reach_path / dist_path route the reach and dist
  /// dispatchers through their standing boundary indexes (which ride the
  /// same epoch-gated invalidation as every per-fragment cache), kBes keeps
  /// the paper's per-query assembling.
  PartialEvalOptions eval;
  /// Network cost model of the underlying simulated cluster.
  NetworkModel net;
  /// Site-simulation threads (0 = hardware concurrency).
  size_t cluster_threads = 0;
  /// Epoch-keyed answer cache (default off — enable for workloads with
  /// repeated queries; DESIGN.md §11.1 for the key-soundness argument).
  AnswerCacheOptions cache;
  /// Backpressure budgets and tenant quotas (default unbounded — set every
  /// budget in production; DESIGN.md §11.2, docs/OPERATIONS.md for tuning).
  AdmissionOptions admission;
  /// Serving transport behind the cluster's rounds (default simulated
  /// in-process; kShm and kSocket serve over real workers, DESIGN.md §13).
  /// A transport failure rejects the affected batch (kTransportError) and
  /// the server keeps serving.
  TransportOptions transport;
};

/// Aggregate serving counters. Snapshot via QueryServer::stats(). Counts
/// EVALUATED work only (cache hits and rejections never reach a
/// dispatcher); the metrics registry (QueryServer::Metrics) is the full
/// observability surface.
struct ServerStats {
  size_t queries = 0;         // answered (set promises)
  size_t batches = 0;         // EvaluateBatch calls across all classes
  size_t max_batch = 0;       // largest batch dispatched
  size_t updates = 0;         // committed update epochs
  double sum_modeled_ms = 0;  // total modeled time across batch windows
  double sum_wall_ms = 0;     // total wall time across batch windows
  // Modeled time per class dispatcher. Batches of one class serialize on
  // its dispatcher while classes overlap, so the modeled time to serve the
  // whole workload — the simulator's throughput denominator — is the max
  // entry, not the sum.
  std::array<double, 3> modeled_ms_by_class{};

  double AvgBatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(batches);
  }
  double AvgPerQueryModeledMs() const {
    return queries == 0 ? 0.0 : sum_modeled_ms / static_cast<double>(queries);
  }
  double ModeledMakespanMs() const {
    double makespan = 0;
    for (double ms : modeled_ms_by_class) makespan = std::max(makespan, ms);
    return makespan;
  }
};

/// Concurrent serving frontend over one fragmentation — the piece that
/// turns the one-query-at-a-time simulator into a serving system:
///
///  - Submit() is callable from any number of client threads and returns a
///    future. Queries are routed to a per-class BatchQueue (reach / dist /
///    rpq batches multiplex different wire shapes, so classes coalesce
///    separately and in parallel).
///  - One dispatcher thread per class pops coalesced batches — adaptive
///    time/size window, see BatchPolicy — and drives them through a
///    DEDICATED PartialEvalEngine in one EvaluateBatch round, amortizing
///    communication across every in-flight query of the class (per-thread
///    cluster metrics windows keep the three dispatchers' books separate).
///  - AddEdge/AddEdges serialize through an epoch-based writer path: the
///    writer drains in-flight batches (EpochGate), applies the update via
///    the IncrementalReachIndex (whose listener invalidates exactly the
///    touched FragmentContext entries in every class engine), commits the
///    epoch, and only then readmits batches. Every answer reports the epoch
///    it was computed at; a batch never observes a half-applied update.
///
/// Production hardening (DESIGN.md §11, docs/OPERATIONS.md):
///
///  - Answer cache. With ServerOptions::cache.enabled, Submit looks the
///    query up by canonical key (CanonicalQueryKey: rpq queries share a key
///    across regex phrasings via the canonical automaton signature) at the
///    committed epoch; a hit resolves the future immediately with the
///    bit-identical stored answer — no queue space, no evaluation round.
///    Commits invalidate the whole cache (epoch-keyed entries can never be
///    served at a later epoch).
///  - Admission control. ServerOptions::admission bounds every queue in
///    entries and in age, and tenants in in-flight queries; over-budget
///    submissions resolve rejected (ServedAnswer::reject_reason) instead
///    of queueing unboundedly. Tenancy is the id passed to Submit.
///  - Metrics. Every decision increments the ServerMetrics registry;
///    Metrics() snapshots counters/gauges/histograms, MetricsJson() is the
///    exportable form (bench_server --metrics-json=, examples/server_stats).
///
/// The index must outlive the server. The server installs itself as the
/// index's update listener; updates must flow through the server (calling
/// index.AddEdge directly would race in-flight batches).
class QueryServer {
 public:
  explicit QueryServer(IncrementalReachIndex* index,
                       ServerOptions options = {});

  /// Drains pending queries, stops the dispatchers, detaches from the index.
  ~QueryServer();

  /// Stops serving: pending queries drain and are answered, dispatchers
  /// exit, the index listener detaches. Submissions racing (or following)
  /// Stop resolve with ServedAnswer::rejected instead of crashing — the
  /// future always becomes ready. Idempotent; the destructor calls it.
  void Stop();

  /// Enqueues one query; the future resolves once its batch is answered —
  /// or immediately on a cache hit, or immediately with rejected == true
  /// (see ServedAnswer::reject_reason) when the server is stopping, the
  /// query is unevaluable, or an admission budget turned it away. `tenant`
  /// attributes the query for fair-share quotas; single-tenant callers
  /// keep the default.
  std::future<ServedAnswer> Submit(Query query, TenantId tenant = 0);

  /// Applies one edge insertion as one snapshot epoch; blocks while
  /// in-flight batches drain. Returns the committed epoch.
  uint64_t AddEdge(NodeId u, NodeId v);

  /// Applies a whole update batch as ONE snapshot epoch (one structural
  /// rebuild); the cheaper writer path for bulk loads.
  uint64_t AddEdges(std::span<const std::pair<NodeId, NodeId>> edges);

  /// Blocks until every query submitted so far has been answered. Queries
  /// submitted concurrently with Drain may or may not be covered.
  void Drain();

  /// Epoch of the latest committed update.
  uint64_t epoch() const { return gate_.epoch(); }

  ServerStats stats() const;

  /// Full observability snapshot: every counter, gauge and histogram of
  /// the metrics registry, gauges sampled at call time (queue depths,
  /// cache footprint, epoch lag, tenants in flight).
  MetricsSnapshot Metrics() const;

  /// The snapshot serialized as one JSON object — the
  /// `bench_server --metrics-json=` payload (schema in docs/OPERATIONS.md).
  std::string MetricsJson() const { return Metrics().ToJson(); }

  /// The answer cache's own books (observability for tests).
  AnswerCacheCounters cache_counters() const { return cache_.counters(); }

  /// Adaptive window currently estimated for a class (observability).
  double window_us(QueryKind kind) const {
    return queues_[static_cast<size_t>(kind)]->window_us();
  }

  Cluster* cluster() { return &cluster_; }

 private:
  static constexpr size_t kNumClasses = 3;  // QueryKind values

  void DispatcherLoop(size_t class_idx);

  /// Resolves `promise` as rejected with `reason`, stamping the committed
  /// epoch, and bumps the rejection counters.
  void Reject(std::promise<ServedAnswer>* promise, RejectReason reason);

  IncrementalReachIndex* index_;
  ServerOptions options_;
  Cluster cluster_;
  EpochGate gate_;
  // Updates the index had applied before this server attached; the gate's
  // epochs count from here.
  uint64_t index_epoch_base_ = 0;

  std::array<std::unique_ptr<BatchQueue>, kNumClasses> queues_;
  std::array<std::unique_ptr<PartialEvalEngine>, kNumClasses> engines_;
  std::array<std::thread, kNumClasses> dispatchers_;

  AnswerCache cache_;
  mutable ServerMetrics metrics_;  // mutable: Metrics() samples gauges
  // Snapshot each class last answered a batch at, for the epoch-lag gauge
  // (a class with no pending work is considered current).
  std::array<std::atomic<uint64_t>, kNumClasses> last_answered_epoch_{};

  std::atomic<bool> stopping_{false};
  // Serializes concurrent Stop() calls. Ranked below everything: it is held
  // across dispatcher joins and the writer-held listener detach.
  Mutex stop_mu_{LockRank::kServerStop};

  // Drain and quota bookkeeping: queries submitted but not yet answered,
  // total and per tenant. One lock: Submit and batch completion touch both.
  mutable Mutex drain_mu_{LockRank::kServerDrain};
  CondVar drained_;
  size_t in_flight_ PEREACH_GUARDED_BY(drain_mu_) = 0;
  std::unordered_map<TenantId, size_t> tenant_in_flight_
      PEREACH_GUARDED_BY(drain_mu_);

  mutable Mutex stats_mu_{LockRank::kServerStats};
  ServerStats stats_ PEREACH_GUARDED_BY(stats_mu_);
};

}  // namespace pereach

#endif  // PEREACH_SERVER_QUERY_SERVER_H_
