#ifndef PEREACH_SERVER_ANSWER_CACHE_H_
#define PEREACH_SERVER_ANSWER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/engine/query_key.h"
#include "src/util/sync.h"

namespace pereach {

/// Answer-cache knobs. Defaults keep the cache OFF so the server's
/// observable behavior (stats counters, every answer freshly evaluated) is
/// unchanged unless an operator opts in; the budgets bound the cache the
/// moment it is enabled (FERRARI-style: an index is only as good as the
/// budget it respects).
struct AnswerCacheOptions {
  /// Master switch. When false, Lookup always misses and Insert drops.
  bool enabled = false;
  /// Entry budget: inserting beyond this evicts least-recently-used
  /// entries. 0 = unlimited (bounded by max_bytes alone).
  size_t max_entries = 4096;
  /// Byte budget over key + answer + bookkeeping bytes per entry; LRU
  /// eviction keeps the total at or under it. 0 = unlimited.
  size_t max_bytes = 1 << 20;
};

/// What the cache stores per entry: exactly the answer-determining fields
/// of QueryAnswer. Metrics are deliberately NOT cached — a hit costs no
/// evaluation, so replaying the original batch window would double-count
/// modeled time (a hit's ServedAnswer carries empty metrics and
/// cache_hit = true).
struct CachedAnswer {
  bool reachable = false;
  uint64_t distance = 0;
};

/// Monotonic counters the cache exports into the ServerMetrics snapshot.
struct AnswerCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;     // budget-driven LRU drops
  uint64_t invalidated = 0;   // entries dropped by epoch advances
};

/// Epoch-keyed LRU answer cache for the serving layer. The logical key of
/// an entry is (canonical query key, committed epoch): a hit requires BOTH
/// the canonical bytes and the epoch to match, so a cached answer is only
/// ever served at the exact snapshot it was computed at. Since updates
/// advance the epoch for every entry at once, the implementation stores
/// the epoch once for the whole cache and drops everything on advance
/// (eager invalidation) instead of tagging entries individually — same
/// semantics, no stale residue occupying the byte budget.
///
/// Thread-safe: lookups race with insertions from the class dispatchers
/// and with OnEpochAdvance from the writer path; one mutex serializes them
/// (entries are tiny, the critical sections are hash-map operations).
class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheOptions options);

  /// Returns the cached answer iff the cache is enabled, `epoch` is the
  /// cache's current epoch, and `key` is present. A hit refreshes LRU
  /// recency. Counts a miss only when the cache is enabled.
  std::optional<CachedAnswer> Lookup(const QueryKey& key, uint64_t epoch);

  /// Inserts (or refreshes) an entry computed at `epoch`. Dropped silently
  /// when the cache is disabled or `epoch` is stale (a batch that drained
  /// just before an update committed must not poison the new epoch).
  /// Evicts LRU entries until both budgets hold.
  void Insert(const QueryKey& key, uint64_t epoch, const CachedAnswer& answer);

  /// Writer-path hook: the committed epoch advanced, every cached answer
  /// is now unservable — drop them all and adopt the new epoch.
  void OnEpochAdvance(uint64_t epoch);

  size_t entries() const;
  size_t bytes() const;
  AnswerCacheCounters counters() const;
  const AnswerCacheOptions& options() const { return options_; }

  /// Bookkeeping bytes charged per entry on top of the key bytes (hash-map
  /// node, LRU list node, answer). Exposed so tests pin the byte budget
  /// arithmetic.
  static constexpr size_t kEntryOverheadBytes = 64;

 private:
  struct Entry {
    std::string key_bytes;
    CachedAnswer answer;
  };

  size_t EntryBytes(const Entry& entry) const {
    return entry.key_bytes.size() + kEntryOverheadBytes;
  }

  /// Drops LRU entries until the budgets hold.
  void EvictToBudgetLocked() PEREACH_REQUIRES(mu_);

  AnswerCacheOptions options_;

  mutable Mutex mu_{LockRank::kAnswerCache};
  // Epoch every entry answers at.
  uint64_t epoch_ PEREACH_GUARDED_BY(mu_) = 0;
  // Front = most recent.
  std::list<Entry> lru_ PEREACH_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      PEREACH_GUARDED_BY(mu_);
  size_t bytes_ PEREACH_GUARDED_BY(mu_) = 0;
  AnswerCacheCounters counters_ PEREACH_GUARDED_BY(mu_);
};

}  // namespace pereach

#endif  // PEREACH_SERVER_ANSWER_CACHE_H_
