#include "src/server/batch_queue.h"

#include <algorithm>

#include "src/util/logging.h"

namespace pereach {

namespace {
// EWMA weight of the newest gap. 0.25 follows bursts within ~4 arrivals
// without letting one stall reset the estimate.
constexpr double kGapAlpha = 0.25;
}  // namespace

PushOutcome BatchQueue::Push(PendingQuery&& pending) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return PushOutcome::kShutdown;  // racing Stop(): caller keeps promise
    }
    // Stamp the arrival under the lock: stamping outside would let two
    // racing producers enqueue in the opposite order of their timestamps,
    // and PopBatch computes its window deadline from queue_.front() on the
    // assumption that the front IS the oldest arrival.
    const auto now = std::chrono::steady_clock::now();
    // Admission budgets, checked under the same lock so the verdict is
    // exact. Entry budget first (the cheap check); then the age budget —
    // if the OLDEST pending query has already waited past the budget the
    // dispatcher is not keeping up, and admitting more work only grows a
    // backlog no one is draining.
    if (admission_.max_queue > 0 && queue_.size() >= admission_.max_queue) {
      return PushOutcome::kQueueFull;
    }
    if (admission_.max_queue_age_us > 0 && !queue_.empty()) {
      const double oldest_age_us =
          std::chrono::duration<double, std::micro>(now -
                                                    queue_.front().enqueue_time)
              .count();
      if (oldest_age_us > static_cast<double>(admission_.max_queue_age_us)) {
        return PushOutcome::kQueueStale;
      }
    }
    pending.enqueue_time = now;
    if (have_arrival_) {
      const double gap_us =
          std::chrono::duration<double, std::micro>(now - last_arrival_)
              .count();
      // Gaps longer than the window carry no batching signal (the previous
      // batch long since dispatched); cap them so one idle stretch does not
      // drown the estimate of burst width.
      const double capped =
          std::min(gap_us, static_cast<double>(policy_.max_window_us));
      // The first gap initializes the estimate outright — seeding from the
      // window cap would take ~1/alpha bursts to decay, stalling early
      // batches on the full window for no reason.
      ewma_gap_us_ = have_gap_
                         ? kGapAlpha * capped + (1.0 - kGapAlpha) * ewma_gap_us_
                         : capped;
      have_gap_ = true;
    } else {
      ewma_gap_us_ = static_cast<double>(policy_.max_window_us);
      have_arrival_ = true;
    }
    last_arrival_ = now;
    queue_.push_back(std::move(pending));
  }
  arrived_.NotifyOne();
  return PushOutcome::kAccepted;
}

double BatchQueue::WindowUsLocked() const {
  if (!policy_.adaptive || !have_gap_) {
    return static_cast<double>(policy_.max_window_us);
  }
  // Expected time to fill the batch at the current arrival rate; never
  // longer than the hard cap.
  const double fill_us =
      ewma_gap_us_ * static_cast<double>(policy_.max_batch > 0
                                             ? policy_.max_batch - 1
                                             : 0);
  return std::min(fill_us, static_cast<double>(policy_.max_window_us));
}

std::vector<PendingQuery> BatchQueue::PopBatch() {
  MutexLock lock(&mu_);
  // Wait loops are written out (not predicate lambdas) so thread-safety
  // analysis sees every guarded access under the held lock.
  while (!shutdown_ && queue_.empty()) arrived_.Wait(&mu_);
  if (queue_.empty()) return {};  // shut down and drained

  if (!shutdown_ && policy_.max_window_us > 0) {
    // Window counted from the oldest pending arrival: a query never waits
    // more than one window in the queue beyond the dispatcher's own
    // occupancy. When the dispatcher shows up late (the oldest query
    // arrived mid-evaluation of the previous batch) the deadline has long
    // expired — popping instantly would ship a batch of one straggler
    // right before the answered clients' resubmission burst lands. Linger
    // one fresh window instead; total added latency stays <= 2 windows.
    const auto window =
        std::chrono::microseconds(static_cast<int64_t>(WindowUsLocked()));
    auto deadline = queue_.front().enqueue_time + window;
    const auto now = std::chrono::steady_clock::now();
    if (deadline < now) deadline = now + window;
    while (!shutdown_ && queue_.size() < policy_.max_batch) {
      if (arrived_.WaitUntil(&mu_, deadline) == std::cv_status::timeout) break;
    }
  }

  const size_t take = std::min(queue_.size(), policy_.max_batch);
  std::vector<PendingQuery> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void BatchQueue::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  arrived_.NotifyAll();
}

size_t BatchQueue::pending() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

double BatchQueue::window_us() const {
  MutexLock lock(&mu_);
  return WindowUsLocked();
}

}  // namespace pereach
