#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace pereach {

std::vector<bool> ReachableFrom(const Graph& g, NodeId s) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::deque<NodeId> queue;
  seen[s] = true;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

bool Reaches(const Graph& g, NodeId s, NodeId t) {
  if (s == t) return true;
  std::vector<bool> seen(g.NumNodes(), false);
  std::deque<NodeId> queue;
  seen[s] = true;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (v == t) return true;
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return false;
}

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId s,
                                   uint32_t max_dist) {
  std::vector<uint32_t> dist(g.NumNodes(), kInfDistance);
  std::deque<NodeId> queue;
  dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] >= max_dist) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      if (dist[v] == kInfDistance) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

uint32_t BfsDistance(const Graph& g, NodeId s, NodeId t) {
  if (s == t) return 0;
  std::vector<uint32_t> dist(g.NumNodes(), kInfDistance);
  std::deque<NodeId> queue;
  dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (dist[v] == kInfDistance) {
        dist[v] = dist[u] + 1;
        if (v == t) return dist[v];
        queue.push_back(v);
      }
    }
  }
  return kInfDistance;
}

SccResult StronglyConnectedComponents(const Graph& g) {
  // Iterative Tarjan. Frames keep (node, next-edge-index) so the recursion
  // is simulated without stack-depth limits on path-shaped graphs.
  const size_t n = g.NumNodes();
  SccResult result;
  result.component_of.assign(n, 0);

  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::pair<NodeId, size_t>> frames;
  uint32_t next_index = 0;
  uint32_t next_component = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      auto& [u, edge_i] = frames.back();
      auto out = g.OutNeighbors(u);
      if (edge_i < out.size()) {
        const NodeId v = out[edge_i++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.emplace_back(v, 0);
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = next_component;
            if (w == u) break;
          }
          ++next_component;
        }
        const NodeId done = u;
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[done]);
        }
      }
    }
  }
  result.num_components = next_component;
  return result;
}

Condensation Condense(const Graph& g) {
  Condensation c;
  c.scc = StronglyConnectedComponents(g);
  const size_t k = c.scc.num_components;

  // Count then fill deduplicated inter-component edges.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const uint32_t cu = c.scc.component_of[u];
    for (NodeId v : g.OutNeighbors(u)) {
      const uint32_t cv = c.scc.component_of[v];
      if (cu != cv) edges.emplace_back(cu, cv);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  c.offsets.assign(k + 1, 0);
  for (const auto& [u, v] : edges) ++c.offsets[u + 1];
  for (size_t i = 1; i <= k; ++i) c.offsets[i] += c.offsets[i - 1];
  c.targets.resize(edges.size());
  std::vector<size_t> cursor(c.offsets.begin(), c.offsets.end() - 1);
  for (const auto& [u, v] : edges) c.targets[cursor[u]++] = v;
  return c;
}

std::vector<Bitset> ReachableTargets(const Graph& g,
                                     const std::vector<NodeId>& targets) {
  const size_t n = g.NumNodes();
  const size_t num_targets = targets.size();
  Condensation cond = Condense(g);
  const size_t k = cond.scc.num_components;

  // Per-component reachable-target bitsets. Component ids are in reverse
  // topological order, so ascending id order visits successors first.
  std::vector<Bitset> comp_bits(k, Bitset(num_targets));
  for (size_t i = 0; i < num_targets; ++i) {
    comp_bits[cond.scc.component_of[targets[i]]].Set(i);
  }
  for (uint32_t c = 0; c < k; ++c) {
    for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
      const uint32_t succ = cond.targets[e];
      PEREACH_CHECK_LT(succ, c);  // reverse topological order invariant
      comp_bits[c].UnionWith(comp_bits[succ]);
    }
  }

  std::vector<Bitset> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = comp_bits[cond.scc.component_of[v]];
  return out;
}

namespace {

// Shared engine of the ForEachReachableTarget* entry points: given the SCC
// condensation, propagate target bitsets block by block and emit per source
// (grouped == false) or per distinct source component (true).
std::vector<uint32_t> ReachableTargetSweep(
    const Condensation& cond, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits, bool grouped,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  std::vector<uint32_t> group_of(sources.size(), 0);
  if (sources.empty() || targets.empty()) return group_of;
  PEREACH_CHECK_GE(block_bits, 64u);
  const size_t k = cond.scc.num_components;

  // Dense group ids in order of first appearance over `sources`.
  constexpr uint32_t kNoGroup = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> group_of_comp(k, kNoGroup);
  std::vector<uint32_t> group_comp;  // group -> component
  for (uint32_t si = 0; si < sources.size(); ++si) {
    const uint32_t c = cond.scc.component_of[sources[si]];
    if (group_of_comp[c] == kNoGroup) {
      group_of_comp[c] = static_cast<uint32_t>(group_comp.size());
      group_comp.push_back(c);
    }
    group_of[si] = group_of_comp[c];
  }

  std::vector<Bitset> comp_bits(k, Bitset(block_bits));
  for (size_t base = 0; base < targets.size(); base += block_bits) {
    const size_t block = std::min(block_bits, targets.size() - base);
    for (Bitset& b : comp_bits) b.Clear();
    for (size_t i = 0; i < block; ++i) {
      comp_bits[cond.scc.component_of[targets[base + i]]].Set(i);
    }
    // Ascending component id == reverse topological order (successors first).
    for (uint32_t c = 0; c < k; ++c) {
      for (size_t e = cond.offsets[c]; e < cond.offsets[c + 1]; ++e) {
        comp_bits[c].UnionWith(comp_bits[cond.targets[e]]);
      }
    }
    if (grouped) {
      for (uint32_t gi = 0; gi < group_comp.size(); ++gi) {
        comp_bits[group_comp[gi]].ForEachSetBit([&](size_t i) {
          emit(gi, static_cast<uint32_t>(base + i));
        });
      }
    } else {
      for (uint32_t si = 0; si < sources.size(); ++si) {
        const Bitset& bits = comp_bits[cond.scc.component_of[sources[si]]];
        bits.ForEachSetBit([&](size_t i) {
          emit(si, static_cast<uint32_t>(base + i));
        });
      }
    }
  }
  return group_of;
}

}  // namespace

void ForEachReachableTarget(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  if (sources.empty() || targets.empty()) return;
  ReachableTargetSweep(Condense(g), sources, targets, block_bits,
                       /*grouped=*/false, emit);
}

void ForEachReachableTarget(
    const Condensation& cond, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  ReachableTargetSweep(cond, sources, targets, block_bits, /*grouped=*/false,
                       emit);
}

std::vector<uint32_t> ForEachReachableTargetGrouped(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  if (sources.empty() || targets.empty()) {
    return std::vector<uint32_t>(sources.size(), 0);
  }
  return ReachableTargetSweep(Condense(g), sources, targets, block_bits,
                              /*grouped=*/true, emit);
}

std::vector<uint32_t> ForEachReachableTargetGrouped(
    const Condensation& cond, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  return ReachableTargetSweep(cond, sources, targets, block_bits,
                              /*grouped=*/true, emit);
}

void ForEachBoundedDistance(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, uint32_t bound, size_t block_bits,
    const std::function<void(uint32_t, uint32_t, uint32_t)>& emit) {
  if (sources.empty() || targets.empty()) return;
  PEREACH_CHECK_GE(block_bits, 64u);
  const size_t n = g.NumNodes();

  constexpr uint32_t kNoSource = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> source_index(n, kNoSource);
  for (uint32_t si = 0; si < sources.size(); ++si) {
    source_index[sources[si]] = si;
  }

  // seen[v]: target bits already discovered at v; frontier[v]: bits first
  // discovered at the previous level. Buffers are reused across blocks by
  // clearing only the touched nodes.
  std::vector<Bitset> seen(n), frontier(n), next_frontier(n);
  const auto ensure = [&](std::vector<Bitset>& arr, NodeId v) -> Bitset& {
    if (arr[v].size() == 0) arr[v] = Bitset(block_bits);
    return arr[v];
  };

  std::vector<NodeId> touched;
  std::vector<uint32_t> dirty_stamp(n, 0);
  uint32_t stamp = 0;

  for (size_t base = 0; base < targets.size(); base += block_bits) {
    const size_t block = std::min(block_bits, targets.size() - base);
    touched.clear();

    std::vector<NodeId> active;
    for (size_t i = 0; i < block; ++i) {
      const NodeId w = targets[base + i];
      if (ensure(seen, w).Test(i)) continue;  // duplicate target in block
      seen[w].Set(i);
      ensure(frontier, w).Set(i);
      if (frontier[w].Count() == 1) active.push_back(w);
      touched.push_back(w);
      if (source_index[w] != kNoSource) {
        emit(source_index[w], static_cast<uint32_t>(base + i), 0);
      }
    }

    for (uint32_t level = 1; level <= bound && !active.empty(); ++level) {
      // Nodes with an out-edge into the frontier are the only candidates.
      ++stamp;
      std::vector<NodeId> dirty;
      for (NodeId x : active) {
        for (NodeId v : g.InNeighbors(x)) {
          if (dirty_stamp[v] != stamp) {
            dirty_stamp[v] = stamp;
            dirty.push_back(v);
          }
        }
      }
      std::vector<NodeId> next_active;
      for (NodeId v : dirty) {
        Bitset& nf = ensure(next_frontier, v);
        nf.Clear();
        bool any = false;
        for (NodeId x : g.OutNeighbors(v)) {
          if (frontier[x].size() != 0 && !frontier[x].None()) {
            any |= nf.UnionWith(frontier[x]);
          }
        }
        if (!any) continue;
        Bitset& sv = ensure(seen, v);
        // New bits = nf & ~seen; realized by testing each set bit.
        bool emitted_any = false;
        nf.ForEachSetBit([&](size_t i) {
          if (sv.Test(i)) {
            nf.Reset(i);
            return;
          }
          sv.Set(i);
          emitted_any = true;
          if (source_index[v] != kNoSource) {
            emit(source_index[v], static_cast<uint32_t>(base + i), level);
          }
        });
        if (emitted_any) {
          touched.push_back(v);
          next_active.push_back(v);
        }
      }
      // Swap next_frontier into frontier for the processed nodes; clear the
      // frontier of nodes that fell out of the active set.
      for (NodeId x : active) frontier[x].Clear();
      for (NodeId v : next_active) std::swap(frontier[v], next_frontier[v]);
      active = std::move(next_active);
    }
    for (NodeId x : active) frontier[x].Clear();
    for (NodeId v : touched) {
      if (seen[v].size() != 0) seen[v].Clear();
      if (frontier[v].size() != 0) frontier[v].Clear();
    }
  }
}

std::vector<Bitset> TransitiveClosure(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  return ReachableTargets(g, all);
}

std::vector<std::vector<uint32_t>> AllPairsDistances(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<std::vector<uint32_t>> d(
      n, std::vector<uint32_t>(n, kInfDistance));
  for (NodeId v = 0; v < n; ++v) {
    d[v][v] = 0;
    for (NodeId w : g.OutNeighbors(v)) d[v][w] = std::min(d[v][w], 1u);
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        if (d[k][j] == kInfDistance) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

std::vector<NodeId> TopologicalOrder(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<size_t> in_degree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) ++in_degree[v];
  }
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (NodeId v : g.OutNeighbors(u)) {
      if (--in_degree[v] == 0) ready.push_back(v);
    }
  }
  PEREACH_CHECK_EQ(order.size(), n);  // cyclic input is a caller bug
  return order;
}

}  // namespace pereach
