#ifndef PEREACH_GRAPH_ALGORITHMS_H_
#define PEREACH_GRAPH_ALGORITHMS_H_

#include <functional>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/bitset.h"
#include "src/util/common.h"

namespace pereach {

/// Forward BFS: flags[v] == true iff s reaches v (reflexively: flags[s]).
std::vector<bool> ReachableFrom(const Graph& g, NodeId s);

/// True iff s reaches t (s == t counts, via the empty path).
bool Reaches(const Graph& g, NodeId s, NodeId t);

/// Unweighted shortest-path distances from s; kInfDistance if unreachable.
/// Nodes farther than `max_dist` are left at kInfDistance (search is pruned).
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId s,
                                   uint32_t max_dist = kInfDistance);

/// Unweighted distance from s to t (kInfDistance if unreachable).
uint32_t BfsDistance(const Graph& g, NodeId s, NodeId t);

/// Strongly connected components. Component ids are assigned in Tarjan
/// emission order, which is *reverse topological*: every edge of the
/// condensation goes from a higher component id to a lower one. This property
/// is what the bitset propagation below relies on.
struct SccResult {
  std::vector<uint32_t> component_of;  // node -> component id
  size_t num_components = 0;
};

SccResult StronglyConnectedComponents(const Graph& g);

/// Condensation DAG of g: one node per SCC, deduplicated edges.
struct Condensation {
  SccResult scc;
  // Adjacency of the condensation in CSR form (component -> components).
  std::vector<size_t> offsets;
  std::vector<uint32_t> targets;
};

Condensation Condense(const Graph& g);

/// For every node v, the set of target indices i such that v reaches
/// targets[i] (reflexive: a target reaches itself). One pass over the SCC
/// condensation in reverse topological order with word-parallel bitset
/// unions — O((|V| + |E|) * |targets|/64). This is the engine behind the
/// paper's localEval (targets = virtual nodes ∪ {t}).
std::vector<Bitset> ReachableTargets(const Graph& g,
                                     const std::vector<NodeId>& targets);

/// Memory-bounded variant of ReachableTargets restricted to `sources`:
/// calls emit(source_index, target_index) for every pair with
/// sources[source_index] reaching targets[target_index] (reflexively).
/// Targets are processed in blocks of `block_bits`, bounding peak memory at
/// O(num_components * block_bits / 8) regardless of |targets|. Single pass
/// over the SCC condensation per block; emit runs on the calling thread.
void ForEachReachableTarget(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Variant reusing a precomputed condensation of the same graph — the
/// per-fragment Tarjan pass is query-independent, so engines that serve many
/// queries over one fragment condense once and sweep per query.
void ForEachReachableTarget(
    const Condensation& cond, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Grouped variant of ForEachReachableTarget: sources in the same strongly
/// connected component have identical reachable sets, so emission happens
/// once per *source group* — emit(group_index, target_index). Returns the
/// group index of every source; group indices are dense, assigned in order
/// of first appearance over `sources`. This is the equation-merging
/// optimization of localEval: on graphs with a giant SCC it shrinks the
/// partial answer from |I| dense rows to one row plus |I| aliases.
std::vector<uint32_t> ForEachReachableTargetGrouped(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Grouped variant over a precomputed condensation (see above).
std::vector<uint32_t> ForEachReachableTargetGrouped(
    const Condensation& cond, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, size_t block_bits,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Bounded multi-source-to-multi-target distances: calls
/// emit(source_index, target_index, dist) for every pair with
/// dist(sources[i], targets[j]) <= bound (including dist 0 when a source is
/// a target). Level-synchronous backward propagation of target bitsets along
/// reversed edges, blocked like ForEachReachableTarget:
/// O(bound * |E| * block_bits/64) per block, frontier-driven.
void ForEachBoundedDistance(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, uint32_t bound, size_t block_bits,
    const std::function<void(uint32_t, uint32_t, uint32_t)>& emit);

/// Full transitive closure as one |V|-bitset per node (reflexive).
/// Quadratic memory: intended for test oracles on small graphs.
std::vector<Bitset> TransitiveClosure(const Graph& g);

/// All-pairs unweighted distances (Floyd-Warshall, O(|V|^3)).
/// Test oracle for small graphs only.
std::vector<std::vector<uint32_t>> AllPairsDistances(const Graph& g);

/// Nodes in `order[i]` listed so that every edge (u, v) has u before v,
/// when g is a DAG; CHECK-fails on cyclic input. Used by tests.
std::vector<NodeId> TopologicalOrder(const Graph& g);

}  // namespace pereach

#endif  // PEREACH_GRAPH_ALGORITHMS_H_
