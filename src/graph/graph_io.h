#ifndef PEREACH_GRAPH_GRAPH_IO_H_
#define PEREACH_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/graph/graph.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace pereach {

/// Writes `g` as a text edge list: first line "p <nodes> <edges>", then one
/// "l <node> <label>" line per non-zero-labeled node and one "e <u> <v>" line
/// per edge. The format is self-describing and diff-friendly.
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads a graph in the WriteEdgeList format.
Result<Graph> ReadEdgeList(const std::string& path);

/// Binary-encodes `g` (varint-compressed CSR). This is the wire format used
/// when a baseline ships a whole fragment to the coordinator, so the traffic
/// it is charged equals these bytes.
void SerializeGraph(const Graph& g, Encoder* enc);

/// Decodes a graph previously written by SerializeGraph.
Graph DeserializeGraph(Decoder* dec);

}  // namespace pereach

#endif  // PEREACH_GRAPH_GRAPH_IO_H_
