#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pereach {

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << "p " << g.NumNodes() << " " << g.NumEdges() << "\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.label(v) != 0) out << "l " << v << " " << g.label(v) << "\n";
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) out << "e " << u << " " << v << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string line;
  GraphBuilder b;
  bool have_header = false;
  size_t declared_edges = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'p') {
      size_t n = 0, m = 0;
      if (!(ls >> n >> m)) return Status::Corruption("bad header: " + line);
      b.AddNodes(n);
      declared_edges = m;
      have_header = true;
    } else if (kind == 'l') {
      NodeId v;
      LabelId label;
      if (!have_header || !(ls >> v >> label) || v >= b.NumNodes()) {
        return Status::Corruption("bad label line: " + line);
      }
      b.SetLabel(v, label);
    } else if (kind == 'e') {
      NodeId u, v;
      if (!have_header || !(ls >> u >> v) || u >= b.NumNodes() ||
          v >= b.NumNodes()) {
        return Status::Corruption("bad edge line: " + line);
      }
      b.AddEdge(u, v);
    } else {
      return Status::Corruption("unknown record kind: " + line);
    }
  }
  if (!have_header) return Status::Corruption("missing 'p' header: " + path);
  if (b.NumEdges() != declared_edges) {
    return Status::Corruption("edge count mismatch in " + path);
  }
  return std::move(b).Build();
}

void SerializeGraph(const Graph& g, Encoder* enc) {
  enc->PutVarint(g.NumNodes());
  enc->PutVarint(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) enc->PutVarint(g.label(v));
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    auto out = g.OutNeighbors(u);
    enc->PutVarint(out.size());
    for (NodeId v : out) enc->PutVarint(v);
  }
}

Graph DeserializeGraph(Decoder* dec) {
  const size_t n = dec->GetCount();
  const size_t m = dec->GetVarint();
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 0; v < n; ++v) {
    b.SetLabel(v, static_cast<LabelId>(dec->GetVarint()));
  }
  size_t total_edges = 0;
  for (NodeId u = 0; u < n; ++u) {
    const size_t deg = dec->GetCount();
    for (size_t i = 0; i < deg; ++i) {
      b.AddEdge(u, static_cast<NodeId>(dec->GetVarint()));
    }
    total_edges += deg;
  }
  PEREACH_CHECK_EQ(total_edges, m);
  return std::move(b).Build();
}

}  // namespace pereach
