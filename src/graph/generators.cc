#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace pereach {

namespace {

// Assigns uniform labels from [0, num_labels) to all nodes of the builder.
void AssignLabels(GraphBuilder* b, size_t num_labels, Rng* rng) {
  if (num_labels <= 1) return;
  for (NodeId v = 0; v < b->NumNodes(); ++v) {
    b->SetLabel(v, static_cast<LabelId>(rng->Uniform(num_labels)));
  }
}

}  // namespace

Graph ErdosRenyi(size_t n, size_t m, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(n, 2u);
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);
  for (size_t i = 0; i < m; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(n));
    NodeId v = static_cast<NodeId>(rng->Uniform(n - 1));
    if (v >= u) ++v;  // skip self-loop
    b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph PreferentialAttachment(size_t n, size_t out_degree, size_t num_labels,
                             Rng* rng) {
  PEREACH_CHECK_GE(n, 2u);
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);

  // `endpoints` holds one entry per existing edge endpoint plus one per node,
  // so sampling from it realizes the (degree + 1)-proportional distribution.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * out_degree + n);
  endpoints.push_back(0);
  for (NodeId v = 1; v < n; ++v) {
    for (size_t k = 0; k < out_degree; ++k) {
      const NodeId target = endpoints[rng->Uniform(endpoints.size())];
      if (target != v) {
        b.AddEdge(v, target);
        endpoints.push_back(target);
      }
      // Mirror edge from a uniformly random earlier node, so reachability is
      // not trivially one-directional (social links are reciprocated often).
      if (rng->Bernoulli(0.3)) {
        const NodeId from = static_cast<NodeId>(rng->Uniform(v));
        b.AddEdge(from, v);
        endpoints.push_back(v);
      }
    }
    endpoints.push_back(v);
  }
  return std::move(b).Build();
}

Graph ForestFire(size_t n, double p_forward, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(n, 2u);
  PEREACH_CHECK_LT(p_forward, 1.0);
  // Adjacency is needed during growth, so keep a mutable copy alongside.
  std::vector<std::vector<NodeId>> adj(n);
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);

  // Cap the burn so one fire cannot touch the whole graph (keeps generation
  // near-linear while preserving the densification effect).
  const size_t kBurnCap = 64;
  std::vector<uint32_t> burned_at(n, 0);
  uint32_t epoch = 0;

  for (NodeId v = 1; v < n; ++v) {
    ++epoch;
    // Crawl-order locality: ambassadors are mostly recent nodes, with a
    // geometric tail reaching back (real web pages link near their
    // discovery frontier).
    const uint64_t back = rng->Geometric(0.005);
    const NodeId ambassador =
        back <= v ? static_cast<NodeId>(v - back)
                  : static_cast<NodeId>(rng->Uniform(v));
    std::deque<NodeId> frontier{ambassador};
    burned_at[ambassador] = epoch;
    size_t burned = 0;
    while (!frontier.empty() && burned < kBurnCap) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      b.AddEdge(v, u);
      adj[v].push_back(u);
      ++burned;
      // Geometric number of forward spreads from u.
      const size_t spread = rng->Geometric(1.0 - p_forward) - 1;
      size_t taken = 0;
      for (NodeId w : adj[u]) {
        if (taken >= spread) break;
        if (burned_at[w] != epoch) {
          burned_at[w] = epoch;
          frontier.push_back(w);
          ++taken;
        }
      }
    }
  }
  return std::move(b).Build();
}

Graph CommunityGraph(size_t n, size_t m, size_t num_communities,
                     double p_intra, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(n, 2u);
  num_communities = std::max<size_t>(1, std::min(num_communities, n));
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);

  const size_t community_size = (n + num_communities - 1) / num_communities;
  // Per-community preferential endpoint pools (target popularity).
  std::vector<std::vector<NodeId>> pool(num_communities);
  for (size_t i = 0; i < m; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(n));
    const size_t cu = u / community_size;
    NodeId v;
    if (rng->Bernoulli(p_intra)) {
      // Intra-community target: preferential if the pool has entries,
      // uniform within the community block otherwise.
      const NodeId lo = static_cast<NodeId>(cu * community_size);
      const NodeId hi =
          static_cast<NodeId>(std::min<size_t>(n, (cu + 1) * community_size));
      if (!pool[cu].empty() && rng->Bernoulli(0.7)) {
        v = pool[cu][rng->Uniform(pool[cu].size())];
      } else {
        v = lo + static_cast<NodeId>(rng->Uniform(hi - lo));
      }
    } else {
      v = static_cast<NodeId>(rng->Uniform(n));
    }
    if (v == u) continue;
    b.AddEdge(u, v);
    pool[v / community_size].push_back(v);
  }
  return std::move(b).Build();
}

Graph LayeredCitationDag(size_t layers, size_t width, size_t cites,
                         size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(layers, 2u);
  PEREACH_CHECK_GE(width, 1u);
  const size_t n = layers * width;
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);

  // Popularity-biased sampling pool over earlier nodes.
  std::vector<NodeId> pool;
  pool.reserve(n * (cites + 1));
  for (NodeId v = 0; v < width; ++v) pool.push_back(v);

  for (size_t layer = 1; layer < layers; ++layer) {
    const NodeId layer_begin = static_cast<NodeId>(layer * width);
    for (NodeId v = layer_begin; v < layer_begin + width; ++v) {
      for (size_t c = 0; c < cites; ++c) {
        const NodeId cited = pool[rng->Uniform(pool.size())];
        b.AddEdge(v, cited);
        pool.push_back(cited);
      }
      pool.push_back(v);
    }
  }
  return std::move(b).Build();
}

Graph Chain(size_t n, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(n, 1u);
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return std::move(b).Build();
}

Graph Cycle(size_t n, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(n, 2u);
  GraphBuilder b;
  b.AddNodes(n);
  AssignLabels(&b, num_labels, rng);
  for (NodeId v = 0; v < n; ++v) b.AddEdge(v, static_cast<NodeId>((v + 1) % n));
  return std::move(b).Build();
}

Graph GridGraph(size_t rows, size_t cols, size_t num_labels, Rng* rng) {
  PEREACH_CHECK_GE(rows, 1u);
  PEREACH_CHECK_GE(cols, 1u);
  GraphBuilder b;
  b.AddNodes(rows * cols);
  AssignLabels(&b, num_labels, rng);
  const auto id = [cols](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).Build();
}

std::string DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kLiveJournal:
      return "LiveJournal";
    case Dataset::kWikiTalk:
      return "WikiTalk";
    case Dataset::kBerkStan:
      return "BerkStan";
    case Dataset::kNotreDame:
      return "NotreDame";
    case Dataset::kAmazon:
      return "Amazon";
    case Dataset::kCitation:
      return "Citation";
    case Dataset::kMeme:
      return "MEME";
    case Dataset::kYoutube:
      return "Youtube";
    case Dataset::kInternet:
      return "Internet";
  }
  return "Unknown";
}

Graph MakeDataset(Dataset d, double scale, Rng* rng) {
  PEREACH_CHECK_GT(scale, 0.0);
  const auto scaled = [scale](double x) {
    return static_cast<size_t>(std::max(16.0, x * scale));
  };
  // Social/web/communication graphs use the community generator: power-law
  // degrees plus the id-locality of crawl order, so that splitting the node
  // id range (the way a SNAP edge-list file is split across sites) yields
  // the moderate boundaries the paper's real-data experiments exhibit.
  switch (d) {
    case Dataset::kLiveJournal:
      // 2.54M / 20.0M: dense social graph, avg out-degree ~7.9.
      return CommunityGraph(scaled(2'541'032), scaled(20'000'001),
                            scaled(2'541'032) / 800 + 1, 0.90, 1, rng);
    case Dataset::kWikiTalk:
      // 2.39M / 5.0M: sparse hub-heavy communication graph, avg deg ~2.1.
      return CommunityGraph(scaled(2'394'385), scaled(5'021'410),
                            scaled(2'394'385) / 1500 + 1, 0.85, 1, rng);
    case Dataset::kBerkStan:
      // 0.69M / 7.6M: web graph, avg deg ~11.1 and strong densification.
      return ForestFire(scaled(685'230), 0.40, 1, rng);
    case Dataset::kNotreDame:
      // 0.33M / 1.5M web graph, avg deg ~4.6.
      return ForestFire(scaled(325'729), 0.30, 1, rng);
    case Dataset::kAmazon:
      // 0.26M / 1.2M co-purchasing, avg deg ~4.7, strong local clustering.
      return CommunityGraph(scaled(262'111), scaled(1'234'877),
                            scaled(262'111) / 400 + 1, 0.92, 1, rng);
    case Dataset::kCitation:
      // 1.57M / 2.1M citation DAG with 6300 venue labels.
      return LayeredCitationDag(/*layers=*/100, scaled(15'722), /*cites=*/1,
                                /*num_labels=*/630, rng);
    case Dataset::kMeme:
      // 0.70M / 0.8M blog-link graph with a huge label alphabet.
      return CommunityGraph(scaled(700'000), scaled(800'000),
                            scaled(700'000) / 1000 + 1, 0.85, 6106, rng);
    case Dataset::kYoutube:
      // 0.23M / 0.45M recommendation graph with 12 category labels.
      return CommunityGraph(scaled(234'452), scaled(454'942),
                            scaled(234'452) / 600 + 1, 0.85, 12, rng);
    case Dataset::kInternet:
      // 58K / 103K AS topology with 256 location labels.
      return CommunityGraph(scaled(57'971), scaled(103'485),
                            scaled(57'971) / 300 + 1, 0.80, 256, rng);
  }
  PEREACH_CHECK(false);
  return Graph();
}

std::vector<Dataset> Table2Datasets() {
  return {Dataset::kLiveJournal, Dataset::kWikiTalk, Dataset::kBerkStan,
          Dataset::kNotreDame, Dataset::kAmazon};
}

std::vector<Dataset> RegularDatasets() {
  return {Dataset::kYoutube, Dataset::kMeme, Dataset::kCitation,
          Dataset::kInternet};
}

}  // namespace pereach
