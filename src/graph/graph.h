#ifndef PEREACH_GRAPH_GRAPH_H_
#define PEREACH_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/common.h"
#include "src/util/logging.h"

namespace pereach {

/// Bidirectional mapping between label strings (e.g. "DB", "HR") and dense
/// LabelIds. A dictionary is shared by a graph and the queries posed on it.
class LabelDictionary {
 public:
  LabelDictionary() = default;

  /// Returns the id of `name`, interning it if new.
  LabelId Intern(const std::string& name);

  /// Returns the id of `name`, or kInvalidLabel if it was never interned.
  LabelId Find(const std::string& name) const;

  /// Returns the string for `id`; CHECK-fails on unknown ids.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

/// Immutable node-labeled directed graph G = (V, E, L) in CSR form
/// (forward adjacency; reverse adjacency built lazily on request).
/// Nodes are dense ids [0, NumNodes()); parallel edges are permitted and
/// harmless for reachability semantics.
class Graph {
 public:
  Graph() = default;

  size_t NumNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t NumEdges() const { return targets_.size(); }

  /// Out-neighbors of `v` in insertion order.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    PEREACH_CHECK_LT(v, NumNodes());
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  size_t OutDegree(NodeId v) const {
    PEREACH_CHECK_LT(v, NumNodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// In-neighbors of `v`. Builds the reverse CSR on first use.
  std::span<const NodeId> InNeighbors(NodeId v) const;

  LabelId label(NodeId v) const {
    PEREACH_CHECK_LT(v, labels_.size());
    return labels_[v];
  }

  const std::vector<LabelId>& labels() const { return labels_; }

  /// True if edge (u, v) exists (linear scan of u's list; test helper).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Approximate in-memory size in bytes; used by the naive baselines to
  /// price "ship the whole fragment" network traffic.
  size_t ByteSize() const {
    return offsets_.size() * sizeof(size_t) + targets_.size() * sizeof(NodeId) +
           labels_.size() * sizeof(LabelId);
  }

 private:
  friend class GraphBuilder;

  std::vector<size_t> offsets_;    // size NumNodes()+1
  std::vector<NodeId> targets_;    // size NumEdges()
  std::vector<LabelId> labels_;    // size NumNodes()

  // Reverse CSR, built lazily by InNeighbors() (const-qualified caller, so
  // mutable; guarded by a build-once flag, not thread-safe on first call).
  mutable bool reverse_built_ = false;
  mutable std::vector<size_t> rev_offsets_;
  mutable std::vector<NodeId> rev_targets_;

  void BuildReverse() const;
};

/// Accumulates nodes and edges, then Build()s an immutable CSR Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares `n` nodes with label 0; returns the first new id.
  NodeId AddNodes(size_t n, LabelId label = 0);

  /// Adds one node with the given label and returns its id.
  NodeId AddNode(LabelId label = 0);

  /// Sets the label of an existing node.
  void SetLabel(NodeId v, LabelId label);

  /// Adds directed edge (u, v); both endpoints must already exist.
  void AddEdge(NodeId u, NodeId v);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Finalizes into a CSR graph. The builder may be reused afterwards only
  /// after being reassigned.
  Graph Build() &&;

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<LabelId> labels_;
};

}  // namespace pereach

#endif  // PEREACH_GRAPH_GRAPH_H_
