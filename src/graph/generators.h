#ifndef PEREACH_GRAPH_GENERATORS_H_
#define PEREACH_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/random.h"

namespace pereach {

/// Uniform random directed graph: n nodes, m edges drawn uniformly with
/// replacement (self-loops excluded), labels uniform in [0, num_labels).
Graph ErdosRenyi(size_t n, size_t m, size_t num_labels, Rng* rng);

/// Scale-free directed graph grown by preferential attachment: each new node
/// emits `out_degree` edges whose endpoints are chosen proportionally to
/// in-degree + 1, plus the same number of incoming edges from random earlier
/// nodes so both orientations are exercised. Produces the heavy-tailed degree
/// distribution of social/web graphs.
Graph PreferentialAttachment(size_t n, size_t out_degree, size_t num_labels,
                             Rng* rng);

/// Forest-fire style growth (Leskovec et al. [20] "densification law"):
/// each new node picks an ambassador — biased toward recently added nodes,
/// mimicking crawl-order locality of real web graphs — and burns through its
/// neighborhood with forward probability p_forward, linking to every burned
/// node. Used by the Fig. 11(b)/(h) "synthetic, densification law" sweeps.
Graph ForestFire(size_t n, double p_forward, size_t num_labels, Rng* rng);

/// Community-structured social graph: nodes form `num_communities`
/// contiguous blocks; each of the m edges stays inside its source's
/// community with probability p_intra (targets drawn preferentially, giving
/// power-law in-degree) and crosses communities uniformly otherwise. This
/// reproduces the two properties of real social datasets that matter here:
/// heavy-tailed degrees and id-locality (crawl/community order), which is
/// what makes chunked fragmentation of SNAP files have small boundaries.
Graph CommunityGraph(size_t n, size_t m, size_t num_communities,
                     double p_intra, size_t num_labels, Rng* rng);

/// Layered DAG (citation-like): `layers` layers of `width` nodes; each node
/// cites `cites` nodes drawn from earlier layers, biased toward popular
/// (already-cited) nodes.
Graph LayeredCitationDag(size_t layers, size_t width, size_t cites,
                         size_t num_labels, Rng* rng);

/// Directed chain 0 -> 1 -> ... -> n-1.
Graph Chain(size_t n, size_t num_labels, Rng* rng);

/// Directed cycle over n nodes.
Graph Cycle(size_t n, size_t num_labels, Rng* rng);

/// Directed grid with edges rightwards and downwards (rows x cols nodes).
Graph GridGraph(size_t rows, size_t cols, size_t num_labels, Rng* rng);

/// The paper's real-life evaluation datasets, rebuilt synthetically at
/// `scale` (1.0 = the paper's |V|/|E|). See DESIGN.md §4 for the mapping.
enum class Dataset {
  kLiveJournal,  // social,          2.54M nodes / 20.0M edges
  kWikiTalk,     // communication,   2.39M nodes /  5.0M edges
  kBerkStan,     // web,             0.69M nodes /  7.6M edges
  kNotreDame,    // web,             0.33M nodes /  1.5M edges
  kAmazon,       // co-purchasing,   0.26M nodes /  1.2M edges
  kCitation,     // citation DAG,    1.57M nodes /  2.1M edges, |L| = 6300
  kMeme,         // blog links,      0.70M nodes /  0.8M edges, |L| = 61065
  kYoutube,      // recommendation,  0.23M nodes /  0.45M edges, |L| = 12
  kInternet,     // AS topology,     58K nodes   /  103K edges,  |L| = 256
};

/// Human-readable dataset name as used in the paper's tables.
std::string DatasetName(Dataset d);

/// Generates the synthetic stand-in for `d` at the given scale.
Graph MakeDataset(Dataset d, double scale, Rng* rng);

/// All five unlabeled (reachability) datasets of Table 2, in table order.
std::vector<Dataset> Table2Datasets();

/// All four labeled (regular reachability) datasets of Fig. 11(e)/(f).
std::vector<Dataset> RegularDatasets();

}  // namespace pereach

#endif  // PEREACH_GRAPH_GENERATORS_H_
