#include "src/graph/graph.h"

#include <algorithm>

namespace pereach {

LabelId LabelDictionary::Intern(const std::string& name) {
  auto [it, inserted] = ids_.emplace(name, static_cast<LabelId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

LabelId LabelDictionary::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidLabel : it->second;
}

const std::string& LabelDictionary::Name(LabelId id) const {
  PEREACH_CHECK_LT(id, names_.size());
  return names_[id];
}

std::span<const NodeId> Graph::InNeighbors(NodeId v) const {
  PEREACH_CHECK_LT(v, NumNodes());
  if (!reverse_built_) BuildReverse();
  return {rev_targets_.data() + rev_offsets_[v],
          rev_offsets_[v + 1] - rev_offsets_[v]};
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto out = OutNeighbors(u);
  return std::find(out.begin(), out.end(), v) != out.end();
}

void Graph::BuildReverse() const {
  const size_t n = NumNodes();
  rev_offsets_.assign(n + 1, 0);
  for (NodeId t : targets_) ++rev_offsets_[t + 1];
  for (size_t i = 1; i <= n; ++i) rev_offsets_[i] += rev_offsets_[i - 1];
  rev_targets_.resize(targets_.size());
  std::vector<size_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : OutNeighbors(u)) {
      rev_targets_[cursor[v]++] = u;
    }
  }
  reverse_built_ = true;
}

NodeId GraphBuilder::AddNodes(size_t n, LabelId label) {
  const NodeId first = static_cast<NodeId>(labels_.size());
  labels_.insert(labels_.end(), n, label);
  return first;
}

NodeId GraphBuilder::AddNode(LabelId label) { return AddNodes(1, label); }

void GraphBuilder::SetLabel(NodeId v, LabelId label) {
  PEREACH_CHECK_LT(v, labels_.size());
  labels_[v] = label;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  PEREACH_CHECK_LT(u, labels_.size());
  PEREACH_CHECK_LT(v, labels_.size());
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::Build() && {
  Graph g;
  const size_t n = labels_.size();
  g.labels_ = std::move(labels_);
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) ++g.offsets_[u + 1];
  for (size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.targets_.resize(edges_.size());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) g.targets_[cursor[u]++] = v;
  return g;
}

}  // namespace pereach
