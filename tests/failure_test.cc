// Failure-injection tests: corrupted wire payloads, invariant-violating
// inputs, and API misuse must fail loudly (CHECK abort) or cleanly (Status),
// never silently corrupt an answer.

#include <gtest/gtest.h>

#include "src/core/local_eval.h"
#include "src/fragment/fragmentation.h"
#include "src/graph/graph.h"
#include "src/regex/regex.h"
#include "src/util/serialization.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;

TEST(FailureTest, DecoderOverrunAborts) {
  Encoder enc;
  enc.PutU8(1);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  Decoder dec(buf);
  (void)dec.GetU8();  // consume the only byte
  EXPECT_DEATH((void)dec.GetU8(), "CHECK failed");
}

TEST(FailureTest, TruncatedVarintAborts) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation bits, no terminator
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetVarint(), "CHECK failed");
}

TEST(FailureTest, OverlongVarintAborts) {
  std::vector<uint8_t> buf(11, 0x80);  // more than 64 bits of continuation
  buf.push_back(0x01);
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetVarint(), "CHECK failed");
}

TEST(FailureTest, TruncatedStringAborts) {
  Encoder enc;
  enc.PutVarint(100);  // declares 100 bytes, provides none
  std::vector<uint8_t> buf = enc.TakeBuffer();
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetString(), "CHECK failed");
}

TEST(FailureTest, CorruptedPartialAnswerAborts) {
  // Flip the oset count of a serialized rvset to a huge value: decoding must
  // hit the buffer bounds check rather than fabricate equations.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Encoder enc;
  LocalEvalReach(frag.fragment(0), ex.ann, ex.mark).Serialize(&enc);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  buf[1] = 0xFF;  // corrupt the oset-size varint (site id is byte 0)
  buf[2] = 0x7F;
  Decoder dec(buf);
  EXPECT_DEATH(ReachPartialAnswer::Deserialize(&dec), "CHECK failed");
}

TEST(FailureTest, GraphBuilderRejectsUnknownEndpoints) {
  GraphBuilder b;
  b.AddNodes(2);
  EXPECT_DEATH(b.AddEdge(0, 5), "CHECK failed");
  EXPECT_DEATH(b.AddEdge(7, 0), "CHECK failed");
}

TEST(FailureTest, GraphAccessorsRejectOutOfRange) {
  const Graph g = MakeGraph(3, {{0, 1}});
  EXPECT_DEATH(g.OutNeighbors(3), "CHECK failed");
  EXPECT_DEATH(g.label(5), "CHECK failed");
}

TEST(FailureTest, FragmentationRejectsShortPartition) {
  const Graph g = MakeGraph(4, {{0, 1}});
  const std::vector<SiteId> part = {0, 1};  // too short
  EXPECT_DEATH(Fragmentation::Build(g, part, 2), "CHECK failed");
}

TEST(FailureTest, FragmentationRejectsOutOfRangeSite) {
  const Graph g = MakeGraph(3, {{0, 1}});
  const std::vector<SiteId> part = {0, 1, 7};  // site 7 >= k=2
  EXPECT_DEATH(Fragmentation::Build(g, part, 2), "CHECK failed");
}

TEST(FailureTest, AutomatonRejectsOversizedRegexWithStatus) {
  Rng rng(1);
  const Regex big = Regex::Random(63, 4, &rng);  // 63 + 2 states > 64
  const Result<QueryAutomaton> r = QueryAutomaton::FromRegex(big);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The failure must be a value, not an abort: a Query built from the same
  // regex simply carries no automaton (QueryServer::Submit rejects it).
  EXPECT_FALSE(Query::Rpq(0, 1, big).automaton.has_value());
}

TEST(FailureTest, ResultValueOnErrorAborts) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_DEATH(r.value(), "CHECK failed");
}

TEST(FailureTest, RegexParseReportsPositionOfTrailingGarbage) {
  LabelDictionary dict;
  dict.Intern("A");
  const Result<Regex> r = Regex::Parse("A )", dict);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace pereach
