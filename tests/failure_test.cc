// Failure-injection tests: corrupted wire payloads, invariant-violating
// inputs, and API misuse must fail loudly (CHECK abort) or cleanly (Status),
// never silently corrupt an answer.

#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/local_eval.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/fragmentation.h"
#include "src/graph/graph.h"
#include "src/net/cluster.h"
#include "src/net/supervisor.h"
#include "src/net/transport.h"
#include "src/net/worker_loop.h"
#include "src/regex/regex.h"
#include "src/server/query_server.h"
#include "src/util/serialization.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;

TEST(FailureTest, DecoderOverrunAborts) {
  Encoder enc;
  enc.PutU8(1);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  Decoder dec(buf);
  (void)dec.GetU8();  // consume the only byte
  EXPECT_DEATH((void)dec.GetU8(), "CHECK failed");
}

TEST(FailureTest, TruncatedVarintAborts) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation bits, no terminator
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetVarint(), "CHECK failed");
}

TEST(FailureTest, OverlongVarintAborts) {
  std::vector<uint8_t> buf(11, 0x80);  // more than 64 bits of continuation
  buf.push_back(0x01);
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetVarint(), "CHECK failed");
}

TEST(FailureTest, TruncatedStringAborts) {
  Encoder enc;
  enc.PutVarint(100);  // declares 100 bytes, provides none
  std::vector<uint8_t> buf = enc.TakeBuffer();
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetString(), "CHECK failed");
}

TEST(FailureTest, CorruptedPartialAnswerAborts) {
  // Flip the oset count of a serialized rvset to a huge value: decoding must
  // hit the buffer bounds check rather than fabricate equations.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Encoder enc;
  LocalEvalReach(frag.fragment(0), ex.ann, ex.mark).Serialize(&enc);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  buf[1] = 0xFF;  // corrupt the oset-size varint (site id is byte 0)
  buf[2] = 0x7F;
  Decoder dec(buf);
  EXPECT_DEATH(ReachPartialAnswer::Deserialize(&dec), "CHECK failed");
}

TEST(FailureTest, GraphBuilderRejectsUnknownEndpoints) {
  GraphBuilder b;
  b.AddNodes(2);
  EXPECT_DEATH(b.AddEdge(0, 5), "CHECK failed");
  EXPECT_DEATH(b.AddEdge(7, 0), "CHECK failed");
}

TEST(FailureTest, GraphAccessorsRejectOutOfRange) {
  const Graph g = MakeGraph(3, {{0, 1}});
  EXPECT_DEATH(g.OutNeighbors(3), "CHECK failed");
  EXPECT_DEATH(g.label(5), "CHECK failed");
}

TEST(FailureTest, FragmentationRejectsShortPartition) {
  const Graph g = MakeGraph(4, {{0, 1}});
  const std::vector<SiteId> part = {0, 1};  // too short
  EXPECT_DEATH(Fragmentation::Build(g, part, 2), "CHECK failed");
}

TEST(FailureTest, FragmentationRejectsOutOfRangeSite) {
  const Graph g = MakeGraph(3, {{0, 1}});
  const std::vector<SiteId> part = {0, 1, 7};  // site 7 >= k=2
  EXPECT_DEATH(Fragmentation::Build(g, part, 2), "CHECK failed");
}

TEST(FailureTest, AutomatonRejectsOversizedRegexWithStatus) {
  Rng rng(1);
  const Regex big = Regex::Random(63, 4, &rng);  // 63 + 2 states > 64
  const Result<QueryAutomaton> r = QueryAutomaton::FromRegex(big);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The failure must be a value, not an abort: a Query built from the same
  // regex simply carries no automaton (QueryServer::Submit rejects it).
  EXPECT_FALSE(Query::Rpq(0, 1, big).automaton.has_value());
}

TEST(FailureTest, ResultValueOnErrorAborts) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_DEATH(r.value(), "CHECK failed");
}

TEST(FailureTest, RegexParseReportsPositionOfTrailingGarbage) {
  LabelDictionary dict;
  dict.Intern("A");
  const Result<Regex> r = Regex::Parse("A )", dict);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving-transport failure injection. A deterministic harness stands in for
// the workers: each site is a unix-socket listener the coordinator connects
// to, and a scripted thread decides whether that site behaves (it runs the
// REAL worker loop, ServeConnection) or misbehaves (partial frames, silence).
// The contract under test: any transport failure rejects the affected batch
// with a Status and the process keeps serving — never an abort, never a
// wrong answer.

/// One unix-socket listener per fake site, plus the scripted threads.
/// Threads must be unblocked (their peer closed) before this leaves scope:
/// destroy the Cluster/QueryServer first.
class FakeWorkers {
 public:
  explicit FakeWorkers(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      std::string path = "/tmp/pereach_failure_" +
                         std::to_string(getpid()) + "_" + std::to_string(i) +
                         ".sock";
      unlink(path.c_str());
      const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
      PEREACH_CHECK(fd >= 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      PEREACH_CHECK_LT(path.size(), sizeof(addr.sun_path));
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      PEREACH_CHECK_EQ(
          bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
      PEREACH_CHECK_EQ(listen(fd, 4), 0);
      paths_.push_back(std::move(path));
      listeners_.push_back(fd);
    }
  }

  ~FakeWorkers() {
    for (std::thread& t : threads_) t.join();
    for (int fd : listeners_) close(fd);
    for (const std::string& p : paths_) unlink(p.c_str());
  }

  std::vector<std::string> Endpoints() const {
    std::vector<std::string> out;
    for (const std::string& p : paths_) out.push_back("unix:" + p);
    return out;
  }

  /// Accepts one connection on site `i`'s listener, bounded so a scripted
  /// thread can never block the test forever. -1 on timeout.
  int Accept(size_t i, int timeout_ms = 10000) {
    pollfd p{listeners_[i], POLLIN, 0};
    if (poll(&p, 1, timeout_ms) <= 0) return -1;
    return accept(listeners_[i], nullptr, nullptr);
  }

  /// Site `i` behaves: one connection served by the real worker loop.
  void ServeHealthy(size_t i) {
    threads_.emplace_back([this, i] {
      const int fd = Accept(i);
      if (fd >= 0) ServeConnection(fd);
    });
  }

  /// Site `i` runs an arbitrary script.
  void Run(std::function<void()> script) {
    threads_.emplace_back(std::move(script));
  }

 private:
  std::vector<std::string> paths_;
  std::vector<int> listeners_;
  std::vector<std::thread> threads_;
};

constexpr size_t kMaxFrame = TransportOptions{}.max_frame_bytes;

/// Hand-rolled well-formed ok reply (status 1, zero compute, empty payload)
/// so a scripted site can pass the handshake before misbehaving.
void SendOkReply(int fd) {
  Encoder body;
  body.PutU8(1);
  body.PutDouble(0.0);
  body.PutVarint(0);
  PEREACH_CHECK(WriteWireMessage(fd, body.buffer(), 1000).ok());
}

TransportOptions ConnectOptions(const FakeWorkers& workers) {
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  opts.connect = workers.Endpoints();
  opts.connect_timeout_ms = 500;
  opts.read_timeout_ms = 500;
  opts.max_retries = 0;
  opts.retry_backoff_ms = 1;
  // These tests script exact failure/recovery sequences, so self-healing is
  // pinned off: one attempt per round, no local degradation, no breaker.
  opts.round_retries = 0;
  opts.degrade_local = false;
  opts.breaker_threshold = 0;
  return opts;
}

std::vector<Query> SmallReachBatch() {
  return {Query::Reach(0, 10), Query::Reach(4, 2), Query::Reach(7, 7),
          Query::Reach(1, 8)};
}

// A worker that ships a truncated frame (declares 100 body bytes, sends 3,
// closes) fails that round with a Status; the next round reconnects and
// serves bit-identical answers — mid-stream corruption is a one-batch event.
TEST(TransportFailureTest, PartialFrameWriteRejectsBatchThenRecovers) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  FakeWorkers workers(3);
  workers.ServeHealthy(0);
  workers.ServeHealthy(1);
  workers.Run([&workers] {
    const int fd = workers.Accept(2);
    if (fd < 0) return;
    std::vector<uint8_t> req;
    PEREACH_CHECK(ReadWireMessage(fd, 5000, kMaxFrame, &req).ok());  // hello
    SendOkReply(fd);
    PEREACH_CHECK(ReadWireMessage(fd, 5000, kMaxFrame, &req).ok());  // round
    Encoder partial;
    partial.PutVarint(100);
    partial.PutRaw({1, 2, 3});
    const auto& bytes = partial.buffer();
    PEREACH_CHECK(write(fd, bytes.data(), bytes.size()) ==
                  static_cast<ssize_t>(bytes.size()));
    close(fd);
    // Recovery: the reconnect is a fresh hello on a fresh connection; from
    // here the site behaves.
    const int fd2 = workers.Accept(2);
    if (fd2 >= 0) ServeConnection(fd2);
  });

  {
    Cluster sim(&frag, NetworkModel(), /*num_threads=*/3);
    Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3,
                    ConnectOptions(workers));
    PartialEvalEngine sim_engine(&sim);
    PartialEvalEngine engine(&cluster);
    const std::vector<Query> batch = SmallReachBatch();

    const BatchAnswer failed = engine.EvaluateBatch(batch);
    EXPECT_FALSE(failed.status.ok());

    const BatchAnswer expect = sim_engine.EvaluateBatch(batch);
    const BatchAnswer recovered = engine.EvaluateBatch(batch);
    ASSERT_TRUE(recovered.status.ok());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(recovered.answers[i].reachable, expect.answers[i].reachable);
    }
  }  // cluster shutdown unblocks the fake workers before ~FakeWorkers joins
}

// A worker that goes silent mid-round trips the read deadline: the batch
// rejects after ~read_timeout_ms instead of hanging the dispatcher forever.
TEST(TransportFailureTest, SilentWorkerTripsReadDeadline) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  FakeWorkers workers(3);
  workers.ServeHealthy(0);
  workers.ServeHealthy(1);
  workers.Run([&workers] {
    const int fd = workers.Accept(2);
    if (fd < 0) return;
    std::vector<uint8_t> req;
    PEREACH_CHECK(ReadWireMessage(fd, 5000, kMaxFrame, &req).ok());  // hello
    SendOkReply(fd);
    (void)ReadWireMessage(fd, 5000, kMaxFrame, &req);  // round request
    // Say nothing. The coordinator's deadline expires and it closes the
    // connection, which unblocks this read and ends the script.
    (void)ReadWireMessage(fd, 15000, kMaxFrame, &req);
    close(fd);
  });

  {
    Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3,
                    ConnectOptions(workers));
    PartialEvalEngine engine(&cluster);
    const BatchAnswer failed = engine.EvaluateBatch(SmallReachBatch());
    EXPECT_FALSE(failed.status.ok());
  }
}

// End-to-end serving recovery: SIGKILL a spawned worker under a live
// QueryServer. The in-flight batch's queries resolve rejected with
// kTransportError (counted in the metrics registry), and the next
// submission is served again off a respawned worker — the server never
// stops serving.
TEST(TransportFailureTest, ServerRejectsKilledWorkerBatchAndKeepsServing) {
  const PaperExample ex = MakePaperExample();
  Graph g = ex.graph;
  IncrementalReachIndex index(std::move(g), ex.partition, 3);
  ServerOptions options;
  options.transport.backend = TransportBackend::kSocket;
  options.transport.read_timeout_ms = 2000;
  // Recovery pinned off: this test asserts the documented opt-out behavior
  // (kill → one rejected batch → next batch served off a respawn).
  options.transport.round_retries = 0;
  options.transport.degrade_local = false;
  options.transport.breaker_threshold = 0;
  QueryServer server(&index, options);

  const ServedAnswer first = server.Submit(Query::Reach(ex.ann, ex.mark)).get();
  ASSERT_FALSE(first.rejected);
  EXPECT_TRUE(first.answer.reachable);

  std::vector<int> pids = server.cluster()->transport()->WorkerPidsForTest();
  ASSERT_EQ(pids.size(), 3u);
  kill(pids[0], SIGKILL);

  const ServedAnswer rejected =
      server.Submit(Query::Reach(ex.ann, ex.mark)).get();
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(rejected.reject_reason, RejectReason::kTransportError);
  EXPECT_GE(server.Metrics().counter(CounterId::kRejectedTransport), 1u);

  const ServedAnswer again = server.Submit(Query::Reach(ex.ann, ex.mark)).get();
  ASSERT_FALSE(again.rejected);
  EXPECT_TRUE(again.answer.reachable);
  server.Stop();
}

// Stop() while a round is wedged on a silent worker: the read deadline
// bounds the dispatcher's block, every submitted future still resolves
// (rejected), and Stop returns — shutdown can never hang on a dead worker.
TEST(TransportFailureTest, StopDuringHungRoundDrainsCleanly) {
  const PaperExample ex = MakePaperExample();
  FakeWorkers workers(3);
  workers.ServeHealthy(0);
  workers.ServeHealthy(1);
  workers.Run([&workers] {
    const int fd = workers.Accept(2);
    if (fd < 0) return;
    std::vector<uint8_t> req;
    PEREACH_CHECK(ReadWireMessage(fd, 5000, kMaxFrame, &req).ok());  // hello
    SendOkReply(fd);
    // Swallow round requests silently until the coordinator gives up and
    // closes the connection.
    while (ReadWireMessage(fd, 15000, kMaxFrame, &req).ok()) {
    }
    close(fd);
  });

  {
    Graph g = ex.graph;
    IncrementalReachIndex index(std::move(g), ex.partition, 3);
    ServerOptions options;
    options.transport = ConnectOptions(workers);
    QueryServer server(&index, options);

    std::vector<std::future<ServedAnswer>> futures;
    for (const Query& q : SmallReachBatch()) {
      futures.push_back(server.Submit(q));
    }
    server.Stop();
    for (auto& f : futures) {
      const ServedAnswer served = f.get();  // must resolve, not hang
      EXPECT_TRUE(served.rejected);
    }
  }
}

// ---------------------------------------------------------------------------
// Self-healing transport (DESIGN.md §13): the supervisor's breaker state
// machine, its repair re-queue loop, and end-to-end recovery through a live
// QueryServer — kill and unreachable-endpoint faults must be absorbed, not
// surfaced as rejections.

using BreakerState = WorkerSupervisor::BreakerState;

TEST(SupervisorTest, BreakerOpensHalfOpensAndCloses) {
  WorkerSupervisor sup(/*num_sites=*/1, /*threshold=*/2, /*open_ms=*/50);
  EXPECT_TRUE(sup.AllowRequest(0));
  sup.RecordFailure(0);
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kClosed);  // below threshold
  EXPECT_TRUE(sup.AllowRequest(0));
  sup.RecordFailure(0);
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kOpen);
  EXPECT_FALSE(sup.AllowRequest(0));  // open window refuses
  EXPECT_EQ(sup.OpenBreakers(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(sup.AllowRequest(0));  // window elapsed: becomes the probe
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kHalfOpen);
  EXPECT_FALSE(sup.AllowRequest(0));  // only one probe admitted

  sup.RecordSuccess(0);  // probe succeeded: breaker closes fully
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kClosed);
  EXPECT_EQ(sup.OpenBreakers(), 0u);
  EXPECT_TRUE(sup.AllowRequest(0));
}

TEST(SupervisorTest, FailedHalfOpenProbeReopensBreaker) {
  WorkerSupervisor sup(/*num_sites=*/1, /*threshold=*/1, /*open_ms=*/50);
  sup.RecordFailure(0);
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(sup.AllowRequest(0));  // half-open probe
  sup.RecordFailure(0);              // probe failed
  EXPECT_EQ(sup.StateForTest(0), BreakerState::kOpen);
  EXPECT_FALSE(sup.AllowRequest(0));  // fresh open window
}

TEST(SupervisorTest, RepairThreadRequeuesUntilSuccess) {
  WorkerSupervisor sup(/*num_sites=*/1, /*threshold=*/1, /*open_ms=*/5);
  std::atomic<int> calls{0};
  sup.Start([&calls](SiteId site) {
    PEREACH_CHECK_EQ(site, 0u);
    // Fail the first two repair attempts: each must be re-queued after the
    // backoff rather than dropped.
    return calls.fetch_add(1) >= 2;
  });
  sup.RecordFailure(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (calls.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(calls.load(), 3);
  sup.Stop();
}

// Respawn under load: SIGKILL every spawned worker under a live QueryServer
// running the default self-healing options. Every subsequent submission must
// still be SERVED — in-round failover re-establishes (or degrades) without
// surfacing a single rejection — and the recovery shows up in the metrics.
TEST(TransportFailureTest, ServerAbsorbsKilledWorkersUnderLoad) {
  const PaperExample ex = MakePaperExample();
  Graph g = ex.graph;
  IncrementalReachIndex index(std::move(g), ex.partition, 3);
  ServerOptions options;
  options.transport.backend = TransportBackend::kSocket;
  options.transport.read_timeout_ms = 2000;
  QueryServer server(&index, options);

  const ServedAnswer first = server.Submit(Query::Reach(ex.ann, ex.mark)).get();
  ASSERT_FALSE(first.rejected);
  EXPECT_TRUE(first.answer.reachable);

  const std::vector<int> pids =
      server.cluster()->transport()->WorkerPidsForTest();
  ASSERT_EQ(pids.size(), 3u);
  for (const int pid : pids) kill(pid, SIGKILL);

  for (int i = 0; i < 4; ++i) {
    const ServedAnswer served =
        server.Submit(Query::Reach(ex.ann, ex.mark)).get();
    ASSERT_FALSE(served.rejected) << "submission " << i;
    EXPECT_TRUE(served.answer.reachable);
  }
  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.counter(CounterId::kRejectedTransport), 0u);
  EXPECT_GT(snap.counter(CounterId::kTransportRetries) +
                snap.counter(CounterId::kTransportDegraded),
            0u);
  server.Stop();
}

// Degraded-round correctness through the server: every endpoint is
// unreachable, so with degrade_local on (the default) every site round is
// evaluated over the coordinator's fragment copy. Answers must be correct
// and the degradation visible in the metrics, including the breaker gauge.
TEST(TransportFailureTest, ServerDegradesLocallyWhenWorkersUnreachable) {
  const PaperExample ex = MakePaperExample();
  Graph g = ex.graph;
  IncrementalReachIndex index(std::move(g), ex.partition, 3);
  ServerOptions options;
  options.transport.backend = TransportBackend::kSocket;
  options.transport.connect = {"unix:/nonexistent/pereach-a.sock",
                               "unix:/nonexistent/pereach-b.sock",
                               "unix:/nonexistent/pereach-c.sock"};
  options.transport.connect_timeout_ms = 100;
  options.transport.max_retries = 0;
  options.transport.retry_backoff_ms = 1;
  options.transport.round_retries = 0;
  options.transport.breaker_threshold = 1;
  QueryServer server(&index, options);

  const ServedAnswer reach = server.Submit(Query::Reach(ex.ann, ex.mark)).get();
  ASSERT_FALSE(reach.rejected);
  EXPECT_TRUE(reach.answer.reachable);
  const ServedAnswer miss = server.Submit(Query::Reach(ex.mark, ex.ann)).get();
  ASSERT_FALSE(miss.rejected);
  EXPECT_FALSE(miss.answer.reachable);

  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.counter(CounterId::kRejectedTransport), 0u);
  EXPECT_GT(snap.counter(CounterId::kTransportDegraded), 0u);
  EXPECT_GT(snap.gauge(GaugeId::kBreakersOpen), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace pereach
