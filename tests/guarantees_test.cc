// Tests for the performance guarantees of Theorems 1-3: visit counts,
// traffic bounds in terms of |V_f| and |R|, and message structure. These are
// the paper's headline claims, asserted mechanically on random inputs.

#include <gtest/gtest.h>

#include "src/core/dis_dist.h"
#include "src/core/dis_reach.h"
#include "src/core/dis_rpq.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::RandomPartition;

struct GuaranteeCase {
  std::string name;
  size_t n;
  size_t m_factor;
  size_t k;
};

class GuaranteesTest : public ::testing::TestWithParam<GuaranteeCase> {
 protected:
  void SetUp() override {
    const GuaranteeCase& c = GetParam();
    Rng rng(500 + c.n + c.k);
    graph_ = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
    partition_ = RandomPartition(c.n, c.k, &rng);
    frag_ = Fragmentation::Build(graph_, partition_, c.k);
    cluster_ = std::make_unique<Cluster>(&frag_, NetworkModel());
    rng_ = std::make_unique<Rng>(c.n * 17 + c.k);
  }

  std::pair<NodeId, NodeId> RandomPair() {
    NodeId s = static_cast<NodeId>(rng_->Uniform(graph_.NumNodes()));
    NodeId t = static_cast<NodeId>(rng_->Uniform(graph_.NumNodes() - 1));
    if (t >= s) ++t;
    return {s, t};
  }

  Graph graph_;
  std::vector<SiteId> partition_;
  Fragmentation frag_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Rng> rng_;
};

// Theorem 1(b): each site is visited exactly once by disReach.
TEST_P(GuaranteesTest, DisReachVisitsEachSiteOnce) {
  for (int q = 0; q < 10; ++q) {
    const auto [s, t] = RandomPair();
    const QueryAnswer a = DisReach(cluster_.get(), {s, t});
    ASSERT_EQ(a.metrics.site_visits.size(), frag_.num_fragments());
    for (size_t v : a.metrics.site_visits) ASSERT_EQ(v, 1u);
    ASSERT_EQ(a.metrics.rounds, 1u);
    // Message structure: one query per site, at most one reply per site.
    ASSERT_LE(a.metrics.messages, 2 * frag_.num_fragments());
  }
}

// Theorem 1(c): total traffic is O(|V_f|^2) bits — with the bit-matrix
// encoding, at most Σ_i |F_i.I|·(|F_i.O| bits) plus small per-equation
// headers, independent of |G|. We assert the concrete bound.
TEST_P(GuaranteesTest, DisReachTrafficBoundedByBoundaryStructure) {
  // Per-fragment budget: |I_i| equations, each at most ceil(|O_i|/8) + 16
  // bytes (dense row + var id + tags), plus |O_i| * 5 bytes of oset table
  // and a fixed header. The sparse encoder never exceeds the dense row by
  // more than the 10x sparse/dense switch margin.
  size_t budget = 64;  // query broadcast + envelopes
  for (SiteId i = 0; i < frag_.num_fragments(); ++i) {
    const Fragment& f = frag_.fragment(i);
    const size_t in_nodes = f.in_nodes().size() + 1;   // + s if local
    const size_t oset = f.num_virtual() + 1;           // + t if local
    budget += oset * 5 + in_nodes * ((oset + 7) / 8 + (oset + 7) / 8 + 16) + 16;
  }
  for (int q = 0; q < 10; ++q) {
    const auto [s, t] = RandomPair();
    const QueryAnswer a = DisReach(cluster_.get(), {s, t});
    ASSERT_LE(a.metrics.traffic_bytes, budget)
        << "traffic exceeded the O(|V_f|^2) budget";
  }
}

// Traffic must not grow with |G| when the boundary is fixed: enlarging
// fragments internally (adding intra-fragment structure) leaves disReach
// traffic unchanged up to noise, while ship-all grows linearly.
TEST(GuaranteesScalingTest, TrafficIndependentOfFragmentInterior) {
  Rng rng(97);
  // Boundary: a fixed 2-cycle between two sites through fixed gateway nodes.
  const auto build = [&](size_t interior) {
    GraphBuilder b;
    // Nodes 0..interior-1 on site 0; interior..2*interior-1 on site 1.
    b.AddNodes(2 * interior);
    for (NodeId v = 1; v < interior; ++v) b.AddEdge(v - 1, v);  // chain site 0
    for (NodeId v = 1; v < interior; ++v) {
      b.AddEdge(static_cast<NodeId>(interior + v - 1),
                static_cast<NodeId>(interior + v));
    }
    b.AddEdge(static_cast<NodeId>(interior - 1),
              static_cast<NodeId>(interior));  // cross 0 -> 1
    std::vector<SiteId> part(2 * interior, 0);
    for (size_t v = interior; v < 2 * interior; ++v) part[v] = 1;
    return std::pair{std::move(b).Build(), std::move(part)};
  };

  auto [small_g, small_p] = build(10);
  auto [large_g, large_p] = build(1000);
  const Fragmentation small_f = Fragmentation::Build(small_g, small_p, 2);
  const Fragmentation large_f = Fragmentation::Build(large_g, large_p, 2);
  Cluster small_c(&small_f, NetworkModel());
  Cluster large_c(&large_f, NetworkModel());

  const QueryAnswer small_a =
      DisReach(&small_c, {0, static_cast<NodeId>(2 * 10 - 1)});
  const QueryAnswer large_a =
      DisReach(&large_c, {0, static_cast<NodeId>(2 * 1000 - 1)});
  EXPECT_TRUE(small_a.reachable);
  EXPECT_TRUE(large_a.reachable);
  // 100x larger interior, same boundary: traffic within a small constant.
  EXPECT_LE(large_a.metrics.traffic_bytes,
            small_a.metrics.traffic_bytes + 64);
}

// Theorem 2: disDist inherits the guarantees of disReach.
TEST_P(GuaranteesTest, DisDistVisitsEachSiteOnce) {
  for (int q = 0; q < 10; ++q) {
    const auto [s, t] = RandomPair();
    const QueryAnswer a = DisDist(cluster_.get(), {s, t, 10});
    for (size_t v : a.metrics.site_visits) ASSERT_EQ(v, 1u);
    ASSERT_EQ(a.metrics.rounds, 1u);
  }
}

// Theorem 3: disRPQ visits each site once; traffic bounded by
// O(|R|^2 |V_f|^2) plus the O(|G_q| card(F)) broadcast.
TEST_P(GuaranteesTest, DisRpqVisitsEachSiteOnceAndTrafficBounded) {
  for (int q = 0; q < 5; ++q) {
    const QueryAutomaton a =
        QueryAutomaton::FromRegex(Regex::Random(4, 3, rng_.get())).value();
    const auto [s, t] = RandomPair();
    const QueryAnswer answer = DisRpqAutomaton(cluster_.get(), s, t, a);
    for (size_t v : answer.metrics.site_visits) ASSERT_EQ(v, 1u);
    ASSERT_EQ(answer.metrics.rounds, 1u);

    size_t budget = (a.ByteSize() + 32) * frag_.num_fragments();
    const size_t states = a.num_states();
    for (SiteId i = 0; i < frag_.num_fragments(); ++i) {
      const Fragment& f = frag_.fragment(i);
      const size_t in_pairs = (f.in_nodes().size() + 1) * states;
      const size_t out_pairs = (f.num_virtual() + 1) * states;
      budget += out_pairs * 6 +
                in_pairs * ((out_pairs + 7) / 8 + (out_pairs + 7) / 8 + 16) +
                16;
    }
    ASSERT_LE(answer.metrics.traffic_bytes, budget);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteesTest,
    ::testing::Values(GuaranteeCase{"small", 30, 2, 3},
                      GuaranteeCase{"medium", 100, 2, 5},
                      GuaranteeCase{"dense", 60, 5, 4},
                      GuaranteeCase{"manyfrag", 80, 2, 16}),
    [](const ::testing::TestParamInfo<GuaranteeCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace pereach
