#include "src/graph/algorithms.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;

TEST(ReachTest, SelfIsReachable) {
  const Graph g = MakeGraph(3, {{0, 1}});
  EXPECT_TRUE(Reaches(g, 2, 2));
  EXPECT_TRUE(Reaches(g, 0, 0));
}

TEST(ReachTest, ChainAndDisconnect) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}});
  EXPECT_TRUE(Reaches(g, 0, 2));
  EXPECT_FALSE(Reaches(g, 2, 0));
  EXPECT_FALSE(Reaches(g, 0, 3));
}

TEST(ReachTest, Cycle) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 0; t < 3; ++t) EXPECT_TRUE(Reaches(g, s, t));
  }
}

TEST(BfsDistancesTest, ChainDistances) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<uint32_t> d = BfsDistances(g, 0);
  EXPECT_EQ(d, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(BfsDistance(g, 0, 4), 4u);
  EXPECT_EQ(BfsDistance(g, 4, 0), kInfDistance);
}

TEST(BfsDistancesTest, MaxDistPrunes) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<uint32_t> d = BfsDistances(g, 0, /*max_dist=*/2);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], kInfDistance);
}

TEST(BfsDistancesTest, ShortestPathPicked) {
  // Two routes 0->3: direct edge and a long way around.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(BfsDistance(g, 0, 3), 1u);
}

TEST(SccTest, SingleCycleIsOneComponent) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(SccTest, DagHasSingletonComponents) {
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(SccTest, TwoCyclesBridged) {
  const Graph g =
      MakeGraph(6, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {4, 2}, {4, 5}});
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_EQ(scc.component_of[3], scc.component_of[4]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  EXPECT_NE(scc.component_of[4], scc.component_of[5]);
}

// Property: nodes share a component iff they reach each other.
TEST(SccTest, ComponentsMatchMutualReachabilityOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Uniform(30);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    const SccResult scc = StronglyConnectedComponents(g);
    const std::vector<Bitset> tc = TransitiveClosure(g);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool mutual = tc[u].Test(v) && tc[v].Test(u);
        EXPECT_EQ(scc.component_of[u] == scc.component_of[v], mutual)
            << "nodes " << u << "," << v;
      }
    }
  }
}

// Property: condensation edges always go to strictly smaller component ids
// (reverse topological order) — the invariant the bitset propagation needs.
TEST(CondensationTest, EdgesGoToSmallerIds) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Uniform(50);
    const Graph g = ErdosRenyi(n, 3 * n, 1, &rng);
    const Condensation c = Condense(g);
    for (uint32_t comp = 0; comp < c.scc.num_components; ++comp) {
      for (size_t e = c.offsets[comp]; e < c.offsets[comp + 1]; ++e) {
        EXPECT_LT(c.targets[e], comp);
      }
    }
  }
}

TEST(TransitiveClosureTest, MatchesPairwiseBfs) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + rng.Uniform(25);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    const std::vector<Bitset> tc = TransitiveClosure(g);
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<bool> reach = ReachableFrom(g, u);
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(tc[u].Test(v), static_cast<bool>(reach[v]));
      }
    }
  }
}

TEST(ReachableTargetsTest, MatchesTransitiveClosure) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.Uniform(40);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    std::vector<NodeId> targets;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.3)) targets.push_back(v);
    }
    if (targets.empty()) targets.push_back(0);
    const std::vector<Bitset> result = ReachableTargets(g, targets);
    const std::vector<Bitset> tc = TransitiveClosure(g);
    for (NodeId v = 0; v < n; ++v) {
      for (size_t i = 0; i < targets.size(); ++i) {
        EXPECT_EQ(result[v].Test(i), tc[v].Test(targets[i]))
            << "v=" << v << " target=" << targets[i];
      }
    }
  }
}

// Property: the blocked ForEachReachableTarget agrees with the dense
// version, across block sizes that force multiple blocks.
TEST(ForEachReachableTargetTest, BlockedMatchesDense) {
  Rng rng(47);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 3 + rng.Uniform(60);
    const Graph g = ErdosRenyi(n, 3 * n, 1, &rng);
    std::vector<NodeId> sources, targets;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.4)) sources.push_back(v);
      if (rng.Bernoulli(0.5)) targets.push_back(v);
    }
    if (sources.empty()) sources.push_back(0);
    if (targets.empty()) targets.push_back(static_cast<NodeId>(n - 1));

    std::set<std::pair<uint32_t, uint32_t>> got;
    ForEachReachableTarget(g, sources, targets, /*block_bits=*/64,
                           [&got](uint32_t si, uint32_t ti) {
                             EXPECT_TRUE(got.emplace(si, ti).second)
                                 << "duplicate emission";
                           });
    const std::vector<Bitset> tc = TransitiveClosure(g);
    for (uint32_t si = 0; si < sources.size(); ++si) {
      for (uint32_t ti = 0; ti < targets.size(); ++ti) {
        EXPECT_EQ(got.count({si, ti}) > 0, tc[sources[si]].Test(targets[ti]))
            << "s=" << sources[si] << " t=" << targets[ti];
      }
    }
  }
}

TEST(AllPairsDistancesTest, MatchesBfs) {
  Rng rng(53);
  const size_t n = 20;
  const Graph g = ErdosRenyi(n, 40, 1, &rng);
  const auto apd = AllPairsDistances(g);
  for (NodeId u = 0; u < n; ++u) {
    const std::vector<uint32_t> d = BfsDistances(g, u);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(apd[u][v], d[v]);
  }
}

// Property: ForEachBoundedDistance emits exactly the (source, target) pairs
// within the bound, with exact distances.
TEST(ForEachBoundedDistanceTest, MatchesAllPairsDistances) {
  Rng rng(59);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 3 + rng.Uniform(40);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    const uint32_t bound = 1 + static_cast<uint32_t>(rng.Uniform(6));
    std::vector<NodeId> sources, targets;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.4)) sources.push_back(v);
      if (rng.Bernoulli(0.4)) targets.push_back(v);
    }
    if (sources.empty()) sources.push_back(0);
    if (targets.empty()) targets.push_back(static_cast<NodeId>(n - 1));

    std::map<std::pair<uint32_t, uint32_t>, uint32_t> got;
    ForEachBoundedDistance(g, sources, targets, bound, /*block_bits=*/64,
                           [&got](uint32_t si, uint32_t ti, uint32_t d) {
                             EXPECT_TRUE(
                                 got.emplace(std::pair{si, ti}, d).second)
                                 << "duplicate emission";
                           });
    const auto apd = AllPairsDistances(g);
    for (uint32_t si = 0; si < sources.size(); ++si) {
      for (uint32_t ti = 0; ti < targets.size(); ++ti) {
        const uint32_t expect = apd[sources[si]][targets[ti]];
        auto it = got.find({si, ti});
        if (expect <= bound) {
          ASSERT_NE(it, got.end())
              << "missing pair s=" << sources[si] << " t=" << targets[ti]
              << " dist=" << expect << " bound=" << bound;
          EXPECT_EQ(it->second, expect);
        } else {
          EXPECT_EQ(it, got.end())
              << "spurious pair s=" << sources[si] << " t=" << targets[ti];
        }
      }
    }
  }
}

TEST(TopologicalOrderTest, RespectsEdges) {
  const Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {2, 3}, {1, 3}, {3, 4}});
  const std::vector<NodeId> order = TopologicalOrder(g);
  std::vector<size_t> pos(5);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v : g.OutNeighbors(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

}  // namespace
}  // namespace pereach
