#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/baselines/dis_rpq_suciu.h"
#include "src/core/dis_reach.h"
#include "src/core/dis_rpq.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(ReassembleGraphTest, RebuildsExactGraph) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 150, 4, &rng);
  const std::vector<SiteId> part = RandomPartition(50, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  std::vector<std::vector<uint8_t>> payloads;
  for (SiteId i = 0; i < 4; ++i) {
    Encoder enc;
    frag.fragment(i).Serialize(&enc);
    payloads.push_back(enc.TakeBuffer());
  }
  const Graph h = ReassembleGraph(payloads, g.NumNodes());
  ASSERT_EQ(h.NumNodes(), g.NumNodes());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    auto a = g.OutNeighbors(v);
    std::vector<NodeId> av(a.begin(), a.end()), bv;
    auto b = h.OutNeighbors(v);
    bv.assign(b.begin(), b.end());
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    EXPECT_EQ(av, bv) << "node " << v;
  }
}

TEST(DisReachNaiveTest, MatchesDisReachOnPaperExample) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  EXPECT_TRUE(DisReachNaive(&cluster, {ex.ann, ex.mark}).reachable);
  EXPECT_FALSE(DisReachNaive(&cluster, {ex.mark, ex.ann}).reachable);
  // Ship-all also visits each site once, but pays the whole graph in bytes.
  const QueryAnswer a = DisReachNaive(&cluster, {ex.ann, ex.mark});
  for (size_t v : a.metrics.site_visits) EXPECT_EQ(v, 1u);
}

TEST(DisReachNaiveTest, TrafficIsWholeGraph) {
  Rng rng(2);
  const Graph g = ErdosRenyi(200, 600, 1, &rng);
  const std::vector<SiteId> part = RandomPartition(200, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());

  size_t fragment_bytes = 0;
  for (SiteId i = 0; i < 4; ++i) fragment_bytes += frag.fragment(i).ByteSize();

  const QueryAnswer naive = DisReachNaive(&cluster, {0, 1});
  EXPECT_GE(naive.metrics.traffic_bytes, fragment_bytes);

  const QueryAnswer pe = DisReach(&cluster, {0, 1});
  EXPECT_LT(pe.metrics.traffic_bytes, naive.metrics.traffic_bytes);
}

TEST(DisReachMpTest, MatchesCentralizedAndCountsManyVisits) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisReachMp(&cluster, {ex.ann, ex.mark});
  EXPECT_TRUE(a.reachable);
  // Message passing bounces between sites: strictly more rounds than
  // disReach's single round, and more than one visit somewhere.
  EXPECT_GT(a.metrics.rounds, 1u);
  EXPECT_GT(a.metrics.TotalVisits(), 3u);
  EXPECT_FALSE(DisReachMp(&cluster, {ex.mark, ex.ann}).reachable);
}

TEST(DisReachMpTest, TerminatesOnCyclicCrossFragmentGraphs) {
  Rng rng(3);
  const Graph g = Cycle(12, 1, &rng);
  std::vector<SiteId> part(12);
  for (NodeId v = 0; v < 12; ++v) part[v] = v % 3;
  const Fragmentation frag = Fragmentation::Build(g, part, 3);
  Cluster cluster(&frag, NetworkModel());
  EXPECT_TRUE(DisReachMp(&cluster, {0, 11}).reachable);
  EXPECT_TRUE(DisReachMp(&cluster, {11, 0}).reachable);
}

TEST(DisReachMpTest, PropertyMatchesCentralized) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 10 + rng.Uniform(60);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    const size_t k = 2 + rng.Uniform(4);
    const std::vector<SiteId> part = RandomPartition(n, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 10; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      ASSERT_EQ(DisReachMp(&cluster, {s, t}).reachable,
                CentralizedReach(g, s, t))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(DisRpqSuciuTest, MatchesDisRpqAndVisitsTwice) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  Result<Regex> r = Regex::Parse("DB* | HR*", ex.labels);
  ASSERT_TRUE(r.ok());
  const QueryAutomaton a = QueryAutomaton::FromRegex(r.value()).value();

  const QueryAnswer suciu = DisRpqSuciu(&cluster, ex.ann, ex.mark, a);
  EXPECT_TRUE(suciu.reachable);
  // Each site is visited exactly twice (the paper's contrast with disRPQ).
  for (size_t v : suciu.metrics.site_visits) EXPECT_EQ(v, 2u);
  EXPECT_EQ(suciu.metrics.rounds, 2u);
}

TEST(DisRpqSuciuTest, DenseRelationsShipMoreThanDisRpq) {
  // On a graph with a non-trivial boundary, the always-dense relation
  // shipping of [30] costs clearly more than disRPQ's reachable formulas
  // (the Fig. 11(f) effect).
  Rng rng(13);
  const Graph g = ErdosRenyi(400, 1600, 4, &rng);
  const std::vector<SiteId> part = RandomPartition(400, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());
  const QueryAutomaton a =
      QueryAutomaton::FromRegex(Regex::Random(6, 4, &rng)).value();
  const QueryAnswer suciu = DisRpqSuciu(&cluster, 0, 399, a);
  const QueryAnswer rpq = DisRpqAutomaton(&cluster, 0, 399, a);
  EXPECT_GT(suciu.metrics.traffic_bytes, rpq.metrics.traffic_bytes);
}

TEST(DisRpqSuciuTest, PropertyMatchesCentralized) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 10 + rng.Uniform(50);
    const Graph g = ErdosRenyi(n, 2 * n, 3, &rng);
    const size_t k = 2 + rng.Uniform(4);
    const std::vector<SiteId> part = RandomPartition(n, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 6; ++q) {
      const QueryAutomaton a =
          QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(6), 3, &rng))
              .value();
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      ASSERT_EQ(DisRpqSuciu(&cluster, s, t, a).reachable,
                CentralizedRegularReach(g, s, t, a))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(DisRpqNaiveTest, PropertyMatchesCentralized) {
  Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 10 + rng.Uniform(40);
    const Graph g = ErdosRenyi(n, 2 * n, 3, &rng);
    const size_t k = 2 + rng.Uniform(3);
    const std::vector<SiteId> part = RandomPartition(n, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 6; ++q) {
      const QueryAutomaton a =
          QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(5), 3, &rng))
              .value();
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      ASSERT_EQ(DisRpqNaive(&cluster, s, t, a).reachable,
                CentralizedRegularReach(g, s, t, a));
    }
  }
}

TEST(DisDistNaiveTest, MatchesExactDistance) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisDistNaive(&cluster, {ex.ann, ex.mark, 6});
  EXPECT_TRUE(a.reachable);
  EXPECT_EQ(a.distance, 6u);
  EXPECT_FALSE(DisDistNaive(&cluster, {ex.ann, ex.mark, 5}).reachable);
}

}  // namespace
}  // namespace pereach
