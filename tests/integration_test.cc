// End-to-end tests through the DistributedGraph facade: every engine must
// agree on every query class, across topologies, partitioners and datasets.

#include "src/core/dist_graph.h"

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(IntegrationTest, PaperRunningExampleAllEngines) {
  const PaperExample ex = MakePaperExample();
  DistributedGraph dg(Graph(ex.graph), ex.partition, 3);

  // q_r(Ann, Mark) — every reachability engine agrees (Example 1).
  for (Engine e : {Engine::kPartialEval, Engine::kShipAll,
                   Engine::kMessagePassing, Engine::kSuciu,
                   Engine::kMapReduce}) {
    EXPECT_TRUE(dg.Reach(ex.ann, ex.mark, e).reachable) << EngineName(e);
    EXPECT_FALSE(dg.Reach(ex.mark, ex.ann, e).reachable) << EngineName(e);
  }

  // q_br(Ann, Mark, 6) true; bound 5 false (Example 5).
  for (Engine e : {Engine::kPartialEval, Engine::kShipAll}) {
    EXPECT_TRUE(dg.BoundedReach(ex.ann, ex.mark, 6, e).reachable)
        << EngineName(e);
    EXPECT_FALSE(dg.BoundedReach(ex.ann, ex.mark, 5, e).reachable)
        << EngineName(e);
  }

  // q_rr(Ann, Mark, DB* ∪ HR*) true (Examples 7-8).
  Result<Regex> r = Regex::Parse("DB* | HR*", ex.labels);
  ASSERT_TRUE(r.ok());
  for (Engine e : {Engine::kPartialEval, Engine::kShipAll, Engine::kSuciu,
                   Engine::kMapReduce}) {
    EXPECT_TRUE(dg.RegularReach(ex.ann, ex.mark, r.value(), e).reachable)
        << EngineName(e);
  }
}

TEST(IntegrationTest, CopyOfGraphKeepsFacadeIndependent) {
  const PaperExample ex = MakePaperExample();
  DistributedGraph dg(Graph(ex.graph), ex.partition, 3);
  EXPECT_EQ(dg.graph().NumNodes(), ex.graph.NumNodes());
  EXPECT_EQ(dg.fragmentation().num_fragments(), 3u);
}

// The cross-engine agreement property, swept over graph families and
// partitioners.
struct EngineCase {
  std::string name;
  Dataset dataset;
  double scale;
  size_t k;
};

class EngineAgreementTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineAgreementTest, AllEnginesAgree) {
  const EngineCase& c = GetParam();
  Rng rng(900 + c.k);
  Graph g = MakeDataset(c.dataset, c.scale, &rng);
  const Graph oracle = g;  // keep a copy for centralized checks
  const std::vector<SiteId> part =
      RandomPartition(g.NumNodes(), c.k, &rng);
  DistributedGraph dg(std::move(g), part, c.k);

  for (int q = 0; q < 6; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(oracle.NumNodes()));
    NodeId t = static_cast<NodeId>(rng.Uniform(oracle.NumNodes() - 1));
    if (t >= s) ++t;
    const bool expected = CentralizedReach(oracle, s, t);
    ASSERT_EQ(dg.Reach(s, t, Engine::kPartialEval).reachable, expected);
    ASSERT_EQ(dg.Reach(s, t, Engine::kShipAll).reachable, expected);
    ASSERT_EQ(dg.Reach(s, t, Engine::kMessagePassing).reachable, expected);
    ASSERT_EQ(dg.Reach(s, t, Engine::kMapReduce).reachable, expected);

    const uint32_t exact = CentralizedDistance(oracle, s, t);
    const QueryAnswer bounded = dg.BoundedReach(s, t, 8);
    ASSERT_EQ(bounded.reachable, exact != kInfDistance && exact <= 8);
    if (bounded.reachable) {
      ASSERT_EQ(bounded.distance, exact);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, EngineAgreementTest,
    ::testing::Values(
        EngineCase{"amazon", Dataset::kAmazon, 0.001, 4},
        EngineCase{"youtube", Dataset::kYoutube, 0.002, 3},
        EngineCase{"internet", Dataset::kInternet, 0.005, 5},
        EngineCase{"citation", Dataset::kCitation, 0.0005, 4}),
    [](const ::testing::TestParamInfo<EngineCase>& param_info) {
      return param_info.param.name;
    });

TEST(IntegrationTest, RegularQueriesAgreeOnLabeledDataset) {
  Rng rng(31);
  Graph g = MakeDataset(Dataset::kYoutube, 0.002, &rng);
  const Graph oracle = g;
  const std::vector<SiteId> part = RandomPartition(g.NumNodes(), 4, &rng);
  DistributedGraph dg(std::move(g), part, 4);
  for (int q = 0; q < 8; ++q) {
    const QueryAutomaton a =
        QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(6), 12, &rng))
            .value();
    const NodeId s = static_cast<NodeId>(rng.Uniform(oracle.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(oracle.NumNodes()));
    const bool expected = CentralizedRegularReach(oracle, s, t, a);
    ASSERT_EQ(dg.RegularReachAutomaton(s, t, a).reachable, expected);
    ASSERT_EQ(dg.RegularReachAutomaton(s, t, a, Engine::kShipAll).reachable,
              expected);
    ASSERT_EQ(dg.RegularReachAutomaton(s, t, a, Engine::kSuciu).reachable,
              expected);
    ASSERT_EQ(dg.RegularReachAutomaton(s, t, a, Engine::kMapReduce).reachable,
              expected);
  }
}

TEST(IntegrationTest, PartitionerChoiceDoesNotChangeAnswers) {
  Rng rng(37);
  const Graph g = PreferentialAttachment(150, 2, 4, &rng);
  const RandomPartitioner random_p;
  const ChunkPartitioner chunk_p;
  const BfsGrowPartitioner bfs_p;
  std::vector<std::unique_ptr<DistributedGraph>> dgs;
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{&random_p, &chunk_p, &bfs_p}) {
    dgs.push_back(std::make_unique<DistributedGraph>(
        Graph(g), p->Partition(g, 5, &rng), 5));
  }
  for (int q = 0; q < 15; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(150));
    const NodeId t = static_cast<NodeId>(rng.Uniform(150));
    const bool expected = CentralizedReach(g, s, t);
    for (auto& dg : dgs) {
      ASSERT_EQ(dg->Reach(s, t).reachable, expected)
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(IntegrationTest, ManyFragmentsOnOneSiteStillCorrect) {
  // The paper remarks multiple fragments may reside in a single site; here
  // k far exceeds any reasonable machine count, exercising tiny fragments.
  Rng rng(41);
  const Graph g = ErdosRenyi(64, 128, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(64, 32, &rng);
  DistributedGraph dg(Graph(g), part, 32);
  for (int q = 0; q < 10; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(64));
    const NodeId t = static_cast<NodeId>(rng.Uniform(64));
    ASSERT_EQ(dg.Reach(s, t).reachable, CentralizedReach(g, s, t));
  }
}

TEST(IntegrationTest, EngineNamesAreStable) {
  EXPECT_EQ(EngineName(Engine::kPartialEval), "partial-eval");
  EXPECT_EQ(EngineName(Engine::kShipAll), "ship-all");
  EXPECT_EQ(EngineName(Engine::kMessagePassing), "message-passing");
  EXPECT_EQ(EngineName(Engine::kSuciu), "suciu");
  EXPECT_EQ(EngineName(Engine::kMapReduce), "mapreduce");
}

}  // namespace
}  // namespace pereach
