// Differential suite for the bit-parallel batch path of the coordinator
// reach core: ReachLabels::ReachesAnyWord / BoundaryReachIndex::AnswerBatch /
// BoundaryRpqIndex::Entry::AnswerBatch versus the scalar lookups and the
// centralized oracle, across random condensations x shortcut budgets
// (including 0) and across update epochs at the engine level. Every
// assertion carries the seed, so a failing cell reproduces from the log.

#include "src/index/reach_labels.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/net/cluster.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::EdgeWorld;
using testing_util::OracleReachable;
using testing_util::RandomPartition;
using testing_util::RandomReachBatch;
using testing_util::RandomRpqBatch;

/// Brute-force reflexive reachability closure of a raw edge list.
std::vector<std::vector<bool>> Closure(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [u, v] : edges) adj[u].push_back(v);
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  std::vector<uint32_t> stack;
  for (uint32_t s = 0; s < n; ++s) {
    stack.assign(1, s);
    reach[s][s] = true;
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      for (uint32_t v : adj[u]) {
        if (!reach[s][v]) {
          reach[s][v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return reach;
}

std::vector<std::pair<uint32_t, uint32_t>> RandomEdges(size_t n, size_t m,
                                                       Rng* rng) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(m);
  for (size_t e = 0; e < m; ++e) {
    const uint32_t u = static_cast<uint32_t>(rng->Uniform(n));
    const uint32_t v = static_cast<uint32_t>(rng->Uniform(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return edges;
}

/// Per-lane backing storage for a word (WordQuestion spans are views).
struct WordStorage {
  std::vector<std::vector<uint32_t>> src;
  std::vector<std::vector<uint32_t>> tgt;
  std::vector<WordQuestion> questions;

  void AddLane(std::vector<uint32_t> s, std::vector<uint32_t> t) {
    src.push_back(std::move(s));
    tgt.push_back(std::move(t));
  }
  std::span<const WordQuestion> Finish() {
    questions.resize(src.size());
    for (size_t i = 0; i < src.size(); ++i) {
      questions[i] = {src[i], tgt[i]};
    }
    return questions;
  }
};

// ---------------------------------------------------------------------------
// ReachLabels level: ReachesAnyWord vs scalar ReachesAny vs brute closure,
// across shortcut budgets (including 0) and word shapes.

TEST(ReachLabelsBatchTest, WordMatchesScalarAndOracleAcrossBudgets) {
  constexpr uint64_t kSeed = 20260807;
  constexpr size_t kBudgets[] = {0, 2, 64, 4096};
  Rng rng(kSeed);
  size_t total_sweeps = 0;
  size_t total_shortcuts = 0;

  for (size_t trial = 0; trial < 12; ++trial) {
    const size_t n = 30 + rng.Uniform(90);
    const auto edges = RandomEdges(n, 3 * n, &rng);
    const auto oracle = Closure(n, edges);

    // Scalar reference over the unaugmented condensation; one word instance
    // per budget (shortcuts must never change an answer).
    ReachLabels scalar;
    scalar.Build(n, edges, /*shortcut_budget=*/0);

    for (const size_t budget : kBudgets) {
      ReachLabels labels;
      labels.Build(n, edges, budget);
      total_shortcuts += labels.shortcut_count();
      ASSERT_EQ(labels.num_edges(), scalar.num_edges())
          << "num_edges must not count shortcuts, seed=" << kSeed;

      // Random word widths: 1 lane, full 64, and odd sizes in between.
      for (const size_t lanes : {size_t{1}, size_t{64},
                                 size_t{1 + rng.Uniform(63)}}) {
        WordStorage word;
        for (size_t li = 0; li < lanes; ++li) {
          std::vector<uint32_t> s(1 + rng.Uniform(4));
          std::vector<uint32_t> t(1 + rng.Uniform(4));
          for (uint32_t& u : s) u = static_cast<uint32_t>(rng.Uniform(n));
          for (uint32_t& v : t) v = static_cast<uint32_t>(rng.Uniform(n));
          word.AddLane(std::move(s), std::move(t));
        }
        const uint64_t result = labels.ReachesAnyWord(word.Finish());
        for (size_t li = 0; li < lanes; ++li) {
          bool expected = false;
          for (uint32_t u : word.src[li]) {
            for (uint32_t v : word.tgt[li]) expected |= oracle[u][v];
          }
          const bool got = (result >> li) & 1;
          ASSERT_EQ(got, expected)
              << "word vs oracle: seed=" << kSeed << " trial=" << trial
              << " budget=" << budget << " lane=" << li << "/" << lanes;
          ASSERT_EQ(got, scalar.ReachesAny(word.src[li], word.tgt[li]))
              << "word vs scalar: seed=" << kSeed << " trial=" << trial
              << " budget=" << budget << " lane=" << li << "/" << lanes;
        }
      }
      total_sweeps += labels.sweep_count();
    }
  }
  // The fuzzed space actually exercised the sweep engine and, for the
  // non-zero budgets, added shortcut edges somewhere.
  EXPECT_GT(total_sweeps, 0u) << "seed=" << kSeed;
  EXPECT_GT(total_shortcuts, 0u) << "seed=" << kSeed;
}

TEST(ReachLabelsBatchTest, AllLabelDecidedWordSkipsTheSweep) {
  constexpr uint64_t kSeed = 424242;
  Rng rng(kSeed);
  const size_t n = 60;
  const auto edges = RandomEdges(n, 3 * n, &rng);
  ReachLabels labels;
  labels.Build(n, edges, /*shortcut_budget=*/64);

  // Reflexive lanes (sources == targets) are decided by the cu == cv label
  // verdict, so a full word of them must not enter the sweep.
  WordStorage word;
  for (size_t li = 0; li < 64; ++li) {
    const uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    word.AddLane({u}, {u});
  }
  const size_t sweeps_before = labels.sweep_count();
  const size_t hits_before = labels.label_hits();
  const uint64_t result = labels.ReachesAnyWord(word.Finish());
  EXPECT_EQ(result, ~uint64_t{0}) << "seed=" << kSeed;
  EXPECT_EQ(labels.sweep_count(), sweeps_before) << "seed=" << kSeed;
  EXPECT_EQ(labels.label_hits(), hits_before + 64) << "seed=" << kSeed;
  EXPECT_EQ(labels.batch_words(), 1u);
}

TEST(ReachLabelsBatchTest, AllFallbackWordSweepsEveryLane) {
  constexpr uint64_t kSeed = 777001;
  Rng rng(kSeed);
  size_t graphs_with_fallback_pairs = 0;

  for (size_t trial = 0; trial < 10; ++trial) {
    const size_t n = 40 + rng.Uniform(80);
    const auto edges = RandomEdges(n, 2 * n, &rng);
    const auto oracle = Closure(n, edges);

    // Harvest label-UNDECIDED single pairs with a scalar probe: a pair is
    // undecided exactly when the scalar lookup takes the DFS fallback. The
    // probe uses the SAME budget as the word instance below — shortcut
    // edges reshape the labels, so undecided-ness is budget-specific.
    ReachLabels probe;
    probe.Build(n, edges, /*shortcut_budget=*/64);
    std::vector<std::pair<uint32_t, uint32_t>> hard;
    for (size_t attempt = 0; attempt < 4000 && hard.size() < 64; ++attempt) {
      const uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
      const uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
      const uint32_t a[1] = {u}, b[1] = {v};
      const size_t fallbacks_before = probe.dfs_fallbacks();
      probe.ReachesAny(a, b);
      if (probe.dfs_fallbacks() > fallbacks_before) hard.emplace_back(u, v);
    }
    if (hard.empty()) continue;
    ++graphs_with_fallback_pairs;

    // A word made entirely of undecided pairs: every lane must be answered
    // by the sweep (sweep_lanes grows by the lane count), and exactly.
    ReachLabels labels;
    labels.Build(n, edges, /*shortcut_budget=*/64);
    WordStorage word;
    for (const auto& [u, v] : hard) word.AddLane({u}, {v});
    const size_t lanes_before = labels.sweep_lanes();
    const size_t depth_before = labels.sweep_depth();
    const uint64_t result = labels.ReachesAnyWord(word.Finish());
    EXPECT_EQ(labels.sweep_lanes(), lanes_before + hard.size())
        << "seed=" << kSeed << " trial=" << trial;
    EXPECT_EQ(labels.sweep_count(), 1u)
        << "seed=" << kSeed << " trial=" << trial;
    EXPECT_GT(labels.sweep_depth(), depth_before)
        << "seed=" << kSeed << " trial=" << trial;
    for (size_t li = 0; li < hard.size(); ++li) {
      ASSERT_EQ((result >> li) & 1, oracle[hard[li].first][hard[li].second])
          << "seed=" << kSeed << " trial=" << trial << " lane=" << li;
    }
  }
  EXPECT_GT(graphs_with_fallback_pairs, 0u) << "seed=" << kSeed;
}

TEST(ReachLabelsBatchTest, EmptySidesAnswerFalseLikeScalar) {
  ReachLabels labels;
  labels.Build(4, {{3, 2}, {2, 1}, {1, 0}}, /*shortcut_budget=*/8);
  WordStorage word;
  word.AddLane({}, {0});       // no sources
  word.AddLane({3}, {});       // no targets
  word.AddLane({3}, {0});      // real question, lane 2
  EXPECT_EQ(labels.ReachesAnyWord(word.Finish()), uint64_t{1} << 2);
}

// ---------------------------------------------------------------------------
// Engine level: whole reach batches through PartialEvalEngine with the
// bit-parallel sweep ON vs OFF vs the centralized oracle, across update
// epochs (the standing index rebuilds with its shortcut budget each epoch).

TEST(ReachLabelsBatchTest, EngineReachBatchesMatchAcrossEpochs) {
  constexpr uint64_t kSeed = 555007;
  constexpr size_t kSites = 4, kEpochs = 3;
  Rng rng(kSeed);
  const size_t n = 70 + rng.Uniform(30);
  const Graph g = testing_util::MakeGraph(n, RandomEdges(n, 3 * n, &rng));
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  IncrementalReachIndex index(g, part, kSites);
  EdgeWorld world = EdgeWorld::FromGraph(g);
  Cluster cluster(&index.fragmentation(), NetworkModel{});

  // sweep-on engines across shortcut budgets (including 0) plus the scalar
  // reference engine (batch_sweep off).
  struct EngineUnderTest {
    std::string name;
    std::unique_ptr<PartialEvalEngine> engine;
  };
  std::vector<EngineUnderTest> engines;
  for (const size_t budget : {size_t{0}, size_t{8}, size_t{64}}) {
    PartialEvalOptions options;
    options.reach_path = ReachAnswerPath::kBoundaryIndex;
    options.batch_sweep = true;
    options.shortcut_budget = budget;
    engines.push_back({"sweep/budget=" + std::to_string(budget),
                       std::make_unique<PartialEvalEngine>(&cluster, options)});
  }
  {
    PartialEvalOptions options;
    options.reach_path = ReachAnswerPath::kBoundaryIndex;
    options.batch_sweep = false;
    options.shortcut_budget = 0;
    engines.push_back(
        {"scalar", std::make_unique<PartialEvalEngine>(&cluster, options)});
  }
  index.SetUpdateListener([&engines](SiteId site) {
    for (auto& e : engines) e.engine->InvalidateFragment(site);
  });

  for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const Graph oracle = world.Build();
    // Batch sizes that cross the 64-lane word boundary: 1, 64, 130.
    for (const size_t batch_size : {size_t{1}, size_t{64}, size_t{130}}) {
      const std::vector<Query> batch = RandomReachBatch(n, batch_size, &rng);
      for (auto& e : engines) {
        const BatchAnswer result = e.engine->EvaluateBatch(batch);
        for (size_t q = 0; q < batch.size(); ++q) {
          ASSERT_EQ(result.answers[q].reachable,
                    OracleReachable(oracle, batch[q]))
              << e.name << " vs oracle: seed=" << kSeed << " epoch=" << epoch
              << " batch_size=" << batch_size << " q=" << q << " ("
              << batch[q].source << " -> " << batch[q].target << ")";
        }
      }
    }
    index.AddEdges(world.AddRandomEdges(4, &rng));
  }
  index.SetUpdateListener(nullptr);

  // The sweep engines really used the word path; the scalar engine never did.
  for (const auto& e : engines) {
    const BoundaryReachIndex* idx = e.engine->boundary_index();
    ASSERT_NE(idx, nullptr) << e.name;
    if (e.name == "scalar") {
      EXPECT_EQ(idx->batch_words(), 0u) << e.name;
    } else {
      EXPECT_GT(idx->batch_words(), 0u) << e.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine level, rpq: batches over repeated automata through the product
// boundary graphs, sweep ON vs OFF vs the centralized oracle.

TEST(ReachLabelsBatchTest, EngineRpqBatchesMatchSweepOnOff) {
  constexpr uint64_t kSeed = 909090;
  constexpr size_t kSites = 3, kEpochs = 2, kNumLabels = 3;
  Rng rng(kSeed);
  const size_t n = 50 + rng.Uniform(30);
  const Graph g = [&] {
    std::vector<LabelId> labels(n);
    for (LabelId& l : labels) {
      l = static_cast<LabelId>(rng.Uniform(kNumLabels));
    }
    return testing_util::MakeGraph(n, RandomEdges(n, 3 * n, &rng), labels);
  }();
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  IncrementalReachIndex index(g, part, kSites);
  EdgeWorld world = EdgeWorld::FromGraph(g);
  Cluster cluster(&index.fragmentation(), NetworkModel{});

  PartialEvalOptions sweep_on;
  sweep_on.rpq_path = RpqAnswerPath::kBoundaryIndex;
  sweep_on.batch_sweep = true;
  sweep_on.shortcut_budget = 32;
  sweep_on.rpq_cache_entries = 4;
  PartialEvalOptions sweep_off = sweep_on;
  sweep_off.batch_sweep = false;
  sweep_off.shortcut_budget = 0;
  PartialEvalEngine on(&cluster, sweep_on);
  PartialEvalEngine off(&cluster, sweep_off);
  index.SetUpdateListener([&](SiteId site) {
    on.InvalidateFragment(site);
    off.InvalidateFragment(site);
  });

  for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const Graph oracle = world.Build();
    const std::vector<Query> batch =
        RandomRpqBatch(n, /*count=*/70, /*num_distinct=*/3, kNumLabels, &rng);
    const BatchAnswer r_on = on.EvaluateBatch(batch);
    const BatchAnswer r_off = off.EvaluateBatch(batch);
    for (size_t q = 0; q < batch.size(); ++q) {
      const bool expected = OracleReachable(oracle, batch[q]);
      ASSERT_EQ(r_on.answers[q].reachable, expected)
          << "sweep-on vs oracle: seed=" << kSeed << " epoch=" << epoch
          << " q=" << q;
      ASSERT_EQ(r_off.answers[q].reachable, expected)
          << "sweep-off vs oracle: seed=" << kSeed << " epoch=" << epoch
          << " q=" << q;
    }
    index.AddEdges(world.AddRandomEdges(3, &rng));
  }
  index.SetUpdateListener(nullptr);
}

}  // namespace
}  // namespace pereach
