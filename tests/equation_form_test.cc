// Property tests for the two equation encodings of local evaluation
// (EquationForm::kClosure — the paper's Fig. 3 shape — and kDag, the
// condensation form with auxiliary variables): both must induce the same
// least fixpoint for every variable, on arbitrary graphs and partitions.

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/core/dis_reach.h"
#include "src/core/local_eval.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

// Builds the full coordinator-side BES from per-fragment answers in `form`.
BooleanEquationSystem AssembleReach(const Fragmentation& frag, NodeId s,
                                    NodeId t, EquationForm form) {
  BooleanEquationSystem bes;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    // Round-trip through the wire format so serialization is covered too.
    Encoder enc;
    LocalEvalReach(frag.fragment(i), s, t, form).Serialize(&enc);
    Decoder dec(enc.buffer());
    ReachPartialAnswer::Deserialize(&dec).AddToBes(&bes);
    EXPECT_TRUE(dec.Done());
  }
  return bes;
}

BooleanEquationSystem AssembleRegular(const Fragmentation& frag,
                                      const QueryAutomaton& a, NodeId s,
                                      NodeId t, EquationForm form) {
  BooleanEquationSystem bes;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    Encoder enc;
    LocalEvalRegular(frag.fragment(i), a, s, t, form).Serialize(&enc);
    Decoder dec(enc.buffer());
    RegularPartialAnswer::Deserialize(&dec).AddToBes(&bes);
    EXPECT_TRUE(dec.Done());
  }
  return bes;
}

struct FormCase {
  std::string name;
  size_t n;
  size_t m_factor;
  size_t k;
};

class EquationFormTest : public ::testing::TestWithParam<FormCase> {};

TEST_P(EquationFormTest, ClosureAndDagAgreeWithCentralizedReach) {
  const FormCase& c = GetParam();
  Rng rng(7000 + c.n + c.k);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
    const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, c.k);
    for (int q = 0; q < 8; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(c.n));
      NodeId t = static_cast<NodeId>(rng.Uniform(c.n - 1));
      if (t >= s) ++t;
      const bool expected = CentralizedReach(g, s, t);
      const BooleanEquationSystem closure =
          AssembleReach(frag, s, t, EquationForm::kClosure);
      const BooleanEquationSystem dag =
          AssembleReach(frag, s, t, EquationForm::kDag);
      const BooleanEquationSystem automatic =
          AssembleReach(frag, s, t, EquationForm::kAuto);
      ASSERT_EQ(closure.Evaluate(s), expected) << "closure s=" << s;
      ASSERT_EQ(dag.Evaluate(s), expected) << "dag s=" << s;
      ASSERT_EQ(automatic.Evaluate(s), expected) << "auto s=" << s;
    }
  }
}

TEST_P(EquationFormTest, ClosureAndDagAgreeOnEveryInNodeVariable) {
  // Stronger property: not just X_s — every in-node variable has the same
  // least-fixpoint value under both encodings.
  const FormCase& c = GetParam();
  Rng rng(7100 + c.n + c.k);
  const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, c.k);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(c.n - 1);
  const BooleanEquationSystem closure =
      AssembleReach(frag, s, t, EquationForm::kClosure);
  const BooleanEquationSystem dag =
      AssembleReach(frag, s, t, EquationForm::kDag);
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    const Fragment& f = frag.fragment(i);
    for (NodeId in : f.in_nodes()) {
      const NodeId global = f.ToGlobal(in);
      ASSERT_EQ(closure.Evaluate(global), dag.Evaluate(global))
          << "in-node " << global;
      // And both match the ground truth.
      ASSERT_EQ(dag.Evaluate(global), CentralizedReach(g, global, t))
          << "in-node " << global;
    }
  }
}

TEST_P(EquationFormTest, RegularFormsAgreeWithCentralized) {
  const FormCase& c = GetParam();
  Rng rng(7200 + c.n + c.k);
  const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, c.k);
  for (int q = 0; q < 6; ++q) {
    const QueryAutomaton a =
        QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(6), 3, &rng))
            .value();
    const NodeId s = static_cast<NodeId>(rng.Uniform(c.n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(c.n));
    const bool expected = CentralizedRegularReach(g, s, t, a);
    const uint64_t key = PackNodeState(s, QueryAutomaton::kStart);
    ASSERT_EQ(
        AssembleRegular(frag, a, s, t, EquationForm::kClosure).Evaluate(key),
        expected);
    ASSERT_EQ(AssembleRegular(frag, a, s, t, EquationForm::kDag).Evaluate(key),
              expected);
    ASSERT_EQ(AssembleRegular(frag, a, s, t, EquationForm::kAuto).Evaluate(key),
              expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquationFormTest,
    ::testing::Values(FormCase{"tiny", 8, 2, 2}, FormCase{"small", 30, 2, 3},
                      FormCase{"cyclic", 40, 4, 4},
                      FormCase{"sparse", 60, 1, 5},
                      FormCase{"manyfrag", 50, 2, 10}),
    [](const ::testing::TestParamInfo<FormCase>& param_info) {
      return param_info.param.name;
    });

TEST(EquationFormTest, DagFormShipsLessOnButterflyGraphs) {
  // The closure form's worst case: many in-nodes that all reach many
  // virtual nodes through one shared hub. Closure ships a Θ(|I| x |O|) bit
  // matrix; the DAG form ships Θ(|I| + |O|) — the optimization that keeps
  // disReach traffic near the paper's ~10%-of-graph measurements.
  const size_t w = 2000;
  GraphBuilder b;
  // Site 0: left nodes L_0..L_{w-1}, hub H. Site 1: right nodes R_*, feeder.
  const NodeId left0 = b.AddNodes(w);    // 0 .. w-1
  const NodeId hub = b.AddNode();        // w
  const NodeId right0 = b.AddNodes(w);   // w+1 .. 2w
  const NodeId feeder = b.AddNode();     // 2w+1
  for (size_t i = 0; i < w; ++i) {
    b.AddEdge(static_cast<NodeId>(left0 + i), hub);       // L_i -> H
    b.AddEdge(hub, static_cast<NodeId>(right0 + i));      // H -> R_i (cross)
    b.AddEdge(feeder, static_cast<NodeId>(left0 + i));    // F -> L_i (cross)
  }
  const Graph g = std::move(b).Build();
  std::vector<SiteId> part(g.NumNodes(), 1);
  for (size_t i = 0; i <= w; ++i) part[left0 + i] = 0;  // lefts + hub

  const Fragmentation frag = Fragmentation::Build(g, part, 2);
  Encoder closure_enc, dag_enc;
  LocalEvalReach(frag.fragment(0), feeder, static_cast<NodeId>(right0),
                 EquationForm::kClosure)
      .Serialize(&closure_enc);
  LocalEvalReach(frag.fragment(0), feeder, static_cast<NodeId>(right0),
                 EquationForm::kDag)
      .Serialize(&dag_enc);
  EXPECT_LT(dag_enc.size(), closure_enc.size() / 4)
      << "DAG form should be far smaller on butterfly boundaries";
  // And kAuto must have picked the smaller one.
  Encoder auto_enc;
  LocalEvalReach(frag.fragment(0), feeder, static_cast<NodeId>(right0),
                 EquationForm::kAuto)
      .Serialize(&auto_enc);
  EXPECT_LE(auto_enc.size(), dag_enc.size() + 16);
}

TEST(EquationFormTest, PaperExamplePrefersClosure) {
  // Tiny fragments: the closure equations are the compact choice, keeping
  // the paper's Example 3 shapes under kAuto.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  for (SiteId i = 0; i < 3; ++i) {
    const ReachPartialAnswer pa =
        LocalEvalReach(frag.fragment(i), ex.ann, ex.mark, EquationForm::kAuto);
    for (const auto& eq : pa.equations) {
      EXPECT_FALSE(eq.is_aux) << "fragment " << i;
    }
  }
}

}  // namespace
}  // namespace pereach
