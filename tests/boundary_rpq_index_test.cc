// Differential suite for the signature-cached product boundary index: the
// rpq_path == kBoundaryIndex answer path must agree bit-for-bit with the
// paper's BES assembling path (and with the centralized oracle) across
// partitioners, equation forms, automata and interleaved AddEdges epochs —
// plus direct semantics checks on a hand-built product graph, the
// signature/LRU lifecycle, and the degenerate fragmentations.

#include "src/index/boundary_rpq_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/net/cluster.h"
#include "src/regex/canonical.h"
#include "src/regex/regex.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::AllPartitioners;
using testing_util::DiffContext;
using testing_util::EdgeWorld;
using testing_util::kAllEquationForms;
using testing_util::OracleRegularReach;
using testing_util::RandomPartition;
using testing_util::RandomRpqBatch;

constexpr uint8_t kFinal = static_cast<uint8_t>(QueryAutomaton::kFinal);

// ---------------------------------------------------------------------------
// ProductBoundaryRows wire format

TEST(ProductBoundaryRowsTest, SerializeRoundTrips) {
  ProductBoundaryRows rows;
  rows.oset_globals = {20, 30};
  // Entry 0: states {u_t, 2}; entry 1: {u_t} — flattened table size 3.
  rows.oset_masks = {(uint64_t{1} << kFinal) | (uint64_t{1} << 2),
                     uint64_t{1} << kFinal};
  rows.rep_pairs = {{10, 2}, {11, 3}};
  rows.rows = {{0, 2}, {}};
  rows.aliases = {{{12, 2}, 0}};

  Encoder enc;
  rows.Serialize(&enc);
  Decoder dec(enc.buffer());
  const ProductBoundaryRows back = ProductBoundaryRows::Deserialize(&dec);
  EXPECT_TRUE(dec.Done());
  EXPECT_EQ(back.oset_globals, rows.oset_globals);
  EXPECT_EQ(back.oset_masks, rows.oset_masks);
  EXPECT_EQ(back.rep_pairs, rows.rep_pairs);
  EXPECT_EQ(back.rows, rows.rows);
  EXPECT_EQ(back.aliases, rows.aliases);
  EXPECT_EQ(back.TableSize(), 3u);
}

// ---------------------------------------------------------------------------
// Direct entry semantics on a hand-built product boundary graph

// Automaton sketch: interior state 2 (label A); kStart -> 2 -> 2 -> kFinal.
// Two fragments; the product cycle (10,2) -> (20,2) -> (10,2) plus accept
// sinks (20,u_t), (30,u_t), and an alias (12,2) sharing 10's group.
TEST(BoundaryRpqIndexTest, HandBuiltProductGraphAnswers) {
  BoundaryRpqIndex index(/*num_fragments=*/2, /*max_entries=*/4);
  AutomatonSignature sig{1234, "hand-built"};
  BoundaryRpqIndex::Entry& entry = index.GetEntry(sig);
  EXPECT_EQ(index.misses(), 1u);
  EXPECT_EQ(entry.DirtySites().size(), 2u);

  ProductBoundaryRows f0;
  f0.oset_globals = {20, 30};
  f0.oset_masks = {(uint64_t{1} << kFinal) | (uint64_t{1} << 2),
                   uint64_t{1} << kFinal};
  // Table f0: 0 = (20,u_t), 1 = (20,2), 2 = (30,u_t).
  f0.rep_pairs = {{10, 2}};
  f0.rows = {{1, 2}};  // (10,2) -> (20,2); (10,2) can accept at 30
  f0.aliases = {{{12, 2}, 0}};
  entry.SetFragmentRows(0, std::move(f0));

  ProductBoundaryRows f1;
  f1.oset_globals = {10, 12};
  f1.oset_masks = {(uint64_t{1} << kFinal) | (uint64_t{1} << 2),
                   (uint64_t{1} << kFinal) | (uint64_t{1} << 2)};
  // Table f1: 0 = (10,u_t), 1 = (10,2), 2 = (12,u_t), 3 = (12,2).
  f1.rep_pairs = {{20, 2}, {40, 2}};
  f1.rows = {{1}, {}};  // (20,2) -> (10,2); (40,2) reaches nothing
  entry.SetFragmentRows(1, std::move(f1));

  EXPECT_TRUE(entry.DirtySites().empty());
  entry.Ensure();
  EXPECT_EQ(entry.rebuild_count(), 1u);
  EXPECT_EQ(entry.TableSize(0), 3u);
  EXPECT_EQ(entry.TablePair(0, 1), (ProductPair{20, 2}));

  const auto reaches = [&entry](ProductPair a, ProductPair b) {
    const ProductPair src[] = {a}, tgt[] = {b};
    return entry.ReachesAny(src, tgt);
  };
  EXPECT_TRUE(reaches({10, 2}, {10, 2}));  // reflexive
  EXPECT_TRUE(reaches({10, 2}, {20, 2}));
  EXPECT_TRUE(reaches({20, 2}, {10, 2}));          // cross-fragment cycle
  EXPECT_TRUE(reaches({12, 2}, {20, 2}));          // via the alias edge
  EXPECT_TRUE(reaches({10, 2}, {30, kFinal}));     // accept sink
  EXPECT_FALSE(reaches({40, 2}, {10, 2}));
  EXPECT_FALSE(reaches({10, 2}, {12, kFinal}));    // sink, never entered
  // Same node, different state: distinct product nodes.
  EXPECT_TRUE(entry.HasPair({20, kFinal}));
  EXPECT_FALSE(entry.HasPair({40, kFinal}));

  // Invalidation dirties every entry of the index; a refresh + Ensure
  // rebuilds once.
  index.InvalidateFragment(1);
  EXPECT_EQ(entry.DirtySites(), std::vector<SiteId>{1});
  ProductBoundaryRows f1b;
  f1b.oset_globals = {10, 12};
  f1b.oset_masks = {(uint64_t{1} << kFinal) | (uint64_t{1} << 2),
                    (uint64_t{1} << kFinal) | (uint64_t{1} << 2)};
  f1b.rep_pairs = {{20, 2}, {40, 2}};
  f1b.rows = {{1}, {1}};  // (40,2) now reaches (10,2) too
  entry.SetFragmentRows(1, std::move(f1b));
  entry.Ensure();
  EXPECT_EQ(entry.rebuild_count(), 2u);
  EXPECT_TRUE(reaches({40, 2}, {20, 2}));
}

// ---------------------------------------------------------------------------
// Signature / LRU lifecycle through the engine

TEST(BoundaryRpqIndexTest, SignatureCacheHitsEvictionsAndRebuilds) {
  Rng rng(4711);
  const size_t n = 60, kSites = 3, kLabels = 3;
  const Graph g = ErdosRenyi(n, 3 * n, kLabels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalOptions options;
  options.rpq_path = RpqAnswerPath::kBoundaryIndex;
  options.rpq_cache_entries = 2;
  PartialEvalEngine engine(&cluster, options);

  // Three automata with pairwise distinct languages (hence signatures).
  std::vector<QueryAutomaton> automata;
  automata.push_back(QueryAutomaton::WildcardStar());
  automata.push_back(
      QueryAutomaton::FromRegex(Regex::Star(Regex::Symbol(0))).value());
  automata.push_back(
      QueryAutomaton::FromRegex(Regex::Star(Regex::Symbol(1))).value());

  const auto run = [&](const QueryAutomaton& a) {
    std::vector<Query> batch;
    for (size_t q = 0; q < 6; ++q) {
      batch.push_back(Query::Rpq(static_cast<NodeId>(rng.Uniform(n)),
                                 static_cast<NodeId>(rng.Uniform(n)), a));
    }
    engine.EvaluateBatch(batch);
  };

  run(automata[0]);
  const BoundaryRpqIndex* index = engine.boundary_rpq_index();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_entries(), 1u);
  EXPECT_EQ(index->total_rebuilds(), 1u);

  // Same automaton again: one LRU hit per batch, zero refresh rounds.
  run(automata[0]);
  EXPECT_EQ(index->total_rebuilds(), 1u);
  EXPECT_GT(index->hits(), 0u);

  // A batch mixing all three automata overflows the cap of 2: the LRU
  // grows for the batch (entries are pinned), then evicts down on the next
  // batch's misses.
  std::vector<Query> mixed;
  for (const QueryAutomaton& a : automata) {
    mixed.push_back(Query::Rpq(0, static_cast<NodeId>(n - 1), a));
  }
  engine.EvaluateBatch(mixed);
  EXPECT_EQ(index->total_rebuilds(), 3u);

  // Re-running a single-automaton batch evicts someone; re-touching an
  // evicted signature later pays a fresh refresh round + rebuild.
  run(automata[1]);
  run(automata[2]);
  EXPECT_GT(index->evictions(), 0u);
  EXPECT_LE(index->num_entries(), 2u);
  const size_t rebuilds_before = index->total_rebuilds();
  run(automata[0]);  // evicted by now: cap 2, two newer signatures live
  EXPECT_GT(index->total_rebuilds(), rebuilds_before);

  // Eviction and rebuild never change answers: compare against BES.
  PartialEvalEngine bes_engine(&cluster);
  for (const QueryAutomaton& a : automata) {
    for (size_t q = 0; q < 20; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      const Query query = Query::Rpq(s, t, a);
      EXPECT_EQ(engine.Evaluate(query).reachable,
                bes_engine.Evaluate(query).reachable)
          << "s=" << s << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: indexed answers == BES answers == oracle

TEST(BoundaryRpqDifferentialTest,
     MatchesBesAcrossPartitionersFormsAndEpochs) {
  constexpr size_t kSites = 4, kEpochs = 3, kQueriesPerEpoch = 24;
  constexpr size_t kLabels = 3;
  constexpr uint64_t kSeed = 271828;
  Rng rng(kSeed);
  for (const auto& partitioner : AllPartitioners()) {
    for (const EquationForm form : kAllEquationForms) {
      const size_t n = 50 + rng.Uniform(30);
      const Graph g = ErdosRenyi(n, 3 * n, kLabels, &rng);
      const std::vector<SiteId> part = partitioner->Partition(g, kSites, &rng);
      IncrementalReachIndex index(g, part, kSites);
      EdgeWorld world = EdgeWorld::FromGraph(g);

      Cluster cluster(&index.fragmentation(), NetworkModel{});
      PartialEvalOptions bes_options;
      bes_options.form = form;
      PartialEvalEngine bes_engine(&cluster, bes_options);
      PartialEvalOptions idx_options;
      idx_options.form = form;
      idx_options.rpq_path = RpqAnswerPath::kBoundaryIndex;
      PartialEvalEngine idx_engine(&cluster, idx_options);
      index.SetUpdateListener([&](SiteId site) {
        bes_engine.InvalidateFragment(site);
        idx_engine.InvalidateFragment(site);
      });

      for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
        const Graph oracle = world.Build();
        // Automata repeat within the batch (pool of 4): the refresh round
        // and the standing entries get shared across queries, and the s==t
        // cycle case rides along via uniform endpoint sampling.
        std::vector<Query> batch =
            RandomRpqBatch(n, kQueriesPerEpoch, 4, kLabels, &rng);
        batch.push_back(Query::Rpq(0, 0, QueryAutomaton::WildcardStar()));

        const BatchAnswer bes = bes_engine.EvaluateBatch(batch);
        const BatchAnswer indexed = idx_engine.EvaluateBatch(batch);
        for (size_t q = 0; q < batch.size(); ++q) {
          const bool expected = OracleRegularReach(
              oracle, batch[q].source, batch[q].target, *batch[q].automaton);
          ASSERT_EQ(bes.answers[q].reachable, expected)
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
          ASSERT_EQ(indexed.answers[q].reachable, expected)
              << "product boundary index diverged: "
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
        }

        index.AddEdges(world.AddRandomEdges(3, &rng));
      }
      index.SetUpdateListener(nullptr);

      const BoundaryRpqIndex* rpq_index = idx_engine.boundary_rpq_index();
      ASSERT_NE(rpq_index, nullptr);
      EXPECT_GT(rpq_index->num_entries(), 0u);
      EXPECT_GT(rpq_index->hits(), 0u);  // repeated automata actually hit
    }
  }
}

// Wildcard-star is plain reachability (§2.2): the indexed rpq path must
// agree with both the reach oracle and the indexed reach path, including
// the s == t cycle semantics (reach is reflexive, rpq needs a cycle).
TEST(BoundaryRpqDifferentialTest, WildcardStarMatchesReach) {
  Rng rng(5150);
  const size_t n = 60, kSites = 4;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalOptions options;
  options.rpq_path = RpqAnswerPath::kBoundaryIndex;
  options.reach_path = ReachAnswerPath::kBoundaryIndex;
  PartialEvalEngine engine(&cluster, options);

  const QueryAutomaton wildcard = QueryAutomaton::WildcardStar();
  for (size_t q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = q < 8 ? s : static_cast<NodeId>(rng.Uniform(n));
    const bool rpq = engine.Evaluate(Query::Rpq(s, t, wildcard)).reachable;
    if (s == t) {
      // q_rr(s, s, _*) asks for a real cycle through s, not reflexivity.
      EXPECT_EQ(rpq, OracleRegularReach(g, s, s, wildcard))
          << "s=t=" << s;
    } else {
      EXPECT_EQ(rpq, CentralizedReach(g, s, t)) << "s=" << s << " t=" << t;
      EXPECT_EQ(rpq, engine.Evaluate(Query::Reach(s, t)).reachable);
    }
  }
}

// Boundary-node endpoints: force s and t onto in-nodes/virtual-copy owners
// by querying every cross-edge endpoint pair of the paper's example.
TEST(BoundaryRpqDifferentialTest, BoundaryEndpointAndPaperExample) {
  const testing_util::PaperExample ex = testing_util::MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalOptions options;
  options.rpq_path = RpqAnswerPath::kBoundaryIndex;
  PartialEvalEngine engine(&cluster, options);
  PartialEvalEngine bes_engine(&cluster);

  const LabelId hr = ex.labels.Find("HR");
  // Example 8's query: Ann reaches Mark through an HR-only chain.
  const QueryAutomaton hr_star =
      QueryAutomaton::FromRegex(Regex::Star(Regex::Symbol(hr))).value();
  EXPECT_TRUE(
      engine.Evaluate(Query::Rpq(ex.ann, ex.mark, hr_star)).reachable);

  std::vector<QueryAutomaton> automata = {hr_star,
                                          QueryAutomaton::WildcardStar()};
  for (const QueryAutomaton& a : automata) {
    for (NodeId s = 0; s < ex.graph.NumNodes(); ++s) {
      for (NodeId t = 0; t < ex.graph.NumNodes(); ++t) {
        const Query q = Query::Rpq(s, t, a);
        const bool expected = OracleRegularReach(ex.graph, s, t, a);
        EXPECT_EQ(bes_engine.Evaluate(q).reachable, expected)
            << "bes s=" << s << " t=" << t;
        EXPECT_EQ(engine.Evaluate(q).reachable, expected)
            << "indexed s=" << s << " t=" << t;
      }
    }
  }
}

// Degenerate fragmentations: a single site (no boundary pairs at all, the
// local short-circuit decides everything) and one node per site (every
// node is boundary, the product boundary graph IS the global product).
TEST(BoundaryRpqDifferentialTest, DegenerateFragmentCounts) {
  Rng rng(23);
  const size_t n = 24, kLabels = 2;
  const Graph g = ErdosRenyi(n, 2 * n, kLabels, &rng);
  const QueryAutomaton a =
      QueryAutomaton::FromRegex(Regex::Random(3, kLabels, &rng)).value();
  for (const size_t k : {size_t{1}, n}) {
    const std::vector<SiteId> part =
        k == 1 ? std::vector<SiteId>(n, 0) : [&] {
          std::vector<SiteId> p(n);
          for (NodeId v = 0; v < n; ++v) p[v] = static_cast<SiteId>(v);
          return p;
        }();
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel{});
    PartialEvalOptions options;
    options.rpq_path = RpqAnswerPath::kBoundaryIndex;
    PartialEvalEngine engine(&cluster, options);
    for (int q = 0; q < 50; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      EXPECT_EQ(engine.Evaluate(Query::Rpq(s, t, a)).reachable,
                OracleRegularReach(g, s, t, a))
          << "k=" << k << " s=" << s << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Batch-level automaton dedup on the BES broadcast

TEST(RpqBatchDedupTest, IdenticalAutomataShipOncePerBatch) {
  Rng rng(77);
  const size_t n = 60, kSites = 4, kLabels = 3;
  const Graph g = ErdosRenyi(n, 3 * n, kLabels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalEngine engine(&cluster);

  const QueryAutomaton a =
      QueryAutomaton::FromRegex(Regex::Random(6, kLabels, &rng)).value();
  std::vector<Query> batch;
  for (size_t q = 0; q < 16; ++q) {
    batch.push_back(Query::Rpq(static_cast<NodeId>(rng.Uniform(n)),
                               static_cast<NodeId>(rng.Uniform(n)), a));
  }

  // Warm the contexts so both measurements ship identical reply shapes.
  engine.EvaluateBatch(std::span<const Query>(batch.data(), 1));
  const RunMetrics batched = engine.EvaluateBatch(batch).metrics;
  RunMetrics singles;
  for (const Query& q : batch) {
    singles.Accumulate(
        engine.EvaluateBatch(std::span<const Query>(&q, 1)).metrics);
  }
  // 16 identical regexes in one batch must ship strictly less broadcast
  // than 16 single-query rounds: the batch's automaton table carries ONE
  // canonical automaton, the singles carry 16. Ten automata's worth of
  // bytes is a conservative floor for the gap.
  const size_t automaton_bytes = Canonicalize(a).signature.key.size();
  EXPECT_LT(batched.traffic_bytes + 10 * automaton_bytes,
            singles.traffic_bytes);
}

}  // namespace
}  // namespace pereach
