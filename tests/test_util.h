#ifndef PEREACH_TESTS_TEST_UTIL_H_
#define PEREACH_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/fragment/fragmentation.h"
#include "src/graph/graph.h"
#include "src/util/common.h"
#include "src/util/random.h"

namespace pereach {
namespace testing_util {

/// Builds a graph with `n` nodes, the given edges, and labels (labels[v]
/// defaults to 0 when the vector is shorter than n).
Graph MakeGraph(size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                const std::vector<LabelId>& labels = {});

/// Uniform random partition of n nodes over k sites with every site
/// non-empty (when n >= k).
std::vector<SiteId> RandomPartition(size_t n, size_t k, Rng* rng);

/// Builds graph + random partition + fragmentation in one call.
Fragmentation RandomFragmentation(const Graph& g, size_t k, Rng* rng);

/// The running example of the paper (Fig. 1): a recommendation network
/// distributed over three data centers. Node ids:
///   DC1: Ann=0 (CTO), Walt=1 (HR), Bill=2 (DB), Fred=3 (HR)
///   DC2: Mat=4 (HR), Emmy=5 (HR), Jack=6 (MK)
///   DC3: Pat=7 (SE), Ross=8 (HR), Tom=9 (AI), Mark=10 (FA)
/// The recommendation chain Ann -> Walt -> Mat -> Fred -> Emmy -> Ross ->
/// Mark exists (length 6, interior labels HR^5), matching Examples 1-8.
struct PaperExample {
  Graph graph;
  std::vector<SiteId> partition;  // 3 sites
  LabelDictionary labels;         // "CTO", "HR", "DB", ...
  std::vector<std::string> names; // node id -> person name

  NodeId ann = 0, walt = 1, bill = 2, fred = 3, mat = 4, emmy = 5, jack = 6,
         pat = 7, ross = 8, tom = 9, mark = 10;
};

PaperExample MakePaperExample();

}  // namespace testing_util
}  // namespace pereach

#endif  // PEREACH_TESTS_TEST_UTIL_H_
