#ifndef PEREACH_TESTS_TEST_UTIL_H_
#define PEREACH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/local_eval.h"
#include "src/engine/query_engine.h"
#include "src/fragment/fragmentation.h"
#include "src/fragment/partitioner.h"
#include "src/graph/graph.h"
#include "src/util/common.h"
#include "src/util/random.h"

namespace pereach {
namespace testing_util {

/// Builds a graph with `n` nodes, the given edges, and labels (labels[v]
/// defaults to 0 when the vector is shorter than n).
Graph MakeGraph(size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                const std::vector<LabelId>& labels = {});

/// Uniform random partition of n nodes over k sites with every site
/// non-empty (when n >= k).
std::vector<SiteId> RandomPartition(size_t n, size_t k, Rng* rng);

/// Builds graph + random partition + fragmentation in one call.
Fragmentation RandomFragmentation(const Graph& g, size_t k, Rng* rng);

// ---------------------------------------------------------------------------
// Randomized differential machinery, shared by the engine / boundary-index /
// server suites and the cross-class property fuzzer.

/// A mutable edge-list mirror of an evolving graph: the engines under test
/// work against the fragmentation / incremental index while the centralized
/// oracle rebuilds from this list, so both always see the same epoch.
struct EdgeWorld {
  size_t n = 0;
  std::vector<LabelId> labels;
  std::vector<std::pair<NodeId, NodeId>> edges;

  static EdgeWorld FromGraph(const Graph& g);
  Graph Build() const;

  /// Appends `count` uniformly random edges and returns just the new ones
  /// (feed them to IncrementalReachIndex::AddEdges / QueryServer::AddEdges).
  std::vector<std::pair<NodeId, NodeId>> AddRandomEdges(size_t count,
                                                        Rng* rng);
};

/// The partitioner axis of the differential matrix (random, chunk,
/// bfs-grow).
std::vector<std::unique_ptr<Partitioner>> AllPartitioners();

/// The equation-form axis.
inline constexpr EquationForm kAllEquationForms[] = {
    EquationForm::kAuto, EquationForm::kClosure, EquationForm::kDag};

std::string_view FormName(EquationForm form);

/// A batch of uniformly random reach queries over n nodes.
std::vector<Query> RandomReachBatch(size_t n, size_t count, Rng* rng);

/// A batch of random rpq queries whose automata are drawn from a pool of
/// `num_distinct` random regexes — serving-realistic (regexes repeat
/// heavily), so the signature-keyed caches and the batch-level automaton
/// dedup actually engage in the suites that use it.
std::vector<Query> RandomRpqBatch(size_t n, size_t count, size_t num_distinct,
                                  size_t num_labels, Rng* rng);

/// Mixed query stream: mostly reach, some bounded, some regular.
Query RandomMixedQuery(size_t n, size_t num_labels, Rng* rng);

/// Centralized regular-reachability oracle (§5.1 semantics: interior nodes
/// matched by label, s/t by identity, paths of length >= 1) — the runner
/// every rpq differential suite shares.
bool OracleRegularReach(const Graph& g, NodeId s, NodeId t,
                        const QueryAutomaton& automaton);

/// Centralized oracle verdict for any query class (dist applies the bound).
bool OracleReachable(const Graph& g, const Query& q);

/// Oracle distance in the QueryAnswer convention: unweighted shortest-path
/// hops, kInfWeight when unreachable.
uint64_t OracleDistance(const Graph& g, NodeId s, NodeId t);

/// One-line context for differential assertion messages. Always carries the
/// seed, so a failing matrix cell reproduces straight from the log.
std::string DiffContext(uint64_t seed, std::string_view partitioner,
                        EquationForm form, size_t epoch, const Query& q);

/// The running example of the paper (Fig. 1): a recommendation network
/// distributed over three data centers. Node ids:
///   DC1: Ann=0 (CTO), Walt=1 (HR), Bill=2 (DB), Fred=3 (HR)
///   DC2: Mat=4 (HR), Emmy=5 (HR), Jack=6 (MK)
///   DC3: Pat=7 (SE), Ross=8 (HR), Tom=9 (AI), Mark=10 (FA)
/// The recommendation chain Ann -> Walt -> Mat -> Fred -> Emmy -> Ross ->
/// Mark exists (length 6, interior labels HR^5), matching Examples 1-8.
struct PaperExample {
  Graph graph;
  std::vector<SiteId> partition;  // 3 sites
  LabelDictionary labels;         // "CTO", "HR", "DB", ...
  std::vector<std::string> names; // node id -> person name

  NodeId ann = 0, walt = 1, bill = 2, fred = 3, mat = 4, emmy = 5, jack = 6,
         pat = 7, ross = 8, tom = 9, mark = 10;
};

PaperExample MakePaperExample();

}  // namespace testing_util
}  // namespace pereach

#endif  // PEREACH_TESTS_TEST_UTIL_H_
