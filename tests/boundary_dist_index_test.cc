// Differential suite for the coordinator's weighted boundary-graph dist
// index: the kBoundaryIndex dist path must agree bit-for-bit with the
// paper's min-plus BES assembling path (and with a centralized oracle)
// across partitioners, equation forms, and interleaved AddEdges epochs —
// including the above-bound distance values the BES Dijkstra reports, which
// the indexed search reproduces by filtering standing edges at the query
// bound. Plus dist-specific edge cases: unreachable pairs, s == t,
// boundary-node endpoints, degenerate fragment counts, lazy rebuilds.

#include "src/index/boundary_dist_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/graph/generators.h"
#include "src/net/cluster.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::AllPartitioners;
using testing_util::DiffContext;
using testing_util::EdgeWorld;
using testing_util::kAllEquationForms;
using testing_util::OracleDistance;
using testing_util::RandomPartition;

// ---------------------------------------------------------------------------
// WeightedBoundaryRows wire format

TEST(WeightedBoundaryRowsTest, SerializeRoundTrips) {
  WeightedBoundaryRows rows;
  rows.oset_globals = {3, 9, 40, 77};
  rows.rep_globals = {12, 25};
  rows.rows = {{{0, 2}, {2, 7}, {3, 1}}, {}};
  rows.aliases = {{14, 12}, {30, 25}};

  Encoder enc;
  rows.Serialize(&enc);
  Decoder dec(enc.buffer());
  const WeightedBoundaryRows back = WeightedBoundaryRows::Deserialize(&dec);
  EXPECT_TRUE(dec.Done());
  EXPECT_EQ(back.oset_globals, rows.oset_globals);
  EXPECT_EQ(back.rep_globals, rows.rep_globals);
  EXPECT_EQ(back.rows, rows.rows);
  EXPECT_EQ(back.aliases, rows.aliases);
}

// ---------------------------------------------------------------------------
// Direct index semantics on a hand-built weighted boundary graph

// Two fragments: F0's in-node 10 reaches virtual 20 at 2 hops and virtual 30
// at 5; F1's in-nodes 20 and 30 both reach virtual 10 at 3 hops (identical
// rows, so 30 aliases to 20) and in-node 40 reaches nothing.
TEST(BoundaryDistIndexTest, HandBuiltGraphAnswersAndInvalidates) {
  BoundaryDistIndex index(2);
  EXPECT_EQ(index.DirtySites().size(), 2u);

  WeightedBoundaryRows f0;
  f0.oset_globals = {20, 30};
  f0.rep_globals = {10};
  f0.rows = {{{0, 2}, {1, 5}}};
  index.SetFragmentRows(0, std::move(f0));

  WeightedBoundaryRows f1;
  f1.oset_globals = {10};
  f1.rep_globals = {20, 40};
  f1.rows = {{{0, 3}}, {}};
  f1.aliases = {{30, 20}};
  index.SetFragmentRows(1, std::move(f1));

  EXPECT_TRUE(index.DirtySites().empty());
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 1u);
  EXPECT_EQ(index.num_boundary_nodes(), 4u);  // 10, 20, 30, 40

  const auto path = [&index](NodeId u, NodeId v, uint32_t max_edge) {
    const BoundaryDistIndex::Seed s[] = {{u, 0}};
    const BoundaryDistIndex::Seed t[] = {{v, 0}};
    return index.ShortestPath(s, t, max_edge);
  };
  EXPECT_EQ(path(10, 10, 100), 0u);  // seeds meet at the same node
  EXPECT_EQ(path(10, 20, 100), 2u);
  EXPECT_EQ(path(10, 30, 100), 5u);
  EXPECT_EQ(path(20, 10, 100), 3u);
  EXPECT_EQ(path(30, 10, 100), 3u);  // via its 0-weight alias edge to 20
  EXPECT_EQ(path(20, 30, 100), 3u + 5u);  // 20 -> 10 -> 30
  EXPECT_EQ(path(40, 10, 100), kInfWeight);
  EXPECT_EQ(path(10, 40, 100), kInfWeight);
  // The per-query bound filter drops heavy standing edges.
  EXPECT_EQ(path(10, 20, 2), 2u);
  EXPECT_EQ(path(10, 30, 4), kInfWeight);
  EXPECT_EQ(path(20, 30, 4), kInfWeight);  // the 5-hop closing edge is out

  // Seed distances add onto the path, and the minimum over seed pairs wins.
  const BoundaryDistIndex::Seed multi_s[] = {{10, 7}, {40, 0}};
  const BoundaryDistIndex::Seed multi_t[] = {{20, 1}};
  EXPECT_EQ(index.ShortestPath(multi_s, multi_t, 100), 7u + 2u + 1u);

  // Invalidation marks exactly the touched fragment dirty; a clean Ensure
  // is a no-op, a post-refresh Ensure rebuilds once.
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 1u);
  index.InvalidateFragment(1);
  EXPECT_EQ(index.DirtySites(), std::vector<SiteId>{1});
  WeightedBoundaryRows f1b;
  f1b.oset_globals = {10};
  f1b.rep_globals = {20, 40};
  f1b.rows = {{{0, 3}}, {{0, 1}}};  // 40 now reaches virtual 10 in one hop
  f1b.aliases = {{30, 20}};
  index.SetFragmentRows(1, std::move(f1b));
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 2u);
  EXPECT_EQ(path(40, 30, 100), 1u + 5u);  // 40 -> 10 -> 30
}

// ---------------------------------------------------------------------------
// Randomized differential: indexed answers == BES answers == oracle

std::vector<Query> RandomDistBatch(size_t n, size_t count, Rng* rng) {
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(
        Query::Dist(static_cast<NodeId>(rng->Uniform(n)),
                    static_cast<NodeId>(rng->Uniform(n)),
                    static_cast<uint32_t>(1 + rng->Uniform(10))));
  }
  return batch;
}

TEST(BoundaryDistDifferentialTest,
     MatchesBesAcrossPartitionersFormsAndEpochs) {
  constexpr size_t kSites = 4, kEpochs = 3, kQueriesPerEpoch = 40;
  constexpr uint64_t kSeed = 24242;
  Rng rng(kSeed);
  for (const auto& partitioner : AllPartitioners()) {
    for (const EquationForm form : kAllEquationForms) {
      const size_t n = 60 + rng.Uniform(30);
      const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
      const std::vector<SiteId> part = partitioner->Partition(g, kSites, &rng);
      IncrementalReachIndex index(g, part, kSites);
      EdgeWorld world = EdgeWorld::FromGraph(g);

      Cluster cluster(&index.fragmentation(), NetworkModel{});
      PartialEvalOptions bes_options;
      bes_options.form = form;
      PartialEvalEngine bes_engine(&cluster, bes_options);
      PartialEvalOptions idx_options;
      idx_options.form = form;
      idx_options.dist_path = DistAnswerPath::kBoundaryIndex;
      PartialEvalEngine idx_engine(&cluster, idx_options);
      index.SetUpdateListener([&](SiteId site) {
        bes_engine.InvalidateFragment(site);
        idx_engine.InvalidateFragment(site);
      });

      for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
        const Graph oracle = world.Build();
        const std::vector<Query> batch = RandomDistBatch(n, kQueriesPerEpoch,
                                                         &rng);
        const BatchAnswer bes = bes_engine.EvaluateBatch(batch);
        const BatchAnswer indexed = idx_engine.EvaluateBatch(batch);
        for (size_t q = 0; q < batch.size(); ++q) {
          const uint64_t true_dist =
              OracleDistance(oracle, batch[q].source, batch[q].target);
          const bool expected =
              true_dist != kInfWeight && true_dist <= batch[q].bound;
          ASSERT_EQ(bes.answers[q].reachable, expected)
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
          // Bit-identical to the BES path, including distance values above
          // the bound (both report the min over segment-bounded routes).
          ASSERT_EQ(indexed.answers[q].reachable, expected)
              << "dist index diverged: "
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
          ASSERT_EQ(indexed.answers[q].distance, bes.answers[q].distance)
              << "dist index distance diverged: "
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
          if (expected) {
            ASSERT_EQ(indexed.answers[q].distance, true_dist)
                << DiffContext(kSeed, partitioner->name(), form, epoch,
                               batch[q]);
          }
        }
        index.AddEdges(world.AddRandomEdges(3, &rng));
      }
      index.SetUpdateListener(nullptr);

      // The index path really ran (and stayed within one rebuild per dirty
      // epoch).
      const BoundaryDistIndex* boundary = idx_engine.boundary_dist_index();
      ASSERT_NE(boundary, nullptr);
      EXPECT_GT(boundary->search_count(), 0u);
      EXPECT_LE(boundary->rebuild_count(), kEpochs);
    }
  }
}

// Unreachable pairs must come back as kInfWeight (and unreachable) on BOTH
// answer paths: two disjoint halves, queries across the gap.
TEST(BoundaryDistDifferentialTest, UnreachablePairsAreInfinityOnBothPaths) {
  Rng rng(5150);
  const size_t half = 20, n = 2 * half, kSites = 4;
  GraphBuilder b;
  b.AddNodes(n);
  for (size_t e = 0; e < 3 * half; ++e) {
    // Edges only within each half; nothing crosses the gap.
    b.AddEdge(static_cast<NodeId>(rng.Uniform(half)),
              static_cast<NodeId>(rng.Uniform(half)));
    b.AddEdge(static_cast<NodeId>(half + rng.Uniform(half)),
              static_cast<NodeId>(half + rng.Uniform(half)));
  }
  const Graph g = std::move(b).Build();
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalEngine bes_engine(&cluster);
  PartialEvalOptions idx_options;
  idx_options.dist_path = DistAnswerPath::kBoundaryIndex;
  PartialEvalEngine idx_engine(&cluster, idx_options);

  for (int i = 0; i < 30; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(half));
    const NodeId t = static_cast<NodeId>(half + rng.Uniform(half));
    const Query q = Query::Dist(s, t, 1 + static_cast<uint32_t>(i % 8));
    const QueryAnswer bes = bes_engine.Evaluate(q);
    const QueryAnswer idx = idx_engine.Evaluate(q);
    ASSERT_EQ(bes.distance, kInfWeight) << "s=" << s << " t=" << t;
    ASSERT_EQ(idx.distance, kInfWeight) << "s=" << s << " t=" << t;
    ASSERT_FALSE(bes.reachable);
    ASSERT_FALSE(idx.reachable);
  }
}

// s == t is the trivial coordinator answer on both paths, and endpoints that
// are themselves boundary nodes (in-nodes / virtual nodes) must agree with
// the BES path and the oracle — the seeds then name standing graph nodes
// directly (entry distance 0 / exit distance 0).
TEST(BoundaryDistDifferentialTest, SourceEqualsTargetAndBoundaryEndpoints) {
  Rng rng(929);
  const size_t n = 70, kSites = 4;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalEngine bes_engine(&cluster);
  PartialEvalOptions idx_options;
  idx_options.dist_path = DistAnswerPath::kBoundaryIndex;
  PartialEvalEngine idx_engine(&cluster, idx_options);

  // All boundary nodes of the fragmentation, as globals.
  std::vector<NodeId> boundary;
  for (SiteId s = 0; s < frag.num_fragments(); ++s) {
    const Fragment& f = frag.fragment(s);
    for (NodeId in : f.in_nodes()) boundary.push_back(f.ToGlobal(in));
  }
  ASSERT_FALSE(boundary.empty());

  // s == t: distance 0 at any bound, no site visit needed.
  for (const NodeId v :
       {boundary.front(), static_cast<NodeId>(rng.Uniform(n))}) {
    const QueryAnswer idx = idx_engine.Evaluate(Query::Dist(v, v, 0));
    EXPECT_TRUE(idx.reachable);
    EXPECT_EQ(idx.distance, 0u);
  }

  const Graph oracle = EdgeWorld::FromGraph(g).Build();
  for (int i = 0; i < 60; ++i) {
    // Half the probes pair two boundary nodes; half mix a boundary node
    // with a uniform endpoint.
    NodeId s = boundary[rng.Uniform(boundary.size())];
    NodeId t = boundary[rng.Uniform(boundary.size())];
    if (i % 2 == 0) {
      (i % 4 == 0 ? s : t) = static_cast<NodeId>(rng.Uniform(n));
    }
    const Query q = Query::Dist(s, t, 1 + static_cast<uint32_t>(i % 9));
    const QueryAnswer bes = bes_engine.Evaluate(q);
    const QueryAnswer idx = idx_engine.Evaluate(q);
    ASSERT_EQ(idx.distance, bes.distance) << "s=" << s << " t=" << t
                                          << " bound=" << q.bound;
    ASSERT_EQ(idx.reachable, bes.reachable) << "s=" << s << " t=" << t;
    const uint64_t true_dist = OracleDistance(oracle, s, t);
    if (true_dist != kInfWeight && true_dist <= q.bound) {
      ASSERT_EQ(idx.distance, true_dist) << "s=" << s << " t=" << t;
    }
  }
}

// Degenerate fragmentations: a single site (no boundary graph at all, the
// local short-circuit answers everything) and as many sites as nodes
// (every node is boundary, every local segment is one cross edge).
TEST(BoundaryDistDifferentialTest, DegenerateFragmentCounts) {
  Rng rng(18);
  const size_t n = 30;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  for (const size_t k : {size_t{1}, n}) {
    const std::vector<SiteId> part =
        k == 1 ? std::vector<SiteId>(n, 0) : [&] {
          std::vector<SiteId> p(n);
          for (NodeId v = 0; v < n; ++v) p[v] = static_cast<SiteId>(v);
          return p;
        }();
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel{});
    PartialEvalOptions options;
    options.dist_path = DistAnswerPath::kBoundaryIndex;
    PartialEvalEngine engine(&cluster, options);
    for (int i = 0; i < 60; ++i) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      const uint32_t bound = 1 + static_cast<uint32_t>(i % 8);
      const QueryAnswer idx = engine.Evaluate(Query::Dist(s, t, bound));
      const uint64_t true_dist = OracleDistance(g, s, t);
      ASSERT_EQ(idx.reachable, true_dist != kInfWeight && true_dist <= bound)
          << "k=" << k << " s=" << s << " t=" << t << " bound=" << bound;
      if (idx.reachable) {
        ASSERT_EQ(idx.distance, true_dist) << "k=" << k << " s=" << s
                                           << " t=" << t;
      }
    }
  }
}

// Lazy dirty-portion rebuilds: a second batch in the same epoch must not
// rebuild, an update must dirty only the touched fragments, and the next
// batch refreshes exactly those — rebuild_count advances on dirty epochs
// only.
TEST(BoundaryDistDifferentialTest, RebuildsLazilyAndOnlyWhenDirty) {
  Rng rng(99);
  const size_t n = 80, kSites = 4;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  IncrementalReachIndex index(g, part, kSites);

  Cluster cluster(&index.fragmentation(), NetworkModel{});
  PartialEvalOptions options;
  options.dist_path = DistAnswerPath::kBoundaryIndex;
  PartialEvalEngine engine(&cluster, options);
  index.SetUpdateListener(
      [&](SiteId site) { engine.InvalidateFragment(site); });

  const std::vector<Query> batch = RandomDistBatch(n, 16, &rng);
  engine.EvaluateBatch(batch);
  const BoundaryDistIndex* boundary = engine.boundary_dist_index();
  ASSERT_NE(boundary, nullptr);
  EXPECT_EQ(boundary->rebuild_count(), 1u);
  engine.EvaluateBatch(batch);
  EXPECT_EQ(boundary->rebuild_count(), 1u);  // warm: no refresh round

  // An intra-fragment edge dirties exactly one fragment.
  NodeId u = 0, v = 0;
  for (NodeId a = 0; a < n && u == v; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (part[a] == part[b]) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, v);
  index.AddEdge(u, v);
  EXPECT_EQ(boundary->DirtySites(), std::vector<SiteId>{part[u]});
  engine.EvaluateBatch(batch);
  EXPECT_EQ(boundary->rebuild_count(), 2u);
  EXPECT_TRUE(boundary->DirtySites().empty());
}

}  // namespace
}  // namespace pereach
