// Tests for the serving layer: BatchQueue coalescing semantics, the
// QueryServer's concurrent batch-vs-single differential against a
// centralized oracle (N client threads, randomized query mix), and the
// snapshot-consistency stress test with interleaved edge updates — the
// TSan target for metrics-window and FragmentContext invalidation races.

#include "src/server/query_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/graph/generators.h"
#include "src/server/batch_queue.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::EdgeWorld;
using testing_util::OracleReachable;
using testing_util::RandomMixedQuery;
using testing_util::RandomPartition;

// ---------------------------------------------------------------------------
// BatchQueue

PendingQuery MakePending(NodeId s, NodeId t) {
  PendingQuery p;
  p.query = Query::Reach(s, t);
  return p;
}

TEST(BatchQueueTest, SizeCapDispatchesWithoutWaitingTheWindow) {
  BatchQueue queue({.max_batch = 4, .max_window_us = 1'000'000,
                    .adaptive = false});
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.Push(MakePending(i, i + 1)), PushOutcome::kAccepted);
  }
  StopWatch watch;
  const std::vector<PendingQuery> batch = queue.PopBatch();
  EXPECT_EQ(batch.size(), 4u);
  // The 1 s window must not have been slept: the size cap fired.
  EXPECT_LT(watch.ElapsedMs(), 500.0);
}

TEST(BatchQueueTest, ZeroWindowWithUnitBatchServesPerQuery) {
  BatchQueue queue({.max_batch = 1, .max_window_us = 0, .adaptive = false});
  ASSERT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.Push(MakePending(1, 2)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.PopBatch().size(), 1u);
  EXPECT_EQ(queue.PopBatch().size(), 1u);
}

TEST(BatchQueueTest, ShutdownDrainsPendingThenReturnsEmpty) {
  BatchQueue queue({.max_batch = 16, .max_window_us = 1'000'000,
                    .adaptive = false});
  ASSERT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.Push(MakePending(1, 2)), PushOutcome::kAccepted);
  queue.Shutdown();
  StopWatch watch;
  EXPECT_EQ(queue.PopBatch().size(), 2u);  // no window wait in drain mode
  EXPECT_LT(watch.ElapsedMs(), 500.0);
  EXPECT_TRUE(queue.PopBatch().empty());
  EXPECT_TRUE(queue.PopBatch().empty());
}

TEST(BatchQueueTest, AdaptiveWindowShrinksUnderBurstArrivals) {
  BatchQueue queue({.max_batch = 64, .max_window_us = 100'000,
                    .adaptive = true});
  // A back-to-back burst: inter-arrival gaps of microseconds. The EWMA
  // window must fall well below the 100 ms cap.
  for (NodeId i = 0; i < 16; ++i) {
    ASSERT_EQ(queue.Push(MakePending(i, i + 1)), PushOutcome::kAccepted);
  }
  EXPECT_LT(queue.window_us(), 50'000.0);
  EXPECT_EQ(queue.PopBatch().size(), 16u);
}

TEST(BatchQueueTest, PushAfterShutdownIsRejectedNotFatal) {
  BatchQueue queue({.max_batch = 4, .max_window_us = 1000, .adaptive = false});
  ASSERT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  queue.Shutdown();
  PendingQuery late = MakePending(1, 2);
  std::future<ServedAnswer> future = late.promise.get_future();
  EXPECT_EQ(queue.Push(std::move(late)), PushOutcome::kShutdown);
  // The promise survives a rejected Push: the caller can still resolve it.
  ServedAnswer answer;
  answer.rejected = true;
  late.promise.set_value(std::move(answer));
  EXPECT_TRUE(future.get().rejected);
  // The pre-shutdown query drains normally.
  EXPECT_EQ(queue.PopBatch().size(), 1u);
  EXPECT_TRUE(queue.PopBatch().empty());
}

// Regression: enqueue_time used to be stamped BEFORE taking the queue lock,
// so two racing producers could enqueue in the opposite order of their
// timestamps — and PopBatch's window deadline, computed from queue_.front(),
// could be measured from a non-oldest arrival. Stamped under the lock, queue
// order and timestamp order must agree.
TEST(BatchQueueTest, ConcurrentPushKeepsEnqueueTimesMonotonic) {
  BatchQueue queue(
      {.max_batch = 4096, .max_window_us = 1'000'000, .adaptive = false});
  constexpr size_t kThreads = 8, kPerThread = 200;
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kThreads; ++p) {
    producers.emplace_back([&queue] {
      for (size_t i = 0; i < kPerThread; ++i) {
        EXPECT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const std::vector<PendingQuery> batch = queue.PopBatch();
  ASSERT_EQ(batch.size(), kThreads * kPerThread);
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_LE(batch[i - 1].enqueue_time, batch[i].enqueue_time)
        << "queue order disagrees with timestamp order at " << i;
  }
}

// Regression: max_batch == 0 made PopBatch return empty batches forever
// while queries sat queued (dispatchers read empty as shutdown; clients
// hang). The policy is clamped at construction instead.
TEST(BatchQueueTest, ZeroMaxBatchPolicyIsClampedToPerQuery) {
  BatchQueue queue({.max_batch = 0, .max_window_us = 0, .adaptive = false});
  EXPECT_EQ(queue.policy().max_batch, 1u);
  ASSERT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.Push(MakePending(1, 2)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.PopBatch().size(), 1u);
  EXPECT_EQ(queue.PopBatch().size(), 1u);
}

TEST(BatchQueueTest, ZeroWindowStillCoalescesWhatIsAlreadyQueued) {
  // max_window_us == 0 must not wait, but everything already pending up to
  // max_batch still ships as one batch.
  BatchQueue queue({.max_batch = 16, .max_window_us = 0, .adaptive = true});
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.Push(MakePending(i, i + 1)), PushOutcome::kAccepted);
  }
  StopWatch watch;
  EXPECT_EQ(queue.PopBatch().size(), 5u);
  EXPECT_LT(watch.ElapsedMs(), 500.0);
}

// ---------------------------------------------------------------------------
// QueryServer oracle harness (shared machinery from tests/test_util: the
// EdgeWorld mirror, OracleReachable, and the RandomMixedQuery stream).

TEST(QueryServerTest, SequentialMixedQueriesMatchOracle) {
  Rng rng(101);
  const size_t n = 60, k = 4, num_labels = 3;
  const Graph g = ErdosRenyi(n, 3 * n, num_labels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  QueryServer server(&index);

  const Graph oracle = EdgeWorld::FromGraph(g).Build();
  for (int i = 0; i < 40; ++i) {
    Query q = RandomMixedQuery(n, num_labels, &rng);
    if (i == 7) q = Query::Reach(5, 5);  // trivial member
    const Query probe = q;
    const ServedAnswer served = server.Submit(std::move(q)).get();
    EXPECT_EQ(served.answer.reachable, OracleReachable(oracle, probe))
        << "i=" << i << " kind=" << static_cast<int>(probe.kind)
        << " s=" << probe.source << " t=" << probe.target;
    EXPECT_EQ(served.epoch, 0u);
    EXPECT_GE(served.batch_size, 1u);
  }
  EXPECT_EQ(server.stats().queries, 40u);
}

// The concurrent batch-vs-single differential: N client threads with a
// randomized query mix, updates applied between (quiesced) phases so every
// phase has a deterministic oracle. Catches both wrong answers under
// coalescing and stale FragmentContext reuse after invalidation.
TEST(QueryServerTest, ConcurrentClientsMatchOracleAcrossUpdatePhases) {
  Rng rng(202);
  const size_t n = 80, k = 4, num_labels = 3;
  const size_t kClients = 6, kQueriesPerClient = 15, kPhases = 3;
  const Graph g = ErdosRenyi(n, 3 * n, num_labels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 2000;
  QueryServer server(&index, options);

  for (size_t phase = 0; phase < kPhases; ++phase) {
    const Graph oracle = world.Build();
    std::vector<std::vector<std::pair<Query, ServedAnswer>>> results(kClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng crng(1000 * phase + c);
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          Query q = RandomMixedQuery(n, num_labels, &crng);
          const Query probe = q;
          ServedAnswer served = server.Submit(std::move(q)).get();
          results[c].emplace_back(probe, std::move(served));
        }
      });
    }
    for (std::thread& t : clients) t.join();

    for (size_t c = 0; c < kClients; ++c) {
      for (const auto& [q, served] : results[c]) {
        ASSERT_EQ(served.answer.reachable, OracleReachable(oracle, q))
            << "phase=" << phase << " client=" << c
            << " kind=" << static_cast<int>(q.kind) << " s=" << q.source
            << " t=" << q.target;
        // No update ran during the phase: the snapshot is exactly `phase`
        // committed updates.
        ASSERT_EQ(served.epoch, phase);
      }
    }

    // One update batch between phases, through the server's writer path.
    std::vector<std::pair<NodeId, NodeId>> update;
    for (int e = 0; e < 2; ++e) {
      update.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                          static_cast<NodeId>(rng.Uniform(n)));
    }
    EXPECT_EQ(server.AddEdges(update), phase + 1);
    for (const auto& edge : update) world.edges.push_back(edge);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, kPhases * kClients * kQueriesPerClient);
  EXPECT_EQ(stats.updates, kPhases);
  EXPECT_EQ(server.epoch(), kPhases);
}

TEST(QueryServerTest, BurstOfSubmissionsCoalescesIntoFewBatches) {
  Rng rng(303);
  const size_t n = 50, k = 3;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);

  ServerOptions options;
  options.policy.max_batch = 64;
  options.policy.max_window_us = 200'000;  // generous: absorb scheduler noise
  options.policy.adaptive = false;
  QueryServer server(&index, options);

  // Submit the whole burst before waiting on any future: the window is
  // counted from the first arrival, so the dispatcher collects the burst.
  std::vector<std::future<ServedAnswer>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server.Submit(Query::Reach(
        static_cast<NodeId>(rng.Uniform(n)),
        static_cast<NodeId>(rng.Uniform(n)))));
  }
  size_t max_batch_seen = 0;
  for (auto& f : futures) {
    max_batch_seen = std::max(max_batch_seen, f.get().batch_size);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 32u);
  // All 32 are one class; with a 200 ms window they coalesce into very few
  // batches (loose bound: scheduler may split off a straggler or two).
  EXPECT_LE(stats.batches, 4u);
  EXPECT_GE(max_batch_seen, 8u);
  EXPECT_GT(stats.AvgBatch(), 1.0);
}

// Interleaved-update stress (the TSan job's main target). Updates only add
// edges, so every query class is monotone: an answer computed at ANY epoch
// between submission and completion must be true if it was true before all
// updates, and false if it is false after all of them.
TEST(QueryServerTest, InterleavedUpdatesKeepSnapshotsConsistent) {
  Rng rng(404);
  const size_t n = 80, k = 4, num_labels = 3;
  const size_t kClients = 6, kQueriesPerClient = 20, kUpdates = 6;
  const Graph g = ErdosRenyi(n, 3 * n, num_labels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  EdgeWorld world = EdgeWorld::FromGraph(g);
  const Graph before = world.Build();

  // Pre-plan the updates so the final oracle is known.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> updates(kUpdates);
  for (auto& batch : updates) {
    for (int e = 0; e < 2; ++e) {
      batch.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                         static_cast<NodeId>(rng.Uniform(n)));
      world.edges.push_back(batch.back());
    }
  }
  const Graph after = world.Build();

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 1000;
  QueryServer server(&index, options);

  std::vector<std::vector<std::pair<Query, ServedAnswer>>> results(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(7000 + c);
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        Query q = RandomMixedQuery(n, num_labels, &crng);
        const Query probe = q;
        ServedAnswer served = server.Submit(std::move(q)).get();
        results[c].emplace_back(probe, std::move(served));
      }
    });
  }
  std::thread writer([&] {
    for (const auto& batch : updates) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      server.AddEdges(batch);
    }
  });
  for (std::thread& t : clients) t.join();
  writer.join();

  EXPECT_EQ(server.epoch(), kUpdates);
  for (size_t c = 0; c < kClients; ++c) {
    uint64_t last_epoch = 0;
    for (const auto& [q, served] : results[c]) {
      // Monotonicity of edge insertion bounds the answer from both sides.
      if (OracleReachable(before, q)) {
        EXPECT_TRUE(served.answer.reachable)
            << "client=" << c << " epoch=" << served.epoch
            << " kind=" << static_cast<int>(q.kind) << " s=" << q.source
            << " t=" << q.target;
      }
      if (!OracleReachable(after, q)) {
        EXPECT_FALSE(served.answer.reachable)
            << "client=" << c << " epoch=" << served.epoch
            << " kind=" << static_cast<int>(q.kind) << " s=" << q.source
            << " t=" << q.target;
      }
      // A closed-loop client's snapshots never move backwards.
      EXPECT_GE(served.epoch, last_epoch);
      EXPECT_LE(served.epoch, kUpdates);
      last_epoch = served.epoch;
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.updates, kUpdates);
}

// Drain blocks until every submitted query is answered.
TEST(QueryServerTest, DrainWaitsForInFlightQueries) {
  Rng rng(505);
  const size_t n = 40, k = 3;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  QueryServer server(&index);

  std::vector<std::future<ServedAnswer>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(Query::Reach(
        static_cast<NodeId>(rng.Uniform(n)),
        static_cast<NodeId>(rng.Uniform(n)))));
  }
  server.Drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// The boundary-index serving path: reach dispatchers resolve through the
// coordinator's boundary label under the read gate, so indexed answers must
// stay oracle-exact across update epochs and still report their snapshot.
TEST(QueryServerTest, BoundaryIndexServingMatchesOracleAcrossUpdatePhases) {
  Rng rng(808);
  const size_t n = 80, k = 4;
  const size_t kClients = 4, kQueriesPerClient = 20, kPhases = 3;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 2000;
  options.eval.reach_path = ReachAnswerPath::kBoundaryIndex;
  QueryServer server(&index, options);

  for (size_t phase = 0; phase < kPhases; ++phase) {
    const Graph oracle = world.Build();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng crng(3000 * phase + c);
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          const NodeId s = static_cast<NodeId>(crng.Uniform(n));
          const NodeId t = static_cast<NodeId>(crng.Uniform(n));
          const ServedAnswer served =
              server.Submit(Query::Reach(s, t)).get();
          EXPECT_EQ(served.answer.reachable, CentralizedReach(oracle, s, t))
              << "phase=" << phase << " s=" << s << " t=" << t;
          EXPECT_EQ(served.epoch, phase);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    std::vector<std::pair<NodeId, NodeId>> update;
    for (int e = 0; e < 2; ++e) {
      update.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                          static_cast<NodeId>(rng.Uniform(n)));
      world.edges.push_back(update.back());
    }
    EXPECT_EQ(server.AddEdges(update), phase + 1);
  }
  EXPECT_EQ(server.epoch(), kPhases);
}

// The weighted-boundary-index serving path: dist dispatchers resolve through
// the coordinator's standing min-plus graph under the read gate, so indexed
// distances must stay oracle-exact (and epoch-stamped) across update phases.
TEST(QueryServerTest, BoundaryDistServingMatchesOracleAcrossUpdatePhases) {
  Rng rng(909);
  const size_t n = 80, k = 4;
  const size_t kClients = 4, kQueriesPerClient = 20, kPhases = 3;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 2000;
  options.eval.dist_path = DistAnswerPath::kBoundaryIndex;
  QueryServer server(&index, options);

  for (size_t phase = 0; phase < kPhases; ++phase) {
    const Graph oracle = world.Build();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng crng(4000 * phase + c);
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          const NodeId s = static_cast<NodeId>(crng.Uniform(n));
          const NodeId t = static_cast<NodeId>(crng.Uniform(n));
          const uint32_t bound = 1 + static_cast<uint32_t>(crng.Uniform(8));
          const ServedAnswer served =
              server.Submit(Query::Dist(s, t, bound)).get();
          const uint32_t d = CentralizedDistance(oracle, s, t);
          const bool expected = d != kInfDistance && d <= bound;
          EXPECT_EQ(served.answer.reachable, expected)
              << "phase=" << phase << " s=" << s << " t=" << t
              << " bound=" << bound;
          if (expected) {
            EXPECT_EQ(served.answer.distance, d)
                << "phase=" << phase << " s=" << s << " t=" << t;
          }
          EXPECT_EQ(served.epoch, phase);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    EXPECT_EQ(server.AddEdges(world.AddRandomEdges(2, &rng)), phase + 1);
  }
  EXPECT_EQ(server.epoch(), kPhases);
}

// The rpq dispatcher serves through the signature-cached product boundary
// graphs (ServerOptions::eval pickup) while a writer applies edge updates:
// answers must stay oracle-exact at every epoch, and repeated regexes must
// actually hit the standing entries rather than rebuild per batch.
TEST(QueryServerTest, BoundaryRpqServingMatchesOracleAcrossUpdatePhases) {
  Rng rng(808);
  const size_t n = 70, k = 4, kLabels = 3;
  const size_t kClients = 4, kQueriesPerClient = 15, kPhases = 3;
  const Graph g = ErdosRenyi(n, 3 * n, kLabels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  // A small shared regex pool — the serving-realistic shape the signature
  // cache is for.
  std::vector<QueryAutomaton> pool;
  pool.push_back(QueryAutomaton::WildcardStar());
  for (int i = 0; i < 3; ++i) {
    pool.push_back(
        QueryAutomaton::FromRegex(Regex::Random(3, kLabels, &rng)).value());
  }

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 2000;
  options.eval.rpq_path = RpqAnswerPath::kBoundaryIndex;
  QueryServer server(&index, options);

  for (size_t phase = 0; phase < kPhases; ++phase) {
    const Graph oracle = world.Build();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng crng(8000 * phase + c);
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          const NodeId s = static_cast<NodeId>(crng.Uniform(n));
          const NodeId t = static_cast<NodeId>(crng.Uniform(n));
          const QueryAutomaton& a = pool[crng.Uniform(pool.size())];
          const ServedAnswer served =
              server.Submit(Query::Rpq(s, t, a)).get();
          EXPECT_EQ(served.answer.reachable,
                    testing_util::OracleRegularReach(oracle, s, t, a))
              << "phase=" << phase << " s=" << s << " t=" << t;
          EXPECT_EQ(served.epoch, phase);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    EXPECT_EQ(server.AddEdges(world.AddRandomEdges(2, &rng)), phase + 1);
  }
  EXPECT_EQ(server.epoch(), kPhases);
}

// Regression: an oversized regex (> 62 symbol occurrences) used to
// CHECK-abort the whole server process inside QueryAutomaton::FromRegex.
// Now Query::Rpq carries no automaton, Submit resolves the future as
// rejected, and the server keeps serving well-formed queries.
TEST(QueryServerTest, OversizedRegexSubmissionRejectedNotFatal) {
  Rng rng(707);
  const size_t n = 40, k = 3;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  const Graph oracle = EdgeWorld::FromGraph(g).Build();
  QueryServer server(&index);

  const Regex big = Regex::Random(80, 2, &rng);  // 80 + 2 states > 64
  const Query bad = Query::Rpq(0, 1, big);
  ASSERT_FALSE(bad.automaton.has_value());
  const ServedAnswer rejected = server.Submit(bad).get();
  EXPECT_TRUE(rejected.rejected);

  // The server is still alive and correct for everyone else.
  for (int q = 0; q < 10; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(n));
    const ServedAnswer served = server.Submit(Query::Reach(s, t)).get();
    EXPECT_FALSE(served.rejected);
    EXPECT_EQ(served.answer.reachable, CentralizedReach(oracle, s, t));
  }
  server.Drain();
}

// Regression for the Submit-vs-Stop race: client threads hammer Submit while
// the main thread stops the server. Before the fix, a Push that lost the
// race hit PEREACH_CHECK(!shutdown_) and aborted the whole process. Now
// every future must become ready — answered for admitted queries, rejected
// for the rest — and answered ones must be correct.
TEST(QueryServerTest, SubmitRacingStopResolvesEveryFutureGracefully) {
  Rng rng(606);
  const size_t n = 50, k = 3, kClients = 6;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  const Graph oracle = EdgeWorld::FromGraph(g).Build();

  QueryServer server(&index);
  std::atomic<bool> go{false};
  std::atomic<size_t> rejected_total{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(9000 + c);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      size_t rejected = 0;
      // Submit until the server turns us away (plus a few extra afterwards
      // to cover the post-stop path), checking every admitted answer.
      for (int i = 0; i < 100000 && rejected < 3; ++i) {
        const NodeId s = static_cast<NodeId>(crng.Uniform(n));
        const NodeId t = static_cast<NodeId>(crng.Uniform(n));
        const ServedAnswer served = server.Submit(Query::Reach(s, t)).get();
        if (served.rejected) {
          ++rejected;
        } else {
          EXPECT_EQ(served.answer.reachable, CentralizedReach(oracle, s, t));
        }
      }
      rejected_total.fetch_add(rejected, std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();
  for (std::thread& t : clients) t.join();
  // Every client observed the stop as rejections, never a crash or a hang.
  EXPECT_GE(rejected_total.load(), kClients * 3);
  // Stop is idempotent, and Submit after Stop stays graceful.
  server.Stop();
  EXPECT_TRUE(server.Submit(Query::Reach(0, 1)).get().rejected);
}

// A max_batch == 0 policy used to hang every client (PopBatch returned
// empty batches forever with queries queued); the clamp turns it into the
// per-query baseline.
TEST(QueryServerTest, ZeroMaxBatchPolicyStillServes) {
  Rng rng(707);
  const size_t n = 40, k = 3;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  const Graph oracle = EdgeWorld::FromGraph(g).Build();

  ServerOptions options;
  options.policy.max_batch = 0;    // clamped to 1
  options.policy.max_window_us = 0;  // no coalescing wait
  QueryServer server(&index, options);
  for (int i = 0; i < 20; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(n));
    const ServedAnswer served = server.Submit(Query::Reach(s, t)).get();
    EXPECT_FALSE(served.rejected);
    EXPECT_EQ(served.answer.reachable, CentralizedReach(oracle, s, t));
    EXPECT_EQ(served.batch_size, 1u);
  }
  EXPECT_EQ(server.stats().queries, 20u);
}

// ---------------------------------------------------------------------------
// Serving hardening: answer cache, admission control, tenant quotas, metrics
// (DESIGN.md §11; the operator-facing contract lives in docs/OPERATIONS.md).

TEST(BatchQueueTest, EntryBudgetRejectsBeyondMaxQueue) {
  AdmissionOptions admission;
  admission.max_queue = 2;
  BatchQueue queue({.max_batch = 64, .max_window_us = 1'000'000,
                    .adaptive = false},
                   admission);
  EXPECT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  EXPECT_EQ(queue.Push(MakePending(1, 2)), PushOutcome::kAccepted);
  // The budget verdict is exact (decided under the queue lock): entry 3
  // rejects while exactly 2 are pending, and popping reopens admission.
  EXPECT_EQ(queue.Push(MakePending(2, 3)), PushOutcome::kQueueFull);
  EXPECT_EQ(queue.pending(), 2u);
  queue.Shutdown();
  EXPECT_EQ(queue.PopBatch().size(), 2u);
}

TEST(BatchQueueTest, AgeBudgetRejectsWhenOldestEntryIsStale) {
  AdmissionOptions admission;
  admission.max_queue_age_us = 1000;  // 1 ms
  BatchQueue queue({.max_batch = 64, .max_window_us = 1'000'000,
                    .adaptive = false},
                   admission);
  EXPECT_EQ(queue.Push(MakePending(0, 1)), PushOutcome::kAccepted);
  // No dispatcher pops: the oldest entry ages past the budget, so further
  // admissions must reject as stale rather than grow the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(queue.Push(MakePending(1, 2)), PushOutcome::kQueueStale);
  EXPECT_EQ(queue.pending(), 1u);
  queue.Shutdown();
  EXPECT_EQ(queue.PopBatch().size(), 1u);
}

TEST(QueryServerTest, CacheHitReturnsBitIdenticalAnswerAndEpoch) {
  Rng rng(1101);
  const size_t n = 60, k = 4, num_labels = 3;
  const Graph g = ErdosRenyi(n, 3 * n, num_labels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);

  ServerOptions options;
  options.cache.enabled = true;
  QueryServer server(&index, options);

  // Mixed classes, each submitted twice: the second submission must hit and
  // return the bit-identical answer fields at the same epoch.
  std::vector<Query> probes;
  for (int i = 0; i < 8; ++i) {
    probes.push_back(RandomMixedQuery(n, num_labels, &rng));
  }
  std::vector<ServedAnswer> first;
  for (const Query& q : probes) first.push_back(server.Submit(q).get());
  for (size_t i = 0; i < probes.size(); ++i) {
    const ServedAnswer again = server.Submit(probes[i]).get();
    EXPECT_TRUE(again.cache_hit) << "probe " << i;
    EXPECT_FALSE(again.rejected);
    EXPECT_EQ(again.answer.reachable, first[i].answer.reachable) << i;
    EXPECT_EQ(again.answer.distance, first[i].answer.distance) << i;
    EXPECT_EQ(again.epoch, first[i].epoch) << i;
  }
  const AnswerCacheCounters cache = server.cache_counters();
  EXPECT_GE(cache.hits, probes.size());
  // Evaluated work is unchanged by hits: ServerStats counts only the first
  // round of submissions.
  EXPECT_EQ(server.stats().queries, probes.size());

  // An rpq phrased differently but language-equal shares the canonical
  // key, so it hits the entry its twin inserted.
  LabelDictionary dict;
  dict.Intern("a");
  const Regex plain = Regex::Parse("a", dict).value();
  const Regex doubled = Regex::Parse("a | a", dict).value();
  const ServedAnswer miss = server.Submit(Query::Rpq(3, 7, plain)).get();
  EXPECT_FALSE(miss.cache_hit);
  const ServedAnswer hit = server.Submit(Query::Rpq(3, 7, doubled)).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.answer.reachable, miss.answer.reachable);
}

TEST(QueryServerTest, CacheInvalidatedOnUpdateCommit) {
  Rng rng(1202);
  const size_t n = 30, k = 3;
  // Two halves with no edges between them: q = (0 -> n-1) is false until
  // the writer links them, so a stale cache entry would be WRONG, not just
  // old — the strongest invalidation probe.
  std::vector<std::pair<NodeId, NodeId>> chain_edges;
  for (NodeId u = 0; u + 1 < n / 2; ++u) chain_edges.emplace_back(u, u + 1);
  for (NodeId u = n / 2; u + 1 < n; ++u) chain_edges.emplace_back(u, u + 1);
  const Graph g = testing_util::MakeGraph(n, chain_edges);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);

  ServerOptions options;
  options.cache.enabled = true;
  QueryServer server(&index, options);

  const Query probe = Query::Reach(0, static_cast<NodeId>(n - 1));
  const ServedAnswer before = server.Submit(probe).get();
  EXPECT_FALSE(before.answer.reachable);
  EXPECT_EQ(before.epoch, 0u);
  EXPECT_TRUE(server.Submit(probe).get().cache_hit);  // cached at epoch 0

  // The commit must invalidate: the resubmission re-evaluates at epoch 1
  // and sees the new edge.
  EXPECT_EQ(server.AddEdge(static_cast<NodeId>(n / 2 - 1),
                           static_cast<NodeId>(n / 2)),
            1u);
  const ServedAnswer after = server.Submit(probe).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_TRUE(after.answer.reachable);
  EXPECT_EQ(after.epoch, 1u);
  // And the fresh answer is cached under the new epoch.
  const ServedAnswer again = server.Submit(probe).get();
  EXPECT_TRUE(again.cache_hit);
  EXPECT_TRUE(again.answer.reachable);
  EXPECT_EQ(again.epoch, 1u);
  EXPECT_GE(server.cache_counters().invalidated, 1u);
}

TEST(QueryServerTest, QueueBudgetRejectsInsteadOfQueueingUnboundedly) {
  Rng rng(1303);
  const size_t n = 50, k = 3;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);

  ServerOptions options;
  // A long fixed window holds the first batch in the queue while the burst
  // lands, so the entry budget is actually exercised.
  options.policy.max_batch = 64;
  options.policy.max_window_us = 200'000;
  options.policy.adaptive = false;
  options.admission.max_queue = 4;
  QueryServer server(&index, options);

  std::vector<std::future<ServedAnswer>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(server.Submit(Query::Reach(
        static_cast<NodeId>(rng.Uniform(n)), static_cast<NodeId>(rng.Uniform(n)))));
  }
  size_t rejected = 0, answered = 0;
  for (auto& f : futures) {
    const ServedAnswer served = f.get();
    if (served.rejected) {
      EXPECT_EQ(served.reject_reason, RejectReason::kQueueFull);
      ++rejected;
    } else {
      ++answered;
    }
  }
  // The queue never held more than the budget; everything beyond it (minus
  // what the dispatcher managed to pop mid-burst) was turned away.
  EXPECT_GT(rejected, 0u);
  EXPECT_GE(answered, 4u);
  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.counter(CounterId::kRejectedQueueFull), rejected);
  EXPECT_EQ(snap.counter(CounterId::kQueriesRejected), rejected);
  EXPECT_EQ(snap.counter(CounterId::kQueriesSubmitted), 20u);
}

TEST(QueryServerTest, TenantQuotaKeepsLightTenantServedUnderSkewedLoad) {
  Rng rng(1404);
  const size_t n = 60, k = 3;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  const Graph oracle = EdgeWorld::FromGraph(g).Build();

  ServerOptions options;
  options.policy.max_batch = 8;
  options.policy.max_window_us = 2000;
  options.admission.tenant_quota = 4;
  QueryServer server(&index, options);

  constexpr TenantId kHeavy = 7, kLight = 8;
  // The heavy tenant floods asynchronously (no waiting => in-flight grows
  // past the quota immediately); the light tenant runs a closed loop and
  // must never be turned away — the quota charges the flooder, not the
  // shared queues.
  std::atomic<size_t> heavy_rejected{0};
  std::thread heavy([&] {
    Rng hrng(42);
    std::vector<std::future<ServedAnswer>> inflight;
    for (int i = 0; i < 200; ++i) {
      inflight.push_back(server.Submit(
          Query::Reach(static_cast<NodeId>(hrng.Uniform(n)),
                       static_cast<NodeId>(hrng.Uniform(n))),
          kHeavy));
    }
    for (auto& f : inflight) {
      const ServedAnswer served = f.get();
      if (served.rejected) {
        EXPECT_EQ(served.reject_reason, RejectReason::kTenantQuota);
        heavy_rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  Rng lrng(43);
  for (int i = 0; i < 30; ++i) {
    const NodeId s = static_cast<NodeId>(lrng.Uniform(n));
    const NodeId t = static_cast<NodeId>(lrng.Uniform(n));
    const ServedAnswer served = server.Submit(Query::Reach(s, t), kLight).get();
    ASSERT_FALSE(served.rejected) << "light tenant starved at query " << i;
    EXPECT_EQ(served.answer.reachable, CentralizedReach(oracle, s, t));
  }
  heavy.join();
  // The flood ran far past its quota, so most of it was shed.
  EXPECT_GT(heavy_rejected.load(), 100u);
  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.counter(CounterId::kRejectedTenantQuota),
            heavy_rejected.load());
  EXPECT_EQ(snap.gauge(GaugeId::kTenantsInFlight), 0.0);  // all drained
}

TEST(QueryServerTest, MetricsSnapshotCoversServingActivity) {
  Rng rng(1505);
  const size_t n = 50, k = 3, num_labels = 2;
  const Graph g = ErdosRenyi(n, 3 * n, num_labels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);

  ServerOptions options;
  options.cache.enabled = true;
  QueryServer server(&index, options);

  const Query repeat = Query::Reach(1, 2);
  server.Submit(repeat).get();
  server.Submit(repeat).get();  // hit
  server.Submit(Query::Dist(3, 4, 5)).get();
  server.AddEdge(0, 1);

  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.counter(CounterId::kQueriesSubmitted), 3u);
  EXPECT_EQ(snap.counter(CounterId::kQueriesAnswered), 3u);
  EXPECT_EQ(snap.counter(CounterId::kCacheHits), 1u);
  EXPECT_EQ(snap.counter(CounterId::kUpdates), 1u);
  EXPECT_GE(snap.counter(CounterId::kBatches), 2u);
  EXPECT_GE(snap.counter(CounterId::kCacheInvalidated), 1u);
  EXPECT_EQ(snap.gauge(GaugeId::kEpoch), 1.0);
  EXPECT_EQ(snap.gauge(GaugeId::kEpochLag), 0.0);
  const HistogramSnapshot& sizes = snap.histogram(HistogramId::kBatchSize);
  EXPECT_GE(sizes.count, 2u);
  EXPECT_GE(sizes.max, 1.0);

  // The JSON export carries every cataloged metric name exactly once.
  const std::string json = server.MetricsJson();
  for (const auto& infos : {CounterInfos(), GaugeInfos(), HistogramInfos()}) {
    for (const MetricInfo& info : infos) {
      EXPECT_NE(json.find(std::string("\"") + info.name + "\""),
                std::string::npos)
          << info.name << " missing from MetricsJson";
    }
  }
}

}  // namespace
}  // namespace pereach
