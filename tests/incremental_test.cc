#include "src/core/incremental.h"

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(IncrementalTest, AnswersMatchCentralizedBeforeUpdates) {
  const PaperExample ex = MakePaperExample();
  IncrementalReachIndex index(ex.graph, ex.partition, 3);
  EXPECT_TRUE(index.Reach(ex.ann, ex.mark));
  EXPECT_FALSE(index.Reach(ex.mark, ex.ann));
  EXPECT_TRUE(index.Reach(ex.pat, ex.mark));
  EXPECT_TRUE(index.Reach(ex.tom, ex.tom));
  EXPECT_FALSE(index.Reach(ex.ann, ex.tom));
}

TEST(IncrementalTest, EdgeInsertFlipsAnswer) {
  const PaperExample ex = MakePaperExample();
  IncrementalReachIndex index(ex.graph, ex.partition, 3);
  EXPECT_FALSE(index.Reach(ex.ann, ex.tom));
  index.AddEdge(ex.mark, ex.tom);  // Mark recommends Tom
  EXPECT_TRUE(index.Reach(ex.ann, ex.tom));
}

TEST(IncrementalTest, CachesSurviveUnrelatedUpdates) {
  const PaperExample ex = MakePaperExample();
  IncrementalReachIndex index(ex.graph, ex.partition, 3);
  index.Reach(ex.ann, ex.mark);  // warm all 3 fragment caches
  const size_t warm = index.recompute_count();
  EXPECT_EQ(warm, 3u);

  // An intra-fragment edge in DC3 dirties only fragment 2.
  index.AddEdge(ex.tom, ex.ross);
  index.Reach(ex.ann, ex.mark);
  EXPECT_EQ(index.recompute_count(), warm + 1);

  // A cross edge DC1 -> DC2 dirties fragments 0 and 1.
  index.AddEdge(ex.bill, ex.jack);
  index.Reach(ex.ann, ex.mark);
  EXPECT_EQ(index.recompute_count(), warm + 3);
}

TEST(IncrementalTest, MatchesCentralizedUnderRandomInsertions) {
  Rng rng(83);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t n = 20 + rng.Uniform(40);
    Graph g = ErdosRenyi(n, n, 2, &rng);
    const size_t k = 2 + rng.Uniform(4);
    const std::vector<SiteId> part = RandomPartition(n, k, &rng);
    IncrementalReachIndex index(g, part, k);

    // Mirror of the evolving graph for the oracle.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.OutNeighbors(u)) edges.emplace_back(u, v);
    }

    for (int round = 0; round < 8; ++round) {
      // Insert a random edge.
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      NodeId v = static_cast<NodeId>(rng.Uniform(n - 1));
      if (v >= u) ++v;
      index.AddEdge(u, v);
      edges.emplace_back(u, v);
      const Graph oracle = testing_util::MakeGraph(n, edges);

      for (int q = 0; q < 8; ++q) {
        const NodeId s = static_cast<NodeId>(rng.Uniform(n));
        const NodeId t = static_cast<NodeId>(rng.Uniform(n));
        ASSERT_EQ(index.Reach(s, t), CentralizedReach(oracle, s, t))
            << "after insert (" << u << "," << v << ") query " << s << "->"
            << t;
      }
    }
  }
}

TEST(IncrementalTest, RecomputesAtMostTwoFragmentsPerInsert) {
  Rng rng(89);
  const size_t n = 60;
  const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
  const size_t k = 6;
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);
  IncrementalReachIndex index(g, part, k);
  index.Reach(0, 1);  // warm caches: k recomputations
  size_t previous = index.recompute_count();
  EXPECT_EQ(previous, k);
  for (int i = 0; i < 10; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n - 1));
    if (v >= u) ++v;
    index.AddEdge(u, v);
    index.Reach(0, 1);
    const size_t now = index.recompute_count();
    EXPECT_LE(now - previous, 2u) << "insert " << i;
    previous = now;
  }
}

}  // namespace
}  // namespace pereach
