#include "src/bes/bes.h"

#include <gtest/gtest.h>

#include "src/bes/distance_system.h"
#include "src/util/random.h"

namespace pereach {
namespace {

TEST(BesTest, EmptySystemIsFalse) {
  BooleanEquationSystem bes;
  EXPECT_FALSE(bes.Evaluate(1));
}

TEST(BesTest, DirectTrue) {
  BooleanEquationSystem bes;
  bes.Add({1, true, {}});
  EXPECT_TRUE(bes.Evaluate(1));
  EXPECT_FALSE(bes.Evaluate(2));
}

TEST(BesTest, ChainPropagates) {
  BooleanEquationSystem bes;
  bes.Add({1, false, {2}});
  bes.Add({2, false, {3}});
  bes.Add({3, true, {}});
  EXPECT_TRUE(bes.Evaluate(1));
  EXPECT_TRUE(bes.Evaluate(2));
}

TEST(BesTest, CycleWithoutTrueIsFalse) {
  // Least fixpoint: mutually recursive variables with no true base are false.
  BooleanEquationSystem bes;
  bes.Add({1, false, {2}});
  bes.Add({2, false, {1}});
  EXPECT_FALSE(bes.Evaluate(1));
  EXPECT_FALSE(bes.Evaluate(2));
}

TEST(BesTest, CycleReachingTrueIsTrue) {
  // The xFred example of §3: recursively defined equations that resolve true.
  BooleanEquationSystem bes;
  bes.Add({1, false, {2}});
  bes.Add({2, false, {1, 3}});
  bes.Add({3, true, {}});
  EXPECT_TRUE(bes.Evaluate(1));
}

TEST(BesTest, UndefinedDependencyIsFalse) {
  BooleanEquationSystem bes;
  bes.Add({1, false, {99}});
  EXPECT_FALSE(bes.Evaluate(1));
}

TEST(BesTest, DuplicateDefinitionsMergeDisjunctively) {
  BooleanEquationSystem bes;
  bes.Add({1, false, {2}});
  bes.Add({1, false, {3}});
  bes.Add({3, true, {}});
  EXPECT_TRUE(bes.Evaluate(1));
}

TEST(BesTest, PaperExample3System) {
  // RVset of Example 3 (node ids stand in for the people):
  //   xAnn = xPat ∨ xMat, xFred = xEmmy, xMat = xFred, xJack = xFred,
  //   xEmmy = xFred ∨ xRoss, xRoss = true, xPat = xJack.
  enum : uint64_t { Ann = 0, Fred = 3, Mat = 4, Emmy = 5, Jack = 6, Pat = 7,
                    Ross = 8 };
  BooleanEquationSystem bes;
  bes.Add({Ann, false, {Pat, Mat}});
  bes.Add({Fred, false, {Emmy}});
  bes.Add({Mat, false, {Fred}});
  bes.Add({Jack, false, {Fred}});
  bes.Add({Emmy, false, {Fred, Ross}});
  bes.Add({Ross, true, {}});
  bes.Add({Pat, false, {Jack}});
  EXPECT_TRUE(bes.Evaluate(Ann));   // the paper's answer to q_r(Ann, Mark)
  EXPECT_TRUE(bes.Evaluate(Jack));  // Jack -> Fred -> Emmy -> Ross
  EXPECT_TRUE(bes.Evaluate(Pat));
}

// Property: the dependency-graph solver agrees with naive fixpoint
// iteration on random (possibly cyclic) systems.
TEST(BesTest, EvaluateMatchesNaiveOnRandomSystems) {
  Rng rng(61);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.Uniform(40);
    BooleanEquationSystem bes;
    for (uint64_t v = 0; v < n; ++v) {
      BoolEquation eq;
      eq.var = v;
      eq.has_true = rng.Bernoulli(0.08);
      const size_t deps = rng.Uniform(4);
      for (size_t d = 0; d < deps; ++d) {
        eq.deps.push_back(rng.Uniform(n + 2));  // may reference undefined vars
      }
      bes.Add(std::move(eq));
    }
    for (uint64_t v = 0; v < n; ++v) {
      ASSERT_EQ(bes.Evaluate(v), bes.EvaluateNaive(v)) << "var " << v;
    }
  }
}

TEST(BesTest, ClearEmptiesSystem) {
  BooleanEquationSystem bes;
  bes.Add({1, true, {}});
  bes.Clear();
  EXPECT_FALSE(bes.Evaluate(1));
  EXPECT_EQ(bes.num_equations(), 0u);
}

TEST(BesTest, CountsDependencies) {
  BooleanEquationSystem bes;
  bes.Add({1, false, {2, 3}});
  bes.Add({2, false, {3}});
  EXPECT_EQ(bes.num_equations(), 2u);
  EXPECT_EQ(bes.num_dependencies(), 3u);
}

// ---------------------------------------------------------------------------
// DistanceEquationSystem
// ---------------------------------------------------------------------------

TEST(DistanceSystemTest, EmptyIsInfinite) {
  DistanceEquationSystem sys;
  EXPECT_EQ(sys.Evaluate(1), kInfWeight);
}

TEST(DistanceSystemTest, DirectBase) {
  DistanceEquationSystem sys;
  sys.Add({1, 7, {}});
  EXPECT_EQ(sys.Evaluate(1), 7u);
}

TEST(DistanceSystemTest, PicksShorterOfBaseAndChain) {
  DistanceEquationSystem sys;
  sys.Add({1, 10, {{2, 1}}});
  sys.Add({2, 3, {}});
  EXPECT_EQ(sys.Evaluate(1), 4u);  // 1 -> 2 (w=1) + base 3 beats base 10
}

TEST(DistanceSystemTest, CycleDoesNotLoopForever) {
  DistanceEquationSystem sys;
  sys.Add({1, kInfWeight, {{2, 1}}});
  sys.Add({2, kInfWeight, {{1, 1}}});
  EXPECT_EQ(sys.Evaluate(1), kInfWeight);
}

TEST(DistanceSystemTest, CycleWithExit) {
  DistanceEquationSystem sys;
  sys.Add({1, kInfWeight, {{2, 2}}});
  sys.Add({2, kInfWeight, {{1, 2}, {3, 5}}});
  sys.Add({3, 1, {}});
  EXPECT_EQ(sys.Evaluate(1), 8u);  // 1 -(2)-> 2 -(5)-> 3 + base 1
}

TEST(DistanceSystemTest, PaperExample5Vectors) {
  // Example 5 (F2's equations for q_br(Ann, Mark, 6)):
  //   xMat = min(xFred + 1), xJack = min(xFred + 3),
  //   xEmmy = min(xFred + 3, xRoss + 1), with the full weighted dependency
  //   graph of Fig. 5(b) giving dist(Ann, Mark) = 6.
  enum : uint64_t { Ann = 0, Fred = 3, Mat = 4, Emmy = 5, Jack = 6, Pat = 7,
                    Ross = 8 };
  DistanceEquationSystem sys;
  sys.Add({Ann, kInfWeight, {{Mat, 2}, {Pat, 2}}});
  sys.Add({Fred, kInfWeight, {{Emmy, 1}}});
  sys.Add({Mat, kInfWeight, {{Fred, 1}}});
  sys.Add({Jack, kInfWeight, {{Fred, 3}}});
  sys.Add({Emmy, kInfWeight, {{Fred, 3}, {Ross, 1}}});
  sys.Add({Ross, 1, {}});  // dist(Ross, Mark) = 1 within F3
  sys.Add({Pat, kInfWeight, {{Jack, 1}}});
  EXPECT_EQ(sys.Evaluate(Ann), 6u);
  EXPECT_EQ(sys.Evaluate(Emmy), 2u);
  EXPECT_EQ(sys.Evaluate(Jack), 6u);  // xJack = xFred + 3 = (xEmmy + 1) + 3
}

TEST(DistanceSystemTest, DuplicateDefinitionsMergeByMin) {
  DistanceEquationSystem sys;
  sys.Add({1, 9, {}});
  sys.Add({1, kInfWeight, {{2, 1}}});
  sys.Add({2, 3, {}});
  EXPECT_EQ(sys.Evaluate(1), 4u);
}

// Property: Dijkstra solve agrees with Bellman-Ford iteration.
TEST(DistanceSystemTest, EvaluateMatchesNaiveOnRandomSystems) {
  Rng rng(67);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.Uniform(30);
    DistanceEquationSystem sys;
    for (uint64_t v = 0; v < n; ++v) {
      DistEquation eq;
      eq.var = v;
      if (rng.Bernoulli(0.15)) eq.base = rng.Uniform(20);
      const size_t terms = rng.Uniform(4);
      for (size_t i = 0; i < terms; ++i) {
        eq.terms.emplace_back(rng.Uniform(n + 2), 1 + rng.Uniform(10));
      }
      sys.Add(std::move(eq));
    }
    for (uint64_t v = 0; v < n; ++v) {
      ASSERT_EQ(sys.Evaluate(v), sys.EvaluateNaive(v)) << "var " << v;
    }
  }
}

}  // namespace
}  // namespace pereach
