#include "tests/test_util.h"

#include "src/fragment/partitioner.h"

namespace pereach {
namespace testing_util {

Graph MakeGraph(size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                const std::vector<LabelId>& labels) {
  GraphBuilder b;
  b.AddNodes(n);
  for (size_t v = 0; v < labels.size() && v < n; ++v) {
    b.SetLabel(static_cast<NodeId>(v), labels[v]);
  }
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

std::vector<SiteId> RandomPartition(size_t n, size_t k, Rng* rng) {
  std::vector<SiteId> part(n);
  for (SiteId& s : part) s = static_cast<SiteId>(rng->Uniform(k));
  EnsureNonEmptySites(&part, k, rng);
  return part;
}

Fragmentation RandomFragmentation(const Graph& g, size_t k, Rng* rng) {
  return Fragmentation::Build(g, RandomPartition(g.NumNodes(), k, rng), k);
}

PaperExample MakePaperExample() {
  PaperExample ex;
  const LabelId cto = ex.labels.Intern("CTO");
  const LabelId hr = ex.labels.Intern("HR");
  const LabelId db = ex.labels.Intern("DB");
  const LabelId mk = ex.labels.Intern("MK");
  const LabelId se = ex.labels.Intern("SE");
  const LabelId ai = ex.labels.Intern("AI");
  const LabelId fa = ex.labels.Intern("FA");

  ex.names = {"Ann", "Walt", "Bill", "Fred", "Mat", "Emmy",
              "Jack", "Pat",  "Ross", "Tom",  "Mark"};
  const std::vector<LabelId> node_labels = {cto, hr, db, hr, hr, hr,
                                            mk,  se, hr, ai, fa};
  ex.graph = MakeGraph(
      11,
      {
          {ex.ann, ex.walt},   // DC1 local
          {ex.ann, ex.bill},   // DC1 local
          {ex.walt, ex.mat},   // cross DC1 -> DC2
          {ex.bill, ex.pat},   // cross DC1 -> DC3
          {ex.fred, ex.emmy},  // cross DC1 -> DC2
          {ex.mat, ex.fred},   // cross DC2 -> DC1
          {ex.emmy, ex.mat},   // DC2 local
          {ex.jack, ex.mat},   // DC2 local
          {ex.emmy, ex.ross},  // cross DC2 -> DC3
          {ex.pat, ex.jack},   // cross DC3 -> DC2
          {ex.ross, ex.mark},  // DC3 local
      },
      node_labels);
  ex.partition = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2};
  return ex;
}

}  // namespace testing_util
}  // namespace pereach
