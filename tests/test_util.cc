#include "tests/test_util.h"

#include <sstream>

#include "src/baselines/centralized.h"
#include "src/fragment/partitioner.h"
#include "src/regex/regex.h"

namespace pereach {
namespace testing_util {

Graph MakeGraph(size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                const std::vector<LabelId>& labels) {
  GraphBuilder b;
  b.AddNodes(n);
  for (size_t v = 0; v < labels.size() && v < n; ++v) {
    b.SetLabel(static_cast<NodeId>(v), labels[v]);
  }
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

std::vector<SiteId> RandomPartition(size_t n, size_t k, Rng* rng) {
  std::vector<SiteId> part(n);
  for (SiteId& s : part) s = static_cast<SiteId>(rng->Uniform(k));
  EnsureNonEmptySites(&part, k, rng);
  return part;
}

Fragmentation RandomFragmentation(const Graph& g, size_t k, Rng* rng) {
  return Fragmentation::Build(g, RandomPartition(g.NumNodes(), k, rng), k);
}

EdgeWorld EdgeWorld::FromGraph(const Graph& g) {
  EdgeWorld w;
  w.n = g.NumNodes();
  w.labels = g.labels();
  for (NodeId u = 0; u < w.n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) w.edges.emplace_back(u, v);
  }
  return w;
}

Graph EdgeWorld::Build() const {
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 0; v < n; ++v) b.SetLabel(v, labels[v]);
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

std::vector<std::pair<NodeId, NodeId>> EdgeWorld::AddRandomEdges(size_t count,
                                                                Rng* rng) {
  std::vector<std::pair<NodeId, NodeId>> added;
  added.reserve(count);
  for (size_t e = 0; e < count; ++e) {
    added.emplace_back(static_cast<NodeId>(rng->Uniform(n)),
                       static_cast<NodeId>(rng->Uniform(n)));
    edges.push_back(added.back());
  }
  return added;
}

std::vector<std::unique_ptr<Partitioner>> AllPartitioners() {
  std::vector<std::unique_ptr<Partitioner>> out;
  out.push_back(std::make_unique<RandomPartitioner>());
  out.push_back(std::make_unique<ChunkPartitioner>());
  out.push_back(std::make_unique<BfsGrowPartitioner>());
  return out;
}

std::string_view FormName(EquationForm form) {
  switch (form) {
    case EquationForm::kAuto: return "auto";
    case EquationForm::kClosure: return "closure";
    case EquationForm::kDag: return "dag";
  }
  return "unknown";
}

std::vector<Query> RandomReachBatch(size_t n, size_t count, Rng* rng) {
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(Query::Reach(static_cast<NodeId>(rng->Uniform(n)),
                                 static_cast<NodeId>(rng->Uniform(n))));
  }
  return batch;
}

std::vector<Query> RandomRpqBatch(size_t n, size_t count, size_t num_distinct,
                                  size_t num_labels, Rng* rng) {
  std::vector<QueryAutomaton> pool;
  pool.reserve(num_distinct);
  for (size_t i = 0; i < num_distinct; ++i) {
    pool.push_back(
        QueryAutomaton::FromRegex(Regex::Random(3, num_labels, rng)).value());
  }
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(Query::Rpq(static_cast<NodeId>(rng->Uniform(n)),
                               static_cast<NodeId>(rng->Uniform(n)),
                               pool[rng->Uniform(pool.size())]));
  }
  return batch;
}

bool OracleRegularReach(const Graph& g, NodeId s, NodeId t,
                        const QueryAutomaton& automaton) {
  return CentralizedRegularReach(g, s, t, automaton);
}

Query RandomMixedQuery(size_t n, size_t num_labels, Rng* rng) {
  const NodeId s = static_cast<NodeId>(rng->Uniform(n));
  const NodeId t = static_cast<NodeId>(rng->Uniform(n));
  const uint64_t kind = rng->Uniform(10);
  if (kind < 6) return Query::Reach(s, t);
  if (kind < 8) {
    return Query::Dist(s, t, static_cast<uint32_t>(1 + rng->Uniform(8)));
  }
  return Query::Rpq(s, t, QueryAutomaton::FromRegex(
                              Regex::Random(3, num_labels, rng)).value());
}

bool OracleReachable(const Graph& g, const Query& q) {
  switch (q.kind) {
    case QueryKind::kReach:
      return CentralizedReach(g, q.source, q.target);
    case QueryKind::kDist: {
      const uint32_t d = CentralizedDistance(g, q.source, q.target);
      return d != kInfDistance && d <= q.bound;
    }
    case QueryKind::kRpq:
      return CentralizedRegularReach(g, q.source, q.target, *q.automaton);
  }
  return false;
}

uint64_t OracleDistance(const Graph& g, NodeId s, NodeId t) {
  const uint32_t d = CentralizedDistance(g, s, t);
  return d == kInfDistance ? kInfWeight : d;
}

std::string DiffContext(uint64_t seed, std::string_view partitioner,
                        EquationForm form, size_t epoch, const Query& q) {
  std::ostringstream out;
  out << "seed=" << seed << " partitioner=" << partitioner
      << " form=" << FormName(form) << " epoch=" << epoch
      << " kind=" << static_cast<int>(q.kind) << " s=" << q.source
      << " t=" << q.target;
  if (q.kind == QueryKind::kDist) out << " bound=" << q.bound;
  return out.str();
}

PaperExample MakePaperExample() {
  PaperExample ex;
  const LabelId cto = ex.labels.Intern("CTO");
  const LabelId hr = ex.labels.Intern("HR");
  const LabelId db = ex.labels.Intern("DB");
  const LabelId mk = ex.labels.Intern("MK");
  const LabelId se = ex.labels.Intern("SE");
  const LabelId ai = ex.labels.Intern("AI");
  const LabelId fa = ex.labels.Intern("FA");

  ex.names = {"Ann", "Walt", "Bill", "Fred", "Mat", "Emmy",
              "Jack", "Pat",  "Ross", "Tom",  "Mark"};
  const std::vector<LabelId> node_labels = {cto, hr, db, hr, hr, hr,
                                            mk,  se, hr, ai, fa};
  ex.graph = MakeGraph(
      11,
      {
          {ex.ann, ex.walt},   // DC1 local
          {ex.ann, ex.bill},   // DC1 local
          {ex.walt, ex.mat},   // cross DC1 -> DC2
          {ex.bill, ex.pat},   // cross DC1 -> DC3
          {ex.fred, ex.emmy},  // cross DC1 -> DC2
          {ex.mat, ex.fred},   // cross DC2 -> DC1
          {ex.emmy, ex.mat},   // DC2 local
          {ex.jack, ex.mat},   // DC2 local
          {ex.emmy, ex.ross},  // cross DC2 -> DC3
          {ex.pat, ex.jack},   // cross DC3 -> DC2
          {ex.ross, ex.mark},  // DC3 local
      },
      node_labels);
  ex.partition = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2};
  return ex;
}

}  // namespace testing_util
}  // namespace pereach
