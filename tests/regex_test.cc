#include "src/regex/regex.h"

#include <gtest/gtest.h>

namespace pereach {
namespace {

LabelDictionary MakeDict() {
  LabelDictionary d;
  d.Intern("DB");   // 0
  d.Intern("HR");   // 1
  d.Intern("CTO");  // 2
  d.Intern("FA");   // 3
  return d;
}

TEST(RegexTest, BuildersAndKinds) {
  const Regex r = Regex::Union(Regex::Star(Regex::Symbol(0)),
                               Regex::Concat(Regex::Symbol(1),
                                             Regex::Epsilon()));
  EXPECT_EQ(r.kind(), Regex::Kind::kUnion);
  EXPECT_EQ(r.left().kind(), Regex::Kind::kStar);
  EXPECT_EQ(r.left().left().symbol(), 0u);
  EXPECT_EQ(r.right().kind(), Regex::Kind::kConcat);
  EXPECT_EQ(r.NumSymbols(), 2u);
}

TEST(RegexTest, MatchesEmpty) {
  EXPECT_TRUE(Regex::Epsilon().MatchesEmpty());
  EXPECT_FALSE(Regex::Symbol(0).MatchesEmpty());
  EXPECT_TRUE(Regex::Star(Regex::Symbol(0)).MatchesEmpty());
  EXPECT_TRUE(
      Regex::Union(Regex::Symbol(0), Regex::Epsilon()).MatchesEmpty());
  EXPECT_FALSE(
      Regex::Concat(Regex::Symbol(0), Regex::Epsilon()).MatchesEmpty());
  EXPECT_TRUE(Regex::Concat(Regex::Star(Regex::Symbol(0)),
                            Regex::Star(Regex::Symbol(1)))
                  .MatchesEmpty());
}

TEST(RegexTest, MatchesBasics) {
  // (DB* | HR*) — the paper's R from Example 1, over label ids 0/1.
  const Regex r = Regex::Union(Regex::Star(Regex::Symbol(0)),
                               Regex::Star(Regex::Symbol(1)));
  EXPECT_TRUE(r.Matches({}));
  EXPECT_TRUE(r.Matches({0, 0, 0}));
  EXPECT_TRUE(r.Matches({1, 1, 1, 1, 1}));
  EXPECT_FALSE(r.Matches({0, 1}));
  EXPECT_FALSE(r.Matches({2}));
}

TEST(RegexTest, MatchesConcat) {
  // CTO DB* : label 2 then any number of 0s.
  const Regex r =
      Regex::Concat(Regex::Symbol(2), Regex::Star(Regex::Symbol(0)));
  EXPECT_TRUE(r.Matches({2}));
  EXPECT_TRUE(r.Matches({2, 0, 0}));
  EXPECT_FALSE(r.Matches({0, 2}));
  EXPECT_FALSE(r.Matches({}));
}

TEST(RegexTest, MatchesNestedStar) {
  // (ab)* over labels a=0, b=1.
  const Regex r =
      Regex::Star(Regex::Concat(Regex::Symbol(0), Regex::Symbol(1)));
  EXPECT_TRUE(r.Matches({}));
  EXPECT_TRUE(r.Matches({0, 1}));
  EXPECT_TRUE(r.Matches({0, 1, 0, 1}));
  EXPECT_FALSE(r.Matches({0}));
  EXPECT_FALSE(r.Matches({1, 0}));
}

TEST(RegexTest, AnyOfMatchesEachLabel) {
  const Regex r = Regex::AnyOf({0, 1, 3});
  EXPECT_TRUE(r.Matches({0}));
  EXPECT_TRUE(r.Matches({1}));
  EXPECT_TRUE(r.Matches({3}));
  EXPECT_FALSE(r.Matches({2}));
  EXPECT_FALSE(r.Matches({}));
  EXPECT_FALSE(r.Matches({0, 0}));
}

TEST(RegexParserTest, ParsesPaperQuery) {
  const LabelDictionary dict = MakeDict();
  Result<Regex> r = Regex::Parse("(DB* | HR*)", dict);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().Matches({1, 1, 1}));
  EXPECT_TRUE(r.value().Matches({0}));
  EXPECT_FALSE(r.value().Matches({0, 1}));
}

TEST(RegexParserTest, ParsesConcatenationByJuxtaposition) {
  const LabelDictionary dict = MakeDict();
  Result<Regex> r = Regex::Parse("(CTO DB*) | HR*", dict);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().Matches({2, 0, 0}));
  EXPECT_TRUE(r.value().Matches({2}));
  EXPECT_TRUE(r.value().Matches({1, 1}));
  EXPECT_TRUE(r.value().Matches({}));  // HR* accepts empty
  EXPECT_FALSE(r.value().Matches({0, 0}));
}

TEST(RegexParserTest, ParsesEpsilonTilde) {
  const LabelDictionary dict = MakeDict();
  Result<Regex> r = Regex::Parse("~ | DB", dict);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Matches({}));
  EXPECT_TRUE(r.value().Matches({0}));
  EXPECT_FALSE(r.value().Matches({1}));
}

TEST(RegexParserTest, DoubleStarIsIdempotent) {
  const LabelDictionary dict = MakeDict();
  Result<Regex> r = Regex::Parse("DB**", dict);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Matches({}));
  EXPECT_TRUE(r.value().Matches({0, 0}));
}

TEST(RegexParserTest, ErrorOnUnknownLabel) {
  const LabelDictionary dict = MakeDict();
  Result<Regex> r = Regex::Parse("NOPE*", dict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegexParserTest, ErrorOnUnbalancedParen) {
  const LabelDictionary dict = MakeDict();
  EXPECT_FALSE(Regex::Parse("(DB | HR", dict).ok());
  EXPECT_FALSE(Regex::Parse("DB)", dict).ok());
  EXPECT_FALSE(Regex::Parse("", dict).ok());
  EXPECT_FALSE(Regex::Parse("|", dict).ok());
  EXPECT_FALSE(Regex::Parse("DB | | HR", dict).ok());
}

TEST(RegexParserTest, ToStringRoundTrips) {
  const LabelDictionary dict = MakeDict();
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const Regex r = Regex::Random(1 + rng.Uniform(8), dict.size(), &rng);
    const std::string text = r.ToString(dict);
    Result<Regex> reparsed = Regex::Parse(text, dict);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    // Same language on random words (structural equality is too strict —
    // printing normalizes grouping).
    for (int w = 0; w < 30; ++w) {
      std::vector<LabelId> word;
      const size_t len = rng.Uniform(6);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<LabelId>(rng.Uniform(dict.size())));
      }
      EXPECT_EQ(r.Matches(word), reparsed.value().Matches(word))
          << text << " on word of length " << len;
    }
  }
}

TEST(RegexRandomTest, HasRequestedSymbolCount) {
  Rng rng(17);
  for (size_t symbols = 1; symbols <= 12; ++symbols) {
    const Regex r = Regex::Random(symbols, 5, &rng);
    EXPECT_EQ(r.NumSymbols(), symbols);
  }
}

}  // namespace
}  // namespace pereach
