#include "src/util/sync.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pereach {
namespace {

using internal_sync::HeldRanksForTest;

// --- rank stack bookkeeping --------------------------------------------------

TEST(SyncTest, ScopedLockPushesAndPopsRank) {
  Mutex mu(LockRank::kBatchQueue);
  EXPECT_TRUE(HeldRanksForTest().empty());
  {
    MutexLock lock(&mu);
    ASSERT_EQ(HeldRanksForTest().size(), 1u);
    EXPECT_EQ(HeldRanksForTest()[0], static_cast<int>(LockRank::kBatchQueue));
  }
  EXPECT_TRUE(HeldRanksForTest().empty());
}

TEST(SyncTest, AscendingNestingIsAllowed) {
  Mutex low(LockRank::kEpochGate);
  Mutex mid(LockRank::kBatchQueue);
  Mutex high(LockRank::kServerMetrics);
  MutexLock l1(&low);
  MutexLock l2(&mid);
  MutexLock l3(&high);
  const std::vector<int> held = HeldRanksForTest();
  ASSERT_EQ(held.size(), 3u);
  EXPECT_LT(held[0], held[1]);
  EXPECT_LT(held[1], held[2]);
}

TEST(SyncTest, ReleaseUnwindsInLifoOrder) {
  Mutex low(LockRank::kEpochGate);
  Mutex high(LockRank::kAnswerCache);
  {
    MutexLock l1(&low);
    {
      MutexLock l2(&high);
      EXPECT_EQ(HeldRanksForTest().size(), 2u);
    }
    ASSERT_EQ(HeldRanksForTest().size(), 1u);
    EXPECT_EQ(HeldRanksForTest()[0], static_cast<int>(LockRank::kEpochGate));
  }
  EXPECT_TRUE(HeldRanksForTest().empty());
}

TEST(SyncTest, RankStackIsPerThread) {
  Mutex mu(LockRank::kLeaf);
  MutexLock lock(&mu);
  std::vector<int> other_thread_held = {-1};
  std::thread t([&] { other_thread_held = HeldRanksForTest(); });
  t.join();
  // The spawned thread holds nothing even while this thread holds mu.
  EXPECT_TRUE(other_thread_held.empty());
  EXPECT_EQ(HeldRanksForTest().size(), 1u);
}

// --- the deadlock detector ---------------------------------------------------

TEST(SyncDeathTest, InvertedAcquisitionOrderAborts) {
  Mutex low(LockRank::kEpochGate);
  Mutex high(LockRank::kAnswerCache);
  // high-then-low is the inverse of the declared order: the detector must
  // fire on the second acquisition even though no second thread exists.
  MutexLock l1(&high);
  EXPECT_DEATH(MutexLock l2(&low), "lock-rank inversion");
}

TEST(SyncDeathTest, SameRankNestingAborts) {
  // Two mutexes of one rank have no declared relative order, so nesting
  // them is a potential cycle against a thread nesting them the other way.
  Mutex a(LockRank::kBatchQueue);
  Mutex b(LockRank::kBatchQueue);
  MutexLock l1(&a);
  EXPECT_DEATH(MutexLock l2(&b), "lock-rank inversion");
}

TEST(SyncDeathTest, SharedAcquisitionsFeedTheDetectorToo) {
  SharedMutex low(LockRank::kEpochGate);
  Mutex high(LockRank::kBatchQueue);
  MutexLock l1(&high);
  // A reader blocking on a writer is half of a deadlock cycle, so shared
  // holds obey the same order.
  EXPECT_DEATH(ReaderLock l2(&low), "lock-rank inversion");
}

#ifndef NDEBUG
// The exclusive-use guard (unlike the rank detector) compiles away under
// NDEBUG, so the overlap abort only exists in debug/sanitizer builds.
TEST(SyncDeathTest, ConcurrentExclusiveUseAborts) {
  ExclusiveUseToken token;
  ScopedExclusiveUse first(&token);
  EXPECT_DEATH(ScopedExclusiveUse second(&token),
               "entered concurrently");
}
#endif

// --- reader/writer interplay -------------------------------------------------

TEST(SyncTest, MultipleReadersShareTheLock) {
  SharedMutex mu(LockRank::kEpochGate);
  ReaderLock outer(&mu);
  // A second reader on another thread must get through while we hold the
  // shared side; a blocked reader would deadlock the join below.
  std::thread t([&] {
    ReaderLock inner(&mu);
    EXPECT_EQ(HeldRanksForTest().size(), 1u);
  });
  t.join();
}

TEST(SyncTest, WriterExcludesReaders) {
  SharedMutex mu(LockRank::kEpochGate);
  int protected_value = 0;
  std::thread writer;
  {
    ReaderLock read(&mu);
    writer = std::thread([&] {
      WriterLock write(&mu);
      protected_value = 1;
    });
    // Not a synchronization proof (the writer may simply not have run yet),
    // but the write below must be ordered after this read's release.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(protected_value, 0);
  }
  writer.join();
  ReaderLock read(&mu);
  EXPECT_EQ(protected_value, 1);
}

TEST(SyncTest, SequentialExclusiveUseIsFine) {
  ExclusiveUseToken token;
  { ScopedExclusiveUse use(&token); }
  { ScopedExclusiveUse use(&token); }
}

// --- CondVar -----------------------------------------------------------------

TEST(SyncTest, CondVarWaitWakesOnNotify) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
    // The wait re-holds the mutex: the rank stack still shows it.
    EXPECT_EQ(HeldRanksForTest().size(), 1u);
  }
  producer.join();
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back with timeout, mutex re-held.
  EXPECT_EQ(cv.WaitUntil(&mu, deadline), std::cv_status::timeout);
  EXPECT_EQ(HeldRanksForTest().size(), 1u);
}

}  // namespace
}  // namespace pereach
