// Seeded cross-class property fuzzer: random query mixes driven through
// EVERY {reach_path, dist_path, rpq_path} x partitioner x EquationForm
// combination against the centralized oracle, across interleaved update
// epochs — the whole differential matrix the per-subsystem suites sample,
// in one place. Every assertion message carries the seed and the matrix
// cell, so a failing combination reproduces straight from the log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/graph/generators.h"
#include "src/net/cluster.h"
#include "src/server/query_server.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::AllPartitioners;
using testing_util::DiffContext;
using testing_util::EdgeWorld;
using testing_util::kAllEquationForms;
using testing_util::OracleDistance;
using testing_util::OracleReachable;
using testing_util::RandomMixedQuery;

struct PathCombo {
  ReachAnswerPath reach;
  DistAnswerPath dist;
  RpqAnswerPath rpq;
  std::string name;
};

/// The full 2x2x2 indexed-path cube; combo 0 (all-BES) is the reference.
std::vector<PathCombo> AllPathCombos() {
  std::vector<PathCombo> combos;
  for (const ReachAnswerPath reach :
       {ReachAnswerPath::kBes, ReachAnswerPath::kBoundaryIndex}) {
    for (const DistAnswerPath dist :
         {DistAnswerPath::kBes, DistAnswerPath::kBoundaryIndex}) {
      for (const RpqAnswerPath rpq :
           {RpqAnswerPath::kBes, RpqAnswerPath::kBoundaryIndex}) {
        const auto tag = [](bool indexed) {
          return indexed ? "index" : "bes";
        };
        combos.push_back(
            {reach, dist, rpq,
             std::string("reach=") +
                 tag(reach == ReachAnswerPath::kBoundaryIndex) +
                 "/dist=" + tag(dist == DistAnswerPath::kBoundaryIndex) +
                 "/rpq=" + tag(rpq == RpqAnswerPath::kBoundaryIndex)});
      }
    }
  }
  return combos;
}

TEST(CrossClassPropertyTest, AllPathCombosMatchOracleAcrossMatrix) {
  constexpr size_t kSites = 4, kEpochs = 3, kQueriesPerEpoch = 24;
  constexpr size_t kNumLabels = 3;
  constexpr uint64_t kSeed = 987654321;
  Rng rng(kSeed);
  const std::vector<PathCombo> combos = AllPathCombos();

  for (const auto& partitioner : AllPartitioners()) {
    for (const EquationForm form : kAllEquationForms) {
      const size_t n = 50 + rng.Uniform(30);
      const Graph g = ErdosRenyi(n, 3 * n, kNumLabels, &rng);
      const std::vector<SiteId> part = partitioner->Partition(g, kSites, &rng);
      IncrementalReachIndex index(g, part, kSites);
      EdgeWorld world = EdgeWorld::FromGraph(g);

      Cluster cluster(&index.fragmentation(), NetworkModel{});
      // One engine per {reach_path, dist_path, rpq_path} combination, all
      // fed the same batches; the all-BES combination doubles as the
      // reference the indexed paths must match bit-for-bit (distance values
      // included). A small rpq LRU cap keeps evictions in the fuzzed space.
      // Shortcut budgets cycle across the cube (0 disables; answers must
      // not depend on the budget), and a ninth engine re-runs the
      // all-indexed combination with the scalar coordinator path
      // (batch_sweep off) as the bit-parallel word path's reference.
      constexpr size_t kShortcutBudgets[] = {0, 8, 64};
      std::vector<std::unique_ptr<PartialEvalEngine>> engines;
      std::vector<std::string> engine_names;
      for (size_t c = 0; c < combos.size(); ++c) {
        PartialEvalOptions options;
        options.form = form;
        options.reach_path = combos[c].reach;
        options.dist_path = combos[c].dist;
        options.rpq_path = combos[c].rpq;
        options.rpq_cache_entries = 4;
        options.shortcut_budget = kShortcutBudgets[c % 3];
        engines.push_back(
            std::make_unique<PartialEvalEngine>(&cluster, options));
        engine_names.push_back(combos[c].name + "/budget=" +
                               std::to_string(options.shortcut_budget));
      }
      {
        PartialEvalOptions options;
        options.form = form;
        options.reach_path = ReachAnswerPath::kBoundaryIndex;
        options.dist_path = DistAnswerPath::kBoundaryIndex;
        options.rpq_path = RpqAnswerPath::kBoundaryIndex;
        options.rpq_cache_entries = 4;
        options.batch_sweep = false;
        options.shortcut_budget = 0;
        engines.push_back(
            std::make_unique<PartialEvalEngine>(&cluster, options));
        engine_names.push_back("all-index/scalar-coordinator");
      }
      index.SetUpdateListener([&engines](SiteId site) {
        for (auto& engine : engines) engine->InvalidateFragment(site);
      });

      for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
        const Graph oracle = world.Build();
        std::vector<Query> batch;
        batch.reserve(kQueriesPerEpoch);
        for (size_t q = 0; q < kQueriesPerEpoch; ++q) {
          batch.push_back(RandomMixedQuery(n, kNumLabels, &rng));
        }
        // s == t members exercise the trivial coordinator path (reach/dist)
        // and the cycle semantics (rpq) everywhere.
        batch.push_back(Query::Reach(0, 0));
        batch.push_back(Query::Dist(1, 1, 0));
        batch.push_back(Query::Rpq(2, 2, QueryAutomaton::WildcardStar()));

        std::vector<BatchAnswer> results;
        results.reserve(engines.size());
        for (auto& engine : engines) {
          results.push_back(engine->EvaluateBatch(batch));
        }
        const BatchAnswer& reference = results[0];  // all-BES

        for (size_t q = 0; q < batch.size(); ++q) {
          const bool expected = OracleReachable(oracle, batch[q]);
          for (size_t e = 0; e < engines.size(); ++e) {
            ASSERT_EQ(results[e].answers[q].reachable, expected)
                << engine_names[e] << " vs oracle: "
                << DiffContext(kSeed, partitioner->name(), form, epoch,
                               batch[q]);
            if (batch[q].kind != QueryKind::kDist) continue;
            // Dist answers must be bit-identical across paths (above-bound
            // values included), and equal to the true distance when the
            // bound admits it.
            ASSERT_EQ(results[e].answers[q].distance,
                      reference.answers[q].distance)
                << engine_names[e] << " vs reference: "
                << DiffContext(kSeed, partitioner->name(), form, epoch,
                               batch[q]);
            if (expected) {
              ASSERT_EQ(
                  results[e].answers[q].distance,
                  OracleDistance(oracle, batch[q].source, batch[q].target))
                  << engine_names[e] << " vs oracle distance: "
                  << DiffContext(kSeed, partitioner->name(), form, epoch,
                                 batch[q]);
            }
          }
        }

        // Interleave an update epoch through the incremental index; the
        // listener invalidates every engine (contexts + all three boundary
        // indexes), so the next round's refresh must re-converge them all.
        index.AddEdges(world.AddRandomEdges(3, &rng));
      }
      index.SetUpdateListener(nullptr);

      // The indexed paths actually ran through their standing structures
      // (the last CUBE combo is all-indexed; the extra appended engine is
      // its scalar-coordinator twin).
      PartialEvalEngine& all_indexed = *engines[combos.size() - 1];
      const BoundaryReachIndex* reach_idx = all_indexed.boundary_index();
      const BoundaryDistIndex* dist_idx = all_indexed.boundary_dist_index();
      const BoundaryRpqIndex* rpq_idx = all_indexed.boundary_rpq_index();
      ASSERT_NE(reach_idx, nullptr)
          << "seed=" << kSeed << " " << partitioner->name();
      ASSERT_NE(dist_idx, nullptr)
          << "seed=" << kSeed << " " << partitioner->name();
      ASSERT_NE(rpq_idx, nullptr)
          << "seed=" << kSeed << " " << partitioner->name();
      EXPECT_GT(reach_idx->label_hits() + reach_idx->dfs_fallbacks(), 0u);
      EXPECT_GT(dist_idx->search_count(), 0u);
      EXPECT_GT(rpq_idx->num_entries(), 0u);
      EXPECT_LE(dist_idx->rebuild_count(), kEpochs);
      // The default batch_sweep answered the reach questions in words; the
      // appended scalar engine never entered the word path.
      EXPECT_GT(reach_idx->batch_words(), 0u);
      const BoundaryReachIndex* scalar_idx = engines.back()->boundary_index();
      ASSERT_NE(scalar_idx, nullptr)
          << "seed=" << kSeed << " " << partitioner->name();
      EXPECT_EQ(scalar_idx->batch_words(), 0u);
    }
  }
}

// Transport differential: the socket backend (spawned worker processes,
// length-prefixed frames, CRC-gated decode) must serve answers AND modeled
// books bit-identical to the simulated seed, across the answer-path cube and
// across update epochs (each commit re-ships fragments via SyncFragments).
// This is the proof that serving over real sockets changes wall-clock only.
// One socket-vs-sim differential world: same graph, same partitioner, the
// sim and socket backends must agree bit-for-bit on answers AND on the
// modeled books across the path extremes and update epochs. With a
// `fault_plan`, the socket backend additionally absorbs seeded
// {kill, hang, drop, corrupt, delay} faults via in-round failover — the
// answers and books must STILL be bit-identical to the fault-free sim.
void SocketVsSimDifferential(const Partitioner& partitioner, uint64_t seed,
                             const FaultPlan* fault_plan = nullptr) {
  constexpr size_t kSites = 3, kEpochs = 3, kQueriesPerEpoch = 16;
  constexpr size_t kNumLabels = 3;
  const uint64_t kSeed = seed;
  Rng rng(kSeed);
  const size_t n = 40 + rng.Uniform(20);
  const Graph g = ErdosRenyi(n, 3 * n, kNumLabels, &rng);
  const std::vector<SiteId> part = partitioner.Partition(g, kSites, &rng);
  IncrementalReachIndex index(g, part, kSites);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  TransportOptions socket_options;
  socket_options.backend = TransportBackend::kSocket;
  if (fault_plan != nullptr) {
    socket_options.fault_plan = *fault_plan;
    socket_options.read_timeout_ms = 2000;
    socket_options.round_retries = 2;
    socket_options.breaker_threshold = 2;
    socket_options.breaker_open_ms = 50;
  }
  Cluster sim_cluster(&index.fragmentation(), NetworkModel{});
  Cluster socket_cluster(&index.fragmentation(), NetworkModel{},
                         /*num_threads=*/0, socket_options);

  // The two extreme path combinations (all-BES and all-indexed) on each
  // backend: the BES pair covers the batched localEval wire shapes, the
  // indexed pair covers the rows-refresh and endpoint-sweep shapes.
  struct EnginePair {
    std::unique_ptr<PartialEvalEngine> sim;
    std::unique_ptr<PartialEvalEngine> socket;
    std::string name;
  };
  std::vector<EnginePair> pairs;
  for (const bool indexed : {false, true}) {
    PartialEvalOptions options;
    options.reach_path =
        indexed ? ReachAnswerPath::kBoundaryIndex : ReachAnswerPath::kBes;
    options.dist_path =
        indexed ? DistAnswerPath::kBoundaryIndex : DistAnswerPath::kBes;
    options.rpq_path =
        indexed ? RpqAnswerPath::kBoundaryIndex : RpqAnswerPath::kBes;
    options.rpq_cache_entries = 4;
    EnginePair pair;
    pair.sim = std::make_unique<PartialEvalEngine>(&sim_cluster, options);
    pair.socket =
        std::make_unique<PartialEvalEngine>(&socket_cluster, options);
    pair.name = indexed ? "all-index" : "all-bes";
    pairs.push_back(std::move(pair));
  }
  index.SetUpdateListener([&pairs](SiteId site) {
    for (EnginePair& pair : pairs) {
      pair.sim->InvalidateFragment(site);
      pair.socket->InvalidateFragment(site);
    }
  });

  for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<Query> batch;
    batch.reserve(kQueriesPerEpoch + 1);
    for (size_t q = 0; q < kQueriesPerEpoch; ++q) {
      batch.push_back(RandomMixedQuery(n, kNumLabels, &rng));
    }
    batch.push_back(Query::Rpq(2, 2, QueryAutomaton::WildcardStar()));

    for (EnginePair& pair : pairs) {
      const BatchAnswer expect = pair.sim->EvaluateBatch(batch);
      const BatchAnswer got = pair.socket->EvaluateBatch(batch);
      ASSERT_TRUE(expect.status.ok());
      ASSERT_TRUE(got.status.ok())
          << pair.name << " epoch=" << epoch << ": " << got.status.ToString();
      for (size_t q = 0; q < batch.size(); ++q) {
        ASSERT_EQ(got.answers[q].reachable, expect.answers[q].reachable)
            << pair.name << " vs sim: "
            << DiffContext(kSeed, partitioner.name(), EquationForm::kAuto,
                           epoch, batch[q]);
        ASSERT_EQ(got.answers[q].distance, expect.answers[q].distance)
            << pair.name << " vs sim: "
            << DiffContext(kSeed, partitioner.name(), EquationForm::kAuto,
                           epoch, batch[q]);
      }
      // Identical modeled books: payload-only accounting makes the model
      // transport-invariant.
      EXPECT_EQ(got.metrics.rounds, expect.metrics.rounds) << pair.name;
      EXPECT_EQ(got.metrics.messages, expect.metrics.messages) << pair.name;
      EXPECT_EQ(got.metrics.traffic_bytes, expect.metrics.traffic_bytes)
          << pair.name;
    }

    // Commit an update epoch and re-ship the rebuilt fragments to the
    // workers before the next round (what QueryServer::AddEdges does under
    // its writer gate).
    index.AddEdges(world.AddRandomEdges(3, &rng));
    ASSERT_TRUE(socket_cluster.SyncFragments().ok());
  }
  index.SetUpdateListener(nullptr);

  if (fault_plan != nullptr) {
    // The plan actually injected: recovery work must be visible in the
    // health counters (kill_each_site alone guarantees kSites respawns or
    // degraded rounds), yet no batch above was allowed to fail.
    const TransportHealth health = socket_cluster.transport()->Health();
    EXPECT_GT(health.round_retries + health.degraded_site_rounds, 0u)
        << "seed=" << kSeed << " " << partitioner.name();
  }
}

TEST(CrossClassPropertyTest, SocketBackendMatchesSimAcrossEpochsAndPaths) {
  uint64_t seed = 1357911;
  for (const auto& partitioner : AllPartitioners()) {
    SocketVsSimDifferential(*partitioner, seed++);
    if (HasFatalFailure()) return;
  }
}

// Chaos differential: the same socket-vs-sim matrix, but the socket backend
// runs under a seeded FaultPlan that SIGKILLs every worker at least once
// (kill_each_site) and sprinkles {kill, hang, drop-frame, corrupt-crc,
// delay} faults at rate 0.2. In-round failover + local degradation must
// absorb every fault: answers and modeled books stay bit-identical to the
// fault-free sim across partitioners and update epochs.
TEST(CrossClassPropertyTest, ChaosSocketBackendMatchesSimUnderFaultPlan) {
  uint64_t seed = 246813579;
  for (const auto& partitioner : AllPartitioners()) {
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.rate = 0.2;
    plan.first_round = 0;
    plan.kill_each_site = true;
    SocketVsSimDifferential(*partitioner, seed++, &plan);
    if (HasFatalFailure()) return;
  }
}

// Serving-layer variant of the differential: a cached, admission-enabled
// QueryServer against an uncached twin (each over its own index built from
// the same graph) and the centralized oracle, across update epochs. The
// query pool repeats heavily so the cache actually serves hits, and every
// accepted answer — hit or evaluated — must be bit-identical between the
// servers and correct against the oracle at the current epoch (DESIGN.md
// §11.1: the canonical key + epoch pin make cached serving answer-preserving).
TEST(CrossClassPropertyTest, CachedServingMatchesUncachedAcrossEpochs) {
  constexpr size_t kSites = 4, kEpochs = 4, kRounds = 3, kPoolSize = 12;
  constexpr size_t kNumLabels = 3;
  constexpr uint64_t kSeed = 24681357;
  Rng rng(kSeed);
  const size_t n = 50 + rng.Uniform(30);
  const Graph g = ErdosRenyi(n, 3 * n, kNumLabels, &rng);
  const std::vector<SiteId> part = testing_util::RandomPartition(n, kSites,
                                                                 &rng);
  IncrementalReachIndex cached_index(g, part, kSites);
  IncrementalReachIndex plain_index(g, part, kSites);
  EdgeWorld world = EdgeWorld::FromGraph(g);

  ServerOptions cached_options;
  cached_options.cache.enabled = true;
  cached_options.cache.max_entries = 64;
  // Admission budgets generous enough that this single-threaded closed
  // loop never trips them — enabled to prove the hardened configuration
  // serves the same answers, not to shed load here.
  cached_options.admission.max_queue = 256;
  cached_options.admission.tenant_quota = 256;
  QueryServer cached(&cached_index, cached_options);
  QueryServer plain(&plain_index);

  for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const Graph oracle = world.Build();
    // A fresh pool per epoch, replayed kRounds times: rounds 2+ are pure
    // hit traffic on the cached server.
    std::vector<Query> pool;
    pool.reserve(kPoolSize);
    for (size_t q = 0; q < kPoolSize; ++q) {
      pool.push_back(RandomMixedQuery(n, kNumLabels, &rng));
    }
    for (size_t round = 0; round < kRounds; ++round) {
      for (size_t q = 0; q < pool.size(); ++q) {
        const ServedAnswer from_cached = cached.Submit(pool[q]).get();
        const ServedAnswer from_plain = plain.Submit(pool[q]).get();
        const std::string context = DiffContext(
            kSeed, "random", EquationForm::kAuto, epoch, pool[q]);
        ASSERT_FALSE(from_cached.rejected) << context;
        ASSERT_FALSE(from_plain.rejected) << context;
        ASSERT_EQ(from_cached.answer.reachable, from_plain.answer.reachable)
            << "cached vs uncached: round=" << round << " " << context;
        ASSERT_EQ(from_cached.answer.distance, from_plain.answer.distance)
            << "cached vs uncached: round=" << round << " " << context;
        ASSERT_EQ(from_cached.answer.reachable,
                  OracleReachable(oracle, pool[q]))
            << "cached vs oracle: round=" << round << " " << context;
        ASSERT_EQ(from_cached.epoch, epoch) << context;
      }
    }
    // Same update batch through both servers, committing the same epoch;
    // the cached server's entries must all die with the old epoch.
    const std::vector<std::pair<NodeId, NodeId>> updates =
        world.AddRandomEdges(3, &rng);
    ASSERT_EQ(cached.AddEdges(updates), epoch + 1);
    ASSERT_EQ(plain.AddEdges(updates), epoch + 1);
  }
  // The repeated pool actually exercised the cache: rounds 2+ of each epoch
  // can only miss when a pool collision evicted an entry (cap 64 > pool).
  const AnswerCacheCounters counters = cached.cache_counters();
  EXPECT_GE(counters.hits, kEpochs * (kRounds - 1) * kPoolSize / 2);
  EXPECT_GE(counters.invalidated, kPoolSize);
}

}  // namespace
}  // namespace pereach
